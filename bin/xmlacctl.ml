(* xmlacctl — command-line front end for the xmlac system.

   Subcommands:
     generate   synthesize an XMark-like document (xmlgen replacement)
     dtd        print a built-in DTD (hospital | xmark)
     shred      XML document -> SQL DDL + INSERT script
     optimize   remove redundant rules from a policy file
     annotate   materialize a policy's annotations into a document
     query      all-or-nothing request against an annotated document
     roles      list a policy's role DAG with per-role rule counts
     update     delete update + trigger-based partial re-annotation
     depend     show rule expansions and the dependency graph
     explain    annotation plan, rewrite trace, lowerings, timings
     recover    crash a mutating epoch at a fault point, then recover
     health     probe the resilient serving layer under injected faults
     serve      run pinned-snapshot reader sessions against a churning writer
     replicate  ship committed epochs to followers over a chaos transport *)

open Cmdliner
open Xmlac_core
module Tree = Xmlac_xml.Tree
module Fault = Xmlac_util.Fault
module Serve = Xmlac_serve.Serve
module Breaker = Xmlac_serve.Breaker
module Session = Xmlac_serve.Session
module Pool = Xmlac_serve.Pool
module Repl = Xmlac_replicate.Replicate
module Timing = Xmlac_util.Timing

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_out path content =
  match path with
  | None -> print_string content
  | Some p ->
      let oc = open_out_bin p in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("xmlacctl: " ^ m); exit 1) fmt

let load_dtd = function
  | "hospital" -> Xmlac_workload.Hospital.dtd
  | "xmark" -> Xmlac_workload.Xmark.dtd
  | path -> (
      match Xmlac_xml.Dtd.parse (read_file path) with
      | Ok dtd -> dtd
      | Error m -> die "cannot parse DTD %s: %s" path m)

let load_doc path =
  match Xmlac_xml.Xml_parser.parse (read_file path) with
  | Ok doc -> doc
  | Error e ->
      die "cannot parse %s: %s" path
        (Format.asprintf "%a" Xmlac_xml.Xml_parser.pp_error e)

let load_policy path =
  match Policy_io.parse (read_file path) with
  | Ok p -> p
  | Error e -> die "cannot parse policy %s: %s" path (Policy_io.error_to_string e)

let role_bit policy role =
  match Subject.index (Policy.subjects policy) role with
  | Some i -> i
  | None ->
      die "unknown role %S (declared: %s)" role
        (String.concat ", " (Policy.roles policy))

(* Shared --lane flag: which enforcement lane answers requests. *)
let lane_arg =
  let lane_conv =
    let parse s =
      match Rewrite.lane_of_string s with
      | Some l -> Ok l
      | None ->
          Error
            (`Msg
               (Printf.sprintf "invalid lane %S (expected auto, materialized or rewrite)"
                  s))
    in
    Arg.conv (parse, Rewrite.pp_lane)
  in
  Arg.(value & opt lane_conv Rewrite.Auto
       & info [ "lane" ]
           ~doc:"Enforcement lane: $(b,auto) picks per store (the \
                 query-rewrite lane when there is no materialized \
                 annotation to read), $(b,materialized) forces the paper's \
                 sign/bitmap lane, $(b,rewrite) forces static query \
                 rewriting — zero sign or bitmap reads.")

(* --- generate ----------------------------------------------------- *)

let generate factor seed output =
  let doc = Xmlac_workload.Xmark.generate ~seed:(Int64.of_int seed) ~factor () in
  write_out output (Xmlac_xml.Serializer.to_string ~indent:true doc);
  Printf.eprintf "generated %d nodes (factor %g)\n%!" (Tree.size doc) factor

let generate_cmd =
  let factor =
    Arg.(value & opt float 0.01 & info [ "f"; "factor" ] ~doc:"Scale factor.")
  in
  let seed = Arg.(value & opt int 20090101 & info [ "seed" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize an XMark-like document.")
    Term.(const generate $ factor $ seed $ output)

(* --- dtd ---------------------------------------------------------- *)

let dtd_cmd =
  let which =
    Arg.(value & pos 0 string "hospital" & info [] ~docv:"NAME")
  in
  Cmd.v
    (Cmd.info "dtd" ~doc:"Print a built-in DTD (hospital | xmark).")
    Term.(const (fun w -> print_string (Xmlac_xml.Dtd.to_string (load_dtd w))) $ which)

(* --- shred -------------------------------------------------------- *)

let shred dtd_name doc_path default_sign output =
  let dtd = load_dtd dtd_name in
  let doc = load_doc doc_path in
  (match Xmlac_xml.Dtd.validate dtd doc with
  | [] -> ()
  | v :: _ ->
      die "document not valid against DTD: %s"
        (Format.asprintf "%a" Xmlac_xml.Dtd.pp_violation v));
  let mapping = Xmlac_shrex.Mapping.of_dtd dtd in
  let stmts = Xmlac_shrex.Shred.insert_statements mapping ~default_sign doc in
  write_out output
    (Xmlac_shrex.Mapping.ddl mapping ^ Xmlac_reldb.Sql_text.render_script stmts)

let shred_cmd =
  let dtd_name =
    Arg.(required & opt (some string) None & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  let doc_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let sign =
    Arg.(value & opt string "-" & info [ "default-sign" ] ~doc:"Initial sign column value.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "shred" ~doc:"Shred an XML document into SQL (ShreX-style).")
    Term.(const shred $ dtd_name $ doc_path $ sign $ output)

(* --- optimize ----------------------------------------------------- *)

let optimize policy_path verbose =
  let policy = load_policy policy_path in
  let report = Optimizer.optimize policy in
  if verbose then Format.printf "%a" Optimizer.pp_report report
  else print_string (Policy_io.to_string report.Optimizer.result)

let optimize_cmd =
  let policy_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Show the removal report.")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Remove redundant rules from a policy.")
    Term.(const optimize $ policy_path $ verbose)

(* --- annotate ----------------------------------------------------- *)

let annotate doc_path policy_path output =
  let doc = load_doc doc_path in
  let policy = Optimizer.optimize_policy (load_policy policy_path) in
  let backend = Xml_backend.make doc in
  let stats = Annotator.annotate backend policy in
  Printf.eprintf "marked %d of %d nodes (%.1f%% coverage)\n%!"
    stats.Annotator.marked stats.Annotator.total
    (100.0 *. Annotator.coverage stats);
  write_out output (Xmlac_xml.Serializer.to_string ~indent:true doc)

let annotate_cmd =
  let doc_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let policy_path = Arg.(required & pos 1 (some file) None & info [] ~docv:"POLICY") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "annotate" ~doc:"Annotate a document with accessibility signs.")
    Term.(const annotate $ doc_path $ policy_path $ output)

(* --- query -------------------------------------------------------- *)

let query doc_path policy_path subject lane q =
  let doc = load_doc doc_path in
  let policy = load_policy policy_path in
  let backend = Xml_backend.make doc in
  let lane, why =
    match lane with
    | Rewrite.Auto ->
        (* A document that arrives with no sign attribute at all was
           never annotated: serve it through the rewrite lane rather
           than answering from defaults that materialization never
           confirmed. *)
        if Tree.signed doc Tree.Plus = [] && Tree.signed doc Tree.Minus = []
        then (Rewrite.Rewrite, "document carries no signs")
        else (Rewrite.Materialized, "document carries signs")
    | forced -> (forced, "forced")
  in
  Printf.eprintf "lane %s (%s)\n%!" (Rewrite.lane_to_string lane) why;
  let decision =
    match (lane, subject) with
    | Rewrite.Rewrite, None ->
        (* Static rewriting: the policy's accessible region intersected
           with the query, no sign read, no annotation pass. *)
        Requester.request_rewritten backend policy (Requester.parse_or_fail q)
    | Rewrite.Rewrite, Some role ->
        let _ = role_bit policy role in
        Requester.request_rewritten ~subject:role backend policy
          (Requester.parse_or_fail q)
    | _, None ->
        (* The document is expected to be annotated already (sign
           attributes); unannotated nodes fall back to the default. *)
        Requester.request_string backend ~default:(Policy.ds policy) q
    | _, Some role ->
        (* Per-role request: materialize every role's bitmap with the
           shared pass, then check the named role's bit. *)
        let idx = role_bit policy role in
        let _ = Annotator.annotate_subjects backend policy in
        let default = Policy.default_bits policy in
        let sign id =
          if Xmlac_util.Bitset.mem idx (Backend.effective_bits backend ~default id)
          then Tree.Plus
          else Tree.Minus
        in
        Requester.request_via ~sign backend (Requester.parse_or_fail q)
  in
  (match subject with
  | Some role -> Printf.printf "as %s: " role
  | None -> ());
  Format.printf "%a@." Requester.pp decision;
  match decision with
  | Requester.Granted ids ->
      List.iter
        (fun id ->
          match Tree.find doc id with
          | Some n ->
              Printf.printf "  #%d %s%s\n" id
                (String.concat "/" (Tree.label_path n))
                (match n.Tree.value with
                | Some v -> Printf.sprintf " = %S" v
                | None -> "")
          | None -> ())
        ids
  | Requester.Denied _ -> exit 3

let query_cmd =
  let doc_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let policy_path = Arg.(required & pos 1 (some file) None & info [] ~docv:"POLICY") in
  let subject =
    Arg.(value & opt (some string) None
         & info [ "subject" ]
             ~doc:"Answer for this role's bitmap slice instead of the \
                   anonymous single-subject signs.")
  in
  let q = Arg.(required & pos 2 (some string) None & info [] ~docv:"XPATH") in
  Cmd.v
    (Cmd.info "query"
       ~doc:"All-or-nothing request against a document (exit code 3 on denial).")
    Term.(const query $ doc_path $ policy_path $ subject $ lane_arg $ q)

(* --- roles -------------------------------------------------------- *)

let roles policy_path =
  let policy = load_policy policy_path in
  let subjects = Policy.subjects policy in
  Printf.printf "%d role(s), %d rule(s)\n" (Policy.role_count policy)
    (Policy.size policy);
  List.iter
    (fun (d : Subject.decl) ->
      let name = d.Subject.name in
      let applicable = Policy.rules (Policy.for_subject policy name) in
      Printf.printf "  %-12s inherits [%s]  ds %s  cr %s  %d rule(s)\n" name
        (String.concat ", " d.Subject.inherits)
        (Rule.effect_to_string (Policy.resolved_ds policy name))
        (Rule.effect_to_string (Policy.resolved_cr policy name))
        (List.length applicable))
    (Subject.decls subjects)

let roles_cmd =
  let policy_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY")
  in
  Cmd.v
    (Cmd.info "roles"
       ~doc:"List a policy's role DAG: inheritance, resolved default and \
             conflict semantics, and how many rules reach each role.")
    Term.(const roles $ policy_path)

(* --- update ------------------------------------------------------- *)

let update doc_path policy_path dtd_name update_expr output =
  let doc = load_doc doc_path in
  let policy = Optimizer.optimize_policy (load_policy policy_path) in
  let sg = Xmlac_xml.Schema_graph.build (load_dtd dtd_name) in
  let backend = Xml_backend.make doc in
  let depend = Depend.build ~mode:(Depend.Overlap sg) policy in
  let stats =
    Reannotator.reannotate ~schema:sg backend depend
      ~update:(Xmlac_xpath.Parser.parse_exn update_expr)
  in
  Printf.eprintf
    "deleted %d subtree(s); %d rule(s) triggered; %d node(s) re-annotated\n%!"
    stats.Reannotator.deleted_roots
    (List.length stats.Reannotator.triggered)
    stats.Reannotator.affected;
  write_out output (Xmlac_xml.Serializer.to_string ~indent:true doc)

let update_cmd =
  let doc_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let policy_path = Arg.(required & pos 1 (some file) None & info [] ~docv:"POLICY") in
  let dtd_name =
    Arg.(required & opt (some string) None & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  let expr = Arg.(required & pos 2 (some string) None & info [] ~docv:"XPATH") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Apply a delete update and partially re-annotate (Section 5.3).")
    Term.(const update $ doc_path $ policy_path $ dtd_name $ expr $ output)

(* --- depend ------------------------------------------------------- *)

let depend policy_path dtd_name =
  let policy = load_policy policy_path in
  let sg = Xmlac_xml.Schema_graph.build (load_dtd dtd_name) in
  print_endline "rule expansions:";
  List.iter
    (fun (r : Rule.t) ->
      Printf.printf "  %-4s -> { %s }\n" r.Rule.name
        (String.concat ", "
           (List.map Xmlac_xpath.Pp.expr_to_string
              (Xmlac_xpath.Expand.expand ~schema:sg r.Rule.resource))))
    (Policy.rules policy);
  print_endline "dependency graph (paper mode):";
  Format.printf "%a" Depend.pp (Depend.build ~mode:Depend.Paper policy)

let depend_cmd =
  let policy_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY") in
  let dtd_name =
    Arg.(required & opt (some string) None & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  Cmd.v
    (Cmd.info "depend" ~doc:"Show rule expansions and the dependency graph.")
    Term.(const depend $ policy_path $ dtd_name)

(* --- explain ------------------------------------------------------ *)

let explain policy_path dtd_name doc_path raw requests subjects lane =
  let policy = load_policy policy_path in
  let policy = if raw then policy else Optimizer.optimize_policy policy in
  let dtd = load_dtd dtd_name in
  let mapping = Xmlac_shrex.Mapping.of_dtd dtd in
  let sg = Xmlac_shrex.Mapping.schema_graph mapping in
  let doc = Option.map load_doc doc_path in
  Format.printf "%a@." Plan.pp_explain
    (Plan.explain ~schema:sg ~mapping ?doc (Plan.of_policy policy));
  (* The request fast lane, exercised live: each --request query is
     answered twice through an engine (cold, then cached) — for the
     anonymous subject and for every --subject role — then the
     fast-lane counters and stage timings are dumped. *)
  match (requests, doc) with
  | [], _ -> ()
  | _ :: _, None -> die "--request needs --doc to build an engine"
  | queries, Some doc ->
      let eng = Engine.create ~optimize:(not raw) ~dtd ~policy doc in
      List.iter (fun role -> ignore (role_bit (Engine.policy eng) role)) subjects;
      (* A forced rewrite lane leaves the store cold on purpose — the
         whole point is answering with zero sign or bitmap reads. *)
      (match lane with
      | Rewrite.Rewrite -> ()
      | _ ->
          let _ = Engine.annotate_all eng in
          if subjects <> [] then begin
            let _, stats = List.hd (Engine.annotate_subjects_all eng) in
            Printf.printf
              "subjects: %d role(s), %d distinct plan(s), %d shared\n"
              stats.Annotator.roles stats.Annotator.distinct_plans
              stats.Annotator.shared_plans
          end);
      print_endline "requester fast lane:";
      Format.printf "  %a@." Cam.pp (Engine.cam eng);
      let resolved, why = Engine.resolve_lane ~lane eng Engine.Native in
      Printf.printf "  lane              %s (%s)\n"
        (Rewrite.lane_to_string resolved) why;
      List.iter
        (fun q ->
          let cold = Engine.request ~lane eng Engine.Native q in
          let warm = Engine.request ~lane eng Engine.Native q in
          ignore cold;
          Format.printf "  %-40s -> %a@." q Requester.pp warm;
          List.iter
            (fun role ->
              let cold = Engine.request ~subject:role ~lane eng Engine.Native q in
              let warm = Engine.request ~subject:role ~lane eng Engine.Native q in
              ignore cold;
              Format.printf "  %-40s -> %a@."
                (Printf.sprintf "%s [as %s]" q role)
                Requester.pp warm)
            subjects)
        queries;
      let m = Engine.metrics eng in
      List.iter
        (fun role ->
          let c name = Xmlac_util.Metrics.counter m (name ^ "." ^ role) in
          let hits = c "cache.hits" and misses = c "cache.misses" in
          (* Guard the rate against a role that never looked anything
             up — 0/0 must print as n/a, not nan. *)
          let rate =
            if hits + misses = 0 then "n/a"
            else
              Printf.sprintf "%.2f"
                (float_of_int hits /. float_of_int (hits + misses))
          in
          Printf.printf
            "  as %-12s cache %d hit(s) / %d miss(es) (rate %s), %d \
             eviction(s), cam lookups %d, bypass %d\n"
            role hits misses rate (c "cache.evictions") (c "cam.lookups")
            (c "fastlane.bypass"))
        subjects;
      let dc = Engine.decision_cache eng in
      Printf.printf
        "  decision cache    %d/%d entries, %d eviction(s), %d stale \
         drop(s), hit rate %.2f\n"
        (Decision_cache.length dc)
        (Decision_cache.capacity dc)
        (Decision_cache.evictions dc)
        (Decision_cache.stale_drops dc)
        (Xmlac_util.Metrics.hit_rate (Engine.metrics eng) ~hits:"cache.hits"
           ~misses:"cache.misses");
      print_endline "durability:";
      Printf.printf "  sign epoch        %d (committed)\n"
        (Engine.sign_epoch eng);
      List.iter
        (fun kind ->
          match Engine.wal eng kind with
          | None -> ()
          | Some w ->
              Printf.printf "  %-10s wal    %d records, %d bytes, checksum %08lx\n"
                (Engine.backend_kind_to_string kind)
                (Xmlac_reldb.Wal.records w)
                (Xmlac_reldb.Wal.bytes_logged w)
                (Xmlac_reldb.Wal.checksum w))
        Engine.all_backend_kinds;
      Format.printf "  %a@." Snapshot.pp_registry (Engine.snapshots eng);
      Printf.printf "  stale denials     %d\n"
        (Xmlac_util.Metrics.counter m Xmlac_util.Metrics.stale_snapshot_denials);
      (* What the epoch shipper would put on the wire for this engine:
         the state digest a follower re-derives after every applied
         frame, and the committed row-WAL epoch ledger read through the
         same cursor replication uses. *)
      print_endline "replication:";
      Printf.printf "  state digest      %08lx (follower verifies per applied epoch)\n"
        (Engine.state_checksum eng);
      List.iter
        (fun kind ->
          match Engine.wal eng kind with
          | None -> ()
          | Some w ->
              let ledger =
                List.rev
                  (Xmlac_reldb.Wal.fold_epochs w
                     (fun acc ~epoch ~records:_ ->
                       (epoch, Xmlac_reldb.Wal.epoch_checksum w epoch) :: acc)
                     [])
              in
              Printf.printf "  %-10s ledger %d shippable epoch(s)%s\n"
                (Engine.backend_kind_to_string kind)
                (List.length ledger)
                (match ledger with
                | [] -> ""
                | _ ->
                    ": "
                    ^ String.concat ", "
                        (List.map
                           (fun (e, sum) ->
                             match sum with
                             | Some sum -> Printf.sprintf "%d:%08lx" e sum
                             | None -> Printf.sprintf "%d:?" e)
                           ledger)))
        Engine.all_backend_kinds;
      Format.printf "@[<v 2>  metrics:@,%a@]@."
        Xmlac_util.Metrics.pp (Engine.metrics eng)

let explain_cmd =
  let policy_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY") in
  let dtd_name =
    Arg.(required & opt (some string) None & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  let doc_path =
    Arg.(value & opt (some file) None
         & info [ "doc" ] ~doc:"Document for per-scope node counts and native evaluation.")
  in
  let raw =
    Arg.(value & flag
         & info [ "raw" ] ~doc:"Compile the policy as written, skipping redundancy elimination.")
  in
  let requests =
    Arg.(value & opt_all string []
         & info [ "request" ]
             ~doc:"Also run this XPath request twice (cold, cached) through \
                   the engine's fast lane and report its metrics — cache \
                   hits, CAM lookups, per-stage timings. Needs --doc. \
                   Repeatable.")
  in
  let subjects =
    Arg.(value & opt_all string []
         & info [ "subject" ]
             ~doc:"Also run each --request as this role (shared-pass bitmap \
                   annotation first) and report its per-role cache and CAM \
                   counters. Repeatable.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show a policy's annotation plan: rewrite trace, SQL and XQuery lowerings, timings.")
    Term.(const explain $ policy_path $ dtd_name $ doc_path $ raw $ requests
          $ subjects $ lane_arg)

(* --- recover ------------------------------------------------------ *)

let recover_run policy_path dtd_name doc_path update_expr kill_at kill_after
    prob fault_seed =
  let policy = Optimizer.optimize_policy (load_policy policy_path) in
  let dtd = load_dtd dtd_name in
  let doc = load_doc doc_path in
  (match fault_seed with
  | Some s -> Fault.set_seed (Int64.of_int s)
  | None -> Option.iter Fault.set_seed (Fault.env_seed ()));
  Fault.reset ();
  let eng = Engine.create ~dtd ~policy doc in
  let _ = Engine.annotate_all eng in
  (* Arm only now, so the setup annotation runs to completion and the
     crash lands inside the update epoch. *)
  (match kill_at with
  | Some pt -> Fault.arm pt (Fault.After kill_after)
  | None -> Fault.arm_all ~prob);
  let crashed =
    match Engine.update eng update_expr with
    | stats ->
        Printf.printf "update survived (no trigger fired); %d rule(s) hit\n"
          (List.concat_map
             (fun (_, s) -> s.Reannotator.triggered)
             stats
          |> List.sort_uniq compare |> List.length);
        false
    | exception Fault.Crash site ->
        Printf.printf "crashed at fault point %s (epoch %s left open)\n" site
          (match Engine.open_epoch eng with
          | Some n -> string_of_int n
          | None -> "none");
        true
  in
  if not crashed then Fault.reset ();
  let r, recover_t = Timing.time (fun () -> Engine.recover eng) in
  Printf.printf "recovery: direction %s, wal entries dropped %d, signs rolled back %d\n"
    (match r.Engine.direction with
    | `None -> "none"
    | `Back -> "backward"
    | `Forward -> "forward")
    r.Engine.wal_dropped r.Engine.signs_rolled_back;
  Printf.printf "sign epoch now %d; stores %s\n" (Engine.sign_epoch eng)
    (if Engine.consistent eng then "in lockstep" else "DIVERGED");
  (* The baseline recovery would be: redo the whole annotation from
     scratch.  Time it on a twin so the speedup is visible. *)
  let twin = Engine.create ~dtd ~policy doc in
  let full_t = snd (Timing.time (fun () -> Engine.annotate_all twin)) in
  Format.printf "recover took %a; full re-annotation baseline %a (%.1fx)@."
    Timing.pp_seconds recover_t Timing.pp_seconds full_t
    (full_t /. Float.max recover_t 1e-9);
  if not (Engine.consistent eng) then exit 4

let recover_cmd =
  let policy_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY")
  in
  let dtd_name =
    Arg.(required & opt (some string) None
         & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  let doc_path =
    Arg.(required & opt (some file) None
         & info [ "doc" ] ~doc:"Document to build the engine over.")
  in
  let update_expr =
    Arg.(value & opt string "//*[3]"
         & info [ "update" ] ~doc:"Delete update to crash mid-flight.")
  in
  let kill_at =
    Arg.(value & opt (some string) None
         & info [ "kill-at" ]
             ~doc:"Fault point to arm (e.g. row.set_sign, wal.append); \
                   default arms every point probabilistically.")
  in
  let kill_after =
    Arg.(value & opt int 1
         & info [ "kill-after" ] ~doc:"Crash on the Nth hit of --kill-at.")
  in
  let prob =
    Arg.(value & opt float 0.05
         & info [ "prob" ] ~doc:"Per-hit crash probability without --kill-at.")
  in
  let fault_seed =
    Arg.(value & opt (some int) None
         & info [ "fault-seed" ]
             ~doc:"Seed for probabilistic triggers (overrides the \
                   XMLAC_FAULT_SEED environment variable).")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Crash a mutating epoch at a deterministic fault point, then run \
             epoch recovery and report its cost against full re-annotation \
             (exit code 4 if the stores end up diverged).")
    Term.(const recover_run $ policy_path $ dtd_name $ doc_path $ update_expr
          $ kill_at $ kill_after $ prob $ fault_seed)

(* --- health ------------------------------------------------------- *)

let health_run policy_path dtd_name doc_path requests fault_rate seed
    deadline_ticks retries followers =
  let policy = Optimizer.optimize_policy (load_policy policy_path) in
  let dtd = load_dtd dtd_name in
  let doc = load_doc doc_path in
  Fault.reset ();
  Fault.set_seed (Int64.of_int seed);
  let eng = Engine.create ~dtd ~policy doc in
  let _ = Engine.annotate_all eng in
  let config =
    { Serve.default_config with Serve.deadline_ticks; max_retries = retries }
  in
  let serve = Serve.create ~config eng in
  (* A deterministic probe workload: the policy's own rule resources,
     round-robin over the three backends. *)
  let queries =
    match
      List.map
        (fun (r : Rule.t) -> Xmlac_xpath.Pp.expr_to_string r.Rule.resource)
        (Policy.rules policy)
    with
    | [] -> [| "//*" |]
    | qs -> Array.of_list qs
  in
  let kinds = Array.of_list Engine.all_backend_kinds in
  let granted = ref 0
  and denied = ref 0
  and degraded = ref 0
  and errors = ref 0 in
  for step = 0 to requests - 1 do
    (* auto-recovery disarms the registry: re-arm every step *)
    if fault_rate > 0.0 then Fault.arm_all_transient ~prob:fault_rate;
    let kind = kinds.(step mod Array.length kinds) in
    let q = queries.(step mod Array.length queries) in
    match Serve.request serve kind q with
    | Ok r ->
        if r.Serve.served = Serve.Degraded then incr degraded;
        if Requester.is_granted r.Serve.decision then incr granted
        else incr denied
    | Error _ -> incr errors
  done;
  (* quiet phase: the faults stop; every breaker must re-close within
     cooldown + probes admitted calls *)
  Fault.disarm_all ();
  let bcfg = config.Serve.breaker in
  let budget = bcfg.Breaker.cooldown + bcfg.Breaker.probes in
  Array.iter
    (fun kind ->
      let br = Serve.breaker serve kind in
      let i = ref 0 in
      while Breaker.state br <> Breaker.Closed && !i < budget do
        ignore (Serve.request serve kind queries.(!i mod Array.length queries));
        incr i
      done)
    kinds;
  Printf.printf
    "probe: %d request(s) round-robin over %d backends, fault rate %.2f, %d \
     quer%s\n"
    requests (Array.length kinds) fault_rate (Array.length queries)
    (if Array.length queries = 1 then "y" else "ies");
  let m = Engine.metrics eng in
  Printf.printf
    "  granted %d, denied %d, degraded %d, error(s) %d, retries %d, \
     auto-recoveries %d\n"
    !granted !denied !degraded !errors
    (Xmlac_util.Metrics.counter m "serve.retries")
    (Xmlac_util.Metrics.counter m "serve.auto_recoveries");
  let h = Serve.health serve in
  Format.printf "%a@?" Serve.pp_health h;
  Fault.reset ();
  let repl_ok =
    if followers <= 0 then true
    else begin
      (* Replication probe: a fresh cluster over the same inputs, the
         annotation epochs shipped through the chaos transport at the
         probe's fault rate, then one status line per node plus the
         stream counters. *)
      let rconfig =
        {
          Repl.default_config with
          Repl.seed = Int64.of_int seed;
          drop_p = fault_rate;
          dup_p = fault_rate;
          reorder_p = fault_rate;
          torn_p = fault_rate /. 2.0;
          max_reship = 10_000;
          serve = config;
        }
      in
      let cluster = Repl.create ~config:rconfig ~followers ~dtd ~policy doc in
      let ok = ref true in
      (match Repl.annotate_all cluster with
      | Ok () -> ()
      | Error e ->
          ok := false;
          Printf.printf "replication: annotate failed: %s\n" e.Serve.message);
      let converged = Repl.sync cluster in
      Printf.printf "replication: %d committed epoch(s), %d follower(s)%s\n"
        (Repl.committed cluster) followers
        (if converged then "" else "  NOT CONVERGED");
      Format.printf "%a" Repl.pp_status cluster;
      Fault.reset ();
      !ok && converged
      && not
           (List.exists (Repl.diverged cluster) (Repl.nodes cluster))
    end
  in
  if not (Serve.healthy h && repl_ok) then exit 3

let health_cmd =
  let policy_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY")
  in
  let dtd_name =
    Arg.(required & opt (some string) None
         & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  let doc_path =
    Arg.(required & opt (some file) None
         & info [ "doc" ] ~doc:"Document to build the engine over.")
  in
  let requests =
    Arg.(value & opt int 30
         & info [ "requests" ] ~doc:"Probe requests to issue.")
  in
  let fault_rate =
    Arg.(value & opt float 0.0
         & info [ "fault-rate" ]
             ~doc:"Per-point transient fault probability during the probe.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~doc:"Seed for the transient fault schedule.")
  in
  let deadline_ticks =
    Arg.(value & opt (some int) None
         & info [ "deadline-ticks" ]
             ~doc:"Cooperative deadline budget per request (checkpoint \
                   crossings).")
  in
  let retries =
    Arg.(value & opt int 2
         & info [ "retries" ] ~doc:"Transient retry budget per request.")
  in
  let followers =
    Arg.(value & opt int 0
         & info [ "followers" ]
             ~doc:"Also probe replication: ship the annotation epochs to \
                   this many followers through the chaos transport at \
                   --fault-rate and report per-node role, applied epoch, \
                   lag and the stream counters (0 skips the probe).")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:"Drive a probe workload through the resilient serving layer \
             under an optional transient-fault schedule, then report breaker \
             states, queue depth, snapshot coherence and — with --followers \
             — replication lag (exit code 3 if the layer ends unhealthy).")
    Term.(const health_run $ policy_path $ dtd_name $ doc_path $ requests
          $ fault_rate $ seed $ deadline_ticks $ retries $ followers)

(* --- serve -------------------------------------------------------- *)

let serve_run policy_path dtd_name doc_path readers requests churn update_expr
    domains =
  let policy = Optimizer.optimize_policy (load_policy policy_path) in
  let dtd = load_dtd dtd_name in
  let doc = load_doc doc_path in
  Fault.reset ();
  let eng = Engine.create ~dtd ~policy doc in
  let _ = Engine.annotate_all eng in
  if Policy.role_count policy > 0 then ignore (Engine.annotate_subjects_all eng);
  let serve = Serve.create eng in
  let pool = Pool.create ?domains () in
  let queries =
    match
      List.map
        (fun (r : Rule.t) -> Xmlac_xpath.Pp.expr_to_string r.Rule.resource)
        (Policy.rules policy)
    with
    | [] -> [| "//*" |]
    | qs -> Array.of_list qs
  in
  (* Readers cycle anonymous, role 1, role 2, ... over the declared roles. *)
  let roles = Array.of_list (Policy.roles policy) in
  let subject_of i =
    if Array.length roles = 0 || i mod (Array.length roles + 1) = 0 then None
    else Some roles.((i mod (Array.length roles + 1)) - 1)
  in
  (* Every session pins the same committed epoch before the writer
     starts, so each reader's decisions are schedule-independent: the
     concurrent and --domains 1 runs print identical reader lines. *)
  let sessions =
    List.init readers (fun i -> Session.open_ ?subject:(subject_of i) serve)
  in
  let reader_job sess () =
    let granted = ref 0 and denied = ref 0 and errs = ref 0 in
    for k = 0 to requests - 1 do
      match Session.request sess queries.(k mod Array.length queries) with
      | Ok r ->
          if Requester.is_granted r.Serve.decision then incr granted
          else incr denied
      | Error _ -> incr errs
    done;
    `Reader (!granted, !denied, !errs)
  in
  let writer_job () =
    let applied = ref 0 and recovered = ref 0 and other = ref 0 in
    for _ = 1 to churn do
      match Serve.update serve update_expr with
      | Ok (Serve.Applied _) -> incr applied
      | Ok Serve.Recovered -> incr recovered
      | Ok (Serve.Queued _) | Error _ -> incr other
    done;
    `Writer (!applied, !recovered, !other)
  in
  let jobs = List.map reader_job sessions @ [ writer_job ] in
  Printf.printf
    "serve: %d reader(s) x %d request(s), writer churn %d, %d domain(s) (%s)\n"
    readers requests churn (Pool.size pool)
    (if Pool.sequential pool then "deterministic" else "concurrent");
  let outcomes = Pool.parallel pool jobs in
  List.iteri
    (fun i outcome ->
      match outcome with
      | `Reader (granted, denied, errs) ->
          let sess = List.nth sessions i in
          Printf.printf
            "  reader %-2d [%-12s] epoch %d: granted %d, denied %d, error(s) \
             %d\n"
            i
            (Option.value ~default:"anonymous" (Session.subject sess))
            (Session.epoch sess) granted denied errs
      | `Writer (applied, recovered, other) ->
          Printf.printf
            "  writer     applied %d, recovered %d, queued/failed %d\n" applied
            recovered other)
    outcomes;
  List.iter Session.close sessions;
  Pool.shutdown pool;
  Format.printf "%a@." Snapshot.pp_registry (Engine.snapshots eng);
  let h = Serve.health serve in
  Format.printf "%a@?" Serve.pp_health h;
  if not (Serve.healthy h) then exit 3

let serve_cmd =
  let policy_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY")
  in
  let dtd_name =
    Arg.(required & opt (some string) None
         & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  let doc_path =
    Arg.(required & opt (some file) None
         & info [ "doc" ] ~doc:"Document to build the engine over.")
  in
  let readers =
    Arg.(value & opt int 4
         & info [ "readers" ] ~doc:"Pinned reader sessions to open.")
  in
  let requests =
    Arg.(value & opt int 8
         & info [ "requests" ] ~doc:"Requests per reader session.")
  in
  let churn =
    Arg.(value & opt int 3
         & info [ "churn" ] ~doc:"Writer mutations applied while readers run.")
  in
  let update_expr =
    Arg.(value & opt string "//person/creditcard"
         & info [ "update" ] ~doc:"Delete update the writer loops on.")
  in
  let domains =
    Arg.(value & opt (some int) None
         & info [ "domains" ]
             ~doc:"Worker domains ($(b,1) = deterministic sequential \
                   scheduling; default: the runtime's recommendation).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run session-scoped reader workloads from pinned MVCC snapshots \
             while a writer churns epochs: every reader keeps the epoch it \
             pinned at open, whatever the writer commits meanwhile (exit \
             code 3 if the layer ends unhealthy).")
    Term.(const serve_run $ policy_path $ dtd_name $ doc_path $ readers
          $ requests $ churn $ update_expr $ domains)

(* --- replicate ---------------------------------------------------- *)

let replicate_run policy_path dtd_name doc_path followers churn update_expr
    fault_rate seed lag_threshold kill =
  let policy = Optimizer.optimize_policy (load_policy policy_path) in
  let dtd = load_dtd dtd_name in
  let doc = load_doc doc_path in
  Fault.reset ();
  let config =
    {
      Repl.default_config with
      Repl.seed = Int64.of_int seed;
      lag_threshold;
      drop_p = fault_rate;
      dup_p = fault_rate;
      reorder_p = fault_rate;
      torn_p = fault_rate /. 2.0;
      max_reship = 10_000;
    }
  in
  let cluster = Repl.create ~config ~followers ~dtd ~policy doc in
  let failed = ref false in
  let check what = function
    | Ok () -> ()
    | Error (e : Serve.error) ->
        failed := true;
        Printf.printf "%s failed: %s\n" what e.Serve.message
  in
  check "annotate" (Repl.annotate_all cluster);
  if Policy.role_count policy > 0 then
    check "annotate-subjects" (Repl.annotate_subjects_all cluster);
  for _ = 1 to churn do
    check "update" (Repl.update cluster update_expr);
    Repl.pump cluster
  done;
  let converged = Repl.sync cluster in
  if not converged then failed := true;
  Printf.printf "replicated %d committed epoch(s) to %d follower(s)%s\n"
    (Repl.committed cluster) followers
    (if converged then "" else "  NOT CONVERGED");
  Format.printf "%a" Repl.pp_status cluster;
  (* One routed read: lag-aware routing prefers the least-lagged
     serving follower, keeping the leader free for writes. *)
  let probe =
    match Policy.rules policy with
    | r :: _ -> Xmlac_xpath.Pp.expr_to_string r.Rule.resource
    | [] -> "//*"
  in
  let node_id, reply = Repl.route cluster probe in
  (match reply with
  | Ok r ->
      Format.printf "route %-24s -> node %d (%s): %a@." probe node_id
        (Repl.role_to_string (Repl.node_role cluster node_id))
        Requester.pp r.Serve.decision
  | Error e ->
      failed := true;
      Printf.printf "route %s -> error: %s\n" probe e.Serve.message);
  if kill then begin
    Repl.kill_leader cluster;
    print_endline "leader killed";
    let best =
      List.fold_left
        (fun acc id ->
          if Repl.node_role cluster id = Repl.Follower then
            match acc with
            | Some b when Repl.lag cluster b <= Repl.lag cluster id -> acc
            | _ -> Some id
          else acc)
        None (Repl.nodes cluster)
    in
    match best with
    | None ->
        failed := true;
        print_endline "no promotable follower"
    | Some id -> (
        match Repl.promote cluster id with
        | Error msg ->
            failed := true;
            Printf.printf "promotion refused: %s\n" msg
        | Ok p ->
            Printf.printf "promoted node %d at epoch %d (state digest %08lx)\n"
              p.Repl.node p.Repl.epoch p.Repl.state_sum;
            check "post-promotion update" (Repl.update cluster update_expr);
            if not (Repl.sync cluster) then begin
              failed := true;
              print_endline "post-promotion sync did not converge"
            end;
            Format.printf "%a" Repl.pp_status cluster)
  end;
  Fault.reset ();
  if !failed then exit 3

let replicate_cmd =
  let policy_path =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"POLICY")
  in
  let dtd_name =
    Arg.(required & opt (some string) None
         & info [ "dtd" ] ~doc:"DTD: hospital, xmark or a file.")
  in
  let doc_path =
    Arg.(required & opt (some file) None
         & info [ "doc" ] ~doc:"Document every node is built over.")
  in
  let followers =
    Arg.(value & opt int 2
         & info [ "followers" ] ~doc:"Read-only replicas behind the leader.")
  in
  let churn =
    Arg.(value & opt int 3
         & info [ "churn" ] ~doc:"Committed delete updates to ship.")
  in
  let update_expr =
    Arg.(value & opt string "//person/creditcard"
         & info [ "update" ] ~doc:"Delete update the leader loops on.")
  in
  let fault_rate =
    Arg.(value & opt float 0.0
         & info [ "fault-rate" ]
             ~doc:"Per-frame drop/duplicate/reorder probability on the \
                   transport (torn frames at half this rate).")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~doc:"Seed for the transport chaos schedule.")
  in
  let lag_threshold =
    Arg.(value & opt int 1
         & info [ "lag-threshold" ]
             ~doc:"Serve follower reads while lag is at most this many \
                   epochs; beyond it a follower fails closed.")
  in
  let kill =
    Arg.(value & flag
         & info [ "kill" ]
             ~doc:"After the churn phase, kill the leader, promote the \
                   least-lagged follower and commit one write through the \
                   new leader.")
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:"Ship committed epochs from a leader to follower replicas over \
             a deterministic chaos transport, report per-node lag and the \
             stream counters, and optionally fail over (exit code 3 on \
             divergence or non-convergence).")
    Term.(const replicate_run $ policy_path $ dtd_name $ doc_path $ followers
          $ churn $ update_expr $ fault_rate $ seed $ lag_threshold $ kill)

(* --- view --------------------------------------------------------- *)

let view doc_path policy_path mode output =
  let doc = load_doc doc_path in
  let policy = load_policy policy_path in
  let mode =
    match mode with
    | "prune" -> Security_view.Prune
    | "promote" -> Security_view.Promote
    | m -> die "unknown view mode %S (prune | promote)" m
  in
  let v = Security_view.materialize ~mode policy doc in
  Printf.eprintf "view: %d of %d nodes visible\n%!"
    (Security_view.visible_count ~mode policy doc)
    (Tree.size doc);
  write_out output (Xmlac_xml.Serializer.to_string ~indent:true ~signs:false v)

let view_cmd =
  let doc_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let policy_path = Arg.(required & pos 1 (some file) None & info [] ~docv:"POLICY") in
  let mode =
    Arg.(value & opt string "promote" & info [ "mode" ] ~doc:"prune or promote.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "view" ~doc:"Materialize the security view of a document.")
    Term.(const view $ doc_path $ policy_path $ mode $ output)

(* --- cam ---------------------------------------------------------- *)

let cam doc_path default =
  let doc = load_doc doc_path in
  let default =
    match Tree.sign_of_string default with
    | Some s -> s
    | None -> die "default sign must be + or -"
  in
  Format.printf "%a@." Cam.pp (Cam.build doc ~default)

let cam_cmd =
  let doc_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC.xml") in
  let default =
    Arg.(value & opt string "-" & info [ "default" ] ~doc:"Default sign (+ or -).")
  in
  Cmd.v
    (Cmd.info "cam"
       ~doc:"Compressed-accessibility-map statistics of an annotated document.")
    Term.(const cam $ doc_path $ default)

let () =
  let info =
    Cmd.info "xmlacctl"
      ~doc:"Access control for XML documents over native and relational stores."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; dtd_cmd; shred_cmd; optimize_cmd; annotate_cmd;
            query_cmd; roles_cmd; update_cmd; depend_cmd; explain_cmd;
            view_cmd; cam_cmd; recover_cmd; health_cmd; serve_cmd;
            replicate_cmd;
          ]))
