(** The resilient serving layer: every request and mutation reaches
    the {!Xmlac_core.Engine} through this module, which adds the four
    ingredients the bare engine deliberately omits —

    {ul
    {- {e deadlines}: each live call runs under a cooperative
       {!Xmlac_util.Deadline} budget (ticks for deterministic tests,
       seconds for wall-clock), checked at the evaluation checkpoints
       threaded through [Requester] and [Cam];}
    {- {e typed errors}: raw exceptions never escape — every failure
       is classified ({!error_class}) and returned as data, so callers
       can tell a retryable blip from corrupt storage;}
    {- {e retries}: transient faults ({!Xmlac_util.Fault.Transient})
       are retried with jittered exponential backoff, bounded by
       [max_retries];}
    {- {e circuit breaking + fail-closed degradation}: each backend
       owns a {!Breaker}; while one is open its requests are answered
       {e deny-by-default} from the layer's pinned
       {!Xmlac_core.Snapshot} of the committed materialization, and
       mutations queue (bounded) or are rejected.  A degraded answer
       can only {e deny} more than the healthy path would — never
       grant more (the fail-closed invariant the soak tests replay
       under seeded fault schedules).}}

    Since the MVCC refactor the layer is also the concurrent front
    end's toolbox: {!snapshot_request} answers from {e any} pinned
    snapshot — the {!Session} read path — under the same deadline and
    retry machinery, without ever touching the live stores or the
    breakers, so worker domains running pinned reads can never block
    on (or be corrupted by) the writer's next epoch.

    The layer also self-heals: if a fault killed the process mid-epoch
    (open epoch, poisoned fault registry), the next call through the
    layer runs {!Xmlac_core.Engine.recover} before doing anything
    else, and a mutation whose recovery rolled {e forward} is reported
    as {!mutation_outcome.Recovered} — committed, just not on the
    first try. *)

module Engine := Xmlac_core.Engine

(** {1 Error taxonomy} *)

type error_class =
  | Transient  (** Retryable: injected fault, queue full. *)
  | Timeout  (** Deadline budget exhausted mid-evaluation. *)
  | Corrupt  (** Storage integrity failure (checksum, torn record). *)
  | Fatal  (** Everything else: parse errors, crashes, bugs. *)

val error_class_to_string : error_class -> string

type error = {
  class_ : error_class;
  site : string;  (** Fault point, deadline label, or ["parse"]. *)
  attempts : int;  (** Live attempts made (0 = never reached engine). *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val error_of_exn : ?attempts:int -> exn -> error
(** Classify any exception into the taxonomy above — the same mapping
    the request and mutation paths use internally
    ({!Xmlac_util.Fault.Transient} → [Transient],
    {!Xmlac_util.Deadline.Expired} → [Timeout], checksum/torn/corrupt
    failures → [Corrupt], everything else → [Fatal]).  Exposed so
    other resilience layers (replication's ship/apply loops) retry and
    report with the identical taxonomy. *)

(** {1 Configuration} *)

type config = {
  deadline_ticks : int option;
      (** Checkpoint budget per live call; [None] = unbounded. *)
  deadline_seconds : float option;
      (** Wall-clock budget per live call; [None] = unbounded. *)
  max_retries : int;  (** Retries after the first attempt. *)
  backoff_base_s : float;  (** First retry's maximum backoff. *)
  backoff_max_s : float;  (** Backoff growth cap. *)
  sleep : float -> unit;
      (** Called with each jittered backoff delay.  Defaults to a
          no-op so tests and benches never actually wait. *)
  breaker : Breaker.config;
  queue_capacity : int;
      (** Mutations held while degraded; beyond this they are
          rejected with a [Transient] error. *)
  seed : int64;  (** Seeds the backoff jitter. *)
}

val default_config : config
(** No deadline, [max_retries = 2], base/cap 5ms/100ms, no-op sleep,
    {!Breaker.default_config}, [queue_capacity = 16], seed 1. *)

type t

val create : ?config:config -> Engine.t -> t
(** Wraps an engine: one breaker per backend (named after the
    backend, metrics mirrored into the engine's registry), and pins
    the engine's current MVCC snapshot as the degradation view. *)

val engine : t -> Engine.t
val config : t -> config
val breaker : t -> Engine.backend_kind -> Breaker.t

val snapshot : t -> Xmlac_core.Snapshot.t
(** The layer's pinned snapshot — the last committed epoch this layer
    saw.  Re-pinned on every committed mutation, successful recovery
    and {!refresh_snapshot}. *)

(** {1 Requests} *)

type served =
  | Live  (** Answered by the engine. *)
  | Degraded  (** Answered deny-by-default from the pinned snapshot. *)
  | Pinned
      (** Answered from a caller-pinned snapshot ({!snapshot_request})
          — the session read path; full fidelity at that snapshot's
          epoch. *)

type reply = {
  decision : Xmlac_core.Requester.decision;
  served : served;
  attempts : int;  (** Live attempts behind this reply. *)
}

val request :
  ?subject:string ->
  ?lane:Xmlac_core.Rewrite.lane ->
  t ->
  Engine.backend_kind ->
  string ->
  (reply, error) result
(** The resilient request path.  Parse errors — and unknown
    [~subject] roles — return a [Fatal] error without consulting the
    breaker (they say nothing about backend health).  A
    closed/half-open breaker admits the call: it runs under the
    configured deadline with transient retries, and its outcome feeds
    the breaker.  An open breaker rejects it and the reply is served
    [Degraded] from the snapshot: the decision is the all-or-nothing
    rule over the snapshot's CAM when the snapshot still matches the
    committed epoch, and a blanket denial when it does not —
    degradation never grants what the live path would deny.

    [~lane] (default [Auto]) selects the enforcement lane, live
    ({!Engine.request}) and degraded ({!Xmlac_core.Snapshot.request})
    alike: the auto lane answers a store with no committed annotation
    epoch through the query-rewrite lane, with zero sign or bitmap
    reads.  A failure at the [rewrite.compile] fault point happens
    before the store is touched, so — like a parse error — it never
    feeds the breaker.

    [~subject] answers for one role: live calls go through
    {!Engine.request}'s subject path, degraded calls through a
    lazily built per-role CAM over the snapshot's bitmaps — the
    fail-closed invariant holds per role (blanket denial on a stale
    snapshot included).  Stale blanket denials are counted under
    {!Xmlac_util.Metrics.stale_snapshot_denials}. *)

val snapshot_request :
  ?subject:string ->
  ?lane:Xmlac_core.Rewrite.lane ->
  t ->
  Xmlac_core.Snapshot.t ->
  string ->
  (reply, error) result
(** The session read path: answer [query] from [snap] — typically one
    the caller pinned with {!Engine.pin_snapshot} — under the
    configured deadline, with transient retries.  Never consults the
    engine, the live stores or the breakers: full fidelity at the
    snapshot's epoch, zero blocking on the writer, and no staleness
    check — an old pinned snapshot {e is} the version the session
    asked to read.  Parse errors and unknown roles surface as [Fatal]
    errors like {!request}'s.  [~lane] selects the enforcement lane as
    in {!request}; the auto lane serves a snapshot captured before any
    annotation epoch through the query-rewrite lane on the frozen
    tree. *)

(** {1 Mutations} *)

type mutation =
  | Update of string  (** Delete update, XPath string. *)
  | Insert of { at : string; fragment : Xmlac_xml.Tree.t }

type mutation_outcome =
  | Applied of (Engine.backend_kind * Xmlac_core.Reannotator.stats) list
      (** Committed on the live path. *)
  | Recovered
      (** A fault interrupted the epoch; roll-forward recovery
          committed the operation anyway. *)
  | Queued of int
      (** Held for {!drain} while degraded; payload is the queue
          length after enqueue. *)

val mutate : t -> mutation -> (mutation_outcome, error) result
(** Applies the mutation through every store.  While any breaker is
    open the mutation is queued (or rejected once [queue_capacity] is
    reached) — the degradation snapshot stays coherent with the
    committed epoch precisely because nothing commits while degraded.
    On the live path, transient faults that left no epoch open are
    retried; faults that interrupted an epoch trigger automatic
    recovery ([Recovered] when it rolled forward).  A successful
    mutation refreshes the snapshot. *)

val update : t -> string -> (mutation_outcome, error) result
val insert :
  t -> at:string -> fragment:Xmlac_xml.Tree.t ->
  (mutation_outcome, error) result

val queued : t -> int

val drain : t -> (mutation * (mutation_outcome, error) result) list
(** Replays queued mutations in order once no breaker is open.
    Stops early (leaving the rest queued) if a breaker re-opens
    mid-drain; a mutation that fails for its own reasons is reported
    and {e not} re-queued.  Returns the attempted mutations with
    their outcomes; empty while still degraded. *)

(** {1 Health} *)

type health = {
  breakers : (Engine.backend_kind * Breaker.state) list;
  trips : int;  (** Lifetime trips across all breakers. *)
  open_epoch : int option;
  queued_mutations : int;
  snapshot_epoch : int;  (** Committed epoch the pinned snapshot captures. *)
  committed_epoch : int;
  degraded : bool;  (** Some breaker is not closed. *)
  stale_snapshot_denials : int;
      (** Lifetime degraded requests blanket-denied because the pinned
          snapshot trailed the committed epoch
          ({!Xmlac_util.Metrics.stale_snapshot_denials}). *)
  pinned_snapshots : int;
      (** Snapshots alive in the engine's registry (current +
          retired-but-pinned). *)
}

val health : t -> health
val healthy : health -> bool
(** All breakers closed, no open epoch, queue empty. *)

val pp_health : Format.formatter -> health -> unit
(** Deterministic, time-free — safe for golden CLI transcripts. *)

val refresh_snapshot : t -> unit
(** Re-pin the engine's current snapshot as the degradation view
    (unpinning the previous one).  Call after mutating the engine
    behind the layer's back. *)
