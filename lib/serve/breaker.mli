(** Per-backend circuit breaker: closed → open → half-open.

    The serve layer gives each backend one breaker and feeds it the
    outcome of every {e live} call.  While enough recent calls fail
    (error rate over a sliding outcome window), the breaker {e trips}
    open and the backend is taken out of the live path — requests are
    answered from the degradation snapshot instead, so a flapping
    store cannot drag every caller through its timeouts.  After a
    cooldown the breaker admits probe calls (half-open); a run of
    consecutive successes closes it again, any probe failure re-opens
    it.

    Everything is counted in {e calls}, not wall time, so the state
    machine is deterministic under the seeded fault schedules the soak
    tests replay: liveness is the statement that after faults stop,
    the breaker is closed within [cooldown + probes] calls.

    State transitions and rejection counts are mirrored into a
    {!Xmlac_util.Metrics} registry under [breaker.<name>.*]
    ([trips], [rejected], [probes], [closes]). *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type config = {
  window : int;  (** Sliding outcome window size (calls). *)
  min_calls : int;
      (** Outcomes required in the window before the error rate is
          evaluated — a single early failure must not trip. *)
  threshold : float;
      (** Error rate (failures / outcomes in window) at or above which
          the breaker trips. *)
  cooldown : int;
      (** Calls rejected while open before probing begins. *)
  probes : int;
      (** Consecutive half-open successes required to close. *)
}

val default_config : config
(** [{ window = 16; min_calls = 4; threshold = 0.5; cooldown = 8;
      probes = 2 }]. *)

type t

val create : ?metrics:Xmlac_util.Metrics.t -> name:string -> config -> t
(** [name] keys the metrics counters ([breaker.<name>.trips], ...). *)

val config : t -> config
val state : t -> state

val admit : t -> [ `Admit | `Reject ]
(** Gate a call.  Closed and half-open admit; open rejects and counts
    the rejection toward the cooldown — once [cooldown] rejections
    have accumulated the breaker turns half-open and the {e next}
    call is admitted as a probe. *)

val record : t -> ok:bool -> unit
(** Feed the outcome of an admitted call.  Closed: pushes into the
    window and trips when the error rate reaches the threshold.
    Half-open: a success counts toward closing, a failure re-opens
    (fresh cooldown).  Recording against an open breaker is ignored
    (the call was not admitted). *)

val trips : t -> int
(** Lifetime closed/half-open → open transitions. *)

val pp : Format.formatter -> t -> unit
(** e.g. ["closed (trips 1)"] — stable, time-free, safe for golden
    CLI transcripts. *)
