module Engine = Xmlac_core.Engine
module Policy = Xmlac_core.Policy
module Subject = Xmlac_core.Subject
module Snapshot = Xmlac_core.Snapshot
module Metrics = Xmlac_util.Metrics

type t = {
  serve : Serve.t;
  subject : string option;
  mutable snap : Snapshot.t;
  mutable is_closed : bool;
}

let open_ ?subject serve =
  let eng = Serve.engine serve in
  (match subject with
  | Some role
    when not (Subject.mem (Policy.subjects (Engine.policy eng)) role) ->
      invalid_arg (Printf.sprintf "Session.open_: unknown role %S" role)
  | _ -> ());
  Metrics.incr (Engine.metrics eng) "serve.sessions";
  { serve; subject; snap = Engine.pin_snapshot eng; is_closed = false }

let subject t = t.subject
let epoch t = Snapshot.epoch t.snap
let snapshot t = t.snap
let closed t = t.is_closed

let check_open t what =
  if t.is_closed then invalid_arg ("Session." ^ what ^ ": session is closed")

let request t query =
  check_open t "request";
  Serve.snapshot_request ?subject:t.subject t.serve t.snap query

let refresh t =
  check_open t "refresh";
  let eng = Serve.engine t.serve in
  let old = t.snap in
  t.snap <- Engine.pin_snapshot eng;
  Engine.unpin_snapshot eng old

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    Engine.unpin_snapshot (Serve.engine t.serve) t.snap
  end
