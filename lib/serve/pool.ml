type task = { run : unit -> unit }

type t = {
  size : int;
  lock : Mutex.t;
  todo : Condition.t;  (* signalled when [queue] gains a task or [stop] *)
  queue : task Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable is_shut : bool;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let worker_loop t () =
  let rec loop () =
    let job =
      with_lock t (fun () ->
          while Queue.is_empty t.queue && not t.stop do
            Condition.wait t.todo t.lock
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match job with
    | None -> ()
    | Some task ->
        task.run ();
        loop ()
  in
  loop ()

let create ?domains () =
  let size =
    match domains with
    | None -> min (Domain.recommended_domain_count ()) 64
    | Some n -> max 1 (min n 64)
  in
  let t =
    {
      size;
      lock = Mutex.create ();
      todo = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
      is_shut = false;
    }
  in
  if size > 1 then
    t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size
let sequential t = t.size = 1

type 'a slot = Pending | Done of 'a | Raised of exn

let check_live t = if t.is_shut then invalid_arg "Pool.parallel: pool is shut down"

let parallel t thunks =
  check_live t;
  let n = List.length thunks in
  if n = 0 then []
  else if sequential t then
    (* Deterministic mode: in submission order, on the calling domain. *)
    List.map (fun f -> f ()) thunks
  else begin
    let slots = Array.make n Pending in
    let remaining = ref n in
    let done_ = Condition.create () in
    let make_task i f =
      {
        run =
          (fun () ->
            let r = try Done (f ()) with e -> Raised e in
            Mutex.lock t.lock;
            slots.(i) <- r;
            decr remaining;
            if !remaining = 0 then Condition.broadcast done_;
            Mutex.unlock t.lock);
      }
    in
    Mutex.lock t.lock;
    List.iteri
      (fun i f ->
        Queue.push (make_task i f) t.queue;
        Condition.signal t.todo)
      thunks;
    Mutex.unlock t.lock;
    (* The caller is a worker too: help drain the batch, then wait. *)
    let rec help () =
      let job =
        with_lock t (fun () ->
            if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
      in
      match job with
      | Some task ->
          task.run ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock t.lock;
    while !remaining > 0 do
      Condition.wait done_ t.lock
    done;
    Mutex.unlock t.lock;
    let first_exn = ref None in
    let out =
      Array.to_list
        (Array.map
           (function
             | Done v -> Some v
             | Raised e ->
                 if !first_exn = None then first_exn := Some e;
                 None
             | Pending -> assert false)
           slots)
    in
    match !first_exn with
    | Some e -> raise e
    | None -> List.map Option.get out
  end

let shutdown t =
  if not t.is_shut then begin
    t.is_shut <- true;
    with_lock t (fun () ->
        t.stop <- true;
        Condition.broadcast t.todo);
    List.iter Domain.join t.workers;
    t.workers <- []
  end
