module Fault = Xmlac_util.Fault
module Deadline = Xmlac_util.Deadline
module Metrics = Xmlac_util.Metrics
module Prng = Xmlac_util.Prng
module Tree = Xmlac_xml.Tree
module Engine = Xmlac_core.Engine
module Requester = Xmlac_core.Requester
module Cam = Xmlac_core.Cam
module Policy = Xmlac_core.Policy
module Subject = Xmlac_core.Subject

type error_class = Transient | Timeout | Corrupt | Fatal

let error_class_to_string = function
  | Transient -> "transient"
  | Timeout -> "timeout"
  | Corrupt -> "corrupt"
  | Fatal -> "fatal"

type error = {
  class_ : error_class;
  site : string;
  attempts : int;
  message : string;
}

let pp_error ppf e =
  Format.fprintf ppf "%s at %s (attempts %d): %s"
    (error_class_to_string e.class_) e.site e.attempts e.message

type config = {
  deadline_ticks : int option;
  deadline_seconds : float option;
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  sleep : float -> unit;
  breaker : Breaker.config;
  queue_capacity : int;
  seed : int64;
}

let default_config =
  {
    deadline_ticks = None;
    deadline_seconds = None;
    max_retries = 2;
    backoff_base_s = 0.005;
    backoff_max_s = 0.1;
    sleep = (fun _ -> ());
    breaker = Breaker.default_config;
    queue_capacity = 16;
    seed = 1L;
  }

module Snapshot = Xmlac_core.Snapshot

type mutation =
  | Update of string
  | Insert of { at : string; fragment : Tree.t }

type mutation_outcome =
  | Applied of (Engine.backend_kind * Xmlac_core.Reannotator.stats) list
  | Recovered
  | Queued of int

type t = {
  eng : Engine.t;
  config : config;
  breakers : (Engine.backend_kind * Breaker.t) list;
  rng : Prng.t;
  mutable queue : mutation list;  (* oldest first; bounded, tiny *)
  (* The layer's pinned MVCC snapshot — the engine's versioned view of
     the last epoch this layer saw commit.  While a breaker is open,
     requests are answered deny-by-default from it.  It is only
     trusted while its epoch still equals the engine's committed epoch
     — mutations re-pin on commit and nothing commits while degraded,
     so a mismatch can only mean the engine was mutated behind the
     layer's back; then we deny everything (and count it under
     [Metrics.stale_snapshot_denials]). *)
  mutable snapshot : Snapshot.t;
}

let create ?(config = default_config) eng =
  if config.max_retries < 0 then invalid_arg "Serve.create: max_retries < 0";
  if config.queue_capacity < 0 then
    invalid_arg "Serve.create: queue_capacity < 0";
  let metrics = Engine.metrics eng in
  let breakers =
    List.map
      (fun kind ->
        let name = Engine.backend_kind_to_string kind in
        (kind, Breaker.create ~metrics ~name config.breaker))
      Engine.all_backend_kinds
  in
  {
    eng;
    config;
    breakers;
    rng = Prng.create ~seed:config.seed;
    queue = [];
    snapshot = Engine.pin_snapshot eng;
  }

let engine t = t.eng
let config t = t.config
let breaker t kind = List.assoc kind t.breakers
let metrics t = Engine.metrics t.eng
let queued t = List.length t.queue
let snapshot t = t.snapshot

let refresh_snapshot t =
  let old = t.snapshot in
  t.snapshot <- Engine.pin_snapshot t.eng;
  (* The unpin may cross the [snapshot.reclaim] fault point.  The
     registry mutates before the point raises, so the reclaim itself
     is already consistent — and the layer's view is already re-pinned
     above.  Contain the fault here: a transient is pure bookkeeping
     noise, and a crash is picked up by [heal] on the next call. *)
  match Engine.unpin_snapshot t.eng old with
  | () -> ()
  | exception (Fault.Transient _ | Fault.Crash _) ->
      Metrics.incr (metrics t) "serve.reclaim_faults"

(* ---------- error classification ---------- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let classify = function
  | Fault.Transient site ->
      (Transient, site, "transient fault at " ^ site)
  | Deadline.Expired label -> (Timeout, label, "deadline budget exhausted")
  | Fault.Crash site -> (Fatal, site, "crash at " ^ site)
  | Failure msg
    when contains msg "checksum" || contains msg "torn"
         || contains msg "corrupt" ->
      (Corrupt, "storage", msg)
  | Invalid_argument msg -> (Fatal, "invalid-argument", msg)
  | exn -> (Fatal, "exception", Printexc.to_string exn)

let typed_error ?(attempts = 0) exn =
  let class_, site, message = classify exn in
  { class_; site; attempts; message }

let error_of_exn = typed_error

(* ---------- self-healing ---------- *)

(* A fault between the two [Wal.begin_epoch] calls leaves one WAL
   with an open epoch while the engine never registered an open
   operation — a wedge that would make every later [begin_epoch]
   refuse.  Recovery truncates it away. *)
let wal_dangling t =
  Engine.open_epoch t.eng = None
  && List.exists
       (fun kind ->
         match Engine.wal t.eng kind with
         | Some w -> Xmlac_reldb.Wal.open_epoch w <> None
         | None -> false)
       Engine.all_backend_kinds

(* If a previous call crashed mid-epoch (or poisoned the fault
   registry's kill state, or left a WAL epoch dangling), nothing works
   until recovery runs — play the restart before touching the
   engine. *)
let heal t =
  if Engine.open_epoch t.eng <> None || Fault.killed () || wal_dangling t
  then begin
    Metrics.incr (metrics t) "serve.auto_recoveries";
    let r = Engine.recover t.eng in
    if r.Engine.recovered_epoch <> None then refresh_snapshot t
  end

(* ---------- requests ---------- *)

type served = Live | Degraded | Pinned

type reply = {
  decision : Requester.decision;
  served : served;
  attempts : int;
}

let backoff t n =
  let cap =
    min t.config.backoff_max_s
      (t.config.backoff_base_s *. (2.0 ** float_of_int (n - 1)))
  in
  t.config.sleep (Prng.float t.rng (max cap 0.0))

(* Deny-by-default answer from the layer's pinned snapshot.  Sound
   because the snapshot is a frozen committed materialization and
   mutations never commit while degraded; if the epochs disagree
   anyway the snapshot is stale and everything is denied — per role as
   much as for the anonymous subject. *)
let degraded_decision ?subject ?lane t query =
  let m = metrics t in
  Metrics.incr m "serve.degraded";
  (match subject with
  | Some role -> Metrics.incr m ("serve.degraded." ^ role)
  | None -> ());
  let snap = t.snapshot in
  if Snapshot.epoch snap <> Engine.sign_epoch t.eng then begin
    Metrics.incr m "serve.degraded_stale";
    Metrics.incr m Metrics.stale_snapshot_denials;
    Requester.Denied { blocked = 0 }
  end
  else Snapshot.request ?subject ?lane snap query

(* Answer from an arbitrary pinned snapshot under the configured
   deadline, with transient retries — the session read path.  Never
   consults the engine, the live stores or the breakers: a pinned read
   cannot block on the writer, and its outcome says nothing about
   backend health.  [~served] distinguishes the session path (Pinned)
   from degradation ([degraded_request] below reuses this loop). *)
let snapshot_request_as ~served ?subject ?lane t snap query =
  let m = metrics t in
  let attempts = ref 0 in
  match
    Deadline.with_budget ~label:"snapshot"
      ?ticks:t.config.deadline_ticks ?seconds:t.config.deadline_seconds
      (fun () ->
        let rec go n =
          attempts := n;
          try
            match served with
            | Degraded -> degraded_decision ?subject ?lane t query
            | _ -> Snapshot.request ?subject ?lane snap query
          with Fault.Transient _ when n <= t.config.max_retries ->
            Metrics.incr m "serve.retries";
            backoff t n;
            go (n + 1)
        in
        go 1)
  with
  | decision -> Ok { decision; served; attempts = !attempts }
  | exception exn ->
      let err = typed_error ~attempts:!attempts exn in
      Metrics.incr m "serve.errors";
      Metrics.incr m ("serve.errors." ^ error_class_to_string err.class_);
      Error err

let snapshot_request ?subject ?lane t snap query =
  Metrics.incr (metrics t) "serve.pinned";
  snapshot_request_as ~served:Pinned ?subject ?lane t snap query

let degraded_request ?subject ?lane t query =
  snapshot_request_as ~served:Degraded ?subject ?lane t t.snapshot query

let live_request ?subject ?lane t kind br query =
  let m = metrics t in
  let attempts = ref 0 in
  match
    Deadline.with_budget
      ~label:("request." ^ Engine.backend_kind_to_string kind)
      ?ticks:t.config.deadline_ticks ?seconds:t.config.deadline_seconds
      (fun () ->
        let rec go n =
          attempts := n;
          try Engine.request ?subject ?lane t.eng kind query
          with Fault.Transient _ when n <= t.config.max_retries ->
            Metrics.incr m "serve.retries";
            backoff t n;
            go (n + 1)
        in
        go 1)
  with
  | decision ->
      Breaker.record br ~ok:true;
      Ok { decision; served = Live; attempts = !attempts }
  | exception exn ->
      let err = typed_error ~attempts:!attempts exn in
      (* A failure while compiling the rewrite lane's plans happens
         before the store is touched, so — like a parse error — it
         says nothing about backend health and must not feed the
         breaker. *)
      if err.site <> "rewrite.compile" then Breaker.record br ~ok:false;
      Metrics.incr m "serve.errors";
      Metrics.incr m ("serve.errors." ^ error_class_to_string err.class_);
      Error err

let known_role t role = Subject.mem (Policy.subjects (Engine.policy t.eng)) role

let request ?subject ?lane t kind query =
  Metrics.time (metrics t) "serve.request" (fun () ->
      match Requester.parse_or_fail query with
      | exception Invalid_argument msg ->
          (* Says nothing about backend health: don't feed the
             breaker. *)
          Metrics.incr (metrics t) "serve.parse_errors";
          Error { class_ = Fatal; site = "parse"; attempts = 0; message = msg }
      | _expr -> (
          match subject with
          | Some role when not (known_role t role) ->
              (* Like a parse error: a caller-side mistake, not a
                 backend health signal — and checked up front so the
                 degraded path cannot trip over it either. *)
              Metrics.incr (metrics t) "serve.unknown_roles";
              Error
                {
                  class_ = Fatal;
                  site = "subject";
                  attempts = 0;
                  message = Printf.sprintf "unknown role %S" role;
                }
          | _ -> (
              heal t;
              let br = breaker t kind in
              match Breaker.admit br with
              | `Reject -> degraded_request ?subject ?lane t query
              | `Admit -> live_request ?subject ?lane t kind br query)))

(* ---------- mutations ---------- *)

let some_breaker_open t =
  List.exists (fun (_, br) -> Breaker.state br = Breaker.Open) t.breakers

let record_all t ~ok =
  List.iter (fun (_, br) -> Breaker.record br ~ok) t.breakers

(* Attribute a failure to the backend its fault site names; a site
   that names no backend (wal, cam, ...) counts against all of them —
   the mutation path crosses every store. *)
let record_failure t site =
  let prefixed p =
    let p = p ^ "." in
    String.length site >= String.length p
    && String.sub site 0 (String.length p) = p
  in
  let kind =
    if prefixed "native" then Some Engine.Native
    else if prefixed "row" then Some Engine.Row_sql
    else if prefixed "column" then Some Engine.Column_sql
    else None
  in
  match kind with
  | Some k -> Breaker.record (breaker t k) ~ok:false
  | None -> record_all t ~ok:false

let enqueue t mu =
  let m = metrics t in
  if List.length t.queue >= t.config.queue_capacity then begin
    Metrics.incr m "serve.queue_rejected";
    Error
      {
        class_ = Transient;
        site = "serve.queue";
        attempts = 0;
        message = "degraded and mutation queue full";
      }
  end
  else begin
    t.queue <- t.queue @ [ mu ];
    Metrics.incr m "serve.queued";
    Ok (Queued (List.length t.queue))
  end

let apply_mutation t = function
  | Update q -> Engine.update t.eng q
  | Insert { at; fragment } -> Engine.insert t.eng ~at ~fragment

let run_mutation t mu =
  let m = metrics t in
  let rec go n =
    (* A retried attempt may follow a fault that left a WAL epoch
       dangling; clear it before applying again. *)
    heal t;
    (* The committed epoch as of this attempt: a fault raised {e after}
       the epoch advanced past it (e.g. at the snapshot-publish points)
       means the mutation is durable and must not be re-applied. *)
    let committed0 = Engine.sign_epoch t.eng in
    match
      Deadline.with_budget ~label:"mutation" ?ticks:t.config.deadline_ticks
        ?seconds:t.config.deadline_seconds
        (fun () -> apply_mutation t mu)
    with
    | stats ->
        record_all t ~ok:true;
        refresh_snapshot t;
        Ok (Applied stats)
    | exception exn -> (
        let err = typed_error ~attempts:n exn in
        if Engine.open_epoch t.eng <> None || Fault.killed () then begin
          (* The fault interrupted the epoch: play the restart.
             Structural operations recover by roll-forward — the
             mutation committed anyway.  A crash that hit after the
             commit itself (no open epoch, but the counter moved)
             already has nothing to recover; the same report fits. *)
          Metrics.incr m "serve.auto_recoveries";
          let r = Engine.recover t.eng in
          refresh_snapshot t;
          if
            r.Engine.direction = `Forward
            || Engine.sign_epoch t.eng > committed0
          then begin
            Metrics.incr m "serve.recovered_mutations";
            record_failure t err.site;
            Ok Recovered
          end
          else if err.class_ = Transient && n <= t.config.max_retries then begin
            Metrics.incr m "serve.retries";
            backoff t n;
            go (n + 1)
          end
          else begin
            record_failure t err.site;
            Metrics.incr m "serve.errors";
            Metrics.incr m
              ("serve.errors." ^ error_class_to_string err.class_);
            Error err
          end
        end
        else if Engine.sign_epoch t.eng > committed0 then begin
          (* Transient fault past the commit point: the epoch is
             durable, only the snapshot publish was interrupted.
             Re-pinning repairs the layer's view; retrying would apply
             the mutation twice. *)
          Metrics.incr m "serve.recovered_mutations";
          refresh_snapshot t;
          record_failure t err.site;
          Ok Recovered
        end
        else if err.class_ = Transient && n <= t.config.max_retries then begin
          (* Fault before the epoch opened: plain retry. *)
          Metrics.incr m "serve.retries";
          backoff t n;
          go (n + 1)
        end
        else begin
          record_failure t err.site;
          Metrics.incr m "serve.errors";
          Metrics.incr m ("serve.errors." ^ error_class_to_string err.class_);
          Error err
        end)
  in
  go 1

let mutate t mu =
  Metrics.time (metrics t) "serve.mutate" (fun () ->
      heal t;
      if some_breaker_open t then enqueue t mu else run_mutation t mu)

let update t q = mutate t (Update q)
let insert t ~at ~fragment = mutate t (Insert { at; fragment })

let drain t =
  heal t;
  let rec go acc =
    if some_breaker_open t then List.rev acc
    else
      match t.queue with
      | [] -> List.rev acc
      | mu :: rest ->
          t.queue <- rest;
          let r = run_mutation t mu in
          go ((mu, r) :: acc)
  in
  go []

(* ---------- health ---------- *)

type health = {
  breakers : (Engine.backend_kind * Breaker.state) list;
  trips : int;
  open_epoch : int option;
  queued_mutations : int;
  snapshot_epoch : int;
  committed_epoch : int;
  degraded : bool;
  stale_snapshot_denials : int;
  pinned_snapshots : int;
}

let health (t : t) =
  let states = List.map (fun (k, br) -> (k, Breaker.state br)) t.breakers in
  {
    breakers = states;
    trips = List.fold_left (fun acc (_, br) -> acc + Breaker.trips br) 0
        t.breakers;
    open_epoch = Engine.open_epoch t.eng;
    queued_mutations = List.length t.queue;
    snapshot_epoch = Snapshot.epoch t.snapshot;
    committed_epoch = Engine.sign_epoch t.eng;
    degraded = List.exists (fun (_, s) -> s <> Breaker.Closed) states;
    stale_snapshot_denials =
      Metrics.counter (metrics t) Metrics.stale_snapshot_denials;
    pinned_snapshots = Snapshot.live (Engine.snapshots t.eng);
  }

let healthy h =
  (not h.degraded) && h.open_epoch = None && h.queued_mutations = 0

let pp_health ppf h =
  List.iter
    (fun (k, s) ->
      Format.fprintf ppf "breaker %-10s %s@."
        (Engine.backend_kind_to_string k)
        (Breaker.state_to_string s))
    h.breakers;
  Format.fprintf ppf "trips       %d@." h.trips;
  Format.fprintf ppf "open epoch  %s@."
    (match h.open_epoch with None -> "none" | Some e -> string_of_int e);
  Format.fprintf ppf "queued      %d@." h.queued_mutations;
  Format.fprintf ppf "snapshot    epoch %d (committed %d)@." h.snapshot_epoch
    h.committed_epoch;
  Format.fprintf ppf "snapshots   %d live, %d stale denial%s@."
    h.pinned_snapshots h.stale_snapshot_denials
    (if h.stale_snapshot_denials = 1 then "" else "s");
  Format.fprintf ppf "status      %s@."
    (if healthy h then "healthy"
     else if h.degraded then "degraded"
     else "recovering")
