(** Session-scoped snapshot reads: one subject, one pinned epoch.

    The front end's unit of work, after the sirix [XmlSessionDBStore]
    pattern: a caller opens a session against the serving layer, the
    session authenticates a subject (a declared role, or the anonymous
    single-subject view) and pins the engine's current MVCC snapshot,
    and every request through the session is answered from that pinned
    version — repeatable reads for the session's whole lifetime, no
    matter how many epochs the writer commits meanwhile.  {!close}
    releases the pin (letting the snapshot be reclaimed once every
    session holding it is done); {!refresh} is the explicit opt-in to
    a newer version.

    Sessions are cheap (a pin is a refcount bump) and single-owner:
    one session is meant to be driven by one worker at a time — the
    snapshot underneath is safe to share, but a session's own
    lifecycle state is not locked. *)

type t

val open_ : ?subject:string -> Serve.t -> t
(** [open_ ?subject serve] validates [subject] against the declared
    roles and pins the current committed snapshot.
    @raise Invalid_argument on an unknown role. *)

val subject : t -> string option
val epoch : t -> int
(** The pinned epoch — constant for the session's lifetime (until
    {!refresh}). *)

val snapshot : t -> Xmlac_core.Snapshot.t

val request : t -> string -> (Serve.reply, Serve.error) result
(** Answer from the pinned snapshot via {!Serve.snapshot_request}:
    deadline-budgeted, transient-retried, never blocking on the
    writer.  Replies are served [Pinned].
    @raise Invalid_argument on a closed session. *)

val refresh : t -> unit
(** Re-pin the engine's current snapshot — the session's reads move
    forward to the latest committed epoch.
    @raise Invalid_argument on a closed session. *)

val close : t -> unit
(** Release the session's pin.  Idempotent. *)

val closed : t -> bool
