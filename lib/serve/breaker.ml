module Metrics = Xmlac_util.Metrics

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  window : int;
  min_calls : int;
  threshold : float;
  cooldown : int;
  probes : int;
}

let default_config =
  { window = 16; min_calls = 4; threshold = 0.5; cooldown = 8; probes = 2 }

type t = {
  config : config;
  metrics : Metrics.t option;
  name : string;
  outcomes : bool array;  (* ring buffer: true = failure *)
  mutable filled : int;
  mutable next : int;
  mutable failures : int;  (* failures currently in the window *)
  mutable state : state;
  mutable cooldown_left : int;
  mutable probe_successes : int;
  mutable trips : int;
}

let create ?metrics ~name config =
  if config.window < 1 then invalid_arg "Breaker.create: window < 1";
  if config.min_calls < 1 then invalid_arg "Breaker.create: min_calls < 1";
  if not (config.threshold > 0.0 && config.threshold <= 1.0) then
    invalid_arg "Breaker.create: threshold must be in (0, 1]";
  if config.cooldown < 0 then invalid_arg "Breaker.create: cooldown < 0";
  if config.probes < 1 then invalid_arg "Breaker.create: probes < 1";
  {
    config;
    metrics;
    name;
    outcomes = Array.make config.window false;
    filled = 0;
    next = 0;
    failures = 0;
    state = Closed;
    cooldown_left = 0;
    probe_successes = 0;
    trips = 0;
  }

let config t = t.config
let state t = t.state
let trips t = t.trips

let count t what =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.incr m (Printf.sprintf "breaker.%s.%s" t.name what)

let clear_window t =
  Array.fill t.outcomes 0 (Array.length t.outcomes) false;
  t.filled <- 0;
  t.next <- 0;
  t.failures <- 0

let push t ~failed =
  if t.filled = t.config.window then begin
    (* Full ring: the slot being overwritten leaves the window. *)
    if t.outcomes.(t.next) then t.failures <- t.failures - 1
  end
  else t.filled <- t.filled + 1;
  t.outcomes.(t.next) <- failed;
  if failed then t.failures <- t.failures + 1;
  t.next <- (t.next + 1) mod t.config.window

let error_rate t =
  if t.filled = 0 then 0.0
  else float_of_int t.failures /. float_of_int t.filled

let trip t =
  t.state <- Open;
  t.cooldown_left <- t.config.cooldown;
  t.probe_successes <- 0;
  t.trips <- t.trips + 1;
  count t "trips"

let close t =
  t.state <- Closed;
  t.probe_successes <- 0;
  clear_window t;
  count t "closes"

let admit t =
  match t.state with
  | Closed -> `Admit
  | Half_open ->
      count t "probes";
      `Admit
  | Open ->
      if t.cooldown_left <= 0 then begin
        (* Cooldown exhausted: probe the backend. *)
        t.state <- Half_open;
        t.probe_successes <- 0;
        count t "probes";
        `Admit
      end
      else begin
        t.cooldown_left <- t.cooldown_left - 1;
        count t "rejected";
        `Reject
      end

let record t ~ok =
  match t.state with
  | Open -> ()  (* not admitted; nothing to learn *)
  | Half_open -> if ok then begin
      t.probe_successes <- t.probe_successes + 1;
      if t.probe_successes >= t.config.probes then close t
    end
    else trip t
  | Closed ->
      push t ~failed:(not ok);
      if t.filled >= t.config.min_calls && error_rate t >= t.config.threshold
      then trip t

let pp ppf t =
  Format.fprintf ppf "%s (trips %d)" (state_to_string t.state) t.trips
