(** A small fixed pool of worker domains for the concurrent front end.

    [create ~domains] spawns [domains - 1] worker domains (the caller
    counts as one); {!parallel} fans a batch of thunks out over them
    and barriers until every thunk finished, returning results in
    submission order.  Exceptions are captured per-thunk and re-raised
    — the first one in submission order — after the barrier, so a
    failing thunk can never wedge the pool.

    When [domains = 1] — the default whenever
    [Domain.recommended_domain_count () = 1], and the CLI's
    [--domains 1] deterministic mode — no domains are spawned at all:
    {!parallel} runs the thunks sequentially, in order, on the calling
    domain.  Same API, same results, fully deterministic scheduling;
    golden transcripts pin this mode.

    The queue is a plain [Mutex]/[Condition] pair: workers block on
    the condition, {!parallel} signals per task and waits on a second
    condition for the batch's completion count.  {!shutdown} joins the
    workers; using the pool afterwards raises [Invalid_argument]. *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] — [domains] defaults to
    [Domain.recommended_domain_count ()] (so a single-core runtime
    gets the deterministic sequential mode without asking) and is
    clamped to [\[1; 64\]].  An explicit [domains] is honoured even on
    one core: domains timeshare, which is exactly what the concurrency
    tests rely on. *)

val size : t -> int
(** Domains the pool computes with, caller included — [1] means
    sequential mode. *)

val sequential : t -> bool

val parallel : t -> (unit -> 'a) list -> 'a list
(** Run the thunks to completion and return their results in
    submission order.  Re-raises the first (by submission order)
    exception after all thunks finished.  Not reentrant: one
    [parallel] batch at a time per pool. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent. *)
