(** Epoch-shipping replication: a leader engine streams committed sign
    epochs over a fault-injectable in-process transport to follower
    engines that apply them atomically and serve pinned snapshot
    reads.

    {2 The stream}

    Every committed leader epoch becomes one {!Frame}: the epoch's
    logical operation, a payload checksum, the leader's post-epoch
    state digest ({!Xmlac_core.Engine.state_checksum}) and — for
    cleanly applied epochs — the Adler-32 of the epoch's row-WAL
    record batch read through the {!Xmlac_reldb.Wal.fold_epochs}
    cursor.  Followers apply frames strictly in stream order through
    {!Xmlac_core.Engine.apply_replica}, so every applied epoch runs
    under the full sign-epoch machinery: journaled writes, WAL
    framing, and a crash recovery that lands pre- or post-epoch, never
    a mix.  After each apply the follower re-derives both digests and
    marks itself {e divergent} on any mismatch — a divergent follower
    stops serving and refuses promotion.

    {2 Robustness}

    The transport is driven by the {!Xmlac_util.Fault} registry
    (points ["repl.ship"], ["repl.recv"], ["repl.apply"],
    ["repl.ack"]) plus seeded per-frame drop / duplicate / reorder /
    torn-frame draws and an explicit per-node partition switch.
    Followers detect gaps and request re-ship (bounded per node,
    jittered backoff, classified through the {!Xmlac_serve.Serve}
    taxonomy); reads are served from the follower's last published
    MVCC snapshot only while replication lag is at most
    [lag_threshold] epochs — beyond that (or on divergence, or while
    killed mid-apply) the node fails closed with a blanket denial,
    counted under {!Xmlac_util.Metrics.repl_stale_denials}.  After
    {!kill_leader}, {!promote} turns a fully-applied,
    digest-verified follower into a writable leader. *)

module Engine := Xmlac_core.Engine
module Serve := Xmlac_serve.Serve

type role = Leader | Follower | Deposed

val role_to_string : role -> string

type config = {
  lag_threshold : int;
      (** Serve follower reads while lag (committed - applied) is at
          most this many epochs; beyond it, blanket-deny. *)
  max_retries : int;  (** Transient retries per frame apply / leader op. *)
  max_reship : int;
      (** Re-ship requests a follower may make without progress before
          it stops asking ([repl.reship_exhausted]). *)
  backoff_base_s : float;  (** First retry's maximum jittered backoff. *)
  backoff_max_s : float;  (** Backoff growth cap. *)
  sleep : float -> unit;  (** Receives each backoff delay (default no-op). *)
  seed : int64;  (** Seeds transport chaos and backoff jitter. *)
  drop_p : float;  (** Per-frame drop probability. *)
  dup_p : float;  (** Per-frame duplicate probability. *)
  reorder_p : float;  (** Per-frame reorder (swap-newest-two) probability. *)
  torn_p : float;  (** Per-frame torn-payload probability. *)
  serve : Serve.config;  (** Per-node serving-layer configuration. *)
}

val default_config : config
(** [lag_threshold = 1], 3 retries, 8 re-ships, 5ms/100ms backoff,
    no-op sleep, seed 1, all chaos probabilities 0. *)

type t

val create :
  ?config:config ->
  ?followers:int ->
  dtd:Xmlac_xml.Dtd.t ->
  policy:Xmlac_core.Policy.t ->
  Xmlac_xml.Tree.t ->
  t
(** A cluster over one document: node 0 is the leader, nodes
    [1..followers] (default 2) are read-only replicas built from the
    same inputs, so universal node ids line up across the cluster by
    construction.  Each node owns a full engine (all three backends)
    and a {!Xmlac_serve.Serve} layer. *)

(** {1 Leader mutations}

    Each committed operation frames one stream epoch.  A leader-side
    crash is played as a restart: roll-forward recovery frames the
    operation itself; a rolled-back epoch frames a [Ship_noop] so
    replicas consume the aborted epoch number too. *)

val apply : t -> Engine.shipped_op -> (unit, Serve.error) result
(** @raise Invalid_argument on [Ship_noop] (noops are synthesized
    internally for aborted epochs, never submitted). *)

val update : t -> string -> (unit, Serve.error) result
val insert :
  t -> at:string -> fragment:Xmlac_xml.Tree.t -> (unit, Serve.error) result

val annotate : t -> Engine.backend_kind -> (unit, Serve.error) result
val annotate_all : t -> (unit, Serve.error) result
val annotate_subjects_all : t -> (unit, Serve.error) result

(** {1 Shipping} *)

val ship : t -> unit
(** Send every framed epoch past each follower's send cursor through
    the chaos transport.  Crosses ["repl.ship"] per frame; a transient
    there is a lost send (re-ship covers), a crash escapes as a leader
    kill. *)

val pump : t -> unit
(** One replication round: heal crashed nodes, {!ship}, then let every
    follower drain its inbox — integrity-check (["repl.recv"]),
    dedup, reorder-buffer, apply in stream order (["repl.apply"]),
    acknowledge (["repl.ack"]), and request re-ship on any gap.  A
    {!Xmlac_util.Fault.Crash} escapes with the killed node's
    [inflight] marker set; the next {!heal} (or {!sync} round)
    resolves it through {!Engine.recover}. *)

val sync : ?rounds:int -> t -> bool
(** Pump until every reachable follower has applied the full stream or
    [rounds] (default 64) are exhausted; crashes inside a round are
    healed at the next.  Returns whether the cluster converged
    (partitioned and divergent nodes are excluded — they cannot). *)

val heal : t -> unit
(** Restart protocol for killed nodes: {!Engine.recover} wherever an
    epoch is open (or the fault registry holds a kill), then resolve
    the node's in-flight frame — applied if recovery rolled forward
    (digest-checked like any apply), re-shipped if it rolled back. *)

(** {1 Reads} *)

val read :
  ?subject:string ->
  ?lane:Xmlac_core.Rewrite.lane ->
  t ->
  node:int ->
  string ->
  (Serve.reply, Serve.error) result
(** Answer [query] from the node's last published MVCC snapshot under
    the node's serving layer (deadline, retries, taxonomy).  A
    follower over the lag threshold, divergent, or killed mid-apply
    fails closed: blanket denial served [Degraded], counted under
    {!Xmlac_util.Metrics.repl_stale_denials}.  A dead or deposed node
    returns a [Fatal] error. *)

val route :
  ?subject:string ->
  ?lane:Xmlac_core.Rewrite.lane ->
  t ->
  string ->
  int * (Serve.reply, Serve.error) result
(** Lag-aware routing: the least-lagged serving follower, else the
    live leader, else a fail-closed blanket denial (node [-1]). *)

(** {1 Failover} *)

val kill_leader : t -> unit
(** Mark the leader dead: it stops shipping and serving.  Its engine
    state is abandoned as a dead process's memory would be. *)

type promotion = { node : int; epoch : int; state_sum : int32 }

val promote : t -> int -> (promotion, string) result
(** Turn follower [node] into a writable leader: run the restart
    protocol ({!heal}), verify the node's state digest against its
    last verified epoch digest, and refuse on any divergence (or while
    the leader is still alive).  On success the stream is truncated to
    the promoted tail, surviving followers re-sync from the new
    leader, and followers that had applied {e past} the promoted tail
    are marked divergent (they hold epochs the new leader never
    committed and fail closed until rebuilt). *)

(** {1 Topology and observability} *)

val committed : t -> int
(** Highest framed stream epoch. *)

val leader_alive : t -> bool
val nodes : t -> int list
val node_role : t -> int -> role
val engine : t -> int -> Engine.t
val leader_engine : t -> Engine.t
val applied : t -> int -> int
val lag : t -> int -> int
val diverged : t -> int -> bool

val set_partitioned : t -> int -> bool -> unit
(** Partition (or reconnect) one follower: while set, every frame
    shipped to it is dropped. *)

val metrics : t -> Xmlac_util.Metrics.t
(** The cluster's replication counters ([repl.framed], [repl.shipped],
    [repl.reshipped], [repl.applied], [repl.rejected],
    [repl.gap_requests], [repl.divergences],
    {!Xmlac_util.Metrics.repl_stale_denials}, …). *)

type node_status = {
  id : int;
  role : role;
  applied_epoch : int;
  node_lag : int;
  node_diverged : bool;
  node_serving : bool;
}

val status : t -> node_status list

val pp_status : Format.formatter -> t -> unit
(** Deterministic, time-free — safe for golden CLI transcripts. *)
