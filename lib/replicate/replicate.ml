module Fault = Xmlac_util.Fault
module Metrics = Xmlac_util.Metrics
module Prng = Xmlac_util.Prng
module Engine = Xmlac_core.Engine
module Requester = Xmlac_core.Requester
module Wal = Xmlac_reldb.Wal
module Serve = Xmlac_serve.Serve

type role = Leader | Follower | Deposed

let role_to_string = function
  | Leader -> "leader"
  | Follower -> "follower"
  | Deposed -> "deposed"

type config = {
  lag_threshold : int;
  max_retries : int;
  max_reship : int;
  backoff_base_s : float;
  backoff_max_s : float;
  sleep : float -> unit;
  seed : int64;
  drop_p : float;
  dup_p : float;
  reorder_p : float;
  torn_p : float;
  serve : Serve.config;
}

let default_config =
  {
    lag_threshold = 1;
    max_retries = 3;
    max_reship = 8;
    backoff_base_s = 0.005;
    backoff_max_s = 0.1;
    sleep = (fun _ -> ());
    seed = 1L;
    drop_p = 0.0;
    dup_p = 0.0;
    reorder_p = 0.0;
    torn_p = 0.0;
    serve = Serve.default_config;
  }

type node = {
  id : int;
  eng : Engine.t;
  serve : Serve.t;
  mutable role : role;
  mutable applied : int;  (* stream epochs applied through *)
  mutable shipped : int;  (* leader-side send cursor for this node *)
  mutable shipped_high : int;  (* highest epoch ever sent (re-ship detector) *)
  mutable state_sum : int32;  (* digest at last successful apply *)
  mutable diverged : bool;
  mutable reships : int;  (* re-ship requests since last progress *)
  mutable inflight : (int * int) option;
      (* (stream epoch being applied, local sign_epoch before) — what a
         post-kill restart needs to tell pre-epoch from post-epoch. *)
  inbox : Frame.t Queue.t;
  mutable partitioned : bool;
}

type t = {
  config : config;
  metrics : Metrics.t;
  rng : Prng.t;
  frames : (int, Frame.t) Hashtbl.t;  (* the stream, by epoch *)
  mutable committed : int;  (* highest framed stream epoch *)
  nodes : node list;  (* node 0 first; fixed membership *)
  mutable leader_id : int;
  mutable leader_alive : bool;
}

let create ?(config = default_config) ?(followers = 2) ~dtd ~policy doc =
  if followers < 0 then invalid_arg "Replicate.create: followers < 0";
  if config.lag_threshold < 0 then
    invalid_arg "Replicate.create: lag_threshold < 0";
  let mk id =
    let eng = Engine.create ~dtd ~policy doc in
    let role = if id = 0 then Leader else Follower in
    if role = Follower then Engine.set_read_only eng true;
    {
      id;
      eng;
      serve = Serve.create ~config:config.serve eng;
      role;
      applied = 0;
      shipped = 0;
      shipped_high = 0;
      state_sum = Engine.state_checksum eng;
      diverged = false;
      reships = 0;
      inflight = None;
      inbox = Queue.create ();
      partitioned = false;
    }
  in
  {
    config;
    metrics = Metrics.create ();
    rng = Prng.create ~seed:config.seed;
    frames = Hashtbl.create 64;
    committed = 0;
    nodes = List.init (followers + 1) mk;
    leader_id = 0;
    leader_alive = true;
  }

let metrics t = t.metrics
let committed t = t.committed
let leader_alive t = t.leader_alive
let nodes t = List.map (fun n -> n.id) t.nodes

let node t id =
  match List.find_opt (fun n -> n.id = id) t.nodes with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Replicate: unknown node %d" id)

let engine t id = (node t id).eng
let leader t = node t t.leader_id
let leader_engine t = (leader t).eng
let followers t = List.filter (fun n -> n.role = Follower) t.nodes
let node_role t id = (node t id).role
let applied t id = (node t id).applied
let lag t id = max 0 (t.committed - (node t id).applied)
let diverged t id = (node t id).diverged
let set_partitioned t id flag = (node t id).partitioned <- flag

(* ---------- leader side: framing and shipping ---------- *)

let backoff t n =
  let cap =
    min t.config.backoff_max_s
      (t.config.backoff_base_s *. (2.0 ** float_of_int (n - 1)))
  in
  t.config.sleep (Prng.float t.rng (max cap 1e-9))

let frame_committed t op ~clean =
  let ld = leader t in
  let epoch = t.committed + 1 in
  let wal_sum =
    (* The determinism cross-check only makes sense for an epoch the
       leader applied in one clean pass: a crash-recovered epoch's WAL
       batch contains the aborted attempt plus compensation, which a
       follower's clean apply will legitimately not reproduce. *)
    if clean then
      match Engine.wal ld.eng Engine.Row_sql with
      | Some w -> Wal.epoch_checksum w (Engine.sign_epoch ld.eng)
      | None -> None
    else None
  in
  let f =
    Frame.make ~epoch ~state_sum:(Engine.state_checksum ld.eng) ?wal_sum op
  in
  Hashtbl.replace t.frames epoch f;
  t.committed <- epoch;
  ld.applied <- epoch;
  ld.state_sum <- Frame.state_sum f;
  Metrics.incr t.metrics "repl.framed";
  if op = Engine.Ship_noop then Metrics.incr t.metrics "repl.noops"

let run_leader_op eng = function
  | Engine.Ship_noop -> invalid_arg "Replicate.apply: Ship_noop"
  | Engine.Ship_annotate k -> ignore (Engine.annotate eng k)
  | Engine.Ship_annotate_subjects k -> ignore (Engine.annotate_subjects eng k)
  | Engine.Ship_update q -> ignore (Engine.update eng q)
  | Engine.Ship_insert { at; fragment } ->
      ignore (Engine.insert eng ~at ~fragment)

let dead_leader_error =
  {
    Serve.class_ = Serve.Fatal;
    site = "repl.leader";
    attempts = 0;
    message = "leader is dead (kill_leader); promote a follower";
  }

let apply t op =
  if not t.leader_alive then Error dead_leader_error
  else begin
    let eng = leader_engine t in
    let rec go n =
      let e0 = Engine.sign_epoch eng in
      match run_leader_op eng op with
      | () ->
          frame_committed t op ~clean:true;
          Ok ()
      | exception exn -> (
          let err = Serve.error_of_exn ~attempts:n exn in
          let retry () =
            if err.Serve.class_ = Serve.Transient && n <= t.config.max_retries
            then begin
              Metrics.incr t.metrics "repl.retries";
              backoff t n;
              go (n + 1)
            end
            else begin
              Metrics.incr t.metrics "repl.errors";
              Error err
            end
          in
          if Engine.open_epoch eng <> None || Fault.killed () then begin
            Metrics.incr t.metrics "repl.node_restarts";
            let r = Engine.recover eng in
            match (r.Engine.recovered_epoch, r.Engine.direction) with
            | Some _, `Forward ->
                (* The structural mutation committed under recovery:
                   frame the op itself (recovered batch, so no WAL
                   cross-check). *)
                frame_committed t op ~clean:false;
                Ok ()
            | Some _, _ ->
                (* The epoch aborted but its number is consumed:
                   replicas must consume it too. *)
                frame_committed t Engine.Ship_noop ~clean:false;
                retry ()
            | None, _ ->
                if Engine.sign_epoch eng > e0 then begin
                  (* Crash after commit, before publish: durable. *)
                  frame_committed t op ~clean:false;
                  Ok ()
                end
                else retry ()
          end
          else if Engine.sign_epoch eng > e0 then begin
            frame_committed t op ~clean:false;
            Ok ()
          end
          else retry ())
    in
    go 1
  end

let update t q = apply t (Engine.Ship_update q)
let insert t ~at ~fragment = apply t (Engine.Ship_insert { at; fragment })
let annotate t kind = apply t (Engine.Ship_annotate kind)

let annotate_all t =
  List.fold_left
    (fun acc k -> match acc with Ok () -> annotate t k | e -> e)
    (Ok ()) Engine.all_backend_kinds

let annotate_subjects_all t =
  List.fold_left
    (fun acc k ->
      match acc with
      | Ok () -> apply t (Engine.Ship_annotate_subjects k)
      | e -> e)
    (Ok ()) Engine.all_backend_kinds

(* The chaos transport: per-frame drop / duplicate / reorder /
   torn-frame draws from the seeded generator, plus an explicit
   partition switch per node.  Every effect is counted. *)
let transport_send t n f =
  if n.partitioned then Metrics.incr t.metrics "repl.dropped"
  else begin
    let f =
      if Prng.bernoulli t.rng t.config.torn_p then begin
        Metrics.incr t.metrics "repl.torn";
        Frame.tear f
      end
      else f
    in
    if Prng.bernoulli t.rng t.config.drop_p then
      Metrics.incr t.metrics "repl.dropped"
    else begin
      Queue.push f n.inbox;
      if Prng.bernoulli t.rng t.config.dup_p then begin
        Metrics.incr t.metrics "repl.duplicated";
        Queue.push f n.inbox
      end;
      if Queue.length n.inbox >= 2 && Prng.bernoulli t.rng t.config.reorder_p
      then begin
        Metrics.incr t.metrics "repl.reordered";
        (* Swap the two newest in-flight frames. *)
        let all = List.of_seq (Queue.to_seq n.inbox) in
        Queue.clear n.inbox;
        let rec requeue = function
          | [ a; b ] ->
              Queue.push b n.inbox;
              Queue.push a n.inbox
          | x :: rest ->
              Queue.push x n.inbox;
              requeue rest
          | [] -> ()
        in
        requeue all
      end
    end
  end

let ship t =
  if t.leader_alive then
    List.iter
      (fun n ->
        if n.role = Follower then begin
          for e = n.shipped + 1 to t.committed do
            (* A transient at the ship point is a lost send: the frame
               never leaves the leader, and the follower's gap request
               re-ships it later.  A crash is a leader kill and
               escapes. *)
            match Fault.point "repl.ship" with
            | () ->
                let f = Hashtbl.find t.frames e in
                Metrics.incr t.metrics "repl.shipped";
                if e <= n.shipped_high then
                  Metrics.incr t.metrics "repl.reshipped"
                else n.shipped_high <- e;
                transport_send t n f
            | exception Fault.Transient _ ->
                Metrics.incr t.metrics "repl.ship_faults"
          done;
          n.shipped <- max n.shipped t.committed
        end)
      t.nodes

(* ---------- follower side: receive, apply, ack ---------- *)

(* A follower that cannot make progress from what it holds asks the
   leader to rewind its send cursor to the applied position — bounded
   per node, with jittered backoff, and counted. *)
let request_reship t n =
  if n.reships < t.config.max_reship then begin
    n.reships <- n.reships + 1;
    Metrics.incr t.metrics "repl.gap_requests";
    backoff t n.reships;
    n.shipped <- n.applied
  end
  else Metrics.incr t.metrics "repl.reship_exhausted"

let mark_diverged t n =
  if not n.diverged then begin
    n.diverged <- true;
    Metrics.incr t.metrics "repl.divergences"
  end

(* Bookkeeping once frame [f] is known durable on [n]: digest check
   against the leader's shipped state sum, opportunistic WAL-batch
   cross-check, cursor advance, ack. *)
let finish_applied ?(ack = true) t n f ~clean =
  let sum = Engine.state_checksum n.eng in
  if sum <> Frame.state_sum f then mark_diverged t n
  else begin
    match Frame.wal_sum f with
    | Some ws when clean -> (
        match Engine.wal n.eng Engine.Row_sql with
        | Some w -> (
            match Wal.epoch_checksum w (Engine.sign_epoch n.eng) with
            | Some own when own <> ws -> mark_diverged t n
            | Some _ -> Metrics.incr t.metrics "repl.wal_verified"
            | None -> ())
        | None -> ())
    | _ -> ()
  end;
  n.applied <- Frame.epoch f;
  n.state_sum <- Frame.state_sum f;
  n.inflight <- None;
  n.reships <- 0;
  Metrics.incr t.metrics "repl.applied";
  if ack then begin
    (* The epoch is already durable locally; a transient here only
       loses the (in-process) acknowledgement bookkeeping.  A crash is
       a follower kill after apply — [inflight] is clear, so the
       restart finds a fully-applied node. *)
    match Fault.point "repl.ack" with
    | () -> Metrics.incr t.metrics "repl.acked"
    | exception Fault.Transient _ -> Metrics.incr t.metrics "repl.ack_faults"
  end

let apply_frame t n f =
  match Frame.op f with
  | Error _ ->
      Metrics.incr t.metrics "repl.rejected";
      request_reship t n
  | Ok op ->
      let rec attempt k =
        n.inflight <- Some (Frame.epoch f, Engine.sign_epoch n.eng);
        let e0 = Engine.sign_epoch n.eng in
        match Engine.apply_replica n.eng op with
        | () -> finish_applied t n f ~clean:true
        | exception (Fault.Crash _ as exn) ->
            (* The node is killed mid-apply: leave [inflight] for
               [heal] to resolve after the simulated restart.  Until
               then every read on this node fails closed. *)
            raise exn
        | exception exn -> (
            let err = Serve.error_of_exn ~attempts:k exn in
            let committed_anyway r =
              match r with
              | Some rr ->
                  rr.Engine.direction = `Forward
                  || rr.Engine.recovered_epoch = None
                     && Engine.sign_epoch n.eng > e0
              | None -> Engine.sign_epoch n.eng > e0
            in
            let recovery =
              if Engine.open_epoch n.eng <> None || Fault.killed () then begin
                Metrics.incr t.metrics "repl.node_restarts";
                Some (Engine.recover n.eng)
              end
              else None
            in
            if committed_anyway recovery then finish_applied t n f ~clean:false
            else if
              err.Serve.class_ = Serve.Transient && k <= t.config.max_retries
            then begin
              Metrics.incr t.metrics "repl.retries";
              backoff t k;
              attempt (k + 1)
            end
            else begin
              Metrics.incr t.metrics "repl.rejected";
              n.inflight <- None;
              request_reship t n
            end)
      in
      attempt 1

let deliver t n =
  (* Drain the inbox into the reorder-tolerant stash, integrity-checked
     and dedup'd, then apply whatever became contiguous. *)
  let pending = Hashtbl.create 8 in
  while not (Queue.is_empty n.inbox) do
    let f = Queue.pop n.inbox in
    (* A transient at the receive point loses the popped frame — the
       wire ate it; re-ship covers.  A crash is a follower kill and
       escapes. *)
    match Fault.point "repl.recv" with
    | exception Fault.Transient _ -> Metrics.incr t.metrics "repl.recv_faults"
    | () ->
        Metrics.incr t.metrics "repl.received";
        if not (Frame.intact f) then begin
          Metrics.incr t.metrics "repl.rejected";
          request_reship t n
        end
        else begin
          let e = Frame.epoch f in
          if e <= n.applied || Hashtbl.mem pending e then
            Metrics.incr t.metrics "repl.dups_dropped"
          else Hashtbl.replace pending e f
        end
  done;
  let rec drain () =
    match Hashtbl.find_opt pending (n.applied + 1) with
    | Some f ->
        Hashtbl.remove pending (Frame.epoch f);
        apply_frame t n f;
        drain ()
    | None -> ()
  in
  drain ();
  (* Anything still stashed arrived ahead of a hole; anything missing
     entirely is a gap.  Both resolve the same way: re-ship from the
     applied position. *)
  if n.applied < t.committed && not n.partitioned then request_reship t n

(* ---------- restarts ---------- *)

(* The kill flag is process-global, so healing the cluster's first
   node clears it for everyone; a later node's crash can then only be
   seen in its own residue — an epoch left open, or an [inflight]
   marker a completed apply would have cleared.  All three trigger the
   restart protocol. *)
let heal_node t n =
  if Engine.open_epoch n.eng <> None || Fault.killed () || n.inflight <> None
  then begin
    Metrics.incr t.metrics "repl.node_restarts";
    let r = Engine.recover n.eng in
    match n.inflight with
    | Some (se, e0) ->
        n.inflight <- None;
        let committed_anyway =
          r.Engine.direction = `Forward
          || (r.Engine.recovered_epoch = None && Engine.sign_epoch n.eng > e0)
        in
        if committed_anyway then (
          match Hashtbl.find_opt t.frames se with
          | Some f -> finish_applied ~ack:false t n f ~clean:false
          | None ->
              (* The stream was truncated under us (promotion of a
                 shorter tail): this node holds an epoch the new leader
                 never committed. *)
              mark_diverged t n)
        else
          (* Rolled back: pre-epoch state, the frame will be
             re-shipped. *)
          request_reship t n
    | None -> ()
  end

let heal t =
  List.iter
    (fun n ->
      if n.role <> Deposed && (t.leader_alive || n.id <> t.leader_id) then
        heal_node t n)
    t.nodes

(* ---------- pump / sync ---------- *)

let pump t =
  heal t;
  ship t;
  List.iter (deliver t) (followers t)

let in_sync t n =
  n.role <> Follower || n.diverged || n.partitioned || n.applied >= t.committed

let converged t = List.for_all (in_sync t) t.nodes

let sync ?(rounds = 64) t =
  let rec go r =
    heal t;
    if converged t then true
    else if r <= 0 then false
    else begin
      (try pump t with Fault.Crash _ -> ());
      go (r - 1)
    end
  in
  go rounds

(* ---------- reads ---------- *)

let fail_closed t =
  Metrics.incr t.metrics Metrics.repl_stale_denials;
  Ok
    {
      Serve.decision = Requester.Denied { blocked = 0 };
      served = Serve.Degraded;
      attempts = 0;
    }

let dead_node_error id =
  {
    Serve.class_ = Serve.Fatal;
    site = "repl.node";
    attempts = 0;
    message = Printf.sprintf "node %d is not serving (dead or deposed)" id;
  }

let serving t n =
  match n.role with
  | Leader -> t.leader_alive
  | Follower -> (not n.diverged) && lag t n.id <= t.config.lag_threshold
  | Deposed -> false

let read ?subject ?lane t ~node:id query =
  let n = node t id in
  match n.role with
  | Deposed -> Error (dead_node_error id)
  | Leader when not t.leader_alive -> Error (dead_node_error id)
  | Leader ->
      Serve.snapshot_request ?subject ?lane n.serve
        (Engine.current_snapshot n.eng) query
  | Follower ->
      if serving t n then
        Serve.snapshot_request ?subject ?lane n.serve
          (Engine.current_snapshot n.eng) query
      else fail_closed t

(* Lag-aware routing: the least-lagged serving follower wins; a live
   leader is the fallback; otherwise fail closed rather than guess. *)
let route ?subject ?lane t query =
  let candidates = List.filter (serving t) (followers t) in
  let best =
    List.fold_left
      (fun acc n ->
        match acc with
        | None -> Some n
        | Some m -> if lag t n.id < lag t m.id then Some n else acc)
      None candidates
  in
  match best with
  | Some n -> (n.id, read ?subject ?lane t ~node:n.id query)
  | None ->
      if t.leader_alive then
        (t.leader_id, read ?subject ?lane t ~node:t.leader_id query)
      else (-1, fail_closed t)

(* ---------- failover ---------- *)

let kill_leader t = t.leader_alive <- false

type promotion = { node : int; epoch : int; state_sum : int32 }

let promote t id =
  let n = node t id in
  if t.leader_alive then Error "leader is alive; refusing promotion"
  else if n.role <> Follower then
    Error (Printf.sprintf "node %d is not a follower" id)
  else begin
    (* The candidate may have been killed mid-apply: run the restart
       protocol first so promotion never sees a half-applied epoch. *)
    heal_node t n;
    let sum = Engine.state_checksum n.eng in
    if n.diverged then
      Error
        (Printf.sprintf "node %d diverged from the leader's digest chain" id)
    else if sum <> n.state_sum then
      Error
        (Printf.sprintf
           "node %d state digest %ld does not match its last verified epoch \
            digest %ld"
           id sum n.state_sum)
    else begin
      (* Followers ahead of the new leader hold epochs it never saw;
         they cannot be rewound, so they fail closed until rebuilt. *)
      List.iter
        (fun m ->
          if m.role = Follower && m.id <> id && m.applied > n.applied then
            mark_diverged t m)
        t.nodes;
      (leader t).role <- Deposed;
      n.role <- Leader;
      Engine.set_read_only n.eng false;
      t.leader_id <- id;
      t.leader_alive <- true;
      (* Truncate the stream to the promoted tail and rewind the send
         cursors so surviving followers resume from the new leader. *)
      for e = n.applied + 1 to t.committed do
        Hashtbl.remove t.frames e
      done;
      t.committed <- n.applied;
      List.iter
        (fun m ->
          if m.role = Follower then begin
            m.shipped <- min m.shipped m.applied;
            m.reships <- 0
          end)
        t.nodes;
      Metrics.incr t.metrics "repl.promotions";
      Ok { node = id; epoch = n.applied; state_sum = sum }
    end
  end

(* ---------- observability ---------- *)

type node_status = {
  id : int;
  role : role;
  applied_epoch : int;
  node_lag : int;
  node_diverged : bool;
  node_serving : bool;
}

let status t =
  List.map
    (fun (n : node) ->
      {
        id = n.id;
        role = n.role;
        applied_epoch = n.applied;
        node_lag = lag t n.id;
        node_diverged = n.diverged;
        node_serving = serving t n;
      })
    t.nodes

let counter_names =
  [
    "repl.framed"; "repl.shipped"; "repl.reshipped"; "repl.received";
    "repl.applied";
    "repl.acked"; "repl.rejected"; "repl.dropped"; "repl.duplicated";
    "repl.reordered"; "repl.torn"; "repl.dups_dropped"; "repl.gap_requests";
    "repl.retries"; "repl.node_restarts"; "repl.divergences";
    "repl.wal_verified"; "repl.noops"; "repl.promotions";
    "repl.ship_faults"; "repl.recv_faults"; "repl.ack_faults";
    "repl.reship_exhausted"; "repl.errors"; Metrics.repl_stale_denials;
  ]

let pp_status ppf t =
  List.iter
    (fun s ->
      Format.fprintf ppf "node %d  %-9s applied %d  lag %d%s%s@." s.id
        (role_to_string s.role) s.applied_epoch s.node_lag
        (if s.node_diverged then "  DIVERGED" else "")
        (if s.node_serving then "  serving" else "  not-serving"))
    (status t);
  List.iter
    (fun name ->
      let v = Metrics.counter t.metrics name in
      if v > 0 then Format.fprintf ppf "%-22s %d@." name v)
    counter_names
