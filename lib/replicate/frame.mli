(** The replication wire format: one committed epoch per frame.

    A frame carries the epoch's logical operation
    ({!Xmlac_core.Engine.shipped_op}) serialized to bytes, the stream
    epoch number, an Adler-32 over the payload (same arithmetic as the
    WAL's, {!Xmlac_reldb.Wal.adler32}), the leader's post-epoch state
    digest ({!Xmlac_core.Engine.state_checksum}) and — when the leader
    applied the epoch cleanly — the Adler-32 of the epoch's row-WAL
    record batch read through {!Xmlac_reldb.Wal.epoch_checksum}, which
    a follower re-derives from its own log after applying as an
    end-to-end determinism cross-check. *)

type t

val make :
  epoch:int ->
  state_sum:int32 ->
  ?wal_sum:int32 ->
  Xmlac_core.Engine.shipped_op ->
  t

val epoch : t -> int
val state_sum : t -> int32
val wal_sum : t -> int32 option

val intact : t -> bool
(** Whether the payload still matches the declared checksum — the
    follower's receive-side integrity gate. *)

val op : t -> (Xmlac_core.Engine.shipped_op, string) result
(** Decode the operation; [Error] on a checksum mismatch or a payload
    the decoder cannot reconstruct (both are treated as torn frames
    and re-shipped). *)

val tear : t -> t
(** Truncate the payload while keeping the declared checksum — the
    chaos transport's deterministic torn-frame corruption.  {!intact}
    is [false] on the result. *)
