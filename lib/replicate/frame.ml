module Engine = Xmlac_core.Engine
module Wal = Xmlac_reldb.Wal
module Serializer = Xmlac_xml.Serializer
module Xml_parser = Xmlac_xml.Xml_parser

type t = {
  epoch : int;
  payload : string;
  sum : int32;
  state_sum : int32;
  wal_sum : int32 option;
}

let epoch f = f.epoch
let state_sum f = f.state_sum
let wal_sum f = f.wal_sum

let kind_to_tag = function
  | Engine.Native -> "native"
  | Engine.Row_sql -> "row"
  | Engine.Column_sql -> "column"

let kind_of_tag = function
  | "native" -> Some Engine.Native
  | "row" -> Some Engine.Row_sql
  | "column" -> Some Engine.Column_sql
  | _ -> None

(* One printable-prefix byte selects the op; the rest is the op's own
   encoding.  Inserts frame the target path length-prefixed so the
   serialized fragment can contain anything. *)
let payload_of_op = function
  | Engine.Ship_noop -> "N"
  | Engine.Ship_annotate k -> "A " ^ kind_to_tag k
  | Engine.Ship_annotate_subjects k -> "S " ^ kind_to_tag k
  | Engine.Ship_update q -> "U " ^ q
  | Engine.Ship_insert { at; fragment } ->
      Printf.sprintf "I %d\x00%s%s" (String.length at) at
        (Serializer.to_string fragment)

let op_of_payload s =
  let body () = String.sub s 2 (String.length s - 2) in
  let kind tag k =
    match kind_of_tag tag with
    | Some kd -> Ok (k kd)
    | None -> Error (Printf.sprintf "unknown backend tag %S" tag)
  in
  if s = "N" then Ok Engine.Ship_noop
  else if String.length s < 2 || s.[1] <> ' ' then
    Error "malformed frame payload"
  else
    match s.[0] with
    | 'A' -> kind (body ()) (fun k -> Engine.Ship_annotate k)
    | 'S' -> kind (body ()) (fun k -> Engine.Ship_annotate_subjects k)
    | 'U' -> Ok (Engine.Ship_update (body ()))
    | 'I' -> (
        let b = body () in
        match String.index_opt b '\x00' with
        | None -> Error "torn insert frame (no length delimiter)"
        | Some i -> (
            match int_of_string_opt (String.sub b 0 i) with
            | None -> Error "torn insert frame (bad length)"
            | Some len ->
                if String.length b < i + 1 + len then
                  Error "torn insert frame (short target)"
                else
                  let at = String.sub b (i + 1) len in
                  let xml =
                    String.sub b (i + 1 + len)
                      (String.length b - i - 1 - len)
                  in
                  (match Xml_parser.parse xml with
                  | Ok fragment -> Ok (Engine.Ship_insert { at; fragment })
                  | Error _ -> Error "torn insert frame (unparsable fragment)")))
    | _ -> Error "unknown frame op"

let make ~epoch ~state_sum ?wal_sum op =
  let payload = payload_of_op op in
  { epoch; payload; sum = Wal.adler32 1l payload; state_sum; wal_sum }

let intact f = Wal.adler32 1l f.payload = f.sum

let op f =
  if not (intact f) then Error "frame checksum mismatch (torn frame)"
  else op_of_payload f.payload

(* Deterministic frame corruption for the chaos transport: keep the
   declared checksum but truncate the payload, as a half-written
   network buffer would. *)
let tear f = { f with payload = String.sub f.payload 0 (String.length f.payload / 2) }
