(** XML text output.

    Produces the textual form used for Table 5 size measurements and
    for the native-store round trip.  Accessibility annotations are
    emitted as [sign="+"] / [sign="-"] attributes, exactly as the
    paper's native XML representation stores them. *)

val escape : string -> string
(** Escapes ampersand, angle brackets and double quote for use in
    content and attribute values. *)

val to_buffer : ?indent:bool -> ?signs:bool -> Buffer.t -> Tree.t -> unit
(** Serializes the document. [indent] (default [false]) pretty-prints
    with two-space indentation; [signs] (default [true]) emits sign
    attributes for annotated nodes. *)

val to_string : ?indent:bool -> ?signs:bool -> Tree.t -> string

val byte_size : ?signs:bool -> Tree.t -> int
(** Size in bytes of the compact serialization, without materializing
    the string. *)
