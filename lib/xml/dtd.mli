(** XML DTDs in the style of the paper's Figure 1.

    An element type declares either text content ([#PCDATA]), empty
    content, a {e sequence} of child particles, or a {e choice} among
    child particles.  Particles carry the usual occurrence indicators
    [?], [*], [+].  This matches the node-and-edge labeled graph
    representation the paper uses for schemas (straight edges =
    sequence, dashed edges = choice).

    The re-annotation machinery (Section 5.3) requires the schema to be
    non-recursive so that descendant-axis expansion terminates; see
    {!Schema_graph.is_recursive}. *)

type occurrence = One | Optional | Star | Plus

val occurrence_to_string : occurrence -> string

type particle = { elem : string; occ : occurrence }

type content =
  | Pcdata  (** Text-only leaf. *)
  | Empty  (** No content at all. *)
  | Seq of particle list  (** All particles, subject to occurrences. *)
  | Choice of particle list  (** Exactly one branch (or none if every
                                 branch is optional). *)

type t

val make : root:string -> (string * content) list -> t
(** [make ~root decls] builds a DTD. Raises [Invalid_argument] when a
    particle references an undeclared element type, on duplicate
    declarations, or when [root] is undeclared. *)

val root : t -> string
val element_types : t -> string list
(** Declared element types, in declaration order. *)

val content : t -> string -> content
(** @raise Not_found for undeclared types. *)

val declares : t -> string -> bool

val child_types : t -> string -> string list
(** Element types that may appear as children, in declaration order. *)

(** {1 Concrete syntax}

    A subset of real DTD syntax, e.g.:
    {[
      <!ELEMENT hospital (dept+)>
      <!ELEMENT treatment (regular? | experimental?)>
      <!ELEMENT med (#PCDATA)>
      <!ELEMENT note EMPTY>
    ]}
    The first declared element is the root. Nested groups are not
    supported (the paper's schemas do not use them). *)

val parse : string -> (t, string) result
val parse_exn : string -> t
val to_string : t -> string

(** {1 Validation} *)

type violation = {
  node_id : int;
  elem : string;
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

val validate : t -> Tree.t -> violation list
(** Checks every node of the document against its declared content
    model: undeclared element names, wrong root, text in non-PCDATA
    elements, missing/extra/over-multiplied children, and mixed choice
    branches.  The document tree is unordered (Section 2.1), so
    sequence order is not enforced, only multiplicities. *)

val is_valid : t -> Tree.t -> bool
