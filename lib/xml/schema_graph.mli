(** Derived structural information about a DTD.

    The re-annotation algorithm of Section 5.3 replaces descendant axes
    inside rule predicates "with relative paths using only the child
    axis.  With the schema information these replacements are finite."
    This module provides exactly that: enumeration of the label paths
    realizable under a (non-recursive) DTD, plus reachability and a
    recursion check. *)

type t

val build : Dtd.t -> t
(** Precomputes parent/child maps and reachability. O(types^2). *)

val dtd : t -> Dtd.t

val is_recursive : t -> bool
(** True when some element type can (transitively) contain itself.
    Path enumerations below raise [Invalid_argument] on recursive
    schemas. *)

val parents : t -> string -> string list
(** Element types in which the given type may occur as a child. *)

val reachable : t -> src:string -> dst:string -> bool
(** Whether a downward path of length >= 1 exists from [src] to
    [dst]. *)

val root_paths : t -> string list list
(** All label paths from the root type down to every type, each path
    including both endpoints ([[["hospital"]; ["hospital"; "dept"]; ...]]). *)

val paths_to : t -> string -> string list list
(** Root paths ending at the given type. *)

val paths_between : t -> src:string -> dst:string -> string list list
(** All child-axis label paths [src; ...; dst] of length >= 2 (i.e.,
    [dst] a proper descendant of [src]).  Used to expand
    [.//experimental] under [patient] into
    [treatment/experimental]-style chains. *)

val max_depth : t -> int
(** Length of the longest root path (number of nodes). *)

val type_exists : t -> string -> bool
