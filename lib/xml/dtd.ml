type occurrence = One | Optional | Star | Plus

let occurrence_to_string = function
  | One -> ""
  | Optional -> "?"
  | Star -> "*"
  | Plus -> "+"

type particle = { elem : string; occ : occurrence }

type content =
  | Pcdata
  | Empty
  | Seq of particle list
  | Choice of particle list

type t = {
  root : string;
  order : string list;
  decls : (string, content) Hashtbl.t;
}

let particles = function
  | Pcdata | Empty -> []
  | Seq ps | Choice ps -> ps

let make ~root decls =
  let table = Hashtbl.create 32 in
  let order = List.map fst decls in
  List.iter
    (fun (name, content) ->
      if Hashtbl.mem table name then
        invalid_arg (Printf.sprintf "Dtd.make: duplicate declaration of %s" name);
      Hashtbl.replace table name content)
    decls;
  if not (Hashtbl.mem table root) then
    invalid_arg (Printf.sprintf "Dtd.make: undeclared root %s" root);
  List.iter
    (fun (name, content) ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem table p.elem) then
            invalid_arg
              (Printf.sprintf "Dtd.make: %s references undeclared type %s" name
                 p.elem))
        (particles content))
    decls;
  { root; order; decls = table }

let root t = t.root
let element_types t = t.order
let content t name = Hashtbl.find t.decls name
let declares t name = Hashtbl.mem t.decls name

let child_types t name =
  match Hashtbl.find_opt t.decls name with
  | None -> []
  | Some c -> List.map (fun p -> p.elem) (particles c)

(* ------------------------------------------------------------------ *)
(* Concrete syntax                                                     *)

let to_string t =
  let buf = Buffer.create 256 in
  List.iter
    (fun name ->
      let body =
        match content t name with
        | Pcdata -> "(#PCDATA)"
        | Empty -> "EMPTY"
        | Seq ps ->
            "("
            ^ String.concat ", "
                (List.map (fun p -> p.elem ^ occurrence_to_string p.occ) ps)
            ^ ")"
        | Choice ps ->
            "("
            ^ String.concat " | "
                (List.map (fun p -> p.elem ^ occurrence_to_string p.occ) ps)
            ^ ")"
      in
      Buffer.add_string buf (Printf.sprintf "<!ELEMENT %s %s>\n" name body))
    t.order;
  Buffer.contents buf

let parse input =
  let len = String.length input in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let skip_spaces () =
    while !pos < len && is_space input.[!pos] do
      incr pos
    done
  in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  let parse_name () =
    let start = !pos in
    while !pos < len && is_name_char input.[!pos] do
      incr pos
    done;
    if !pos = start then None else Some (String.sub input start (!pos - start))
  in
  let parse_particle () =
    match parse_name () with
    | None -> None
    | Some elem ->
        let occ =
          if !pos < len then
            match input.[!pos] with
            | '?' -> incr pos; Optional
            | '*' -> incr pos; Star
            | '+' -> incr pos; Plus
            | _ -> One
          else One
        in
        Some { elem; occ }
  in
  let rec parse_decls acc =
    skip_spaces ();
    if !pos >= len then Ok (List.rev acc)
    else if !pos + 9 <= len && String.sub input !pos 9 = "<!ELEMENT" then begin
      pos := !pos + 9;
      skip_spaces ();
      match parse_name () with
      | None -> error "expected an element name at offset %d" !pos
      | Some name -> (
          skip_spaces ();
          if !pos + 5 <= len && String.sub input !pos 5 = "EMPTY" then begin
            pos := !pos + 5;
            skip_spaces ();
            if !pos < len && input.[!pos] = '>' then begin
              incr pos;
              parse_decls ((name, Empty) :: acc)
            end
            else error "expected '>' after EMPTY in %s" name
          end
          else if !pos < len && input.[!pos] = '(' then begin
            incr pos;
            skip_spaces ();
            if !pos + 7 <= len && String.sub input !pos 7 = "#PCDATA" then begin
              pos := !pos + 7;
              skip_spaces ();
              if !pos < len && input.[!pos] = ')' then begin
                incr pos;
                skip_spaces ();
                if !pos < len && input.[!pos] = '>' then begin
                  incr pos;
                  parse_decls ((name, Pcdata) :: acc)
                end
                else error "expected '>' after (#PCDATA) in %s" name
              end
              else error "expected ')' after #PCDATA in %s" name
            end
            else
              (* particle list, separated uniformly by ',' or '|' *)
              let rec particles_loop ps sep =
                skip_spaces ();
                match parse_particle () with
                | None -> error "expected a particle in %s" name
                | Some p -> (
                    let ps = p :: ps in
                    skip_spaces ();
                    if !pos < len && input.[!pos] = ')' then begin
                      incr pos;
                      skip_spaces ();
                      if !pos < len && input.[!pos] = '>' then begin
                        incr pos;
                        let body =
                          match sep with
                          | Some '|' -> Choice (List.rev ps)
                          | _ -> Seq (List.rev ps)
                        in
                        parse_decls ((name, body) :: acc)
                      end
                      else error "expected '>' at end of %s" name
                    end
                    else if !pos < len && (input.[!pos] = ',' || input.[!pos] = '|')
                    then begin
                      let c = input.[!pos] in
                      match sep with
                      | Some s when s <> c ->
                          error "mixed ',' and '|' in %s" name
                      | _ ->
                          incr pos;
                          particles_loop ps (Some c)
                    end
                    else error "expected ',', '|' or ')' in %s" name)
              in
              particles_loop [] None
          end
          else error "expected '(' or EMPTY in declaration of %s" name)
    end
    else error "expected '<!ELEMENT' at offset %d" !pos
  in
  match parse_decls [] with
  | Error _ as e -> e
  | Ok [] -> Error "empty DTD"
  | Ok ((root, _) :: _ as decls) -> (
      match make ~root decls with
      | t -> Ok t
      | exception Invalid_argument m -> Error m)

let parse_exn input =
  match parse input with Ok t -> t | Error m -> invalid_arg ("Dtd.parse: " ^ m)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

type violation = {
  node_id : int;
  elem : string;
  reason : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "node #%d <%s>: %s" v.node_id v.elem v.reason

let count_children n =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (c : Tree.node) ->
      let k = match Hashtbl.find_opt counts c.Tree.name with
        | None -> 0
        | Some k -> k
      in
      Hashtbl.replace counts c.Tree.name (k + 1))
    (Tree.children n);
  counts

let occurrence_ok occ k =
  match occ with
  | One -> k = 1
  | Optional -> k <= 1
  | Star -> true
  | Plus -> k >= 1

let occurrence_msg occ =
  match occ with
  | One -> "exactly one"
  | Optional -> "at most one"
  | Star -> "any number of"
  | Plus -> "at least one"

let validate t doc =
  let violations = ref [] in
  let bad (n : Tree.node) fmt =
    Printf.ksprintf
      (fun reason ->
        violations := { node_id = n.Tree.id; elem = n.Tree.name; reason }
                      :: !violations)
      fmt
  in
  let check (n : Tree.node) =
    match Hashtbl.find_opt t.decls n.Tree.name with
    | None -> bad n "undeclared element type"
    | Some model -> (
        let counts = count_children n in
        let declared = List.map (fun (p : particle) -> p.elem) (particles model) in
        Hashtbl.iter
          (fun name _ ->
            if not (List.mem name declared) then
              bad n "child <%s> not allowed by content model" name)
          counts;
        match model with
        | Pcdata ->
            if Tree.children n <> [] then bad n "PCDATA element has children"
        | Empty ->
            if Tree.children n <> [] then bad n "EMPTY element has children";
            if n.Tree.value <> None then bad n "EMPTY element has text"
        | Seq ps ->
            if n.Tree.value <> None then bad n "sequence element has text";
            List.iter
              (fun (p : particle) ->
                let k =
                  match Hashtbl.find_opt counts p.elem with
                  | None -> 0
                  | Some k -> k
                in
                if not (occurrence_ok p.occ k) then
                  bad n "expected %s <%s>, found %d"
                    (occurrence_msg p.occ) p.elem k)
              ps
        | Choice ps ->
            if n.Tree.value <> None then bad n "choice element has text";
            let used =
              List.filter (fun (p : particle) -> Hashtbl.mem counts p.elem) ps
            in
            (match used with
            | [] ->
                (* Allowed when the choice is effectively optional,
                   e.g. (regular? | experimental?) may be empty. *)
                if
                  not
                    (List.for_all
                       (fun p -> p.occ = Optional || p.occ = Star)
                       ps)
                then bad n "empty choice with a mandatory branch"
            | [ p ] ->
                let k = Hashtbl.find counts p.elem in
                if not (occurrence_ok p.occ k) then
                  bad n "expected %s <%s>, found %d"
                    (occurrence_msg p.occ) p.elem k
            | _ -> bad n "children from more than one choice branch"))
  in
  let root = Tree.root doc in
  if root.Tree.name <> t.root then
    bad root "root is <%s> but the DTD requires <%s>" root.Tree.name t.root;
  Tree.iter check doc;
  List.rev !violations

let is_valid t doc = validate t doc = []
