let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_buffer ?(indent = false) ?(signs = true) buf t =
  let open Tree in
  let rec emit depth n =
    if indent then Buffer.add_string buf (String.make (2 * depth) ' ');
    Buffer.add_char buf '<';
    Buffer.add_string buf n.name;
    (match (signs, n.sign) with
    | true, Some s ->
        Buffer.add_string buf " sign=\"";
        Buffer.add_string buf (sign_to_string s);
        Buffer.add_char buf '"'
    | _ -> ());
    match (n.children, n.value) with
    | [], None ->
        Buffer.add_string buf "/>";
        if indent then Buffer.add_char buf '\n'
    | [], Some v ->
        Buffer.add_char buf '>';
        Buffer.add_string buf (escape v);
        Buffer.add_string buf "</";
        Buffer.add_string buf n.name;
        Buffer.add_char buf '>';
        if indent then Buffer.add_char buf '\n'
    | cs, _ ->
        Buffer.add_char buf '>';
        if indent then Buffer.add_char buf '\n';
        List.iter (emit (depth + 1)) cs;
        if indent then Buffer.add_string buf (String.make (2 * depth) ' ');
        Buffer.add_string buf "</";
        Buffer.add_string buf n.name;
        Buffer.add_char buf '>';
        if indent then Buffer.add_char buf '\n'
  in
  emit 0 (Tree.root t)

let to_string ?indent ?signs t =
  let buf = Buffer.create 1024 in
  to_buffer ?indent ?signs buf t;
  Buffer.contents buf

let byte_size ?signs t =
  let buf = Buffer.create 4096 in
  to_buffer ~indent:false ?signs buf t;
  Buffer.length buf
