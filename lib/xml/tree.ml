type sign = Plus | Minus

let sign_to_string = function Plus -> "+" | Minus -> "-"

let sign_of_string = function
  | "+" -> Some Plus
  | "-" -> Some Minus
  | _ -> None

let pp_sign ppf s = Format.pp_print_string ppf (sign_to_string s)

module Bitset = Xmlac_util.Bitset
module Imap = Map.Make (Int)

(* Copy-on-write generations.  A record carries the generation that
   created it ([gen]); the tree carries the generation currently being
   written.  A record born in the current generation is private — no
   frozen view can reference it — and is mutated in place, exactly as
   the pre-COW tree did; a record born earlier is shared with frozen
   views and must be path-copied ([privatize]) before the first write
   of the generation touches it.  A tree that is never frozen stays in
   generation 0 forever and every mutation takes the in-place path. *)

type node = {
  id : int;
  mutable name : string;
  mutable value : string option;
  mutable parent : node option;
  mutable children : node list;
  mutable sign : sign option;
  mutable bits : Bitset.t option;
  mutable gen : int;
  fam : int;
}

(* Per-generation write accounting, reset at every freeze: the ids
   touched (the epoch's change set), records born, records displaced
   per birth generation (the chunk-refcount feed of the snapshot
   registry), and the coarse change-kind flags downstream carry
   decisions key on. *)
type delta = {
  mutable changed : unit Imap.t;
  mutable born : int;
  mutable displaced : int Imap.t;
  mutable structural : bool;
  mutable bits_touched : bool;
}

type freeze_stats = {
  frozen_gen : int;
  changed : int list;
  born : int;
  displaced : (int * int) list;
  structural : bool;
  bits_touched : bool;
}

type t = {
  mutable next_id : int;
  mutable index : node Imap.t;
  mutable root_node : node;
  mutable node_count : int;
  mutable gen : int;
  mutable frozen_view : bool;
  fam : int;
  mutable delta : delta;
}

let family_counter = ref 0

let new_family () =
  incr family_counter;
  !family_counter

let empty_delta () =
  {
    changed = Imap.empty;
    born = 0;
    displaced = Imap.empty;
    structural = false;
    bits_touched = false;
  }

let touch t id = t.delta.changed <- Imap.add id () t.delta.changed

let check_live name t =
  if t.frozen_view then invalid_arg (name ^ ": tree is a frozen snapshot view")

let fresh_node t ~name ~value ~parent =
  let id = t.next_id in
  t.next_id <- id + 1;
  let n =
    { id; name; value; parent; children = []; sign = None; bits = None;
      gen = t.gen; fam = t.fam }
  in
  t.index <- Imap.add id n t.index;
  t.node_count <- t.node_count + 1;
  t.delta.born <- t.delta.born + 1;
  touch t id;
  n

let dummy_node =
  { id = -1; name = ""; value = None; parent = None; children = []; sign = None;
    bits = None; gen = 0; fam = 0 }

let create ~root_name =
  let t =
    { next_id = 0; index = Imap.empty; root_node = dummy_node; node_count = 0;
      gen = 0; frozen_view = false; fam = new_family ();
      delta = empty_delta () }
  in
  let root = fresh_node t ~name:root_name ~value:None ~parent:None in
  t.root_node <- root;
  t

let root t = t.root_node
let generation t = t.gen
let frozen t = t.frozen_view
let family t = t.fam

let mem t (n : node) = n.fam = t.fam && Imap.mem n.id t.index

(* A held node reference can be a displaced record — a pre-privatize
   copy from an older generation — so every entry point resolves to
   the node's current record by id before acting. *)
let resolve name t (n : node) =
  if n.fam <> t.fam then invalid_arg name;
  match Imap.find_opt n.id t.index with
  | Some c -> c
  | None -> invalid_arg name

let bump_displaced (d : delta) g = d.displaced <- Imap.update g
    (function None -> Some 1 | Some c -> Some (c + 1)) d.displaced

(* Path-copy: make the node's current record private to the current
   generation.  The parent chain is privatized first (resolved by id —
   a shared record's parent pointer can itself be displaced), then the
   current parent's child slot is repointed.  Children are left shared;
   they are privatized if and when something writes them. *)
let rec privatize t (n : node) =
  if n.gen = t.gen then n
  else begin
    let parent' =
      match n.parent with
      | None -> None
      | Some p -> (
          match Imap.find_opt p.id t.index with
          | Some pc -> Some (privatize t pc)
          | None -> assert false)
    in
    let fresh = { n with gen = t.gen; parent = parent' } in
    bump_displaced t.delta n.gen;
    (match parent' with
    | Some p ->
        p.children <-
          List.map (fun c -> if c.id = n.id then fresh else c) p.children
    | None -> t.root_node <- fresh);
    t.index <- Imap.add n.id fresh t.index;
    touch t n.id;
    fresh
  end

let add_child t parent ?value name =
  check_live "Tree.add_child" t;
  let parent = resolve "Tree.add_child: foreign parent" t parent in
  if parent.value <> None then
    invalid_arg "Tree.add_child: parent holds a text value";
  let parent = privatize t parent in
  let n = fresh_node t ~name ~value ~parent:(Some parent) in
  parent.children <- parent.children @ [ n ];
  t.delta.structural <- true;
  n

let set_value t node v =
  check_live "Tree.set_value" t;
  let node = resolve "Tree.set_value: foreign node" t node in
  if node.children <> [] then
    invalid_arg "Tree.set_value: node has element children";
  if node.value <> v then begin
    let node = privatize t node in
    node.value <- v;
    (* Values feed query predicates, so a value write invalidates
       structure-derived carry the same way an insert does. *)
    t.delta.structural <- true;
    touch t node.id
  end

let rec iter_subtree f n =
  f n;
  List.iter (iter_subtree f) n.children

let delete t node =
  check_live "Tree.delete" t;
  let node = resolve "Tree.delete: foreign node" t node in
  match node.parent with
  | None -> invalid_arg "Tree.delete: cannot delete the root"
  | Some p ->
      let p =
        match Imap.find_opt p.id t.index with
        | Some pc -> privatize t pc
        | None -> assert false
      in
      p.children <- List.filter (fun c -> c.id <> node.id) p.children;
      iter_subtree
        (fun n ->
          t.index <- Imap.remove n.id t.index;
          t.node_count <- t.node_count - 1;
          if n.gen = t.gen then t.delta.born <- t.delta.born - 1
          else bump_displaced t.delta n.gen;
          touch t n.id)
        node;
      t.delta.structural <- true;
      (* Only a private record may be detached in place; a shared one
         is still the spine of older frozen views. *)
      if node.gen = t.gen then node.parent <- None

let rec copy_into t parent src =
  let n = fresh_node t ~name:src.name ~value:src.value ~parent:(Some parent) in
  n.sign <- src.sign;
  n.bits <- src.bits;
  parent.children <- parent.children @ [ n ];
  List.iter (fun c -> ignore (copy_into t n c)) src.children;
  n

let graft t parent fragment =
  check_live "Tree.graft" t;
  let parent = resolve "Tree.graft: foreign parent" t parent in
  if parent.value <> None then
    invalid_arg "Tree.graft: parent holds a text value";
  let parent = privatize t parent in
  t.delta.structural <- true;
  copy_into t parent fragment.root_node

let find t id = Imap.find_opt id t.index

let size t = t.node_count

let parent n = n.parent
let children n = n.children

let parent_live t n =
  match n.parent with
  | None -> None
  | Some p -> Imap.find_opt p.id t.index

let descendants n =
  let acc = ref [] in
  let rec go m = List.iter (fun c -> acc := c :: !acc; go c) m.children in
  go n;
  List.rev !acc

let descendant_or_self n = n :: descendants n

(* Nearest ancestor first, root last. *)
let ancestors n =
  let rec go acc m =
    match m.parent with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] n

let depth n = List.length (ancestors n)

let label_path n =
  let rec go acc m =
    let acc = m.name :: acc in
    match m.parent with None -> acc | Some p -> go acc p
  in
  go [] n

let iter f t = iter_subtree f t.root_node

let fold f acc t =
  let acc = ref acc in
  iter (fun n -> acc := f !acc n) t;
  !acc

let nodes t = descendant_or_self t.root_node

let count p t = fold (fun acc n -> if p n then acc + 1 else acc) 0 t

let set_sign t n s =
  check_live "Tree.set_sign" t;
  let n = resolve "Tree.set_sign: foreign node" t n in
  if n.sign <> s then begin
    let n = privatize t n in
    n.sign <- s;
    touch t n.id
  end

let set_bits t n b =
  check_live "Tree.set_bits" t;
  let n = resolve "Tree.set_bits: foreign node" t n in
  if not (Option.equal Bitset.equal n.bits b) then begin
    let n = privatize t n in
    n.bits <- b;
    t.delta.bits_touched <- true;
    touch t n.id
  end

(* Collect ids first, then write: privatization repoints child slots,
   so mutating while traversing the very lists being repointed is
   asking for trouble. *)
let clear_signs t =
  check_live "Tree.clear_signs" t;
  let ids = fold (fun acc n -> if n.sign <> None then n.id :: acc else acc) [] t in
  List.iter
    (fun id ->
      match Imap.find_opt id t.index with
      | Some n ->
          let n = privatize t n in
          n.sign <- None;
          touch t id
      | None -> ())
    ids

let clear_bits t =
  check_live "Tree.clear_bits" t;
  let ids = fold (fun acc n -> if n.bits <> None then n.id :: acc else acc) [] t in
  if ids <> [] then t.delta.bits_touched <- true;
  List.iter
    (fun id ->
      match Imap.find_opt id t.index with
      | Some n ->
          let n = privatize t n in
          n.bits <- None;
          touch t id
      | None -> ())
    ids

let signed t s =
  fold (fun acc n -> if n.sign = Some s then n :: acc else acc) [] t
  |> List.rev

let freeze t =
  if t.frozen_view then invalid_arg "Tree.freeze: already a frozen view";
  let d = t.delta in
  let stats =
    {
      frozen_gen = t.gen;
      changed = List.rev (Imap.fold (fun id () acc -> id :: acc) d.changed []);
      born = max 0 d.born;
      displaced = Imap.bindings d.displaced;
      structural = d.structural;
      bits_touched = d.bits_touched;
    }
  in
  (* The view shares the index map (persistent), the record spine and
     the counters by value; the live tree moves to the next generation
     with a clean slate, so its next write to any shared record copies
     first. *)
  let view = { t with frozen_view = true; delta = empty_delta () } in
  t.gen <- t.gen + 1;
  t.delta <- empty_delta ();
  (view, stats)

let copy t =
  let t' =
    { next_id = t.next_id; index = Imap.empty; root_node = dummy_node;
      node_count = 0; gen = 0; frozen_view = false; fam = new_family ();
      delta = empty_delta () }
  in
  let rec dup parent src =
    let n =
      { id = src.id; name = src.name; value = src.value; parent;
        children = []; sign = src.sign; bits = src.bits; gen = 0; fam = t'.fam }
    in
    t'.index <- Imap.add n.id n t'.index;
    t'.node_count <- t'.node_count + 1;
    n.children <- List.map (fun c -> dup (Some n) c) src.children;
    n
  in
  t'.root_node <- dup None t.root_node;
  t'

let rec equal_nodes ~signs a b =
  String.equal a.name b.name
  && a.value = b.value
  && (not signs
     || (a.sign = b.sign && Option.equal Bitset.equal a.bits b.bits))
  && List.length a.children = List.length b.children
  && List.for_all2 (equal_nodes ~signs) a.children b.children

let equal_structure a b = equal_nodes ~signs:false a.root_node b.root_node
let equal_annotated a b = equal_nodes ~signs:true a.root_node b.root_node

let pp ppf t =
  let rec go indent n =
    Format.fprintf ppf "%s%s#%d" indent n.name n.id;
    (match n.sign with
    | Some s -> Format.fprintf ppf " (%s)" (sign_to_string s)
    | None -> ());
    (match n.value with
    | Some v -> Format.fprintf ppf " = %S" v
    | None -> ());
    Format.pp_print_newline ppf ();
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" t.root_node
