type sign = Plus | Minus

let sign_to_string = function Plus -> "+" | Minus -> "-"

let sign_of_string = function
  | "+" -> Some Plus
  | "-" -> Some Minus
  | _ -> None

let pp_sign ppf s = Format.pp_print_string ppf (sign_to_string s)

module Bitset = Xmlac_util.Bitset

type node = {
  id : int;
  mutable name : string;
  mutable value : string option;
  mutable parent : node option;
  mutable children : node list;
  mutable sign : sign option;
  mutable bits : Bitset.t option;
}

type t = {
  mutable next_id : int;
  index : (int, node) Hashtbl.t;
  mutable root_node : node;
}

let fresh_node t ~name ~value ~parent =
  let id = t.next_id in
  t.next_id <- id + 1;
  let n = { id; name; value; parent; children = []; sign = None; bits = None } in
  Hashtbl.replace t.index id n;
  n

let dummy_node =
  { id = -1; name = ""; value = None; parent = None; children = []; sign = None;
    bits = None }

let create ~root_name =
  let t = { next_id = 0; index = Hashtbl.create 64; root_node = dummy_node } in
  let root = fresh_node t ~name:root_name ~value:None ~parent:None in
  t.root_node <- root;
  t

let root t = t.root_node

let mem t n =
  match Hashtbl.find_opt t.index n.id with
  | Some n' -> n' == n
  | None -> false

let add_child t parent ?value name =
  if not (mem t parent) then invalid_arg "Tree.add_child: foreign parent";
  if parent.value <> None then
    invalid_arg "Tree.add_child: parent holds a text value";
  let n = fresh_node t ~name ~value ~parent:(Some parent) in
  parent.children <- parent.children @ [ n ];
  n

let set_value t node v =
  if not (mem t node) then invalid_arg "Tree.set_value: foreign node";
  if node.children <> [] then
    invalid_arg "Tree.set_value: node has element children";
  node.value <- v

let rec iter_subtree f n =
  f n;
  List.iter (iter_subtree f) n.children

let delete t node =
  if not (mem t node) then invalid_arg "Tree.delete: foreign node";
  match node.parent with
  | None -> invalid_arg "Tree.delete: cannot delete the root"
  | Some p ->
      p.children <- List.filter (fun c -> c != node) p.children;
      node.parent <- None;
      iter_subtree (fun n -> Hashtbl.remove t.index n.id) node

let rec copy_into t parent src =
  let n = fresh_node t ~name:src.name ~value:src.value ~parent:(Some parent) in
  n.sign <- src.sign;
  n.bits <- src.bits;
  parent.children <- parent.children @ [ n ];
  List.iter (fun c -> ignore (copy_into t n c)) src.children;
  n

let graft t parent fragment =
  if not (mem t parent) then invalid_arg "Tree.graft: foreign parent";
  if parent.value <> None then
    invalid_arg "Tree.graft: parent holds a text value";
  copy_into t parent fragment.root_node

let find t id = Hashtbl.find_opt t.index id

let size t = Hashtbl.length t.index

let parent n = n.parent
let children n = n.children

let descendants n =
  let acc = ref [] in
  let rec go m = List.iter (fun c -> acc := c :: !acc; go c) m.children in
  go n;
  List.rev !acc

let descendant_or_self n = n :: descendants n

(* Nearest ancestor first, root last. *)
let ancestors n =
  let rec go acc m =
    match m.parent with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] n

let depth n = List.length (ancestors n)

let label_path n =
  let rec go acc m =
    let acc = m.name :: acc in
    match m.parent with None -> acc | Some p -> go acc p
  in
  go [] n

let iter f t = iter_subtree f t.root_node

let fold f acc t =
  let acc = ref acc in
  iter (fun n -> acc := f !acc n) t;
  !acc

let nodes t = descendant_or_self t.root_node

let count p t = fold (fun acc n -> if p n then acc + 1 else acc) 0 t

let set_sign n s = n.sign <- s
let set_bits n b = n.bits <- b
let clear_bits t = iter (fun n -> n.bits <- None) t

let signed t s =
  fold (fun acc n -> if n.sign = Some s then n :: acc else acc) [] t
  |> List.rev

let clear_signs t = iter (fun n -> n.sign <- None) t

let copy t =
  let t' =
    { next_id = t.next_id; index = Hashtbl.create (size t);
      root_node = dummy_node }
  in
  let rec dup parent src =
    let n =
      { id = src.id; name = src.name; value = src.value; parent;
        children = []; sign = src.sign; bits = src.bits }
    in
    Hashtbl.replace t'.index n.id n;
    n.children <- List.map (fun c -> dup (Some n) c) src.children;
    n
  in
  t'.root_node <- dup None t.root_node;
  t'

let rec equal_nodes ~signs a b =
  String.equal a.name b.name
  && a.value = b.value
  && (not signs
     || (a.sign = b.sign && Option.equal Bitset.equal a.bits b.bits))
  && List.length a.children = List.length b.children
  && List.for_all2 (equal_nodes ~signs) a.children b.children

let equal_structure a b = equal_nodes ~signs:false a.root_node b.root_node
let equal_annotated a b = equal_nodes ~signs:true a.root_node b.root_node

let pp ppf t =
  let rec go indent n =
    Format.fprintf ppf "%s%s#%d" indent n.name n.id;
    (match n.sign with
    | Some s -> Format.fprintf ppf " (%s)" (sign_to_string s)
    | None -> ());
    (match n.value with
    | Some v -> Format.fprintf ppf " = %S" v
    | None -> ());
    Format.pp_print_newline ppf ();
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" t.root_node
