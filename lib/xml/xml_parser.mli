(** Parser for the XML subset produced by {!Serializer}.

    Supported: element tags, self-closing tags, a single [sign]
    attribute per element (restored into the node's annotation slot),
    text content in leaf elements, character references for the five
    escapes, comments and an optional XML declaration.  Mixed content
    (text interleaved with elements) is rejected, matching the
    document model of the paper. *)

type error = { line : int; col : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Parse_error of error

val parse : string -> (Tree.t, error) result
(** Parses a complete document. *)

val parse_exn : string -> Tree.t
(** @raise Parse_error on malformed input. *)
