(** Rooted, unordered, mutable XML trees with copy-on-write freezes.

    This is the document model of the paper (Section 2.1): nodes carry
    labels from a finite alphabet of element names, leaf nodes may carry
    a data value, and every node has a document-unique integer id — the
    "universal identifier" that the relational mapping of Section 5.2
    relies on.  Each node also has a mutable [sign] slot storing the
    materialized accessibility annotation ("+"/"-") used by the native
    XML store.

    Trees are mutable because the paper's workload is update-heavy:
    annotation flips signs in place and document updates delete or
    insert subtrees.

    {2 Generations and frozen views}

    [freeze] publishes the current state as an immutable view in O(1):
    the view shares every node record and the persistent id index with
    the live tree, and the live tree moves to a new {e generation}.
    Each node record remembers the generation that created it; the
    first write of a generation to a record born earlier path-copies
    the record and its ancestor chain ([O(depth)]) before mutating, so
    frozen views never observe later writes.  A tree that is never
    frozen mutates fully in place, exactly as before.

    Two reading rules follow from path-copying.  (1) The current record
    of a node always lists current records as its [children], so any
    downward traversal from [root] sees only current state.  (2) A
    record's [parent] pointer may reference a {e displaced} (superseded)
    record whose [id]/[name] are correct but whose annotation slots are
    stale — upward walks that read more than identity must resolve the
    parent through [parent_live].  All mutators resolve their node
    argument by id first, so stale references held across mutations
    remain valid handles. *)

type sign = Plus | Minus

val sign_to_string : sign -> string
val sign_of_string : string -> sign option
val pp_sign : Format.formatter -> sign -> unit

type node = private {
  id : int;  (** Document-unique identifier, assigned at creation. *)
  mutable name : string;  (** Element name. *)
  mutable value : string option;  (** Text content of a leaf element. *)
  mutable parent : node option;
      (** [None] only for the root.  May point at a displaced record
          after the parent is path-copied: ids and names stay valid,
          annotation slots may be stale — see [parent_live]. *)
  mutable children : node list;  (** Document order preserved. *)
  mutable sign : sign option;  (** Materialized annotation, if any. *)
  mutable bits : Xmlac_util.Bitset.t option;
      (** Multi-subject annotation: the set of role bit indices with
          access, or [None] when unannotated (every role falls back to
          its resolved default semantics). *)
  mutable gen : int;  (** Generation that created this record. *)
  fam : int;  (** The tree family the record belongs to. *)
}

type t
(** A document: a root node plus the id allocator and id index. *)

(** {1 Construction} *)

val create : root_name:string -> t
(** A document whose root element is [root_name]. *)

val root : t -> node

val add_child : t -> node -> ?value:string -> string -> node
(** [add_child doc parent name] appends a fresh child element. Raises
    [Invalid_argument] if [parent] does not belong to [doc], or when
    adding a child to a node holding a text value. *)

val set_value : t -> node -> string option -> unit
(** Sets the text content of a leaf. Raises [Invalid_argument] on a
    node with element children. *)

val delete : t -> node -> unit
(** Detaches [node] (with its whole subtree) from the document and
    removes all its ids from the index. Deleting the root raises
    [Invalid_argument]. *)

val graft : t -> node -> t -> node
(** [graft doc parent fragment] deep-copies the root of document
    [fragment] (and its subtree) under [parent], assigning fresh ids in
    [doc]; returns the new child. *)

(** {1 Access} *)

val find : t -> int -> node option
(** Node's current record by universal id; O(log n). *)

val mem : t -> node -> bool
(** Whether the node currently belongs to the document (by id: any
    record of the node, current or displaced, answers the same). *)

val size : t -> int
(** Number of nodes in the document. *)

val parent : node -> node option

val parent_live : t -> node -> node option
(** The {e current} record of [n]'s parent: [parent] resolved through
    the document index.  Use this instead of [parent] whenever the
    walk reads annotation slots or children, which can be stale on a
    displaced record. *)

val children : node -> node list

val descendants : node -> node list
(** Proper descendants, document order (preorder). *)

val descendant_or_self : node -> node list

val ancestors : node -> node list
(** Proper ancestors, nearest first. *)

val depth : node -> int
(** Root has depth 0. *)

val label_path : node -> string list
(** Element names from the root down to the node, inclusive. *)

val iter : (node -> unit) -> t -> unit
(** Preorder traversal of the whole document. *)

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
val nodes : t -> node list

val count : (node -> bool) -> t -> int

(** {1 Annotations} *)

val set_sign : t -> node -> sign option -> unit
(** Writes the node's sign slot (path-copying first if the record is
    shared with a frozen view); no-op when the sign is unchanged. *)

val signed : t -> sign -> node list
(** Nodes currently carrying the given sign. *)

val clear_signs : t -> unit

val set_bits : t -> node -> Xmlac_util.Bitset.t option -> unit
(** Writes the node's role bitmap; [None] returns it to unannotated.
    No-op when the bitmap is unchanged. *)

val clear_bits : t -> unit
(** Erases every node's role bitmap (all nodes unannotated). *)

(** {1 Freezing} *)

type freeze_stats = {
  frozen_gen : int;  (** Generation the view captured. *)
  changed : int list;
      (** Ids written during the frozen generation (ascending): the
          epoch's change set.  Includes ids born and ids deleted. *)
  born : int;  (** Records created during the generation. *)
  displaced : (int * int) list;
      (** [(birth_gen, count)]: records superseded or deleted during
          the generation, grouped by the generation that created them —
          the snapshot registry's shared-chunk accounting feed. *)
  structural : bool;
      (** Whether the generation inserted/deleted nodes or changed a
          value (anything that can move query answer sets). *)
  bits_touched : bool;  (** Whether any role bitmap was written. *)
}

val freeze : t -> t * freeze_stats
(** Publishes the current state as an immutable view, O(1): the view
    shares all unchanged structure with the live tree, which moves to
    the next generation.  Mutating a frozen view raises
    [Invalid_argument]; freezing a frozen view likewise. *)

val frozen : t -> bool
(** Whether [t] is a frozen view. *)

val generation : t -> int
(** The generation currently being written ([freeze] increments it);
    on a frozen view, the generation the view captured. *)

val family : t -> int
(** Process-unique identifier shared by a tree and every view frozen
    from it; [copy] starts a new family.  Two trees share structure
    only within one family, so snapshot-sharing accounting keys on
    it. *)

(** {1 Copying and comparison} *)

val copy : t -> t
(** Deep copy preserving ids, values, signs and role bitmaps.  The
    copy is a fresh unfrozen generation-0 tree sharing nothing with
    [t]. *)

val equal_structure : t -> t -> bool
(** Same shape, names and values (ids and signs ignored); children are
    compared in document order. *)

val equal_annotated : t -> t -> bool
(** [equal_structure] and equal signs and role bitmaps
    node-for-node. *)

val pp : Format.formatter -> t -> unit
(** Debugging printer: indented outline with ids and signs. *)
