(** Rooted, unordered, mutable XML trees.

    This is the document model of the paper (Section 2.1): nodes carry
    labels from a finite alphabet of element names, leaf nodes may carry
    a data value, and every node has a document-unique integer id — the
    "universal identifier" that the relational mapping of Section 5.2
    relies on.  Each node also has a mutable [sign] slot storing the
    materialized accessibility annotation ("+"/"-") used by the native
    XML store.

    Trees are mutable because the paper's workload is update-heavy:
    annotation flips signs in place and document updates delete or
    insert subtrees. *)

type sign = Plus | Minus

val sign_to_string : sign -> string
val sign_of_string : string -> sign option
val pp_sign : Format.formatter -> sign -> unit

type node = private {
  id : int;  (** Document-unique identifier, assigned at creation. *)
  mutable name : string;  (** Element name. *)
  mutable value : string option;  (** Text content of a leaf element. *)
  mutable parent : node option;  (** [None] only for the root. *)
  mutable children : node list;  (** Document order preserved. *)
  mutable sign : sign option;  (** Materialized annotation, if any. *)
  mutable bits : Xmlac_util.Bitset.t option;
      (** Multi-subject annotation: the set of role bit indices with
          access, or [None] when unannotated (every role falls back to
          its resolved default semantics). *)
}

type t
(** A document: a root node plus the id allocator and id index. *)

(** {1 Construction} *)

val create : root_name:string -> t
(** A document whose root element is [root_name]. *)

val root : t -> node

val add_child : t -> node -> ?value:string -> string -> node
(** [add_child doc parent name] appends a fresh child element. Raises
    [Invalid_argument] if [parent] does not belong to [doc], or when
    adding a child to a node holding a text value. *)

val set_value : t -> node -> string option -> unit
(** Sets the text content of a leaf. Raises [Invalid_argument] on a
    node with element children. *)

val delete : t -> node -> unit
(** Detaches [node] (with its whole subtree) from the document and
    removes all its ids from the index. Deleting the root raises
    [Invalid_argument]. *)

val graft : t -> node -> t -> node
(** [graft doc parent fragment] deep-copies the root of document
    [fragment] (and its subtree) under [parent], assigning fresh ids in
    [doc]; returns the new child. *)

(** {1 Access} *)

val find : t -> int -> node option
(** Node by universal id; O(1). *)

val mem : t -> node -> bool
(** Whether the node currently belongs to the document. *)

val size : t -> int
(** Number of nodes in the document. *)

val parent : node -> node option
val children : node -> node list

val descendants : node -> node list
(** Proper descendants, document order (preorder). *)

val descendant_or_self : node -> node list

val ancestors : node -> node list
(** Proper ancestors, nearest first. *)

val depth : node -> int
(** Root has depth 0. *)

val label_path : node -> string list
(** Element names from the root down to the node, inclusive. *)

val iter : (node -> unit) -> t -> unit
(** Preorder traversal of the whole document. *)

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
val nodes : t -> node list

val count : (node -> bool) -> t -> int

(** {1 Annotations} *)

val set_sign : node -> sign option -> unit
val signed : t -> sign -> node list
(** Nodes currently carrying the given sign. *)

val clear_signs : t -> unit

val set_bits : node -> Xmlac_util.Bitset.t option -> unit
(** Writes the node's role bitmap; [None] returns it to unannotated. *)

val clear_bits : t -> unit
(** Erases every node's role bitmap (all nodes unannotated). *)

(** {1 Copying and comparison} *)

val copy : t -> t
(** Deep copy preserving ids, values, signs and role bitmaps. *)

val equal_structure : t -> t -> bool
(** Same shape, names and values (ids and signs ignored); children are
    compared in document order. *)

val equal_annotated : t -> t -> bool
(** [equal_structure] and equal signs and role bitmaps
    node-for-node. *)

val pp : Format.formatter -> t -> unit
(** Debugging printer: indented outline with ids and signs. *)
