type error = { line : int; col : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

exception Parse_error of error

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let fail st message =
  raise (Parse_error { line = st.line; col = st.pos - st.bol + 1; message })

let eof st = st.pos >= String.length st.input

let peek st = if eof st then '\000' else st.input.[st.pos]

let advance st =
  if not (eof st) then begin
    if st.input.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st <> c then fail st (Printf.sprintf "expected %C" c);
  advance st

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.' || c = ':'

let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_reference st =
  (* The '&' has been consumed. *)
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated character reference";
  let name = String.sub st.input start (st.pos - start) in
  advance st;
  match name with
  | "amp" -> '&'
  | "lt" -> '<'
  | "gt" -> '>'
  | "quot" -> '"'
  | "apos" -> '\''
  | _ -> fail st (Printf.sprintf "unknown reference &%s;" name)

let parse_attr_value st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | '"' -> advance st
    | '\000' -> fail st "unterminated attribute value"
    | '&' ->
        advance st;
        Buffer.add_char buf (parse_reference st);
        loop ()
    | c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let skip_comment st =
  (* "<!--" has been consumed. *)
  let rec loop () =
    if eof st then fail st "unterminated comment"
    else if
      peek st = '-'
      && st.pos + 2 < String.length st.input
      && st.input.[st.pos + 1] = '-'
      && st.input.[st.pos + 2] = '>'
    then begin
      advance st; advance st; advance st
    end
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let skip_prolog st =
  skip_spaces st;
  if
    st.pos + 1 < String.length st.input
    && peek st = '<'
    && st.input.[st.pos + 1] = '?'
  then begin
    while (not (eof st)) && peek st <> '>' do
      advance st
    done;
    expect st '>';
    skip_spaces st
  end

(* Attribute list of a start tag. Only [sign] is meaningful; any other
   attribute is rejected so silent data loss is impossible. *)
let parse_attributes st =
  let sign = ref None in
  let rec loop () =
    skip_spaces st;
    if is_name_start (peek st) then begin
      let name = parse_name st in
      skip_spaces st;
      expect st '=';
      skip_spaces st;
      let v = parse_attr_value st in
      (match name with
      | "sign" -> (
          match Tree.sign_of_string v with
          | Some s -> sign := Some s
          | None -> fail st (Printf.sprintf "invalid sign value %S" v))
      | _ -> fail st (Printf.sprintf "unsupported attribute %S" name));
      loop ()
    end
  in
  loop ();
  !sign

let parse_text st =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | '<' | '\000' -> ()
    | '&' ->
        advance st;
        Buffer.add_char buf (parse_reference st);
        loop ()
    | c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let all_spaces s = String.for_all is_space s

let parse input =
  let st = { input; pos = 0; line = 1; bol = 0 } in
  try
    skip_prolog st;
    (* Leading comments. *)
    let rec skip_misc () =
      skip_spaces st;
      if
        st.pos + 3 < String.length input
        && String.sub input st.pos 4 = "<!--"
      then begin
        st.pos <- st.pos + 4;
        skip_comment st;
        skip_misc ()
      end
    in
    skip_misc ();
    expect st '<';
    let root_name = parse_name st in
    let doc = Tree.create ~root_name in
    let root = Tree.root doc in
    Tree.set_sign doc root (parse_attributes st);
    (* Parses the rest of an element whose start tag is open, given the
       node it populates. Returns after consuming the matching end tag
       (or the self-closing marker). *)
    let rec finish_element node name =
      skip_spaces st;
      match peek st with
      | '/' ->
          advance st;
          expect st '>'
      | '>' ->
          advance st;
          parse_content node name
      | _ -> fail st "malformed start tag"
    and parse_content node name =
      let text = parse_text st in
      if peek st = '\000' then fail st "unexpected end of input";
      (* '<' is next *)
      advance st;
      match peek st with
      | '/' ->
          advance st;
          let close = parse_name st in
          if close <> name then
            fail st
              (Printf.sprintf "mismatched end tag </%s>, expected </%s>"
                 close name);
          skip_spaces st;
          expect st '>';
          if not (all_spaces text) then Tree.set_value doc node (Some text)
      | '!' ->
          advance st;
          expect st '-';
          expect st '-';
          skip_comment st;
          parse_content node name
      | _ ->
          if not (all_spaces text) then
            fail st "mixed content is not supported";
          let child_name = parse_name st in
          let child = Tree.add_child doc node child_name in
          Tree.set_sign doc child (parse_attributes st);
          finish_element child child_name;
          parse_content node name
    in
    finish_element root root_name;
    skip_spaces st;
    if not (eof st) then fail st "trailing content after the root element";
    Ok doc
  with Parse_error e -> Error e

let parse_exn input =
  match parse input with Ok t -> t | Error e -> raise (Parse_error e)
