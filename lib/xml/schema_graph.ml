module SS = Set.Make (String)

type t = {
  dtd : Dtd.t;
  parents : (string, string list) Hashtbl.t;
  reach : (string, SS.t) Hashtbl.t; (* proper descendants per type *)
  recursive : bool;
}

let compute_parents dtd =
  let parents = Hashtbl.create 32 in
  List.iter (fun ty -> Hashtbl.replace parents ty []) (Dtd.element_types dtd);
  List.iter
    (fun ty ->
      List.iter
        (fun child ->
          let cur = Hashtbl.find parents child in
          if not (List.mem ty cur) then
            Hashtbl.replace parents child (cur @ [ ty ]))
        (Dtd.child_types dtd ty))
    (Dtd.element_types dtd);
  parents

(* Transitive closure of the child relation, fixpoint iteration. Schemas
   have a few dozen types, so the quadratic fixpoint is plenty fast. *)
let compute_reach dtd =
  let reach = Hashtbl.create 32 in
  let types = Dtd.element_types dtd in
  List.iter
    (fun ty -> Hashtbl.replace reach ty (SS.of_list (Dtd.child_types dtd ty)))
    types;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ty ->
        let cur = Hashtbl.find reach ty in
        let extended =
          SS.fold
            (fun child acc -> SS.union acc (Hashtbl.find reach child))
            cur cur
        in
        if not (SS.equal cur extended) then begin
          Hashtbl.replace reach ty extended;
          changed := true
        end)
      types
  done;
  reach

let build dtd =
  let parents = compute_parents dtd in
  let reach = compute_reach dtd in
  let recursive =
    List.exists
      (fun ty -> SS.mem ty (Hashtbl.find reach ty))
      (Dtd.element_types dtd)
  in
  { dtd; parents; reach; recursive }

let dtd t = t.dtd
let is_recursive t = t.recursive

let parents t ty =
  match Hashtbl.find_opt t.parents ty with None -> [] | Some ps -> ps

let reachable t ~src ~dst =
  match Hashtbl.find_opt t.reach src with
  | None -> false
  | Some s -> SS.mem dst s

let require_non_recursive t who =
  if t.recursive then
    invalid_arg (who ^ ": recursive DTD; path enumeration does not terminate")

let root_paths t =
  require_non_recursive t "Schema_graph.root_paths";
  let acc = ref [] in
  let rec go path ty =
    let path = path @ [ ty ] in
    acc := path :: !acc;
    List.iter (go path) (Dtd.child_types t.dtd ty)
  in
  go [] (Dtd.root t.dtd);
  List.rev !acc

let paths_to t target =
  List.filter
    (fun path ->
      match List.rev path with [] -> false | last :: _ -> last = target)
    (root_paths t)

let paths_between t ~src ~dst =
  require_non_recursive t "Schema_graph.paths_between";
  let acc = ref [] in
  let rec go path ty =
    let path = path @ [ ty ] in
    if ty = dst && List.length path >= 2 then acc := path :: !acc;
    (* Continue below even after a hit: dst may also occur deeper. *)
    List.iter (go path) (Dtd.child_types t.dtd ty)
  in
  go [] src;
  List.rev !acc

let max_depth t =
  List.fold_left (fun m p -> max m (List.length p)) 0 (root_paths t)

let type_exists t ty = Dtd.declares t.dtd ty
