module Tree = Xmlac_xml.Tree
module Db = Xmlac_reldb.Database
module Table = Xmlac_reldb.Table
module Value = Xmlac_reldb.Value
module Sql = Xmlac_reldb.Sql
module Executor = Xmlac_reldb.Executor
module Shred = Xmlac_shrex.Shred
module Translate = Xmlac_shrex.Translate

module Bitset = Xmlac_util.Bitset

let sign_value s = Value.Str (Tree.sign_to_string s)

(* Figure 6 resolves the table of every tuple in the annotation
   query's answer ("we iterate over all tables ... computes the
   intersection") and then issues per-tuple UPDATE statements.  We
   implement the table resolution with primary-index probes — one
   lookup per table per id, worst case — which matches the paper's
   intent while keeping the cost proportional to the id set rather
   than to the database size (essential for partial re-annotation). *)
let set_sign_ids mapping db ids sign =
  let updated = ref 0 in
  List.iter
    (fun id ->
      match Shred.node_table mapping db id with
      | None -> ()
      | Some table ->
          let name = Table.name table in
          let n =
            Executor.run_stmt db
              (Sql.Update
                 {
                   table = name;
                   set = [ ("s", sign_value sign) ];
                   where =
                     [ Sql.eq
                         (Sql.Col (Sql.col name "id"))
                         (Sql.Const (Value.Int id)) ];
                 })
          in
          updated := !updated + n)
    ids;
  !updated

(* Bitmap writes go through the executor like every other UPDATE, so
   the statement WAL (when attached) captures them for free — the
   printable wire form of [Bitset.to_string] embeds in a string
   literal unescaped. *)
let write_bits db table id bits =
  let name = Table.name table in
  Executor.run_stmt db
    (Sql.Update
       {
         table = name;
         set = [ ("b", Value.Str (Bitset.to_string bits)) ];
         where =
           [ Sql.eq (Sql.Col (Sql.col name "id")) (Sql.Const (Value.Int id)) ];
       })

let read_bits table id =
  match Table.find_by_id table id with
  | None -> None
  | Some row -> (
      let column = Xmlac_reldb.Schema.column_index (Table.schema table) "b" in
      match Table.get table ~row ~column with
      | Value.Str s -> Some (Bitset.of_string s)
      | _ -> None)

let make mapping db : Backend.t =
  let engine = Db.engine db in
  let eval_plan p =
    (* The relational algebra has no literal id-set operand, so a
       Restrict becomes a semijoin on the answer of the residual
       query. *)
    let restriction, core = Plan.split_restriction p in
    let ids = Executor.query_ids db (Plan.to_sql mapping core) in
    match restriction with
    | None -> ids
    | Some s -> List.filter (fun id -> Plan.Ids.mem id s) ids
  in
  {
    Backend.name = Table.engine_to_string engine ^ "-sql";
    eval_ids = (fun e -> Translate.eval_ids mapping db e);
    eval_plan;
    eval_plans = (fun ps -> List.map eval_plan ps);
    set_sign_ids = (fun ids sign -> set_sign_ids mapping db ids sign);
    reset_signs =
      (fun ~default ->
        let v = sign_value default in
        List.iter
          (fun table ->
            ignore
              (Executor.run_stmt db
                 (Sql.Update
                    { table = Table.name table; set = [ ("s", v) ]; where = [] })))
          (Db.tables db));
    sign_of =
      (fun id ->
        match Shred.node_table mapping db id with
        | None -> None
        | Some table -> (
            match Table.find_by_id table id with
            | None -> None
            | Some row ->
                let column =
                  Xmlac_reldb.Schema.column_index (Table.schema table) "s"
                in
                (match Table.get table ~row ~column with
                | Value.Str s -> Tree.sign_of_string s
                | _ -> None)));
    restore_sign =
      (fun id s ->
        (* A live tuple always carries a sign value, so the journal
           never records [None] for it; nothing to restore then. *)
        match s with
        | None -> ()
        | Some sign -> ignore (set_sign_ids mapping db [ id ] sign));
    set_bits_ids =
      (fun ids ~role ~value ~default ->
        let updated = ref 0 in
        List.iter
          (fun id ->
            match Shred.node_table mapping db id with
            | None -> ()
            | Some table ->
                let base =
                  match read_bits table id with
                  | Some b -> b
                  | None -> default
                in
                let bits =
                  if value then Bitset.add role base
                  else Bitset.remove role base
                in
                updated := !updated + write_bits db table id bits)
          ids;
        !updated);
    set_bits_batch =
      (fun edits ~default ->
        (* The batched stamp: one row read and one serialized UPDATE
           per touched node, however many roles the epoch flips on
           it — [set_bits_ids] pays both per (node, role). *)
        let applied = ref 0 in
        List.iter
          (fun (id, role_edits) ->
            if role_edits <> [] then
              match Shred.node_table mapping db id with
              | None -> ()
              | Some table ->
                  let base =
                    match read_bits table id with
                    | Some b -> b
                    | None -> default
                  in
                  let bits =
                    List.fold_left
                      (fun b (role, value) ->
                        if value then Bitset.add role b
                        else Bitset.remove role b)
                      base role_edits
                  in
                  let rows = write_bits db table id bits in
                  applied := !applied + (rows * List.length role_edits))
          edits;
        !applied);
    reset_bits =
      (fun ~default ->
        let v = Value.Str (Bitset.to_string default) in
        List.iter
          (fun table ->
            ignore
              (Executor.run_stmt db
                 (Sql.Update
                    { table = Table.name table; set = [ ("b", v) ]; where = [] })))
          (Db.tables db));
    bits_of =
      (fun id ->
        match Shred.node_table mapping db id with
        | None -> None
        | Some table -> read_bits table id);
    restore_bits =
      (fun id b ->
        (* A live tuple always carries a bitmap value, so the journal
           never records [None] for it; nothing to restore then. *)
        match b with
        | None -> ()
        | Some bits -> (
            match Shred.node_table mapping db id with
            | None -> ()
            | Some table -> ignore (write_bits db table id bits)));
    delete_update =
      (fun e ->
        let ids = Translate.eval_ids mapping db e in
        ignore (Shred.delete_subtrees mapping db ids);
        List.length ids);
    has_node = (fun id -> Shred.node_table mapping db id <> None);
    live_ids =
      (fun () ->
        List.sort Stdlib.compare
          (List.concat_map Table.ids (Db.tables db)));
    node_count = (fun () -> Db.total_tuples db);
  }
