(** Named roles and their inheritance DAG — the subject dimension of a
    multi-subject policy.

    Declaration order is load-bearing: a role's position is its {e bit
    index} in every per-node accessibility bitmap
    ({!Xmlac_util.Bitset}), so it must be stable across parsing,
    printing and annotation.  A role {e inherits} the rules of its
    parents (transitively); it may also override the policy's default
    semantics [ds] and conflict resolution [cr] for itself and its
    descendants. *)

type decl = {
  name : string;
  inherits : string list;  (** Parent roles, as declared. *)
  ds : Rule.effect option;  (** Per-role default-semantics override. *)
  cr : Rule.effect option;  (** Per-role conflict-resolution override. *)
}

val role :
  ?inherits:string list ->
  ?ds:Rule.effect ->
  ?cr:Rule.effect ->
  string ->
  decl
(** Declaration constructor; validation happens in {!make}. *)

type t
(** A validated role DAG: no duplicate names, no unknown parents, no
    inheritance cycles. *)

val default_role : string
(** ["default"] — the name of the implicit single role of a policy
    without subject declarations. *)

val solo : t
(** The one-role DAG every single-subject policy carries: just
    {!default_role}, no inheritance, no overrides. *)

val make : decl list -> (t, string) result
(** Validates and freezes a declaration list.  Fails on an empty list,
    a duplicate role name, an [inherits] reference to an undeclared
    role, or an inheritance cycle — the error message names the
    offender (and spells out the cycle path). *)

val make_exn : decl list -> t
(** @raise Invalid_argument on what {!make} rejects. *)

val count : t -> int
val decls : t -> decl list
(** In declaration (= bit) order. *)

val names : t -> string list
(** In declaration (= bit) order. *)

val index : t -> string -> int option
(** A role's bit index. *)

val name_of : t -> int -> string
(** @raise Invalid_argument when the index is out of range. *)

val mem : t -> string -> bool
val decl : t -> string -> decl option

val closure : t -> string -> string list
(** The role's inheritance closure — itself first, then ancestors in
    breadth-first order, deduplicated.  A rule qualified with any role
    in the closure applies to this role.
    @raise Invalid_argument on an unknown role. *)

val is_solo : t -> bool
(** Whether this is exactly the implicit single-subject DAG. *)

val resolved_ds : t -> string -> Rule.effect option
(** The role's effective [ds] override: its own, else the nearest
    ancestor's (breadth-first), else [None] (use the policy global). *)

val resolved_cr : t -> string -> Rule.effect option
(** Like {!resolved_ds}, for the conflict resolution. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
