(* Named roles and their inheritance DAG.

   A policy's subjects are a finite, ordered set of roles; declaration
   order is load-bearing — a role's index is its bit in every per-node
   accessibility bitmap, so the order must be stable across parsing,
   serialization and annotation.  Roles inherit rules from their
   parents ([inherits]); the closure is computed once, breadth-first,
   self first, so per-role rule resolution and (ds, cr) overrides are
   O(1) lookups afterwards. *)

type decl = {
  name : string;
  inherits : string list;
  ds : Rule.effect option;
  cr : Rule.effect option;
}

let role ?(inherits = []) ?ds ?cr name = { name; inherits; ds; cr }

type t = {
  order : decl array;
  by_name : (string, int) Hashtbl.t;
  closure : string list array; (* self first, then ancestors in BFS order *)
}

let default_role = "default"
let solo_decls = [ role default_role ]

let make decls =
  let order = Array.of_list decls in
  let by_name = Hashtbl.create (Array.length order) in
  let dup = ref None in
  Array.iteri
    (fun i d ->
      if Hashtbl.mem by_name d.name then
        (match !dup with None -> dup := Some d.name | Some _ -> ())
      else Hashtbl.replace by_name d.name i)
    order;
  match !dup with
  | Some name -> Error (Printf.sprintf "duplicate role %S" name)
  | None -> (
      if Array.length order = 0 then Error "no roles declared"
      else
        let unknown = ref None in
        Array.iter
          (fun d ->
            List.iter
              (fun p ->
                if (not (Hashtbl.mem by_name p)) && !unknown = None then
                  unknown :=
                    Some
                      (Printf.sprintf "role %S inherits unknown role %S" d.name
                         p))
              d.inherits)
          order;
        match !unknown with
        | Some msg -> Error msg
        | None -> (
            (* Cycle detection: iterative DFS with tricolor marking. *)
            let state = Array.make (Array.length order) `White in
            let cycle = ref None in
            let rec visit i trail =
              match state.(i) with
              | `Black -> ()
              | `Grey ->
                  if !cycle = None then
                    cycle :=
                      Some
                        (String.concat " -> "
                           (List.rev (order.(i).name :: trail)))
              | `White ->
                  state.(i) <- `Grey;
                  List.iter
                    (fun p ->
                      visit (Hashtbl.find by_name p) (order.(i).name :: trail))
                    order.(i).inherits;
                  state.(i) <- `Black
            in
            Array.iteri (fun i _ -> visit i []) order;
            match !cycle with
            | Some path ->
                Error (Printf.sprintf "role inheritance cycle: %s" path)
            | None ->
                (* Ancestor closure, BFS, self first, deduplicated. *)
                let closure =
                  Array.map
                    (fun d ->
                      let seen = Hashtbl.create 8 in
                      let out = ref [] in
                      let q = Queue.create () in
                      Queue.add d.name q;
                      while not (Queue.is_empty q) do
                        let n = Queue.take q in
                        if not (Hashtbl.mem seen n) then begin
                          Hashtbl.replace seen n ();
                          out := n :: !out;
                          List.iter
                            (fun p -> Queue.add p q)
                            (order.(Hashtbl.find by_name n)).inherits
                        end
                      done;
                      List.rev !out)
                    order
                in
                Ok { order; by_name; closure }))

let make_exn decls =
  match make decls with
  | Ok t -> t
  | Error msg -> invalid_arg ("Subject.make: " ^ msg)

let solo = make_exn solo_decls

let count t = Array.length t.order
let decls t = Array.to_list t.order
let names t = List.map (fun d -> d.name) (decls t)
let index t name = Hashtbl.find_opt t.by_name name
let mem t name = Hashtbl.mem t.by_name name

let name_of t i =
  if i < 0 || i >= Array.length t.order then
    invalid_arg (Printf.sprintf "Subject.name_of: no role with index %d" i)
  else t.order.(i).name

let decl t name = Option.map (fun i -> t.order.(i)) (index t name)

let closure t name =
  match index t name with
  | Some i -> t.closure.(i)
  | None -> invalid_arg (Printf.sprintf "Subject.closure: unknown role %S" name)

let is_solo t =
  match names t with [ n ] -> n = default_role | _ -> false

(* Resolve a per-role override: the role's own setting, else the
   nearest ancestor's (BFS order), else [None] — the caller falls back
   to the policy's global value. *)
let resolve t name get =
  let rec go = function
    | [] -> None
    | n :: rest -> (
        match get (t.order.(Hashtbl.find t.by_name n)) with
        | Some _ as v -> v
        | None -> go rest)
  in
  go (closure t name)

let resolved_ds t name = resolve t name (fun d -> d.ds)
let resolved_cr t name = resolve t name (fun d -> d.cr)

let equal a b =
  decls a = decls b

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i d ->
      Format.fprintf ppf "role %-12s (bit %d)" d.name i;
      (match d.inherits with
      | [] -> ()
      | ps -> Format.fprintf ppf " inherits %s" (String.concat ", " ps));
      (match d.ds with
      | Some e -> Format.fprintf ppf " default %s" (Rule.effect_to_string e)
      | None -> ());
      (match d.cr with
      | Some e -> Format.fprintf ppf " conflict %s" (Rule.effect_to_string e)
      | None -> ());
      if i < Array.length t.order - 1 then Format.fprintf ppf "@,")
    t.order;
  Format.fprintf ppf "@]"
