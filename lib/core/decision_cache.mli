(** Bounded, epoch-invalidated memo table for requester decisions.

    The paper's requester (Section 4) recomputes each all-or-nothing
    decision from the materialized signs on every call; under the
    read-heavy workloads the roadmap targets, the same XPath queries
    arrive over and over between document updates.  This cache makes
    the repeat case O(1): decisions are stored under a string key
    (backend + query text) tagged with the {e epoch} — the engine's
    version counter, bumped on every annotation or document change —
    and a lookup only answers when the stored epoch matches, so no
    decision computed against an old document or policy state can ever
    be served.

    Capacity is bounded; when full, entries are evicted in insertion
    order (and entries invalidated by an epoch bump are dropped lazily
    as they are encountered).  The cache stores values of any type —
    the engine instantiates it at {!Requester.decision}. *)

type 'a t

val default_capacity : int
(** 256. *)

val create : ?capacity:int -> unit -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> epoch:int -> string -> 'a option
(** The cached value, iff it was stored under the same [epoch].  An
    entry from an older epoch is removed on sight. *)

val add : 'a t -> epoch:int -> string -> 'a -> unit
(** Inserts (or overwrites) the entry, evicting the oldest ones when
    the table is at capacity. *)

val length : 'a t -> int
val capacity : 'a t -> int

val clear : 'a t -> unit
