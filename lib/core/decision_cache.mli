(** Bounded, epoch-invalidated memo table for requester decisions.

    The paper's requester (Section 4) recomputes each all-or-nothing
    decision from the materialized signs on every call; under the
    read-heavy workloads the roadmap targets, the same XPath queries
    arrive over and over between document updates.  This cache makes
    the repeat case O(1): decisions are stored under a string key
    (backend + query text) tagged with the {e epoch} — the engine's
    version counter, bumped on every annotation or document change —
    and a lookup only answers when the stored epoch matches, so no
    decision computed against an old document or policy state can ever
    be served.

    Capacity is bounded; when full, entries are evicted in insertion
    order (and entries invalidated by an epoch bump are dropped lazily
    as they are encountered).  The cache stores values of any type —
    the engine instantiates it at {!Requester.decision}. *)

type 'a t

val default_capacity : int
(** 256. *)

val create :
  ?capacity:int ->
  ?on_evict:(int -> unit) ->
  ?on_stale:(int -> unit) ->
  unit ->
  'a t
(** [on_evict] is called with the number of live entries evicted to
    make room for an insert, [on_stale] with the number of
    stale-epoch entries dropped by a lookup — the hooks the engine
    uses to mirror cache churn into its {!Xmlac_util.Metrics}
    registry ([cache.evictions], [cache.stale_drops]).  Both default
    to no-ops.
    @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> epoch:int -> string -> 'a option
(** The cached value, iff it was stored under the same [epoch].  An
    entry from an older epoch is removed on sight. *)

val add : 'a t -> epoch:int -> string -> 'a -> unit
(** Inserts (or overwrites) the entry, evicting the oldest ones when
    the table is at capacity. *)

val length : 'a t -> int
val capacity : 'a t -> int

val evictions : 'a t -> int
(** Lifetime count of live entries evicted for capacity. *)

val stale_drops : 'a t -> int
(** Lifetime count of stale-epoch entries dropped on lookup. *)

val iter : (string -> epoch:int -> 'a -> unit) -> 'a t -> unit
(** Visits every live entry (unspecified order) with its stored epoch
    — the snapshot layer's carry-forward walk, which re-adds entries
    that survive an epoch's change set into the next snapshot's
    cache. *)

val clear : 'a t -> unit
(** Drops every entry.  Not counted as eviction — clearing is the
    epoch-invalidation fast path, not capacity pressure. *)
