type stats = {
  triggered : int list;
  affected : int;
  deleted_roots : int;
  marked : int;
  changed : int list;
}

(* Union of the rules' scope id sets, evaluated through the backend —
   this feeds the affected-region computation before and after the
   update. *)
let scope_union (backend : Backend.t) rules =
  List.fold_left
    (fun acc (r : Rule.t) ->
      List.fold_left
        (fun acc id -> Plan.Ids.add id acc)
        acc
        (backend.Backend.eval_ids r.Rule.resource))
    Plan.Ids.empty rules

type prepared = {
  trig : Trigger.result;
  rules : Rule.t list;
  pre : Plan.Ids.t;
}

(* The pre-mutation half: triggered rules and their scopes before the
   update — nodes that may fall out of scope.  Side-effect free, so the
   engine can stash it for crash recovery. *)
let prepare ?schema (backend : Backend.t) depend ~touched =
  let trig = Trigger.run_all ?schema depend ~updates:touched in
  let rules = Trigger.triggered_rules depend trig in
  { trig; rules; pre = scope_union backend rules }

(* The post-mutation half; re-runnable by recovery once partial sign
   writes of a crashed attempt have been rolled back. *)
let finish ?schema (backend : Backend.t) depend { trig; rules; pre }
    ~deleted_roots =
  let policy = Depend.policy depend in
  (* Scopes after: nodes that may have entered scope. *)
  let post = scope_union backend rules in
  (* Pre-update scopes may reference deleted nodes; restrict the
     affected region to the nodes still stored. *)
  let live =
    Plan.Ids.filter backend.Backend.has_node (Plan.Ids.union pre post)
  in
  (* The restricted Annotation-Queries plan of Section 5.3: the
     triggered rules' compilation, rewritten, intersected with the
     affected region, evaluated in the backend's own algebra. *)
  let plan =
    Plan.restrict live (Plan.rewrite ?schema (Plan.of_rules policy rules))
  in
  let answer = Plan.Ids.of_list (backend.Backend.eval_plan plan) in
  (* Partition the surviving affected region into nodes to mark with
     the non-default sign and nodes to reset to the default, touching
     only "the nodes whose access permission changed due to the
     update". *)
  let default = plan.Plan.default in
  let mark_sign = plan.Plan.mark in
  let to_mark = ref [] and to_default = ref [] in
  Plan.Ids.iter
    (fun id ->
      let current = Backend.effective_sign backend ~default id in
      if Plan.Ids.mem id answer then begin
        if current <> mark_sign then to_mark := id :: !to_mark
      end
      else if current <> default then to_default := id :: !to_default)
    live;
  let to_default = List.rev !to_default and to_mark = List.rev !to_mark in
  let _ = backend.Backend.set_sign_ids to_default default in
  let marked = backend.Backend.set_sign_ids to_mark mark_sign in
  {
    triggered = Trigger.all trig;
    affected = Plan.Ids.cardinal live;
    deleted_roots;
    marked;
    changed = to_default @ to_mark;
  }

(* The generic repair cycle: [touched] locates the nodes the mutation
   inserts or deletes (the update expression of Section 5.3), [apply]
   performs it and reports how many subtree roots it touched. *)
let repair ?schema (backend : Backend.t) depend ~touched ~apply =
  let p = prepare ?schema backend depend ~touched in
  let deleted_roots = apply () in
  finish ?schema backend depend p ~deleted_roots

let reannotate ?schema backend depend ~update =
  repair ?schema backend depend ~touched:[ update ]
    ~apply:(fun () -> backend.Backend.delete_update update)

let full_reannotate (backend : Backend.t) policy ~update =
  let _ = backend.Backend.delete_update update in
  Annotator.annotate backend policy
