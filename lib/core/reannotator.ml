module Tree = Xmlac_xml.Tree

type stats = {
  triggered : int list;
  affected : int;
  deleted_roots : int;
  marked : int;
}

(* Per-rule scopes as id sets; the same evaluation feeds both the
   affected-region computation and the restricted annotation query, so
   each triggered rule is evaluated exactly once per document state
   (once before the update, once after). *)
let scopes (backend : Backend.t) rules =
  List.map
    (fun (r : Rule.t) ->
      let set = Hashtbl.create 64 in
      List.iter
        (fun id -> Hashtbl.replace set id ())
        (backend.Backend.eval_ids r.Rule.resource);
      (r, set))
    rules

let union_into acc sets =
  List.iter (fun (_, set) -> Hashtbl.iter (fun id () -> Hashtbl.replace acc id ()) set) sets

(* The generic repair cycle: [touched] locates the nodes the mutation
   inserts or deletes (the update expression of Section 5.3), [apply]
   performs it and reports how many subtree roots it touched. *)
let repair ?schema (backend : Backend.t) depend ~touched ~apply =
  let policy = Depend.policy depend in
  let trig = Trigger.run_all ?schema depend ~updates:touched in
  let rules = Trigger.triggered_rules depend trig in
  (* Scopes before the update: nodes that may fall out of scope. *)
  let pre = scopes backend rules in
  let deleted_roots = apply () in
  (* Scopes after: nodes that may have entered scope; these also feed
     the restricted annotation query below. *)
  let post = scopes backend rules in
  let affected = Hashtbl.create 256 in
  union_into affected pre;
  union_into affected post;
  (* The restricted Annotation-Queries result, combined in set algebra
     over the post-update scopes: primary-union minus secondary-union
     with the signs of Figure 5. *)
  let aq = Annotation_query.build (Policy.with_rules policy rules) in
  let in_union rules_wanted id =
    List.exists
      (fun ((r : Rule.t), set) ->
        Hashtbl.mem set id
        && List.exists (fun e -> Xmlac_xpath.Ast.equal_expr e r.Rule.resource)
             rules_wanted)
      post
  in
  let primary = aq.Annotation_query.primary in
  let secondary = aq.Annotation_query.secondary in
  let in_answer id = in_union primary id && not (in_union secondary id) in
  (* Partition the surviving affected region into nodes to mark with
     the non-default sign and nodes to reset to the default. *)
  let default = Policy.ds policy in
  let mark_sign = aq.Annotation_query.mark in
  let to_mark = ref [] and to_default = ref [] and live_affected = ref 0 in
  Hashtbl.iter
    (fun id () ->
      (* Pre-update scopes may reference deleted nodes; skip them.
         Also skip nodes whose sign is already right: the point of
         re-annotation is to touch only "the nodes whose access
         permission changed due to the update". *)
      if backend.Backend.has_node id then begin
        incr live_affected;
        let current = Backend.effective_sign backend ~default id in
        if in_answer id then begin
          if current <> mark_sign then to_mark := id :: !to_mark
        end
        else if current <> default then to_default := id :: !to_default
      end)
    affected;
  let _ = backend.Backend.set_sign_ids (List.rev !to_default) default in
  let marked =
    backend.Backend.set_sign_ids (List.rev !to_mark) aq.Annotation_query.mark
  in
  {
    triggered = Trigger.all trig;
    affected = !live_affected;
    deleted_roots;
    marked;
  }

let reannotate ?schema backend depend ~update =
  repair ?schema backend depend ~touched:[ update ]
    ~apply:(fun () -> backend.Backend.delete_update update)

let full_reannotate (backend : Backend.t) policy ~update =
  let _ = backend.Backend.delete_update update in
  Annotator.annotate backend policy
