module Tree = Xmlac_xml.Tree
module Sg = Xmlac_xml.Schema_graph
module Db = Xmlac_reldb.Database
module Table = Xmlac_reldb.Table
module Wal = Xmlac_reldb.Wal
module Metrics = Xmlac_util.Metrics
module Fault = Xmlac_util.Fault

type backend_kind = Native | Row_sql | Column_sql

let backend_kind_to_string = function
  | Native -> "native"
  | Row_sql -> "row-sql"
  | Column_sql -> "column-sql"

let fault_prefix = function
  | Native -> "native"
  | Row_sql -> "row"
  | Column_sql -> "column"

let all_backend_kinds = [ Native; Row_sql; Column_sql ]

type trigger_mode = Paper_mode | Overlap_mode

(* The in-flight mutating operation of an open sign epoch — everything
   recovery needs to finish (or abandon) it after a simulated crash. *)
type op =
  | Op_annotate of backend_kind
  | Op_annotate_subjects of backend_kind
  | Op_update of string
  | Op_insert of { at : string; fragment : Tree.t }
  | Op_noop
      (** An epoch that consumes its number without touching any store:
          what a replica applies when the leader's epoch aborted (its
          crash recovery rolled back), so epoch counters stay aligned
          without replaying a mutation that never took effect. *)

(* The wire-visible description of one committed epoch — everything a
   replica needs to reproduce the leader's operation through its own
   (deterministic) engine entry points. *)
type shipped_op =
  | Ship_noop
  | Ship_annotate of backend_kind
  | Ship_annotate_subjects of backend_kind
  | Ship_update of string
  | Ship_insert of { at : string; fragment : Tree.t }

type open_op = {
  num : int;  (** The epoch number being attempted. *)
  op : op;
  saved_annotated : backend_kind list;
  saved_bits_annotated : backend_kind list;
  saved_divergent : bool;
  mutable prepared : (backend_kind * Reannotator.prepared) list;
      (** Pre-mutation repair state, stashed per backend just before
          its structural apply — recovery's roll-forward input. *)
  mutable applied : backend_kind list;
      (** Backends whose structural mutation completed. *)
  mutable new_roots : Tree.node list;  (** Grafted roots (insert only). *)
}

type direction = [ `None | `Back | `Forward ]

type recovery = {
  recovered_epoch : int option;
  direction : direction;
  wal_dropped : int;
  signs_rolled_back : int;
  repaired : backend_kind list;
}

type t = {
  policy : Policy.t;
  original_policy : Policy.t;
  report : Optimizer.report option;
  mapping : Xmlac_shrex.Mapping.t;
  sg : Sg.t;
  depend : Depend.t;
  plan : Plan.t;
  doc : Tree.t;
  row_db : Db.t;
  col_db : Db.t;
  wal_row : Wal.t;
  wal_col : Wal.t;
  native : Backend.t;
  row : Backend.t;
  column : Backend.t;
  journals : (backend_kind * Backend.journal) list;
  (* The request fast lane: a CAM over the native store's signs,
     maintained incrementally, plus a bounded per-(backend, query)
     decision cache invalidated by bumping [epoch].  [annotated] lists
     the kinds annotated so far: relational requests may borrow the
     native CAM only while all stores are known to be in lockstep. *)
  metrics : Metrics.t;
  cache : Requester.decision Decision_cache.t;
  mutable cam : Cam.t;
  (* Per-role CAMs over the native store's bitmap slices, built lazily
     on the first subject request for that role and dropped whenever
     the bitmaps (or the document) may have moved — with hundreds of
     roles an eager rebuild of every map per epoch would dwarf the
     annotation itself. *)
  role_cams : (int, Cam.t) Hashtbl.t;
  mutable epoch : int;
  mutable annotated : backend_kind list;
  mutable bits_annotated : backend_kind list;
  mutable divergent : bool;
  (* Sign epochs: [sign_epoch] is the last committed epoch (monotone,
     never reused downward); [open_op] is the uncommitted one a crash
     may have left behind. *)
  mutable sign_epoch : int;
  mutable open_op : open_op option;
  (* MVCC: every committed sign epoch is published as an immutable
     snapshot; readers pin one and never block on the writer. *)
  snapshots : Snapshot.registry;
  (* Replication: a read-only replica refuses caller mutations; only
     [apply_replica] (which sets [applying] for its extent) may open
     epochs on it.  Promotion flips [read_only] back off. *)
  mutable read_only : bool;
  mutable applying : bool;
}

(* Freeze the committed materialization as of [sign_epoch] and install
   it as the current snapshot.  Called only between epochs (after
   [commit_op], at creation, after recovery) — never inside an open
   epoch — so a reader can never pin partial state. *)
let publish_snapshot t =
  let snap =
    (* The annotation flags describe the native tree being frozen —
       that is what snapshot requests read — so [Snapshot.request]'s
       auto lane can route a never-annotated frozen document through
       the rewrite lane instead of its default-sign CAM.  [prev] (the
       outgoing snapshot) feeds carry-forward: the capture compares
       the tree-level change set against it and migrates still-valid
       memoized decisions and per-role maps instead of cold-starting;
       the capture itself is an O(changed) [Tree.freeze], not a
       copy. *)
    Snapshot.capture ?prev:(Snapshot.current t.snapshots)
      ~epoch:t.sign_epoch ~policy:t.policy ~cam:t.cam
      ~annotated:(List.mem Native t.annotated || t.divergent)
      ~bits_annotated:(List.mem Native t.bits_annotated || t.divergent)
      ~metrics:t.metrics t.doc
  in
  Snapshot.publish t.snapshots snap

let create ?(mode = Paper_mode) ?(optimize = true) ?cache_capacity ~dtd ~policy
    doc =
  let mapping = Xmlac_shrex.Mapping.of_dtd dtd in
  let sg = Xmlac_shrex.Mapping.schema_graph mapping in
  let original_policy = policy in
  let report, policy =
    if optimize then
      let r = Optimizer.optimize policy in
      (Some r, r.Optimizer.result)
    else (None, policy)
  in
  let default_sign = Rule.effect_to_string (Policy.ds policy) in
  let default_bits = Policy.default_bits policy in
  let native_doc = Tree.copy doc in
  let row_db = Db.create Table.Row in
  let col_db = Db.create Table.Column in
  let _ = Xmlac_shrex.Shred.load mapping ~default_sign ~default_bits row_db doc in
  let _ = Xmlac_shrex.Shred.load mapping ~default_sign ~default_bits col_db doc in
  (* The bulk load above is the base image (checkpoint); journaling
     starts with the first mutating epoch, as with a real bulk load
     that bypasses the WAL. *)
  let wal_row = Wal.create () and wal_col = Wal.create () in
  Db.set_wal row_db (Some wal_row);
  Db.set_wal col_db (Some wal_col);
  let depend_mode =
    match mode with
    | Paper_mode -> Depend.Paper
    | Overlap_mode -> Depend.Overlap sg
  in
  let journals = List.map (fun k -> (k, Backend.journal ())) all_backend_kinds in
  let wrap kind base =
    Backend.with_faults
      ~prefix:(fault_prefix kind)
      (Backend.journaled (List.assoc kind journals) base)
  in
  let metrics = Metrics.create () in
  let t =
  {
    policy;
    original_policy;
    report;
    mapping;
    sg;
    depend = Depend.build ~mode:depend_mode policy;
    plan = Plan.rewrite ~schema:sg (Plan.of_policy policy);
    doc = native_doc;
    row_db;
    col_db;
    wal_row;
    wal_col;
    native = wrap Native (Xml_backend.make native_doc);
    row = wrap Row_sql (Rel_backend.make mapping row_db);
    column = wrap Column_sql (Rel_backend.make mapping col_db);
    journals;
    metrics;
    cache =
      Decision_cache.create ?capacity:cache_capacity
        ~on_evict:(Metrics.add metrics "cache.evictions")
        ~on_stale:(Metrics.add metrics "cache.stale_drops")
        ();
    cam = Cam.build native_doc ~default:(Policy.ds policy);
    role_cams = Hashtbl.create 8;
    epoch = 0;
    annotated = [];
    bits_annotated = [];
    divergent = false;
    sign_epoch = 0;
    open_op = None;
    snapshots = Snapshot.create_registry ~metrics ();
    read_only = false;
    applying = false;
  }
  in
  (* Epoch 0 (the load-time materialization) is a committed epoch like
     any other: publish it so readers can pin before the first
     mutation. *)
  publish_snapshot t;
  t

let policy t = t.policy
let original_policy t = t.original_policy
let decision_cache t = t.cache
let optimizer_report t = t.report
let mapping t = t.mapping
let schema_graph t = t.sg
let depend t = t.depend
let plan t = t.plan
let metrics t = t.metrics
let cam t = t.cam
let epoch t = t.epoch
let sign_epoch t = t.sign_epoch
let open_epoch t = Option.map (fun o -> o.num) t.open_op
let snapshots t = t.snapshots

let current_snapshot t =
  match Snapshot.current t.snapshots with
  | Some s -> s
  | None -> assert false (* published at creation, never emptied *)

let pin_snapshot t = Snapshot.pin t.snapshots
let unpin_snapshot t snap = Snapshot.unpin t.snapshots snap

let wal t = function
  | Native -> None
  | Row_sql -> Some t.wal_row
  | Column_sql -> Some t.wal_col

let explain ?(with_doc = true) t =
  Plan.explain ~schema:t.sg ~mapping:t.mapping
    ?doc:(if with_doc then Some t.doc else None)
    (Plan.of_policy t.policy)

let backend t = function
  | Native -> t.native
  | Row_sql -> t.row
  | Column_sql -> t.column

let document t = t.doc

(* All stores agree sign-for-sign when they share a history: either
   none has been annotated yet (all still carry the load-time default)
   or all three have been annotated since the last known divergence.
   Engine-level updates repair every store, so they preserve whichever
   of the two states holds; {!refresh} declares a divergence (signs
   were mutated behind the engine's back) that only annotating all
   three stores clears. *)
let in_lockstep t =
  match t.annotated with
  | [] -> not t.divergent
  | ks -> List.length ks = 3

(* Same reasoning for the bitmap layer: the stores' bitmaps agree when
   none has run the shared pass yet (all carry the load-time default
   bitmap) or all three have. *)
let in_bits_lockstep t =
  match t.bits_annotated with
  | [] -> not t.divergent
  | ks -> List.length ks = 3

let bump_epoch t = t.epoch <- t.epoch + 1

let role_index t role =
  match Subject.index (Policy.subjects t.policy) role with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Engine: unknown role %S (declared: %s)" role
           (String.concat ", " (Policy.roles t.policy)))

let role_cam_idx t idx =
  match Hashtbl.find_opt t.role_cams idx with
  | Some c -> c
  | None ->
      let role = Subject.name_of (Policy.subjects t.policy) idx in
      let c =
        Cam.build_role t.doc ~role:idx
          ~default:(Policy.resolved_ds t.policy role)
      in
      Hashtbl.replace t.role_cams idx c;
      Metrics.incr t.metrics "cam.role_builds";
      c

let role_cam t role = role_cam_idx t (role_index t role)

let drop_role_cams t = Hashtbl.reset t.role_cams

let rebuild_cam t =
  Metrics.incr t.metrics "cam.full_rebuilds";
  t.cam <- Cam.build t.doc ~default:(Policy.ds t.policy)

(* Incremental CAM maintenance from the re-annotator's changed-id
   report (plus the roots of freshly grafted subtrees); any failure
   falls back to a full rebuild, counted so the bench can see it. *)
let maintain_cam t ~changed ~roots =
  Fault.point "cam.repair";
  Metrics.time t.metrics "cam.maintain" (fun () ->
      match
        let touched = Cam.apply_changes t.cam t.doc ~changed in
        let touched =
          List.fold_left
            (fun acc root -> acc + Cam.rebuild_subtree t.cam t.doc ~root)
            touched roots
        in
        let purged = Cam.purge t.cam t.doc in
        (touched, purged)
      with
      | touched, purged ->
          Metrics.add t.metrics "cam.touched" touched;
          Metrics.add t.metrics "cam.purged" purged
      | exception (Fault.Crash _ as e) -> raise e
      | exception _ -> rebuild_cam t)

let cam_check t =
  let fresh = Cam.build t.doc ~default:(Policy.ds t.policy) in
  let ok = Cam.equal t.cam fresh in
  if not ok then begin
    Metrics.incr t.metrics "cam.check_failures";
    t.cam <- fresh
  end;
  ok

let refresh t =
  bump_epoch t;
  Decision_cache.clear t.cache;
  t.divergent <- true;
  t.annotated <- [];
  t.bits_annotated <- [];
  drop_role_cams t;
  rebuild_cam t;
  (* The signs moved behind the engine's back; the current snapshot no
     longer reflects them.  Republish under the same sign epoch —
     already-pinned readers keep their (now historical) version. *)
  publish_snapshot t

(* --- sign epochs --------------------------------------------------- *)

(* Every mutating operation runs inside a sign epoch: begin markers hit
   both relational WALs and arm the per-backend undo journals, and only
   [commit_op] advances [sign_epoch].  A crash (Fault.Crash escaping
   the operation) leaves [open_op] set; {!recover} resolves it. *)
let begin_op t op =
  if t.read_only && not t.applying then
    invalid_arg
      "Engine: read-only replica refuses direct mutation (epochs arrive via \
       apply_replica; promote to make it writable)";
  (match t.open_op with
  | Some o ->
      invalid_arg
        (Printf.sprintf
           "Engine: epoch %d is open and uncommitted (crashed?); run recover \
            before mutating again"
           o.num)
  | None -> ());
  let num = t.sign_epoch + 1 in
  Wal.begin_epoch t.wal_row num;
  Wal.begin_epoch t.wal_col num;
  let o =
    {
      num;
      op;
      saved_annotated = t.annotated;
      saved_bits_annotated = t.bits_annotated;
      saved_divergent = t.divergent;
      prepared = [];
      applied = [];
      new_roots = [];
    }
  in
  t.open_op <- Some o;
  List.iter (fun (_, j) -> Backend.journal_begin j) t.journals;
  o

let commit_op t o =
  Wal.commit_epoch t.wal_row o.num;
  Wal.commit_epoch t.wal_col o.num;
  List.iter (fun (_, j) -> Backend.journal_stop j) t.journals;
  t.sign_epoch <- o.num;
  t.open_op <- None;
  Metrics.incr t.metrics "epoch.commits";
  (* The epoch is durable; freeze it for readers.  A crash past this
     point (the snapshot.publish fault) leaves the registry one epoch
     behind — recovery's idempotent path republishes. *)
  publish_snapshot t

let annotate t kind =
  let o = begin_op t (Op_annotate kind) in
  let stats = Annotator.annotate_with_plan (backend t kind) t.plan in
  bump_epoch t;
  if not (List.mem kind t.annotated) then t.annotated <- kind :: t.annotated;
  if List.length t.annotated = 3 then t.divergent <- false;
  if kind = Native then
    t.cam <- Cam.build t.doc ~default:(Policy.ds t.policy);
  commit_op t o;
  stats

let annotate_all t =
  List.map (fun k -> (k, annotate t k)) all_backend_kinds

let annotate_subjects t kind =
  let o = begin_op t (Op_annotate_subjects kind) in
  let stats =
    Metrics.time t.metrics "annotate.subjects" (fun () ->
        Annotator.annotate_subjects ~schema:t.sg (backend t kind) t.policy)
  in
  bump_epoch t;
  if not (List.mem kind t.bits_annotated) then
    t.bits_annotated <- kind :: t.bits_annotated;
  if kind = Native then drop_role_cams t;
  commit_op t o;
  stats

let annotate_subjects_all t =
  List.map (fun k -> (k, annotate_subjects t k)) all_backend_kinds

(* Structural updates repair the single-subject signs incrementally
   (Reannotator), but the bitmap layer has no incremental repair yet —
   once the shared pass has materialized a store's bitmaps, keep them
   fresh by re-running it after the mutation, inside the same epoch
   (so a crash rolls the whole thing back together). *)
let reannotate_bits t =
  match t.bits_annotated with
  | [] -> ()
  | ks ->
      Metrics.incr t.metrics "subjects.reannotations";
      List.iter
        (fun k ->
          ignore
            (Annotator.annotate_subjects ~schema:t.sg (backend t k) t.policy))
        (List.rev ks);
      drop_role_cams t

let effective_plus t b id =
  Backend.effective_sign b ~default:(Policy.ds t.policy) id = Tree.Plus

let request_uncached t kind expr =
  let b = backend t kind in
  if kind = Native || in_lockstep t then begin
    let ids =
      Metrics.time t.metrics "request.eval" (fun () ->
          b.Backend.eval_ids expr)
    in
    Metrics.add t.metrics "cam.lookups" (List.length ids);
    Metrics.time t.metrics "request.check" (fun () ->
        Requester.decide ~ids ~accessible:(fun id ->
            match Tree.find t.doc id with
            | Some n -> Cam.lookup t.cam n = Tree.Plus
            | None ->
                (* Not in the native tree (should not happen while the
                   stores are in lockstep): fall back to the backend's
                   own signs. *)
                effective_plus t b id))
  end
  else begin
    (* This store's signs have diverged from the native ones (only one
       of the two annotation states reached it); the CAM does not
       describe it, so read its signs directly. *)
    Metrics.incr t.metrics "fastlane.bypass";
    Requester.request b ~default:(Policy.ds t.policy) expr
  end

(* The role's per-node sign, read off the bitmap layer: explicit where
   a bitmap is materialized, the role's resolved default elsewhere
   ([effective_bits] falls back to the policy's default bitmap, whose
   bit for [idx] encodes exactly that default). *)
let role_sign t b idx id =
  if
    Xmlac_util.Bitset.mem idx
      (Backend.effective_bits b ~default:(Policy.default_bits t.policy) id)
  then Tree.Plus
  else Tree.Minus

let request_uncached_subject t kind (role, idx) expr =
  let b = backend t kind in
  if kind = Native || in_bits_lockstep t then begin
    let ids =
      Metrics.time t.metrics "request.eval" (fun () ->
          b.Backend.eval_ids expr)
    in
    Metrics.add t.metrics "cam.lookups" (List.length ids);
    Metrics.add t.metrics ("cam.lookups." ^ role) (List.length ids);
    let cam = role_cam_idx t idx in
    Metrics.time t.metrics "request.check" (fun () ->
        Requester.decide ~ids ~accessible:(fun id ->
            match Tree.find t.doc id with
            | Some n -> Cam.lookup cam n = Tree.Plus
            | None -> role_sign t b idx id = Tree.Plus))
  end
  else begin
    (* This store's bitmaps have diverged from the native ones; the
       per-role CAM does not describe it, so read its bits directly. *)
    Metrics.incr t.metrics "fastlane.bypass";
    Metrics.incr t.metrics ("fastlane.bypass." ^ role);
    Requester.request_via ~sign:(role_sign t b idx) b expr
  end

(* --- lane selection ------------------------------------------------ *)

(* Whether the materialized layer a request would read — signs for the
   anonymous subject, role bitmaps for a named one — has a committed
   annotation epoch on this store. *)
let lane_annotated ?subject t kind =
  match subject with
  | None -> List.mem kind t.annotated
  | Some _ -> List.mem kind t.bits_annotated

let resolve_lane ?subject ?(lane = Rewrite.Auto) t kind =
  match lane with
  | Rewrite.Materialized -> (Rewrite.Materialized, "forced")
  | Rewrite.Rewrite -> (Rewrite.Rewrite, "forced")
  | Rewrite.Auto ->
      if lane_annotated ?subject t kind then
        (Rewrite.Materialized, "annotated store")
      else if t.divergent then
        (* [refresh] declared the signs mutated behind the engine's
           back: the store {e is} materialized (the CAM was rebuilt
           from whatever is there), the engine just cannot vouch for a
           committed annotation epoch — serve what the operator
           installed, not the policy recompilation. *)
        (Rewrite.Materialized, "diverged store")
      else (Rewrite.Rewrite, "never-annotated store")

(* The rewrite lane: compile the request against the policy (the
   cached engine plan for the anonymous subject, the role's projection
   otherwise) and evaluate the granted/residue pair through the
   backend — zero sign or bitmap reads, so a cold store answers the
   true policy decision. *)
let request_rewritten t kind subj expr =
  let b = backend t kind in
  Metrics.time t.metrics "request.rewrite" (fun () ->
      match subj with
      | None ->
          Requester.request_rewritten ~schema:t.sg ~plan:t.plan b t.policy expr
      | Some (role, _) ->
          Requester.request_rewritten ~schema:t.sg ~subject:role b t.policy
            expr)

let request ?subject ?lane t kind query =
  Metrics.time t.metrics "request" (fun () ->
      (* Resolve (and validate) the role before consulting the cache so
         an unknown role raises instead of poisoning a cache slot. *)
      let subj =
        match subject with
        | None -> None
        | Some role -> Some (role, role_index t role)
      in
      let lane, _reason = resolve_lane ?subject ?lane t kind in
      (* The effective lane is part of the cache key: the two lanes are
         answer-equivalent only while the materialized layer is fresh,
         and a forced-lane caller must not be served the other lane's
         memo. *)
      let lane_tag =
        match lane with Rewrite.Rewrite -> "R\x00" | _ -> "M\x00"
      in
      let key =
        match subject with
        | None -> lane_tag ^ backend_kind_to_string kind ^ "\x00" ^ query
        | Some role ->
            lane_tag ^ backend_kind_to_string kind ^ "\x00@" ^ role ^ "\x00"
            ^ query
      in
      let tally base =
        Metrics.incr t.metrics base;
        match subject with
        | Some role -> Metrics.incr t.metrics (base ^ "." ^ role)
        | None -> ()
      in
      match Decision_cache.find t.cache ~epoch:t.epoch key with
      | Some d ->
          tally "cache.hits";
          d
      | None ->
          tally "cache.misses";
          let expr = Requester.parse_or_fail query in
          let evictions_before = Decision_cache.evictions t.cache in
          let d =
            match lane with
            | Rewrite.Rewrite ->
                Metrics.incr t.metrics "lane.rewrite";
                (match subject with
                | Some role -> Metrics.incr t.metrics ("lane.rewrite." ^ role)
                | None -> ());
                request_rewritten t kind subj expr
            | _ -> (
                Metrics.incr t.metrics "lane.materialized";
                match subj with
                | None -> request_uncached t kind expr
                | Some s -> request_uncached_subject t kind s expr)
          in
          Decision_cache.add t.cache ~epoch:t.epoch key d;
          (match subject with
          | Some role ->
              (* Attribute evictions to the role whose insert forced
                 them — the per-role churn [explain --request] shows. *)
              let forced =
                Decision_cache.evictions t.cache - evictions_before
              in
              if forced > 0 then
                Metrics.add t.metrics ("cache.evictions." ^ role) forced
          | None -> ());
          d)

let request_direct ?subject t kind query =
  let b = backend t kind in
  let expr = Requester.parse_or_fail query in
  match subject with
  | None -> Requester.request b ~default:(Policy.ds t.policy) expr
  | Some role -> Requester.request_via ~sign:(role_sign t b (role_index t role)) b expr

let update t query =
  let expr = Xmlac_xpath.Parser.parse_exn query in
  let o = begin_op t (Op_update query) in
  let stats =
    List.map
      (fun k ->
        let b = backend t k in
        let prepared =
          Reannotator.prepare ~schema:t.sg b t.depend ~touched:[ expr ]
        in
        o.prepared <- (k, prepared) :: o.prepared;
        let deleted_roots = b.Backend.delete_update expr in
        o.applied <- k :: o.applied;
        (k, Reannotator.finish ~schema:t.sg b t.depend prepared ~deleted_roots))
      all_backend_kinds
  in
  bump_epoch t;
  (match List.assoc_opt Native stats with
  | Some s -> maintain_cam t ~changed:s.Reannotator.changed ~roots:[]
  | None -> rebuild_cam t);
  reannotate_bits t;
  drop_role_cams t;
  commit_op t o;
  stats

(* The insertion-point expressions the trigger treats as the update:
   the grafted roots and everything below them. *)
let insert_touched ~at_expr ~frag_root =
  let root_path =
    Xmlac_xpath.Ast.
      { steps = at_expr.steps @ [ step Child (Name frag_root) ] }
  in
  let subtree_path =
    Xmlac_xpath.Ast.{ steps = root_path.steps @ [ step Descendant Wildcard ] }
  in
  [ root_path; subtree_path ]

(* Insert updates: graft into the native store first, then mirror the
   freshly created subtrees — same universal ids — into both relational
   stores, repairing annotations in each through the generic cycle. *)
let insert t ~at ~fragment =
  let at_expr = Xmlac_xpath.Parser.parse_exn at in
  let frag_root = (Tree.root fragment).Tree.name in
  let touched = insert_touched ~at_expr ~frag_root in
  let default_sign = Rule.effect_to_string (Policy.ds t.policy) in
  let default_bits = Policy.default_bits t.policy in
  (* The op record takes ownership of [fragment] as-is: every use —
     the graft below and a crash-recovery roll-forward — only reads it
     ([Tree.graft] deep-copies into the target), so the old defensive
     [Tree.copy] bought nothing but an O(fragment) stall per insert.
     The aliasing contract (engine.mli): the caller must not mutate
     the fragment after handing it over. *)
  let o = begin_op t (Op_insert { at; fragment }) in
  let native_stats =
    let prepared =
      Reannotator.prepare ~schema:t.sg t.native t.depend ~touched
    in
    o.prepared <- (Native, prepared) :: o.prepared;
    Fault.point "native.insert";
    let roots = Xmlac_xmldb.Update.insert_nodes t.doc ~at:at_expr ~fragment in
    o.new_roots <- roots;
    o.applied <- Native :: o.applied;
    Reannotator.finish ~schema:t.sg t.native t.depend prepared
      ~deleted_roots:(List.length roots)
  in
  let rel kind b db =
    let prepared = Reannotator.prepare ~schema:t.sg b t.depend ~touched in
    o.prepared <- (kind, prepared) :: o.prepared;
    Fault.point (fault_prefix kind ^ ".insert");
    List.iter
      (fun root ->
        ignore
          (Xmlac_shrex.Shred.insert_subtree t.mapping ~default_sign
             ~default_bits db root))
      o.new_roots;
    o.applied <- kind :: o.applied;
    ( kind,
      Reannotator.finish ~schema:t.sg b t.depend prepared
        ~deleted_roots:(List.length o.new_roots) )
  in
  let stats =
    [ (Native, native_stats); rel Row_sql t.row t.row_db;
      rel Column_sql t.column t.col_db ]
  in
  bump_epoch t;
  maintain_cam t ~changed:native_stats.Reannotator.changed
    ~roots:(List.map (fun (n : Tree.node) -> n.Tree.id) o.new_roots);
  reannotate_bits t;
  drop_role_cams t;
  commit_op t o;
  stats

(* --- recovery ------------------------------------------------------ *)

(* Resume a structural operation: for each backend, take the stashed
   pre-mutation repair state (or compute it fresh while the backend is
   still untouched), apply the mutation if the crash preceded it, and
   re-run the repair's sign phase.  Partial sign writes of the crashed
   attempt were already rolled back, so [finish] recomputes them from
   the same inputs the uninterrupted operation would have used. *)
let roll_forward t o =
  let resume kind ~touched ~apply =
    let b = backend t kind in
    let prepared =
      match List.assoc_opt kind o.prepared with
      | Some p -> p
      | None -> Reannotator.prepare ~schema:t.sg b t.depend ~touched
    in
    let deleted_roots = if List.mem kind o.applied then 0 else apply b in
    ignore
      (Reannotator.finish ~schema:t.sg b t.depend prepared ~deleted_roots)
  in
  match o.op with
  | Op_annotate _ | Op_annotate_subjects _ | Op_noop -> assert false
  | Op_update query ->
      let expr = Xmlac_xpath.Parser.parse_exn query in
      List.iter
        (fun k ->
          resume k ~touched:[ expr ] ~apply:(fun b ->
              b.Backend.delete_update expr))
        all_backend_kinds
  | Op_insert { at; fragment } ->
      let at_expr = Xmlac_xpath.Parser.parse_exn at in
      let frag_root = (Tree.root fragment).Tree.name in
      let touched = insert_touched ~at_expr ~frag_root in
      let default_sign = Rule.effect_to_string (Policy.ds t.policy) in
      (* Native first: the relational mirrors need the grafted roots. *)
      resume Native ~touched ~apply:(fun _ ->
          let roots =
            Xmlac_xmldb.Update.insert_nodes t.doc ~at:at_expr ~fragment
          in
          o.new_roots <- roots;
          List.length roots);
      let default_bits = Policy.default_bits t.policy in
      let rel kind db =
        resume kind ~touched ~apply:(fun _ ->
            List.iter
              (fun root ->
                ignore
                  (Xmlac_shrex.Shred.insert_subtree t.mapping ~default_sign
                     ~default_bits db root))
              o.new_roots;
            List.length o.new_roots)
      in
      rel Row_sql t.row_db;
      rel Column_sql t.col_db

let recover t =
  (* The simulated restart: clear the kill and every armed trigger
     before touching any store, as a fresh process would start clean. *)
  Fault.recover ();
  let wal_dropped = Wal.recover t.wal_row + Wal.recover t.wal_col in
  match t.open_op with
  | None ->
      (* Nothing was in flight: the crash (if any) hit outside an
         epoch and left no partial state.  This makes recover
         idempotent — a second call after a completed recovery finds
         committed WAL tails and no open epoch, so it leaves every
         counter, the request epoch, the cache and the CAM untouched. *)
      if wal_dropped > 0 then begin
        Metrics.incr t.metrics "recovery.runs";
        Metrics.add t.metrics "recovery.wal_dropped" wal_dropped
      end;
      (* One exception to "leave everything untouched": a crash that
         hit after commit but before the snapshot publish leaves the
         registry an epoch behind.  Republishing is invisible to every
         other observable (epoch, counters, caches), so recover stays
         idempotent. *)
      if Snapshot.current_epoch t.snapshots <> Some t.sign_epoch then
        publish_snapshot t;
      {
        recovered_epoch = None;
        direction = `None;
        wal_dropped;
        signs_rolled_back = 0;
        repaired = [];
      }
  | Some o ->
      Metrics.incr t.metrics "recovery.runs";
      Metrics.add t.metrics "recovery.wal_dropped" wal_dropped;
      (* Re-frame the epoch: recovery's own writes (compensation or
         roll-forward) are journaled and committed under the same
         number, so the WAL never ends on an uncommitted tail. *)
      Wal.begin_epoch t.wal_row o.num;
      Wal.begin_epoch t.wal_col o.num;
      (* Undo the crashed attempt's partial sign writes first; the
         journals were recording since [begin_op]. *)
      let signs_rolled_back =
        List.fold_left (fun acc (_, j) -> acc + Backend.rollback j) 0 t.journals
      in
      t.annotated <- o.saved_annotated;
      t.bits_annotated <- o.saved_bits_annotated;
      t.divergent <- o.saved_divergent;
      let direction, repaired =
        match o.op with
        | Op_annotate _ | Op_annotate_subjects _ | Op_noop ->
            (* Annotation-only operation: the rollback above already
               restored the pre-epoch materialization — signs and
               bitmaps both — on every store. *)
            (`Back, [])
        | Op_update _ | Op_insert _ ->
            (* Structural operation: the mutation may have reached some
               stores; re-applying it everywhere and re-running the
               repair converges all three on the post-operation
               state.  Stores whose bitmaps were materialized get the
               shared pass re-run too, as the uninterrupted operation
               would have. *)
            roll_forward t o;
            reannotate_bits t;
            (`Forward, all_backend_kinds)
      in
      Wal.commit_epoch t.wal_row o.num;
      Wal.commit_epoch t.wal_col o.num;
      (* The epoch number is consumed either way — the counter never
         runs backwards, even across an aborted epoch. *)
      t.sign_epoch <- o.num;
      t.open_op <- None;
      List.iter (fun (_, j) -> Backend.journal_stop j) t.journals;
      bump_epoch t;
      Decision_cache.clear t.cache;
      rebuild_cam t;
      drop_role_cams t;
      (* The recovered epoch is committed; publish it like any other.
         Readers pinned through the crash keep their pre-crash
         snapshot untouched. *)
      publish_snapshot t;
      Metrics.add t.metrics "recovery.signs_rolled_back" signs_rolled_back;
      {
        recovered_epoch = Some o.num;
        direction;
        wal_dropped;
        signs_rolled_back;
        repaired;
      }

let accessible t kind =
  Backend.accessible_ids (backend t kind) ~default:(Policy.ds t.policy)

let consistent t =
  match List.map (accessible t) all_backend_kinds with
  | [ a; b; c ] -> a = b && b = c
  | _ -> assert false

let accessible_subject t kind role =
  let idx = role_index t role in
  Backend.accessible_ids_role (backend t kind)
    ~default:(Policy.default_bits t.policy) ~role:idx

let consistent_subjects t =
  List.for_all
    (fun role ->
      match
        List.map (fun k -> accessible_subject t k role) all_backend_kinds
      with
      | [ a; b; c ] -> a = b && b = c
      | _ -> assert false)
    (Policy.roles t.policy)

(* --- replication ---------------------------------------------------- *)

let read_only t = t.read_only
let set_read_only t flag = t.read_only <- flag

let noop_epoch t =
  let o = begin_op t Op_noop in
  commit_op t o

let apply_replica t op =
  Fault.point "repl.apply";
  let was = t.applying in
  t.applying <- true;
  Fun.protect
    ~finally:(fun () -> t.applying <- was)
    (fun () ->
      match op with
      | Ship_noop -> noop_epoch t
      | Ship_annotate kind -> ignore (annotate t kind)
      | Ship_annotate_subjects kind -> ignore (annotate_subjects t kind)
      | Ship_update query -> ignore (update t query)
      | Ship_insert { at; fragment } -> ignore (insert t ~at ~fragment))

(* A deterministic digest of the enforcement-relevant materialization:
   the anonymous accessible set and every role's accessible set, per
   backend.  Epoch counters are deliberately excluded — a replica whose
   crash recovery consumed extra local epoch numbers still converges on
   the leader's answers, and this digest is the arbiter of that
   convergence (shipped per frame, re-verified at promotion). *)
let state_checksum t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun kind ->
      Buffer.add_string buf (backend_kind_to_string kind);
      Buffer.add_char buf '\x00';
      List.iter
        (fun id ->
          Buffer.add_string buf (string_of_int id);
          Buffer.add_char buf ',')
        (accessible t kind);
      List.iter
        (fun role ->
          Buffer.add_char buf '@';
          Buffer.add_string buf role;
          Buffer.add_char buf ':';
          List.iter
            (fun id ->
              Buffer.add_string buf (string_of_int id);
              Buffer.add_char buf ',')
            (accessible_subject t kind role))
        (Policy.roles t.policy))
    all_backend_kinds;
  Wal.adler32 1l (Buffer.contents buf)
