module Tree = Xmlac_xml.Tree
module Sg = Xmlac_xml.Schema_graph
module Db = Xmlac_reldb.Database
module Table = Xmlac_reldb.Table

type backend_kind = Native | Row_sql | Column_sql

let backend_kind_to_string = function
  | Native -> "native"
  | Row_sql -> "row-sql"
  | Column_sql -> "column-sql"

let all_backend_kinds = [ Native; Row_sql; Column_sql ]

type trigger_mode = Paper_mode | Overlap_mode

type t = {
  policy : Policy.t;
  original_policy : Policy.t;
  report : Optimizer.report option;
  mapping : Xmlac_shrex.Mapping.t;
  sg : Sg.t;
  depend : Depend.t;
  plan : Plan.t;
  doc : Tree.t;
  row_db : Db.t;
  col_db : Db.t;
  native : Backend.t;
  row : Backend.t;
  column : Backend.t;
}

let create ?(mode = Paper_mode) ?(optimize = true) ~dtd ~policy doc =
  let mapping = Xmlac_shrex.Mapping.of_dtd dtd in
  let sg = Xmlac_shrex.Mapping.schema_graph mapping in
  let original_policy = policy in
  let report, policy =
    if optimize then
      let r = Optimizer.optimize policy in
      (Some r, r.Optimizer.result)
    else (None, policy)
  in
  let default_sign = Rule.effect_to_string (Policy.ds policy) in
  let native_doc = Tree.copy doc in
  let row_db = Db.create Table.Row in
  let col_db = Db.create Table.Column in
  let _ = Xmlac_shrex.Shred.load mapping ~default_sign row_db doc in
  let _ = Xmlac_shrex.Shred.load mapping ~default_sign col_db doc in
  let depend_mode =
    match mode with
    | Paper_mode -> Depend.Paper
    | Overlap_mode -> Depend.Overlap sg
  in
  {
    policy;
    original_policy;
    report;
    mapping;
    sg;
    depend = Depend.build ~mode:depend_mode policy;
    plan = Plan.rewrite ~schema:sg (Plan.of_policy policy);
    doc = native_doc;
    row_db;
    col_db;
    native = Xml_backend.make native_doc;
    row = Rel_backend.make mapping row_db;
    column = Rel_backend.make mapping col_db;
  }

let policy t = t.policy
let original_policy t = t.original_policy
let optimizer_report t = t.report
let mapping t = t.mapping
let schema_graph t = t.sg
let depend t = t.depend
let plan t = t.plan

let explain ?(with_doc = true) t =
  Plan.explain ~schema:t.sg ~mapping:t.mapping
    ?doc:(if with_doc then Some t.doc else None)
    (Plan.of_policy t.policy)

let backend t = function
  | Native -> t.native
  | Row_sql -> t.row
  | Column_sql -> t.column

let document t = t.doc

let annotate t kind = Annotator.annotate_with_plan (backend t kind) t.plan

let annotate_all t =
  List.map (fun k -> (k, annotate t k)) all_backend_kinds

let request t kind query =
  Requester.request_string (backend t kind) ~default:(Policy.ds t.policy) query

let update t query =
  let expr = Xmlac_xpath.Parser.parse_exn query in
  List.map
    (fun k ->
      (k, Reannotator.reannotate ~schema:t.sg (backend t k) t.depend ~update:expr))
    all_backend_kinds

(* Insert updates: graft into the native store first, then mirror the
   freshly created subtrees — same universal ids — into both relational
   stores, repairing annotations in each through the generic cycle. *)
let insert t ~at ~fragment =
  let at_expr = Xmlac_xpath.Parser.parse_exn at in
  let frag_root = (Tree.root fragment).Tree.name in
  (* The grafted roots and everything below them. *)
  let touched =
    let root_path =
      Xmlac_xpath.Ast.{ steps = at_expr.steps @ [ step Child (Name frag_root) ] }
    in
    let subtree_path =
      Xmlac_xpath.Ast.{ steps = root_path.steps @ [ step Descendant Wildcard ] }
    in
    [ root_path; subtree_path ]
  in
  let default_sign = Rule.effect_to_string (Policy.ds t.policy) in
  let new_roots = ref [] in
  let native_stats =
    Reannotator.repair ~schema:t.sg t.native t.depend ~touched
      ~apply:(fun () ->
        let roots = Xmlac_xmldb.Update.insert_nodes t.doc ~at:at_expr ~fragment in
        new_roots := roots;
        List.length roots)
  in
  let rel kind backend db =
    ( kind,
      Reannotator.repair ~schema:t.sg backend t.depend ~touched
        ~apply:(fun () ->
          List.iter
            (fun root ->
              ignore
                (Xmlac_shrex.Shred.insert_subtree t.mapping ~default_sign db
                   root))
            !new_roots;
          List.length !new_roots) )
  in
  [ (Native, native_stats); rel Row_sql t.row t.row_db;
    rel Column_sql t.column t.col_db ]

let accessible t kind =
  Backend.accessible_ids (backend t kind) ~default:(Policy.ds t.policy)

let consistent t =
  match List.map (accessible t) all_backend_kinds with
  | [ a; b; c ] -> a = b && b = c
  | _ -> assert false
