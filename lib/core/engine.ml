module Tree = Xmlac_xml.Tree
module Sg = Xmlac_xml.Schema_graph
module Db = Xmlac_reldb.Database
module Table = Xmlac_reldb.Table
module Metrics = Xmlac_util.Metrics

type backend_kind = Native | Row_sql | Column_sql

let backend_kind_to_string = function
  | Native -> "native"
  | Row_sql -> "row-sql"
  | Column_sql -> "column-sql"

let all_backend_kinds = [ Native; Row_sql; Column_sql ]

type trigger_mode = Paper_mode | Overlap_mode

type t = {
  policy : Policy.t;
  original_policy : Policy.t;
  report : Optimizer.report option;
  mapping : Xmlac_shrex.Mapping.t;
  sg : Sg.t;
  depend : Depend.t;
  plan : Plan.t;
  doc : Tree.t;
  row_db : Db.t;
  col_db : Db.t;
  native : Backend.t;
  row : Backend.t;
  column : Backend.t;
  (* The request fast lane: a CAM over the native store's signs,
     maintained incrementally, plus a bounded per-(backend, query)
     decision cache invalidated by bumping [epoch].  [annotated] lists
     the kinds annotated so far: relational requests may borrow the
     native CAM only while all stores are known to be in lockstep. *)
  metrics : Metrics.t;
  cache : Requester.decision Decision_cache.t;
  mutable cam : Cam.t;
  mutable epoch : int;
  mutable annotated : backend_kind list;
  mutable divergent : bool;
}

let create ?(mode = Paper_mode) ?(optimize = true) ?cache_capacity ~dtd ~policy
    doc =
  let mapping = Xmlac_shrex.Mapping.of_dtd dtd in
  let sg = Xmlac_shrex.Mapping.schema_graph mapping in
  let original_policy = policy in
  let report, policy =
    if optimize then
      let r = Optimizer.optimize policy in
      (Some r, r.Optimizer.result)
    else (None, policy)
  in
  let default_sign = Rule.effect_to_string (Policy.ds policy) in
  let native_doc = Tree.copy doc in
  let row_db = Db.create Table.Row in
  let col_db = Db.create Table.Column in
  let _ = Xmlac_shrex.Shred.load mapping ~default_sign row_db doc in
  let _ = Xmlac_shrex.Shred.load mapping ~default_sign col_db doc in
  let depend_mode =
    match mode with
    | Paper_mode -> Depend.Paper
    | Overlap_mode -> Depend.Overlap sg
  in
  {
    policy;
    original_policy;
    report;
    mapping;
    sg;
    depend = Depend.build ~mode:depend_mode policy;
    plan = Plan.rewrite ~schema:sg (Plan.of_policy policy);
    doc = native_doc;
    row_db;
    col_db;
    native = Xml_backend.make native_doc;
    row = Rel_backend.make mapping row_db;
    column = Rel_backend.make mapping col_db;
    metrics = Metrics.create ();
    cache = Decision_cache.create ?capacity:cache_capacity ();
    cam = Cam.build native_doc ~default:(Policy.ds policy);
    epoch = 0;
    annotated = [];
    divergent = false;
  }

let policy t = t.policy
let original_policy t = t.original_policy
let optimizer_report t = t.report
let mapping t = t.mapping
let schema_graph t = t.sg
let depend t = t.depend
let plan t = t.plan
let metrics t = t.metrics
let cam t = t.cam
let epoch t = t.epoch

let explain ?(with_doc = true) t =
  Plan.explain ~schema:t.sg ~mapping:t.mapping
    ?doc:(if with_doc then Some t.doc else None)
    (Plan.of_policy t.policy)

let backend t = function
  | Native -> t.native
  | Row_sql -> t.row
  | Column_sql -> t.column

let document t = t.doc

(* All stores agree sign-for-sign when they share a history: either
   none has been annotated yet (all still carry the load-time default)
   or all three have been annotated since the last known divergence.
   Engine-level updates repair every store, so they preserve whichever
   of the two states holds; {!refresh} declares a divergence (signs
   were mutated behind the engine's back) that only annotating all
   three stores clears. *)
let in_lockstep t =
  match t.annotated with
  | [] -> not t.divergent
  | ks -> List.length ks = 3

let bump_epoch t = t.epoch <- t.epoch + 1

let rebuild_cam t =
  Metrics.incr t.metrics "cam.full_rebuilds";
  t.cam <- Cam.build t.doc ~default:(Policy.ds t.policy)

(* Incremental CAM maintenance from the re-annotator's changed-id
   report (plus the roots of freshly grafted subtrees); any failure
   falls back to a full rebuild, counted so the bench can see it. *)
let maintain_cam t ~changed ~roots =
  Metrics.time t.metrics "cam.maintain" (fun () ->
      match
        let touched = Cam.apply_changes t.cam t.doc ~changed in
        let touched =
          List.fold_left
            (fun acc root -> acc + Cam.rebuild_subtree t.cam t.doc ~root)
            touched roots
        in
        let purged = Cam.purge t.cam t.doc in
        (touched, purged)
      with
      | touched, purged ->
          Metrics.add t.metrics "cam.touched" touched;
          Metrics.add t.metrics "cam.purged" purged
      | exception _ -> rebuild_cam t)

let cam_check t =
  let fresh = Cam.build t.doc ~default:(Policy.ds t.policy) in
  let ok = Cam.equal t.cam fresh in
  if not ok then begin
    Metrics.incr t.metrics "cam.check_failures";
    t.cam <- fresh
  end;
  ok

let refresh t =
  bump_epoch t;
  Decision_cache.clear t.cache;
  t.divergent <- true;
  t.annotated <- [];
  rebuild_cam t

let annotate t kind =
  let stats = Annotator.annotate_with_plan (backend t kind) t.plan in
  bump_epoch t;
  if not (List.mem kind t.annotated) then t.annotated <- kind :: t.annotated;
  if List.length t.annotated = 3 then t.divergent <- false;
  if kind = Native then
    t.cam <- Cam.build t.doc ~default:(Policy.ds t.policy);
  stats

let annotate_all t =
  List.map (fun k -> (k, annotate t k)) all_backend_kinds

let effective_plus t b id =
  Backend.effective_sign b ~default:(Policy.ds t.policy) id = Tree.Plus

let request_uncached t kind expr =
  let b = backend t kind in
  if kind = Native || in_lockstep t then begin
    let ids =
      Metrics.time t.metrics "request.eval" (fun () ->
          b.Backend.eval_ids expr)
    in
    Metrics.add t.metrics "cam.lookups" (List.length ids);
    Metrics.time t.metrics "request.check" (fun () ->
        Requester.decide ~ids ~accessible:(fun id ->
            match Tree.find t.doc id with
            | Some n -> Cam.lookup t.cam n = Tree.Plus
            | None ->
                (* Not in the native tree (should not happen while the
                   stores are in lockstep): fall back to the backend's
                   own signs. *)
                effective_plus t b id))
  end
  else begin
    (* This store's signs have diverged from the native ones (only one
       of the two annotation states reached it); the CAM does not
       describe it, so read its signs directly. *)
    Metrics.incr t.metrics "fastlane.bypass";
    Requester.request b ~default:(Policy.ds t.policy) expr
  end

let request t kind query =
  Metrics.time t.metrics "request" (fun () ->
      let key = backend_kind_to_string kind ^ "\x00" ^ query in
      match Decision_cache.find t.cache ~epoch:t.epoch key with
      | Some d ->
          Metrics.incr t.metrics "cache.hits";
          d
      | None ->
          Metrics.incr t.metrics "cache.misses";
          let d = request_uncached t kind (Requester.parse_or_fail query) in
          Decision_cache.add t.cache ~epoch:t.epoch key d;
          d)

let request_direct t kind query =
  Requester.request (backend t kind) ~default:(Policy.ds t.policy)
    (Requester.parse_or_fail query)

let update t query =
  let expr = Xmlac_xpath.Parser.parse_exn query in
  let stats =
    List.map
      (fun k ->
        ( k,
          Reannotator.reannotate ~schema:t.sg (backend t k) t.depend
            ~update:expr ))
      all_backend_kinds
  in
  bump_epoch t;
  (match List.assoc_opt Native stats with
  | Some s -> maintain_cam t ~changed:s.Reannotator.changed ~roots:[]
  | None -> rebuild_cam t);
  stats

(* Insert updates: graft into the native store first, then mirror the
   freshly created subtrees — same universal ids — into both relational
   stores, repairing annotations in each through the generic cycle. *)
let insert t ~at ~fragment =
  let at_expr = Xmlac_xpath.Parser.parse_exn at in
  let frag_root = (Tree.root fragment).Tree.name in
  (* The grafted roots and everything below them. *)
  let touched =
    let root_path =
      Xmlac_xpath.Ast.{ steps = at_expr.steps @ [ step Child (Name frag_root) ] }
    in
    let subtree_path =
      Xmlac_xpath.Ast.{ steps = root_path.steps @ [ step Descendant Wildcard ] }
    in
    [ root_path; subtree_path ]
  in
  let default_sign = Rule.effect_to_string (Policy.ds t.policy) in
  let new_roots = ref [] in
  let native_stats =
    Reannotator.repair ~schema:t.sg t.native t.depend ~touched
      ~apply:(fun () ->
        let roots = Xmlac_xmldb.Update.insert_nodes t.doc ~at:at_expr ~fragment in
        new_roots := roots;
        List.length roots)
  in
  let rel kind backend db =
    ( kind,
      Reannotator.repair ~schema:t.sg backend t.depend ~touched
        ~apply:(fun () ->
          List.iter
            (fun root ->
              ignore
                (Xmlac_shrex.Shred.insert_subtree t.mapping ~default_sign db
                   root))
            !new_roots;
          List.length !new_roots) )
  in
  let stats =
    [ (Native, native_stats); rel Row_sql t.row t.row_db;
      rel Column_sql t.column t.col_db ]
  in
  bump_epoch t;
  maintain_cam t ~changed:native_stats.Reannotator.changed
    ~roots:(List.map (fun (n : Tree.node) -> n.Tree.id) !new_roots);
  stats

let accessible t kind =
  Backend.accessible_ids (backend t kind) ~default:(Policy.ds t.policy)

let consistent t =
  match List.map (accessible t) all_backend_kinds with
  | [ a; b; c ] -> a = b && b = c
  | _ -> assert false
