module Tree = Xmlac_xml.Tree
module Imap = Map.Make (Int)

type t = {
  default : Tree.sign;
  read : Tree.node -> Tree.sign option;
      (** The annotation this map indexes — the node's sign slot for the
          classic single-subject map, one role's bitmap slice for a
          per-role map. *)
  mutable map : Tree.sign Imap.t;  (** Sign-change points only. *)
  mutable node_count : int;
}

let effective t (n : Tree.node) =
  match t.read n with Some s -> s | None -> t.default

(* Set or clear the entry at [n] given its parent's effective sign:
   an entry exists exactly where the effective sign flips. *)
let refresh_entry t inherited (n : Tree.node) =
  let eff = effective t n in
  if eff <> inherited then t.map <- Imap.add n.Tree.id eff t.map
  else t.map <- Imap.remove n.Tree.id t.map

(* Resolved through the document index: a COW node's raw [parent]
   pointer can reference a displaced record whose annotation slots are
   stale, and [effective] reads those slots. *)
let parent_effective t doc (n : Tree.node) =
  match Tree.parent_live doc n with
  | Some p -> effective t p
  | None -> t.default

let sign_slot (n : Tree.node) = n.Tree.sign

let build_with doc ~default ~read =
  let t = { default; read; map = Imap.empty; node_count = Tree.size doc } in
  (* Preorder walk carrying the parent's effective sign: record an
     entry exactly where the effective sign flips.  Effective follows
     the store's model — the node's explicit annotation, or the
     default. *)
  let rec go inherited (n : Tree.node) =
    let eff = effective t n in
    if eff <> inherited then t.map <- Imap.add n.Tree.id eff t.map;
    List.iter (go eff) n.Tree.children
  in
  go default (Tree.root doc);
  t

let build doc ~default = build_with doc ~default ~read:sign_slot

(* One role's view of the bitmap slots: a node with a materialized
   bitmap is explicitly Plus/Minus on the role's bit; an unannotated
   node inherits the role's default like an unsigned node does. *)
let build_role doc ~role ~default =
  build_with doc ~default ~read:(fun n ->
      match n.Tree.bits with
      | None -> None
      | Some b ->
          Some (if Xmlac_util.Bitset.mem role b then Tree.Plus else Tree.Minus))

(* Entries are keyed by node id and [lookup] walks the parent chain of
   the node it is handed — so a frozen copy answers for any tree whose
   ids and parent chains match the one it was built from, in
   particular the COW view a snapshot captures.  The entry map is a
   persistent [Map], so freezing shares it by reference in O(1);
   maintenance on either side rebinds its own [map] field and never
   disturbs the other. *)
let freeze t =
  { default = t.default; read = t.read; map = t.map;
    node_count = t.node_count }

let lookup t (n : Tree.node) =
  Xmlac_util.Deadline.checkpoint ();
  let rec up (m : Tree.node) =
    match Imap.find_opt m.Tree.id t.map with
    | Some s -> s
    | None -> (
        match Tree.parent m with Some p -> up p | None -> t.default)
  in
  up n

let default t = t.default
let entries t = Imap.cardinal t.map
let node_count t = t.node_count

let compression_ratio t =
  if t.node_count = 0 then 0.0
  else float_of_int (entries t) /. float_of_int t.node_count

(* A sign write at [n] changes eff(n) only, and an entry at [m] depends
   only on eff(m) vs eff(parent m) — so the write moves change points
   at [n] and at [n]'s children, nowhere else.  Children of a current
   record are current records, so their inherited sign is eff(n)
   directly; only the entry node's own parent needs index
   resolution. *)
let apply_changes t doc ~changed =
  let touched = Hashtbl.create 16 in
  let refresh inherited (n : Tree.node) =
    if not (Hashtbl.mem touched n.Tree.id) then begin
      Hashtbl.replace touched n.Tree.id ();
      refresh_entry t inherited n
    end
  in
  List.iter
    (fun id ->
      match Tree.find doc id with
      | None -> ()  (* written then deleted; purge handles its entry *)
      | Some n ->
          refresh (parent_effective t doc n) n;
          List.iter (refresh (effective t n)) n.Tree.children)
    changed;
  t.node_count <- Tree.size doc;
  Hashtbl.length touched

let rebuild_subtree t doc ~root =
  match Tree.find doc root with
  | None -> 0
  | Some r ->
      let count = ref 0 in
      let rec go inherited (n : Tree.node) =
        incr count;
        refresh_entry t inherited n;
        List.iter (go (effective t n)) n.Tree.children
      in
      go (parent_effective t doc r) r;
      t.node_count <- Tree.size doc;
      !count

let purge t doc =
  let dead =
    Imap.fold
      (fun id _ acc ->
        match Tree.find doc id with None -> id :: acc | Some _ -> acc)
      t.map []
  in
  List.iter (fun id -> t.map <- Imap.remove id t.map) dead;
  t.node_count <- Tree.size doc;
  List.length dead

let equal a b =
  a.default = b.default && Imap.equal (fun (x : Tree.sign) y -> x = y) a.map b.map

let pp ppf t =
  Format.fprintf ppf "cam: %d entr%s over %d nodes (ratio %.3f, default %s)"
    (entries t)
    (if entries t = 1 then "y" else "ies")
    t.node_count (compression_ratio t)
    (Tree.sign_to_string t.default)
