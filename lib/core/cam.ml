module Tree = Xmlac_xml.Tree

type t = {
  default : Tree.sign;
  map : (int, Tree.sign) Hashtbl.t;  (** Sign-change points only. *)
  node_count : int;
}

let build doc ~default =
  let map = Hashtbl.create 64 in
  (* Preorder walk carrying the parent's effective sign: record an
     entry exactly where the effective sign flips.  Effective follows
     the store's model — the node's explicit sign, or the default. *)
  let rec go inherited (n : Tree.node) =
    let effective =
      match n.Tree.sign with Some s -> s | None -> default
    in
    if effective <> inherited then Hashtbl.replace map n.Tree.id effective;
    List.iter (go effective) n.Tree.children
  in
  go default (Tree.root doc);
  { default; map; node_count = Tree.size doc }

let lookup t (n : Tree.node) =
  let rec up (m : Tree.node) =
    match Hashtbl.find_opt t.map m.Tree.id with
    | Some s -> s
    | None -> (
        match Tree.parent m with Some p -> up p | None -> t.default)
  in
  up n

let entries t = Hashtbl.length t.map
let node_count t = t.node_count

let compression_ratio t =
  if t.node_count = 0 then 0.0
  else float_of_int (entries t) /. float_of_int t.node_count

let pp ppf t =
  Format.fprintf ppf "cam: %d entr%s over %d nodes (ratio %.3f, default %s)"
    (entries t)
    (if entries t = 1 then "y" else "ies")
    t.node_count (compression_ratio t)
    (Tree.sign_to_string t.default)
