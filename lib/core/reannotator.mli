(** Partial re-annotation after a document update (Section 5.3).

    The full pipeline: run {!Trigger} to find the rules whose scopes
    the update may change; take the union of those rules' scopes both
    {e before} and {e after} applying the update (before: nodes that
    may fall out of scope; after: nodes that may enter it); rebuild the
    annotation plan {e restricted to the triggered rules}
    ({!Plan.of_rules}, rewritten, wrapped in a {!Plan.restrict} on the
    surviving affected region) and evaluate it through the backend;
    then touch only the affected nodes whose effective sign disagrees
    with the plan's verdict.

    Every other node keeps its annotation untouched — that asymmetry is
    where the speedup over full annotation comes from.  With an
    [Overlap]-mode dependency graph the result provably coincides with
    annotating from scratch; with the published [Paper] mode it
    coincides on the paper's policy classes (the property tests pin
    both claims down). *)

type stats = {
  triggered : int list;  (** Triggered rule indices (with dependencies). *)
  affected : int;  (** Affected nodes still live after the update. *)
  deleted_roots : int;  (** Subtree roots removed by the update. *)
  marked : int;  (** Nodes stamped with the non-default sign. *)
  changed : int list;
      (** The ids whose sign was actually rewritten (both directions) —
          a subset of the affected region, reported so downstream
          indexes ({!Cam.apply_changes} in the engine) can repair
          themselves incrementally instead of rebuilding. *)
}

type prepared
(** The pre-mutation half of a repair: the triggered rules and the
    union of their scopes {e before} the update.  Computing it is
    side-effect free, so the engine stashes it in its open-epoch
    record — after a crash between the mutation and the sign repair,
    {!finish} can be re-run from the stashed value even though the
    pre-update document no longer exists ({!Engine.recover}'s
    roll-forward path). *)

val prepare :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Backend.t ->
  Depend.t ->
  touched:Xmlac_xpath.Ast.expr list ->
  prepared
(** Runs the trigger and evaluates the pre-update scopes.  Must be
    called {e before} the mutation is applied to this backend. *)

val finish :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Backend.t ->
  Depend.t ->
  prepared ->
  deleted_roots:int ->
  stats
(** The post-mutation half: post-update scopes, the restricted
    annotation plan, and the sign writes.  Idempotent given the same
    [prepared] and document state — recovery re-runs it after rolling
    back any partial sign writes of a crashed attempt. *)

val reannotate :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Backend.t ->
  Depend.t ->
  update:Xmlac_xpath.Ast.expr ->
  stats
(** Applies the (delete) update through the backend and repairs the
    annotations.  [schema] controls trigger expansion, as in
    {!Trigger.run}. *)

val repair :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Backend.t ->
  Depend.t ->
  touched:Xmlac_xpath.Ast.expr list ->
  apply:(unit -> int) ->
  stats
(** The generic cycle behind {!reannotate}: [touched] lists the XPath
    expressions locating the nodes the mutation inserts or deletes,
    [apply] performs the mutation (returning the number of subtree
    roots it touched).  Used by {!Engine.insert} to repair annotations
    after grafting new subtrees. *)

val full_reannotate :
  Backend.t -> Policy.t -> update:Xmlac_xpath.Ast.expr -> Annotator.stats
(** The baseline the paper compares against: apply the update, then
    annotate the whole document from scratch. *)
