(** Access control rules (Section 3).

    A rule is a pair [(resource, effect)]: [resource] is an XPath
    expression designating the nodes the rule concerns, [effect] grants
    ([Plus]) or denies ([Minus]) access to them.  The paper fixes the
    requester and action components and uses explicit node-only scope,
    which is what this module models.  The effect type is shared with
    the annotation sign — a deliberate identification: a rule's effect
    {e is} the sign it stamps on the nodes in its scope. *)

type effect = Xmlac_xml.Tree.sign = Plus | Minus

val effect_to_string : effect -> string
val opposite : effect -> effect

type t = {
  name : string;  (** Display name, e.g. "R3"; informational only. *)
  resource : Xmlac_xpath.Ast.expr;
  effect : effect;
  subjects : string list;
      (** Roles the rule is qualified with; the empty list means the
          rule applies to {e every} role.  A qualified rule also
          reaches the heirs of the roles it names — see
          {!applies_to}. *)
}

val make :
  ?name:string ->
  ?subjects:string list ->
  resource:Xmlac_xpath.Ast.expr ->
  effect ->
  t
(** [name] defaults to the printed resource; [subjects] defaults to
    [[]] (the rule applies to every role). *)

val parse : ?name:string -> ?subjects:string list -> string -> effect -> t
(** Parses the resource.
    @raise Invalid_argument on a malformed expression. *)

val unqualified : t -> bool
(** Whether the rule carries no subject qualifier (applies to every
    role). *)

val applies_to : closure:string list -> t -> bool
(** Whether the rule reaches a role whose inheritance closure
    ({!Subject.closure}) is [closure]: unqualified rules always do; a
    qualified rule does iff it names a role in the closure. *)

val is_positive : t -> bool
val is_negative : t -> bool

val scope : Xmlac_xml.Tree.t -> t -> Xmlac_xml.Tree.node list
(** The nodes of the document in the rule's scope:
    [\[\[resource\]\](T)]. *)

val in_scope : Xmlac_xml.Tree.t -> t -> Xmlac_xml.Tree.node -> bool

val pp : Format.formatter -> t -> unit
(** ["R3: //patient\[treatment\] (-)"]. *)

val equal : t -> t -> bool
(** Same resource (syntactically) and same effect; names ignored. *)
