(** Access control rules (Section 3).

    A rule is a pair [(resource, effect)]: [resource] is an XPath
    expression designating the nodes the rule concerns, [effect] grants
    ([Plus]) or denies ([Minus]) access to them.  The paper fixes the
    requester and action components and uses explicit node-only scope,
    which is what this module models.  The effect type is shared with
    the annotation sign — a deliberate identification: a rule's effect
    {e is} the sign it stamps on the nodes in its scope. *)

type effect = Xmlac_xml.Tree.sign = Plus | Minus

val effect_to_string : effect -> string
val opposite : effect -> effect

type t = {
  name : string;  (** Display name, e.g. "R3"; informational only. *)
  resource : Xmlac_xpath.Ast.expr;
  effect : effect;
}

val make : ?name:string -> resource:Xmlac_xpath.Ast.expr -> effect -> t
(** [name] defaults to the printed resource. *)

val parse : ?name:string -> string -> effect -> t
(** Parses the resource.
    @raise Invalid_argument on a malformed expression. *)

val is_positive : t -> bool
val is_negative : t -> bool

val scope : Xmlac_xml.Tree.t -> t -> Xmlac_xml.Tree.node list
(** The nodes of the document in the rule's scope:
    [\[\[resource\]\](T)]. *)

val in_scope : Xmlac_xml.Tree.t -> t -> Xmlac_xml.Tree.node -> bool

val pp : Format.formatter -> t -> unit
(** ["R3: //patient\[treatment\] (-)"]. *)

val equal : t -> t -> bool
(** Same resource (syntactically) and same effect; names ignored. *)
