(** Immutable MVCC snapshots of committed sign epochs.

    The paper's materialized-accessibility design makes a read cheap
    but ties it to the mutable sign/bitmap store, so a mutation epoch
    blocks the read path.  This module breaks that coupling: every
    committed [sign_epoch] becomes an {e immutable versioned snapshot}
    — a frozen copy-on-write view of the document, a frozen {!Cam}
    over its signs, lazily built per-role maps over its bitmaps, and a
    private decision cache, all keyed by the epoch that committed
    them.  Readers {e pin} a snapshot (refcounted) and answer requests
    from it for as long as they like while the engine builds the next
    epoch against its own working set; a snapshot is {e reclaimed}
    (its references dropped, so the GC frees its private records) only
    once it is no longer current {e and} its pin count has returned to
    zero.

    {2 Structural sharing}

    {!capture} freezes the live tree in O(1) ({!Xmlac_xml.Tree.freeze})
    instead of deep-copying it: consecutive snapshots share every node
    record the intervening epoch did not touch, the CAM's persistent
    entry map is shared wholesale, and memoized decisions plus
    per-role maps are {e carried forward} whenever the epoch's change
    set provably cannot have moved them.  Publish cost is therefore
    O(nodes changed in the epoch), not O(document), and a thousand
    pinned epochs of a large document cost little more than one copy
    plus the sum of their change sets.  The registry accounts the
    sharing at {e segment} granularity (records displaced per epoch,
    grouped by birth generation): a reclaim triggers a gc pass that
    retires every segment no live snapshot generation needs.  The
    accounting is advisory — the OCaml GC performs the actual freeing
    exactly when the last sharing view is dropped — so a crash in the
    publish or gc path can never corrupt a pinned neighbor.

    The MVCC invariants (DESIGN.md §10):

    {ul
    {- {e Readers never observe a partial epoch.}  A snapshot is
       captured only from a committed materialization — the engine
       publishes after [commit_op], never inside an open epoch — and
       nothing mutates it afterwards ([Tree] refuses writes on frozen
       views), so every decision a pinned reader computes is the
       decision the committed epoch would have given.}
    {- {e Reclaim only at refcount 0.}  [publish] retires the previous
       current snapshot instead of dropping it while pins remain;
       [unpin] reclaims a retired snapshot exactly when its last pin
       is released.}
    {- {e A pinned snapshot's view is immutable even while successor
       epochs mutate shared structure.}  The first write of each
       generation to a shared record path-copies it, so frozen views
       keep the records they froze.}}

    A snapshot is safe to share across OCaml domains: the document
    view and the single-subject map are frozen at capture, and the two
    mutable members (the per-role map table and the decision cache)
    are guarded by a private mutex.  Registry operations cross the
    fault points [snapshot.publish] (before the new snapshot is
    installed), [snapshot.share] (before the epoch's shared-segment
    accounting is recorded), [snapshot.reclaim] (after an old snapshot
    is dropped) and [snapshot.gc] (after each reclaim-triggered
    segment sweep), so the crash sweeps can kill the writer at every
    sharing boundary and verify pinned readers never notice. *)

type t
(** One immutable snapshot of a committed epoch. *)

val capture :
  ?annotated:bool ->
  ?bits_annotated:bool ->
  ?prev:t ->
  epoch:int ->
  policy:Policy.t ->
  cam:Cam.t ->
  metrics:Xmlac_util.Metrics.t ->
  Xmlac_xml.Tree.t ->
  t
(** [capture ~epoch ~policy ~cam ~metrics doc] freezes the committed
    materialization: an O(1) {!Xmlac_xml.Tree.freeze} of [doc] (signs
    and bitmaps included — [doc] moves to its next generation and
    path-copies on its next writes) and an O(1) {!Cam.freeze} of
    [cam] (valid for the view because entries are keyed by node id).

    [prev] (normally the registry's current snapshot) enables
    carry-forward: memoized decisions whose examined nodes the epoch
    left untouched, rewrite-lane decisions after any non-structural
    epoch, and the per-role maps after an epoch touching no bitmap
    all migrate into the new snapshot instead of cold-starting.
    Carry is gated on provenance (same tree family, exactly the next
    generation, physically equal policy) and silently skipped
    otherwise.

    [annotated] / [bits_annotated] (both default [true]) record
    whether the frozen signs / role bitmaps carried a committed
    annotation epoch at capture — {!request}'s auto lane routes a
    never-annotated frozen document through the rewrite lane instead
    of its default-sign CAM.  [metrics] receives the snapshot's
    lifetime counters ([snapshot.captures], [snapshot.reads],
    [snapshot.cache.*], [snapshot.role_cam_builds],
    [snapshot.cache.carried]).
    @raise Invalid_argument when [doc] is itself a frozen view. *)

val capture_full :
  ?annotated:bool ->
  ?bits_annotated:bool ->
  epoch:int ->
  policy:Policy.t ->
  cam:Cam.t ->
  metrics:Xmlac_util.Metrics.t ->
  Xmlac_xml.Tree.t ->
  t
(** The pre-sharing capture: a deep [Tree.copy] of the document,
    O(nodes), sharing nothing with the live tree or other snapshots.
    Kept as the equivalence baseline ([test_mvcc]'s COW ≡ full-copy
    property, the [exp_snapshot] bench's full-copy lane); the engine
    always uses {!capture}. *)

val epoch : t -> int
(** The committed [sign_epoch] this snapshot captures. *)

val document : t -> Xmlac_xml.Tree.t
(** The frozen document view.  Mutating it raises
    [Invalid_argument]. *)

val cam : t -> Cam.t
(** The frozen single-subject accessibility map. *)

val annotated : t -> bool
(** Whether the frozen signs carried a committed annotation epoch at
    capture. *)

val bits_annotated : t -> bool
(** Likewise for the frozen role bitmaps. *)

val pins : t -> int
(** Current pin count (readers holding this snapshot). *)

val cow : t -> bool
(** Whether this snapshot shares structure ({!capture}) rather than
    owning a deep copy ({!capture_full}). *)

val cached_decisions : t -> int
(** Memoized decisions currently held (carried entries included). *)

val resolve_lane :
  ?subject:string -> ?lane:Rewrite.lane -> t -> Rewrite.lane * string
(** The lane {!request} would answer through, with the reason
    ("forced", "annotated at capture", "never annotated at capture").
    Never returns {!Rewrite.Auto}. *)

val request :
  ?subject:string -> ?lane:Rewrite.lane -> t -> string -> Requester.decision
(** [request ?subject t query] answers the all-or-nothing request
    from the snapshot alone: evaluate [query] on the frozen document,
    check accessibility against the frozen CAM ([?subject]: a lazily
    built per-role map over the frozen bitmaps), and memoize the
    decision in the snapshot's private cache (keyed by the effective
    lane).  Full fidelity at the snapshot's epoch — byte-identical to
    what the live engine decided when this epoch was current — and
    never touches the live stores, so it cannot block on (or be
    blocked by) the writer.  Crosses
    {!Xmlac_util.Deadline.checkpoint}s through [Cam.lookup], so it
    honours a caller-installed budget.

    [~lane] (default {!Rewrite.Auto}) selects the enforcement lane as
    in {!Engine.request}: [Auto] picks the materialized lane iff the
    layer the request reads was annotated at capture
    ({!resolve_lane}); the rewrite lane compiles the request against
    the frozen policy and evaluates it on the frozen tree with no
    sign or bitmap read — how cold documents are served from pinned
    sessions.
    @raise Invalid_argument on an unparsable query or unknown role. *)

(** {1 Registry: publish / pin / reclaim}

    The engine owns one registry; it holds the {e current} snapshot
    (the latest committed epoch) plus any {e retired} ones still kept
    alive by pins, and the shared-segment accounting for the COW
    snapshots of the current tree family. *)

type registry

val create_registry : metrics:Xmlac_util.Metrics.t -> unit -> registry
(** An empty registry; nothing is current until the first
    {!publish}. *)

val publish : registry -> t -> unit
(** Install [t] as the current snapshot.  The previous current is
    reclaimed immediately when unpinned, and retired (kept for its
    readers) otherwise.  Records the epoch's displaced records as
    shared segments.  Crosses [snapshot.publish] then
    [snapshot.share] before the swap, and [snapshot.reclaim] plus a
    [snapshot.gc] sweep after a reclaim, all outside the registry
    lock. *)

val current : registry -> t option
val current_epoch : registry -> int option
(** Epoch of the current snapshot; [None] before the first publish. *)

val pin : registry -> t
(** Pin and return the current snapshot.  The caller owes exactly one
    {!unpin}.
    @raise Invalid_argument before the first {!publish}. *)

val unpin : registry -> t -> unit
(** Release one pin.  A retired snapshot whose pin count reaches zero
    is reclaimed on the spot (the invariant: reclaim only at refcount
    0, and only of non-current snapshots), followed by a
    [snapshot.gc] segment sweep.
    @raise Invalid_argument when [t] is not pinned. *)

(** {1 Observability}

    Lifetime counters for [xmlacctl explain]/[serve] and the
    concurrent bench's reclaim-lag figure. *)

val live : registry -> int
(** Snapshots currently reachable: current (if any) plus retired. *)

val retired : registry -> int
(** Retired snapshots still pinned by readers. *)

val published : registry -> int
(** Lifetime publishes. *)

val reclaimed : registry -> int
(** Lifetime reclaims. *)

val max_retired : registry -> int
(** High-water mark of the retired list — the reclaim lag: how far
    readers have trailed the writer at worst. *)

val shared_records : registry -> int
(** Displaced records currently held by live segments — the COW
    overhead beyond one document: what pinned history costs over and
    above the current tree. *)

val shared_total : registry -> int
(** Lifetime records recorded into segments at publish. *)

val freed_total : registry -> int
(** Lifetime records released by gc sweeps. *)

val gc_passes : registry -> int
(** Reclaim-triggered segment sweeps run. *)

val pp_registry : Format.formatter -> registry -> unit
(** Deterministic one-line summary (no addresses, no times) — safe
    for golden CLI transcripts. *)

val pp_sharing : Format.formatter -> registry -> unit
(** Deterministic one-line summary of the segment accounting (live
    segments, records held, lifetime shared/freed, gc passes). *)
