(** The query-rewrite enforcement lane.

    The paper enforces access control by {e materializing} per-node
    signs (annotation) and checking the requester's answer against
    them.  The literature it contrasts with — Cheney's static
    enforceability, Mahfoud & Imine's secure rewriting — answers the
    same requests by {e statically rewriting} the query against the
    policy, so no sign or bitmap column is ever read.  This module is
    that second lane: it compiles an incoming XPath request plus a
    {!Policy.t} into a pair of plans in the existing {!Plan} algebra,

    {ul
    {- the {e granted} plan — the request's scope intersected with the
       policy's accessible region, and}
    {- the {e residue} plan — the request's scope minus the accessible
       region: the selected-but-denied nodes the all-or-nothing rule
       must find empty before anything is returned.}}

    Both plans lower through every existing backend ({!Backend.t.eval_plans}:
    id-set algebra natively, one SQL statement each relationally), so a
    cold or never-annotated document is served with {e zero} sign or
    bitmap reads — and the answers agree, decision for decision and
    blocked-count for blocked-count, with the materialized lane
    (DESIGN.md §11's soundness invariant, pinned by
    [test/test_rewrite.ml]'s cross-lane property).

    The derivation leans on the {!Plan.t} contract: annotation stamps
    [mark] on the plan's answer and [default = opposite mark]
    everywhere else, so the accessible region is the plan's answer when
    [mark = Plus] and its complement when [mark = Minus] — which lets
    both compiled plans stay complement-free:

    {v mark = Plus:   granted = Q intersect P     residue = Q except P
   mark = Minus:  granted = Q except P        residue = Q intersect P v}

    Compilation crosses the [rewrite.compile] fault point before
    touching anything, so an injected failure there can never reach a
    store or say anything about backend health. *)

(** {1 Lanes}

    The lane vocabulary shared by {!Engine.request},
    {!Snapshot.request}, the serve layer and the [--lane] CLI flag. *)

type lane =
  | Auto
      (** Pick per request: the materialized lane when the store has a
          committed annotation epoch, the rewrite lane otherwise. *)
  | Materialized  (** Force the paper's sign/bitmap lane. *)
  | Rewrite  (** Force the query-rewrite lane. *)

val lane_to_string : lane -> string
(** ["auto"] / ["materialized"] / ["rewrite"]. *)

val lane_of_string : string -> lane option
(** Inverse of {!lane_to_string}; [None] on anything else. *)

val pp_lane : Format.formatter -> lane -> unit

(** {1 Compilation} *)

type compiled = {
  subject : string option;  (** The role compiled for, if any. *)
  granted : Plan.t;
      (** The accessible part of the request's answer; marked [Plus]. *)
  residue : Plan.t;
      (** The denied part of the request's answer; marked [Minus].
          All-or-nothing: the request is granted iff this plan's
          answer is empty. *)
}

val compile :
  ?schema:Xmlac_xml.Schema_graph.t ->
  ?plan:Plan.t ->
  ?subject:string ->
  Policy.t ->
  Xmlac_xpath.Ast.expr ->
  compiled
(** Compiles the request against the policy's accessible region.
    [plan] short-circuits the policy compilation with an
    already-rewritten {!Plan.of_policy} result (the engine passes its
    cached plan); it is ignored when [subject] is given, because a role
    compiles against its {!Policy.for_subject} projection.  [schema]
    feeds the {!Plan.rewrite} passes of both emitted plans.  Crosses
    the [rewrite.compile] fault point first.
    @raise Invalid_argument on an unknown role. *)

(** {1 Evaluation} *)

type answer = {
  granted_ids : int list;  (** The granted plan's answer, ascending. *)
  blocked : int;  (** Size of the residue plan's answer. *)
}

val eval : Backend.t -> compiled -> answer
(** Both plans through {!Backend.t.eval_plans} — one batch, no sign or
    bitmap read.  Each plan crosses the backend's [<prefix>.eval]
    fault point like any other evaluation. *)

val eval_tree : Xmlac_xml.Tree.t -> compiled -> answer
(** Both plans directly over a tree ({!Plan.native_ids_shared}, shared
    scope memo) — the frozen-snapshot path, which has a document but no
    {!Backend.t}. *)

val pp_compiled : Format.formatter -> compiled -> unit
(** Both plans, one per line — [xmlacctl explain --lane rewrite]. *)
