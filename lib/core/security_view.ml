module Tree = Xmlac_xml.Tree

type mode = Prune | Promote

let materialize ?(mode = Promote) policy doc =
  let accessible = Hashtbl.create 256 in
  List.iter
    (fun id -> Hashtbl.replace accessible id ())
    (Policy.accessible_ids policy doc);
  let ok (n : Tree.node) = Hashtbl.mem accessible n.Tree.id in
  let root = Tree.root doc in
  let view = Tree.create ~root_name:root.Tree.name in
  let vroot = Tree.root view in
  if ok root then Tree.set_value view vroot root.Tree.value;
  (* [copy_under parent n] adds a copy of accessible node [n] (and the
     visible part of its subtree) below [parent]. *)
  let rec copy_under parent (n : Tree.node) =
    let copy = Tree.add_child view parent n.Tree.name in
    (match n.Tree.value with
    | Some v -> Tree.set_value view copy (Some v)
    | None -> ());
    List.iter (fun c -> place copy c) n.Tree.children
  (* [place parent c] decides what child [c] contributes below the
     already-copied [parent]. *)
  and place parent (c : Tree.node) =
    if ok c then copy_under parent c
    else
      match mode with
      | Prune -> () (* the whole subtree disappears *)
      | Promote ->
          (* skip [c], hoisting its visible descendants *)
          List.iter (fun gc -> place parent gc) c.Tree.children
  in
  (match (ok root, mode) with
  | true, _ -> List.iter (fun c -> place vroot c) root.Tree.children
  | false, Prune -> ()
  | false, Promote -> List.iter (fun c -> place vroot c) root.Tree.children);
  view

let visible_count ?mode policy doc =
  let view = materialize ?mode policy doc in
  let n = Tree.size view in
  (* The placeholder root is not a represented source node when the
     source root is inaccessible. *)
  if Policy.node_accessible policy doc (Tree.root doc) then n else n - 1
