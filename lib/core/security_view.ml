module Tree = Xmlac_xml.Tree

type mode = Prune | Promote

let accessible_table ?subject policy doc =
  let accessible = Hashtbl.create 256 in
  List.iter
    (fun id -> Hashtbl.replace accessible id ())
    (Policy.accessible_ids ?subject policy doc);
  accessible

let materialize ?(mode = Promote) ?subject policy doc =
  let accessible = accessible_table ?subject policy doc in
  let ok (n : Tree.node) = Hashtbl.mem accessible n.Tree.id in
  let root = Tree.root doc in
  let view = Tree.create ~root_name:root.Tree.name in
  let vroot = Tree.root view in
  if ok root then Tree.set_value view vroot root.Tree.value;
  (* [copy_under parent n] adds a copy of accessible node [n] (and the
     visible part of its subtree) below [parent]. *)
  let rec copy_under parent (n : Tree.node) =
    let copy = Tree.add_child view parent n.Tree.name in
    (match n.Tree.value with
    | Some v -> Tree.set_value view copy (Some v)
    | None -> ());
    List.iter (fun c -> place copy c) n.Tree.children
  (* [place parent c] decides what child [c] contributes below the
     already-copied [parent]. *)
  and place parent (c : Tree.node) =
    if ok c then copy_under parent c
    else
      match mode with
      | Prune -> () (* the whole subtree disappears *)
      | Promote ->
          (* skip [c], hoisting its visible descendants *)
          List.iter (fun gc -> place parent gc) c.Tree.children
  in
  (match (ok root, mode) with
  | true, _ -> List.iter (fun c -> place vroot c) root.Tree.children
  | false, Prune -> ()
  | false, Promote -> List.iter (fun c -> place vroot c) root.Tree.children);
  view

(* The source ids the view represents, computed without building the
   view (the view's own nodes carry fresh ids): in [Promote] mode every
   accessible node is kept; in [Prune] mode a node survives iff it and
   all its ancestors are accessible, so the walk stops descending at
   the first inaccessible node. *)
let visible_ids ?(mode = Promote) ?subject policy doc =
  let accessible = accessible_table ?subject policy doc in
  let ok (n : Tree.node) = Hashtbl.mem accessible n.Tree.id in
  match mode with
  | Promote -> Hashtbl.fold (fun id () acc -> id :: acc) accessible []
               |> List.sort compare
  | Prune ->
      let rec walk acc (n : Tree.node) =
        if not (ok n) then acc
        else List.fold_left walk (n.Tree.id :: acc) n.Tree.children
      in
      List.sort compare (walk [] (Tree.root doc))

let visible_count ?mode ?subject policy doc =
  List.length (visible_ids ?mode ?subject policy doc)
