(** Access control policies [(ds, cr, A, D)] and their semantics
    (Section 3, Table 2), extended with a subject dimension.

    [ds] is the default semantics — the accessibility of nodes no rule
    covers; [cr] the conflict resolution — the outcome for nodes
    covered by rules of both signs ([Minus] = deny overrides); [A]/[D]
    the positive/negative rule sets.  The common case in practice, and
    the paper's running configuration, is deny/deny.

    A policy also carries a {!Subject.t} role DAG.  Rules may be
    qualified with roles ({!Rule.t.subjects}); a role sees the
    unqualified rules plus the rules qualified with any role in its
    inheritance closure, under its own resolved [(ds, cr)].  A policy
    built without [?subjects] carries {!Subject.solo} and behaves
    exactly like the historical single-subject policy. *)

type t

val make :
  ?subjects:Subject.t -> ds:Rule.effect -> cr:Rule.effect -> Rule.t list -> t
(** Rule order is preserved (it only affects display).  [subjects]
    defaults to {!Subject.solo}.
    @raise Invalid_argument when a rule is qualified with a role the
    DAG does not declare. *)

val ds : t -> Rule.effect
val cr : t -> Rule.effect
val rules : t -> Rule.t list

val subjects : t -> Subject.t
val roles : t -> string list
(** Role names in declaration (= bit) order. *)

val role_count : t -> int

val positive : t -> Rule.t list
(** The positive rule set [A]. *)

val negative : t -> Rule.t list
(** The negative rule set [D]. *)

val size : t -> int

val with_rules : t -> Rule.t list -> t
(** Same [ds]/[cr]/[subjects], different rules. *)

val find_rule : t -> string -> Rule.t option
(** By display name. *)

(** {1 Per-subject resolution} *)

val resolved_ds : t -> string -> Rule.effect
(** The default semantics a role resolves to: its own override, else
    the nearest ancestor's, else the policy global.
    @raise Invalid_argument on an unknown role. *)

val resolved_cr : t -> string -> Rule.effect
(** Like {!resolved_ds}, for the conflict resolution. *)

val for_subject : t -> string -> t
(** The single-subject policy one role sees: the applicable rules
    (qualifiers stripped, declaration order kept) under the role's
    resolved [(ds, cr)], carrying {!Subject.solo}.  Every downstream
    consumer — plan builder, optimizer, annotator — works unchanged on
    the projection.
    @raise Invalid_argument on an unknown role. *)

val applicability : t -> Rule.t -> Xmlac_util.Bitset.t
(** The bit indices of the roles a rule reaches.  The optimizer must
    check coverage inclusion on these before letting one rule subsume
    another across subjects. *)

val default_bits : t -> Xmlac_util.Bitset.t
(** The bitmap of roles whose resolved default semantics grants — what
    an unannotated node's bitmap falls back to. *)

(** {1 Reference semantics}

    Direct evaluation of Table 2 on a tree.  This is the executable
    specification the backends are tested against, not the production
    path.  The [?subject] parameter selects a role's view
    ({!for_subject}); omitted, the policy is read as the anonymous
    single subject — global [(ds, cr)] over every rule regardless of
    qualifiers, which coincides with the historical behaviour. *)

val accessible_nodes :
  ?subject:string -> t -> Xmlac_xml.Tree.t -> Xmlac_xml.Tree.node list
(** [\[\[P\]\](T)], in document order. *)

val accessible_ids : ?subject:string -> t -> Xmlac_xml.Tree.t -> int list
(** Ascending. *)

val node_accessible :
  ?subject:string -> t -> Xmlac_xml.Tree.t -> Xmlac_xml.Tree.node -> bool

val annotate_reference : ?subject:string -> t -> Xmlac_xml.Tree.t -> unit
(** Stamps every node's sign slot with its accessibility — full
    annotation by the specification. *)

val accessible_bits_reference :
  t -> Xmlac_xml.Tree.t -> (int, Xmlac_util.Bitset.t) Hashtbl.t
(** Per-node role bitmaps by the specification: every role's Table 2
    evaluated independently, gathered node-major.  The oracle the
    shared-pass multi-role annotator is tested against. *)

val pp : Format.formatter -> t -> unit
