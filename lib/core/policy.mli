(** Access control policies [(ds, cr, A, D)] and their semantics
    (Section 3, Table 2).

    [ds] is the default semantics — the accessibility of nodes no rule
    covers; [cr] the conflict resolution — the outcome for nodes
    covered by rules of both signs ([Minus] = deny overrides); [A]/[D]
    the positive/negative rule sets.  The common case in practice, and
    the paper's running configuration, is deny/deny. *)

type t

val make :
  ds:Rule.effect -> cr:Rule.effect -> Rule.t list -> t
(** Rule order is preserved (it only affects display). *)

val ds : t -> Rule.effect
val cr : t -> Rule.effect
val rules : t -> Rule.t list
val positive : t -> Rule.t list
(** The positive rule set [A]. *)

val negative : t -> Rule.t list
(** The negative rule set [D]. *)

val size : t -> int

val with_rules : t -> Rule.t list -> t
(** Same [ds]/[cr], different rules. *)

val find_rule : t -> string -> Rule.t option
(** By display name. *)

(** {1 Reference semantics}

    Direct evaluation of Table 2 on a tree.  This is the executable
    specification the backends are tested against, not the production
    path. *)

val accessible_nodes : t -> Xmlac_xml.Tree.t -> Xmlac_xml.Tree.node list
(** [\[\[P\]\](T)], in document order. *)

val accessible_ids : t -> Xmlac_xml.Tree.t -> int list
(** Ascending. *)

val node_accessible : t -> Xmlac_xml.Tree.t -> Xmlac_xml.Tree.node -> bool

val annotate_reference : t -> Xmlac_xml.Tree.t -> unit
(** Stamps every node's sign slot with its accessibility — full
    annotation by the specification. *)

val pp : Format.formatter -> t -> unit
