module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath
module Bitset = Xmlac_util.Bitset

let make doc : Backend.t =
  let eval_ids e =
    List.sort Stdlib.compare
      (List.map (fun (n : Tree.node) -> n.Tree.id) (Xp.Eval.eval doc e))
  in
  {
    Backend.name = "xquery";
    eval_ids;
    eval_plan = (fun p -> Plan.native_ids doc p);
    eval_plans = (fun ps -> Plan.native_ids_shared doc ps);
    set_sign_ids =
      (fun ids sign ->
        List.fold_left
          (fun count id ->
            match Tree.find doc id with
            | Some n ->
                Xmlac_xmldb.Store.annotate doc n sign;
                count + 1
            | None -> count)
          0 ids);
    reset_signs =
      (fun ~default ->
        (* The native store keeps only non-default annotations
           (Section 5.2), so resetting means erasing them all. *)
        ignore default;
        Tree.clear_signs doc);
    sign_of =
      (fun id ->
        match Tree.find doc id with
        | Some n -> n.Tree.sign
        | None -> None);
    restore_sign =
      (fun id s ->
        (* The undo-journal primitive: unlike [set_sign_ids] this can
           write back [None], the unannotated state the native store's
           compact representation relies on. *)
        match Tree.find doc id with
        | Some n -> Tree.set_sign doc n s
        | None -> ());
    set_bits_ids =
      (fun ids ~role ~value ~default ->
        List.fold_left
          (fun count id ->
            match Tree.find doc id with
            | Some n ->
                (* Unannotated nodes materialize their bitmap from the
                   default on first touch. *)
                let base = Option.value n.Tree.bits ~default in
                let bits =
                  if value then Bitset.add role base
                  else Bitset.remove role base
                in
                Tree.set_bits doc n (Some bits);
                count + 1
            | None -> count)
          0 ids);
    set_bits_batch =
      (fun edits ~default ->
        (* All of a node's role edits fold into one bitmap write. *)
        List.fold_left
          (fun acc (id, role_edits) ->
            match (Tree.find doc id, role_edits) with
            | None, _ | _, [] -> acc
            | Some n, _ ->
                let base = Option.value n.Tree.bits ~default in
                let bits =
                  List.fold_left
                    (fun b (role, value) ->
                      if value then Bitset.add role b else Bitset.remove role b)
                    base role_edits
                in
                Tree.set_bits doc n (Some bits);
                acc + List.length role_edits)
          0 edits);
    reset_bits =
      (fun ~default ->
        (* The native store keeps only materialized bitmaps, so
           resetting means erasing them all. *)
        ignore default;
        Tree.clear_bits doc);
    bits_of =
      (fun id ->
        match Tree.find doc id with Some n -> n.Tree.bits | None -> None);
    restore_bits =
      (fun id b ->
        match Tree.find doc id with
        | Some n -> Tree.set_bits doc n b
        | None -> ());
    delete_update = (fun e -> Xmlac_xmldb.Update.delete doc e);
    has_node = (fun id -> Tree.find doc id <> None);
    live_ids =
      (fun () ->
        List.sort Stdlib.compare
          (List.map (fun (n : Tree.node) -> n.Tree.id) (Tree.nodes doc)));
    node_count = (fun () -> Tree.size doc);
  }
