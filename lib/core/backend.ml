module Tree = Xmlac_xml.Tree
module Fault = Xmlac_util.Fault

type t = {
  name : string;
  eval_ids : Xmlac_xpath.Ast.expr -> int list;
  eval_plan : Plan.t -> int list;
  set_sign_ids : int list -> Tree.sign -> int;
  reset_signs : default:Tree.sign -> unit;
  sign_of : int -> Tree.sign option;
  restore_sign : int -> Tree.sign option -> unit;
  delete_update : Xmlac_xpath.Ast.expr -> int;
  has_node : int -> bool;
  live_ids : unit -> int list;
  node_count : unit -> int;
}

let effective_sign t ~default id =
  match t.sign_of id with Some s -> s | None -> default

let accessible_ids t ~default =
  List.filter (fun id -> effective_sign t ~default id = Tree.Plus) (t.live_ids ())

(* Fault wrapper: sign stamping loops node by node with a fault point
   between writes, so a counted trigger kills the simulated process
   with a genuinely partial multi-row update — the paper's
   inconsistent-materialization hazard made reproducible. *)
let with_faults ~prefix b =
  let pt op = Fault.point (prefix ^ "." ^ op) in
  {
    b with
    eval_ids =
      (fun e ->
        (* The read path's injection site: requests and the
           reannotator's scope evaluations cross it, so transient
           triggers can fail a query without touching any state. *)
        pt "eval";
        b.eval_ids e);
    set_sign_ids =
      (fun ids sign ->
        List.fold_left
          (fun acc id ->
            pt "set_sign";
            acc + b.set_sign_ids [ id ] sign)
          0 ids);
    reset_signs =
      (fun ~default ->
        pt "reset_signs";
        b.reset_signs ~default);
    delete_update =
      (fun e ->
        pt "delete";
        b.delete_update e);
  }

type journal = {
  mutable active : bool;
  mutable entries : (int * Tree.sign option) list; (* newest first *)
  mutable restore : (int -> Tree.sign option -> unit) option;
}

let journal () = { active = false; entries = []; restore = None }

let journal_begin j =
  j.active <- true;
  j.entries <- []

let journal_stop j =
  j.active <- false;
  j.entries <- []

let journal_entries j = List.length j.entries

let journaled j b =
  j.restore <- Some b.restore_sign;
  let record id =
    if j.active && b.has_node id then
      j.entries <- (id, b.sign_of id) :: j.entries
  in
  {
    b with
    set_sign_ids =
      (fun ids sign ->
        List.fold_left
          (fun acc id ->
            record id;
            acc + b.set_sign_ids [ id ] sign)
          0 ids);
    reset_signs =
      (fun ~default ->
        if j.active then List.iter record (b.live_ids ());
        b.reset_signs ~default);
  }

let rollback j =
  match j.restore with
  | None ->
      journal_stop j;
      0
  | Some restore ->
      let n = List.length j.entries in
      (* Newest first: an id journaled twice is finally restored to its
         oldest (pre-epoch) value. *)
      List.iter (fun (id, s) -> restore id s) j.entries;
      journal_stop j;
      n
