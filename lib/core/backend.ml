module Tree = Xmlac_xml.Tree
module Fault = Xmlac_util.Fault
module Bitset = Xmlac_util.Bitset

type t = {
  name : string;
  eval_ids : Xmlac_xpath.Ast.expr -> int list;
  eval_plan : Plan.t -> int list;
  eval_plans : Plan.t list -> int list list;
  set_sign_ids : int list -> Tree.sign -> int;
  reset_signs : default:Tree.sign -> unit;
  sign_of : int -> Tree.sign option;
  restore_sign : int -> Tree.sign option -> unit;
  set_bits_ids : int list -> role:int -> value:bool -> default:Bitset.t -> int;
  set_bits_batch : (int * (int * bool) list) list -> default:Bitset.t -> int;
  reset_bits : default:Bitset.t -> unit;
  bits_of : int -> Bitset.t option;
  restore_bits : int -> Bitset.t option -> unit;
  delete_update : Xmlac_xpath.Ast.expr -> int;
  has_node : int -> bool;
  live_ids : unit -> int list;
  node_count : unit -> int;
}

let effective_sign t ~default id =
  match t.sign_of id with Some s -> s | None -> default

let accessible_ids t ~default =
  List.filter (fun id -> effective_sign t ~default id = Tree.Plus) (t.live_ids ())

let effective_bits t ~default id =
  match t.bits_of id with Some b -> b | None -> default

let accessible_ids_role t ~default ~role =
  List.filter
    (fun id -> Bitset.mem role (effective_bits t ~default id))
    (t.live_ids ())

(* Fault wrapper: sign and bitmap stamping loop node by node with a
   fault point between writes, so a counted trigger kills the simulated
   process with a genuinely partial multi-row update — the paper's
   inconsistent-materialization hazard made reproducible. *)
let with_faults ~prefix b =
  let pt op = Fault.point (prefix ^ "." ^ op) in
  {
    b with
    eval_ids =
      (fun e ->
        (* The read path's injection site: requests and the
           reannotator's scope evaluations cross it, so transient
           triggers can fail a query without touching any state. *)
        pt "eval";
        b.eval_ids e);
    eval_plans =
      (fun ps ->
        List.map
          (fun p ->
            pt "eval";
            b.eval_plan p)
          ps);
    set_sign_ids =
      (fun ids sign ->
        List.fold_left
          (fun acc id ->
            pt "set_sign";
            acc + b.set_sign_ids [ id ] sign)
          0 ids);
    reset_signs =
      (fun ~default ->
        pt "reset_signs";
        b.reset_signs ~default);
    set_bits_ids =
      (fun ids ~role ~value ~default ->
        List.fold_left
          (fun acc id ->
            pt "set_bits";
            acc + b.set_bits_ids [ id ] ~role ~value ~default)
          0 ids);
    set_bits_batch =
      (fun edits ~default ->
        (* One crossing per node, not per (node, role): the batch's
           whole point is one serialization per touched node, and the
           fault granularity follows the write granularity. *)
        List.fold_left
          (fun acc edit ->
            pt "set_bits";
            acc + b.set_bits_batch [ edit ] ~default)
          0 edits);
    reset_bits =
      (fun ~default ->
        pt "reset_bits";
        b.reset_bits ~default);
    delete_update =
      (fun e ->
        pt "delete";
        b.delete_update e);
  }

(* The two annotation representations journal separately: a sign epoch
   only touches signs, a multi-role epoch only bitmaps, and rollback
   must restore exactly what the epoch overwrote. *)
type entry = Sign of int * Tree.sign option | Bits of int * Bitset.t option

type journal = {
  mutable active : bool;
  mutable entries : entry list; (* newest first *)
  mutable restore : (int -> Tree.sign option -> unit) option;
  mutable restore_bits : (int -> Bitset.t option -> unit) option;
}

let journal () =
  { active = false; entries = []; restore = None; restore_bits = None }

let journal_begin j =
  j.active <- true;
  j.entries <- []

let journal_stop j =
  j.active <- false;
  j.entries <- []

let journal_entries j = List.length j.entries

let journaled j b =
  j.restore <- Some b.restore_sign;
  j.restore_bits <- Some b.restore_bits;
  let record id =
    if j.active && b.has_node id then
      j.entries <- Sign (id, b.sign_of id) :: j.entries
  in
  let record_bits id =
    if j.active && b.has_node id then
      j.entries <- Bits (id, b.bits_of id) :: j.entries
  in
  {
    b with
    set_sign_ids =
      (fun ids sign ->
        List.fold_left
          (fun acc id ->
            record id;
            acc + b.set_sign_ids [ id ] sign)
          0 ids);
    reset_signs =
      (fun ~default ->
        if j.active then List.iter record (b.live_ids ());
        b.reset_signs ~default);
    set_bits_ids =
      (fun ids ~role ~value ~default ->
        List.fold_left
          (fun acc id ->
            record_bits id;
            acc + b.set_bits_ids [ id ] ~role ~value ~default)
          0 ids);
    set_bits_batch =
      (fun edits ~default ->
        (* One pre-image per touched node covers every role edit the
           batch applies to it. *)
        List.fold_left
          (fun acc ((id, _) as edit) ->
            record_bits id;
            acc + b.set_bits_batch [ edit ] ~default)
          0 edits);
    reset_bits =
      (fun ~default ->
        if j.active then List.iter record_bits (b.live_ids ());
        b.reset_bits ~default);
  }

let rollback j =
  let restore_entry e =
    match (e, j.restore, j.restore_bits) with
    | Sign (id, s), Some restore, _ -> restore id s
    | Bits (id, b), _, Some restore -> restore id b
    | _ -> ()
  in
  match (j.restore, j.restore_bits) with
  | None, None ->
      journal_stop j;
      0
  | _ ->
      let n = List.length j.entries in
      (* Newest first: an id journaled twice is finally restored to its
         oldest (pre-epoch) value. *)
      List.iter restore_entry j.entries;
      journal_stop j;
      n
