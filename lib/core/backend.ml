module Tree = Xmlac_xml.Tree

type t = {
  name : string;
  eval_ids : Xmlac_xpath.Ast.expr -> int list;
  eval_plan : Plan.t -> int list;
  set_sign_ids : int list -> Tree.sign -> int;
  reset_signs : default:Tree.sign -> unit;
  sign_of : int -> Tree.sign option;
  delete_update : Xmlac_xpath.Ast.expr -> int;
  has_node : int -> bool;
  live_ids : unit -> int list;
  node_count : unit -> int;
}

let effective_sign t ~default id =
  match t.sign_of id with Some s -> s | None -> default

let accessible_ids t ~default =
  List.filter (fun id -> effective_sign t ~default id = Tree.Plus) (t.live_ids ())
