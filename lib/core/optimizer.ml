module C = Xmlac_xpath.Containment

type removal = {
  removed : Rule.t;
  because_of : Rule.t;
}

type report = {
  result : Policy.t;
  removals : removal list;
}

(* Figure 4, specialized to one effect class: repeatedly drop any rule
   contained in another surviving rule.  When two rules are mutually
   contained (equivalent), the earlier one wins, so exactly one
   survives.  [covers r k] gates elimination on the subject dimension:
   scope containment alone is unsound when the subsuming rule reaches
   fewer roles than the one removed. *)
let eliminate ~contained ~covers rules =
  let removals = ref [] in
  let keep kept (r : Rule.t) =
    match
      List.find_opt
        (fun k -> covers r k && contained r.Rule.resource k.Rule.resource)
        kept
    with
    | Some k ->
        removals := { removed = r; because_of = k } :: !removals;
        kept
    | None ->
        (* [r] survives for now, but may subsume earlier survivors. *)
        let kept, dropped =
          List.partition
            (fun k ->
              not (covers k r && contained k.Rule.resource r.Rule.resource))
            kept
        in
        List.iter
          (fun k -> removals := { removed = k; because_of = r } :: !removals)
          dropped;
        kept @ [ r ]
  in
  let survivors = List.fold_left keep [] rules in
  (survivors, List.rev !removals)

let optimize ?schema policy =
  let contained =
    match schema with
    | None -> C.contained_in
    | Some sg -> C.contained_in_schema sg
  in
  (* Removing [r] in favour of [k] is sound only when [k] reaches every
     role [r] does.  Coverage bitmaps are precomputed per rule — the
     role closure walk is not free at 512 roles. *)
  let coverage =
    List.map (fun r -> (r, Policy.applicability policy r)) (Policy.rules policy)
  in
  let coverage_of (r : Rule.t) = List.assq r coverage in
  let covers (r : Rule.t) (k : Rule.t) =
    Xmlac_util.Bitset.subset (coverage_of r) (coverage_of k)
  in
  let pos, rem_pos = eliminate ~contained ~covers (Policy.positive policy) in
  let neg, rem_neg = eliminate ~contained ~covers (Policy.negative policy) in
  (* Preserve the original interleaving among survivors. *)
  let surviving r = List.exists (fun k -> k == r) (pos @ neg) in
  let rules = List.filter surviving (Policy.rules policy) in
  { result = Policy.with_rules policy rules; removals = rem_pos @ rem_neg }

let optimize_policy ?schema policy = (optimize ?schema policy).result

let pp_report ppf r =
  Format.fprintf ppf "kept %d rule(s), removed %d:@."
    (Policy.size r.result)
    (List.length r.removals);
  List.iter
    (fun rem ->
      Format.fprintf ppf "  - %a  (contained in %a)@." Rule.pp rem.removed
        Rule.pp rem.because_of)
    r.removals;
  Format.fprintf ppf "%a" Policy.pp r.result
