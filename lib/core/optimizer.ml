module C = Xmlac_xpath.Containment

type removal = {
  removed : Rule.t;
  because_of : Rule.t;
}

type report = {
  result : Policy.t;
  removals : removal list;
}

(* Figure 4, specialized to one effect class: repeatedly drop any rule
   contained in another surviving rule.  When two rules are mutually
   contained (equivalent), the earlier one wins, so exactly one
   survives. *)
let eliminate ~contained rules =
  let removals = ref [] in
  let keep kept (r : Rule.t) =
    match
      List.find_opt (fun k -> contained r.Rule.resource k.Rule.resource) kept
    with
    | Some k ->
        removals := { removed = r; because_of = k } :: !removals;
        kept
    | None ->
        (* [r] survives for now, but may subsume earlier survivors. *)
        let kept, dropped =
          List.partition
            (fun k -> not (contained k.Rule.resource r.Rule.resource))
            kept
        in
        List.iter
          (fun k -> removals := { removed = k; because_of = r } :: !removals)
          dropped;
        kept @ [ r ]
  in
  let survivors = List.fold_left keep [] rules in
  (survivors, List.rev !removals)

let optimize ?schema policy =
  let contained =
    match schema with
    | None -> C.contained_in
    | Some sg -> C.contained_in_schema sg
  in
  let pos, rem_pos = eliminate ~contained (Policy.positive policy) in
  let neg, rem_neg = eliminate ~contained (Policy.negative policy) in
  (* Preserve the original interleaving among survivors. *)
  let surviving r = List.exists (fun k -> k == r) (pos @ neg) in
  let rules = List.filter surviving (Policy.rules policy) in
  { result = Policy.with_rules policy rules; removals = rem_pos @ rem_neg }

let optimize_policy ?schema policy = (optimize ?schema policy).result

let pp_report ppf r =
  Format.fprintf ppf "kept %d rule(s), removed %d:@."
    (Policy.size r.result)
    (List.length r.removals);
  List.iter
    (fun rem ->
      Format.fprintf ppf "  - %a  (contained in %a)@." Rule.pp rem.removed
        Rule.pp rem.because_of)
    r.removals;
  Format.fprintf ppf "%a" Policy.pp r.result
