module Xp = Xmlac_xpath

type result = {
  directly : int list;
  via_depends : int list;
}

let all r = List.sort_uniq Stdlib.compare (r.directly @ r.via_depends)

let related mode x u =
  match mode with
  | Depend.Paper ->
      Xp.Containment.comparable x u || Xp.Ast.equal_expr x u
  | Depend.Overlap sg -> Xp.Schema_match.overlap sg x u

let run_all ?schema depend ~updates =
  let policy = Depend.policy depend in
  let mode = Depend.mode depend in
  let schema =
    match (schema, mode) with
    | Some sg, _ -> Some sg
    | None, Depend.Overlap sg -> Some sg
    | None, Depend.Paper -> None
  in
  let rules = Array.of_list (Policy.rules policy) in
  let directly = ref [] in
  Array.iteri
    (fun i r ->
      let expansion = Xp.Expand.expand ?schema r.Rule.resource in
      if
        List.exists
          (fun update ->
            List.exists (fun x -> related mode x update) expansion)
          updates
      then directly := i :: !directly)
    rules;
  let directly = List.rev !directly in
  let with_deps =
    List.concat_map (fun i -> Depend.depends depend i) directly
  in
  let direct_set = List.sort_uniq Stdlib.compare directly in
  let via_depends =
    List.sort_uniq Stdlib.compare
      (List.filter (fun i -> not (List.mem i direct_set)) with_deps)
  in
  { directly = direct_set; via_depends }

let run ?schema depend ~update = run_all ?schema depend ~updates:[ update ]

let triggered_rules depend r =
  let rules = Array.of_list (Policy.rules (Depend.policy depend)) in
  List.map (fun i -> rules.(i)) (all r)
