module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath
module Sql = Xmlac_reldb.Sql
module Value = Xmlac_reldb.Value

type shape = Single | Except

type t = {
  primary : Xp.Ast.expr list;
  secondary : Xp.Ast.expr list;
  shape : shape;
  mark : Rule.effect;
}

let resources rules = List.map (fun r -> r.Rule.resource) rules

(* Figure 5 / the table in the interface comment. *)
let build policy =
  let grants = resources (Policy.positive policy) in
  let denies = resources (Policy.negative policy) in
  match (Policy.ds policy, Policy.cr policy) with
  | Rule.Minus, Rule.Minus ->
      { primary = grants; secondary = denies; shape = Except; mark = Rule.Plus }
  | Rule.Minus, Rule.Plus ->
      { primary = grants; secondary = []; shape = Single; mark = Rule.Plus }
  | Rule.Plus, Rule.Minus ->
      { primary = denies; secondary = []; shape = Single; mark = Rule.Minus }
  | Rule.Plus, Rule.Plus ->
      { primary = denies; secondary = grants; shape = Except; mark = Rule.Minus }

let union_ids doc exprs =
  let set = Hashtbl.create 256 in
  List.iter
    (fun e ->
      List.iter
        (fun (n : Tree.node) -> Hashtbl.replace set n.Tree.id ())
        (Xp.Eval.eval doc e))
    exprs;
  set

let eval_native doc t =
  let prim = union_ids doc t.primary in
  let sec =
    match t.shape with
    | Single -> Hashtbl.create 1
    | Except -> union_ids doc t.secondary
  in
  List.filter
    (fun (n : Tree.node) ->
      Hashtbl.mem prim n.Tree.id && not (Hashtbl.mem sec n.Tree.id))
    (Tree.nodes doc)

(* An always-empty relational query, for degenerate rule sets. *)
let sql_empty mapping =
  let root_ty = Xmlac_xml.Dtd.root (Xmlac_shrex.Mapping.dtd mapping) in
  Sql.Select
    {
      proj = [ Sql.col "t0" "id" ];
      from = [ { Sql.table = root_ty; as_alias = "t0" } ];
      where =
        [ Sql.Cmp
            {
              lhs = Sql.Const (Value.Int 0);
              op = Value.Eq;
              rhs = Sql.Const (Value.Int 1);
            } ];
    }

let sql_union mapping exprs =
  match List.map (Xmlac_shrex.Translate.translate mapping) exprs with
  | [] -> sql_empty mapping
  | first :: rest -> List.fold_left (fun acc q -> Sql.Union (acc, q)) first rest

let to_sql mapping t =
  let prim = sql_union mapping t.primary in
  match t.shape with
  | Single -> prim
  | Except -> Sql.Except (prim, sql_union mapping t.secondary)

let xq_union exprs =
  String.concat " union " (List.map Xp.Pp.expr_to_string exprs)

let to_xquery_string ~doc_name t =
  let body =
    match (t.shape, t.secondary) with
    | Single, _ | Except, [] -> xq_union t.primary
    | Except, _ ->
        Printf.sprintf "(%s) except (%s)" (xq_union t.primary)
          (xq_union t.secondary)
  in
  Printf.sprintf
    "for $n in doc(\"%s\")(%s)\nreturn xmlac:annotate($n, \"%s\")" doc_name
    body
    (Rule.effect_to_string t.mark)

let pp ppf t =
  Format.fprintf ppf "mark %s: %s"
    (Rule.effect_to_string t.mark)
    (match (t.shape, t.secondary) with
    | Single, _ | Except, [] -> xq_union t.primary
    | Except, _ ->
        Printf.sprintf "(%s) except (%s)" (xq_union t.primary)
          (xq_union t.secondary))
