module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath

type shape = Single | Except

type t = {
  primary : Xp.Ast.expr list;
  secondary : Xp.Ast.expr list;
  shape : shape;
  mark : Rule.effect;
}

let resources rules = List.map (fun r -> r.Rule.resource) rules

(* Figure 5 / the table in the interface comment. *)
let build policy =
  let grants = resources (Policy.positive policy) in
  let denies = resources (Policy.negative policy) in
  match (Policy.ds policy, Policy.cr policy) with
  | Rule.Minus, Rule.Minus ->
      { primary = grants; secondary = denies; shape = Except; mark = Rule.Plus }
  | Rule.Minus, Rule.Plus ->
      { primary = grants; secondary = []; shape = Single; mark = Rule.Plus }
  | Rule.Plus, Rule.Minus ->
      { primary = denies; secondary = []; shape = Single; mark = Rule.Minus }
  | Rule.Plus, Rule.Plus ->
      { primary = denies; secondary = grants; shape = Except; mark = Rule.Minus }

let to_plan t =
  let union es = Plan.Union (List.map (fun e -> Plan.Scope e) es) in
  let query =
    match t.shape with
    | Single -> union t.primary
    | Except -> Plan.Except (union t.primary, union t.secondary)
  in
  (* The mark is always the opposite of the default sign (Figure 5). *)
  { Plan.query; mark = t.mark; default = Rule.opposite t.mark }

let eval_native doc t =
  List.filter_map (Tree.find doc) (Plan.native_ids doc (to_plan t))

let to_sql mapping t = Plan.to_sql mapping (to_plan t)
let to_xquery_string ~doc_name t = Plan.to_xquery ~doc_name (to_plan t)
let pp ppf t = Plan.pp ppf (to_plan t)
