(** The storage-backend interface the access-control engine drives.

    Figure 3's annotator / reannotator / requester talk to both stores
    through exactly these operations; {!Rel_backend} routes them
    through SQL over the shredded database, {!Xml_backend} through
    XPath over the native tree.  Node identity is the universal id in
    both.

    {2 Crash safety}

    The engine's sign epochs ({!Engine.recover}) lean on two wrappers
    defined here.  {!with_faults} threads every mutating operation
    through {!Xmlac_util.Fault} points — per {e node} for sign stamps,
    so a counted trigger can kill the process in the middle of a
    multi-row UPDATE.  {!journaled} records each overwritten sign (the
    undo journal the native store needs, since it has no WAL); rolling
    a journal back restores the exact pre-epoch sign state, including
    the unannotated [None] of the native representation, via the
    {!t.restore_sign} primitive. *)

type t = {
  name : string;  (** e.g. "xquery", "row-sql", "column-sql". *)
  eval_ids : Xmlac_xpath.Ast.expr -> int list;
      (** Ids selected by an expression, ascending. *)
  eval_plan : Plan.t -> int list;
      (** Ids in the annotation plan's answer, ascending — the plan is
          lowered to the backend's own algebra (SQL with balanced
          unions relationally, id-set algebra natively), with any
          [Plan.Restrict] applied as a semijoin on the
          answer. *)
  set_sign_ids : int list -> Xmlac_xml.Tree.sign -> int;
      (** Stamps the sign on the given nodes; ids no longer present are
          skipped; returns how many were stamped. *)
  reset_signs : default:Xmlac_xml.Tree.sign -> unit;
      (** Returns every node to the unannotated/default state. *)
  sign_of : int -> Xmlac_xml.Tree.sign option;
      (** [None] when the node carries no explicit annotation (native
          store) or does not exist. *)
  restore_sign : int -> Xmlac_xml.Tree.sign option -> unit;
      (** Undo-journal primitive: writes back a sign previously read
          with [sign_of] — including [None], which natively clears the
          annotation.  No-op on a missing node; relationally [None] is
          unrepresentable for a live row and is skipped. *)
  delete_update : Xmlac_xpath.Ast.expr -> int;
      (** Applies a delete update: removes the selected nodes and their
          subtrees; returns the number of subtree roots removed. *)
  has_node : int -> bool;
      (** Whether a node with this universal id is currently stored;
          O(1) natively, a handful of index probes relationally. *)
  live_ids : unit -> int list;
  node_count : unit -> int;
}

val accessible_ids : t -> default:Xmlac_xml.Tree.sign -> int list
(** Ids whose effective sign (explicit or default) is [Plus],
    ascending — the materialized [\[\[P\]\](T)]. *)

val effective_sign : t -> default:Xmlac_xml.Tree.sign -> int -> Xmlac_xml.Tree.sign
(** Explicit sign if present, the default otherwise. *)

(** {1 Fault injection} *)

val with_faults : prefix:string -> t -> t
(** Threads the mutating operations through fault points named
    [<prefix>.set_sign] (hit once {e per node} stamped, so counted
    triggers land mid-write), [<prefix>.reset_signs] and
    [<prefix>.delete]; [eval_ids] crosses [<prefix>.eval] once per
    query, the read-path site transient triggers use to fail a
    request without corrupting state.  Other read operations pass
    through untouched. *)

(** {1 Sign undo journal} *)

type journal
(** Per-backend undo journal for one sign epoch: every sign overwrite
    performed through a {!journaled} wrapper while the journal is
    active records the prior value, so {!rollback} can restore the
    pre-epoch sign state after a crash. *)

val journal : unit -> journal
(** A fresh, inactive journal. *)

val journaled : journal -> t -> t
(** Wraps the backend so [set_sign_ids] and [reset_signs] record each
    overwritten [(id, prior sign)] into the journal while it is
    active.  Compose {e inside} {!with_faults} so a write interrupted
    by a fault is neither journaled nor applied. *)

val journal_begin : journal -> unit
(** Start recording (clears previous entries). *)

val journal_stop : journal -> unit
(** Stop recording and discard entries — the commit path. *)

val journal_entries : journal -> int
(** Recorded overwrites (an id written twice counts twice). *)

val rollback : journal -> int
(** Restores every journaled sign, newest first (so an id written
    twice ends at its original value), then deactivates the journal.
    Returns the number of restores performed.  Requires the journal to
    have been attached with {!journaled}. *)
