(** The storage-backend interface the access-control engine drives.

    Figure 3's annotator / reannotator / requester talk to both stores
    through exactly these operations; {!Rel_backend} routes them
    through SQL over the shredded database, {!Xml_backend} through
    XPath over the native tree.  Node identity is the universal id in
    both.

    {2 Signs and role bitmaps}

    Two annotation representations coexist.  The single-subject sign
    ("+"/"-") is the paper's original materialization.  The
    multi-subject role {e bitmap} ({!Xmlac_util.Bitset}) stores, per
    node, the set of role bit indices with access; [set_bits_ids]
    stamps one role's slice of every bitmap in an id set, which is how
    the shared annotation pass fans a plan answer out to the roles that
    share the plan.

    {2 Crash safety}

    The engine's annotation epochs ({!Engine.recover}) lean on two
    wrappers defined here.  {!with_faults} threads every mutating
    operation through {!Xmlac_util.Fault} points — per {e node} for
    sign and bitmap stamps, so a counted trigger can kill the process
    in the middle of a multi-row UPDATE.  {!journaled} records each
    overwritten sign or bitmap (the undo journal the native store
    needs, since it has no WAL); rolling a journal back restores the
    exact pre-epoch annotation state, including the unannotated [None]
    of the native representation, via the {!t.restore_sign} /
    {!t.restore_bits} primitives. *)

type t = {
  name : string;  (** e.g. "xquery", "row-sql", "column-sql". *)
  eval_ids : Xmlac_xpath.Ast.expr -> int list;
      (** Ids selected by an expression, ascending. *)
  eval_plan : Plan.t -> int list;
      (** Ids in the annotation plan's answer, ascending — the plan is
          lowered to the backend's own algebra (SQL with balanced
          unions relationally, id-set algebra natively), with any
          [Plan.Restrict] applied as a semijoin on the
          answer. *)
  eval_plans : Plan.t list -> int list list;
      (** A batch of plans in one pass, in order.  The native store
          shares a scope memo across the batch
          ({!Plan.native_ids_shared}) so each distinct XPath evaluates
          once; relationally each plan is one SQL query.  Answers match
          [List.map eval_plan] exactly. *)
  set_sign_ids : int list -> Xmlac_xml.Tree.sign -> int;
      (** Stamps the sign on the given nodes; ids no longer present are
          skipped; returns how many were stamped. *)
  reset_signs : default:Xmlac_xml.Tree.sign -> unit;
      (** Returns every node to the unannotated/default state. *)
  sign_of : int -> Xmlac_xml.Tree.sign option;
      (** [None] when the node carries no explicit annotation (native
          store) or does not exist. *)
  restore_sign : int -> Xmlac_xml.Tree.sign option -> unit;
      (** Undo-journal primitive: writes back a sign previously read
          with [sign_of] — including [None], which natively clears the
          annotation.  No-op on a missing node; relationally [None] is
          unrepresentable for a live row and is skipped. *)
  set_bits_ids : int list -> role:int -> value:bool -> default:Xmlac_util.Bitset.t -> int;
      (** Stamps one role's bit to [value] in the bitmap of each given
          node; ids no longer present are skipped; returns how many
          were stamped.  A node without an explicit bitmap starts from
          [default] (the policy's {!Policy.default_bits}) — the native
          store materializes the bitmap on first touch, the relational
          store always has an explicit [b] column. *)
  set_bits_batch :
    (int * (int * bool) list) list -> default:Xmlac_util.Bitset.t -> int;
      (** [set_bits_batch [(id, [(role, value); ...]); ...] ~default]
          applies every role-bit edit of a node in one write: the
          node's bitmap is read (or started from [default]) once, all
          its role bits flipped, and the result stored — one
          serialization per touched node instead of one per (node,
          role), which is what makes thousands of roles affordable on
          the relational stores.  Ids no longer present are skipped.
          Returns the number of (node, role) edits applied — the same
          count a [set_bits_ids] loop would report. *)
  reset_bits : default:Xmlac_util.Bitset.t -> unit;
      (** Returns every node's bitmap to the unannotated/default state:
          natively erases them all (compact representation),
          relationally rewrites the [b] column to [default]. *)
  bits_of : int -> Xmlac_util.Bitset.t option;
      (** [None] when the node carries no explicit bitmap (native
          store) or does not exist. *)
  restore_bits : int -> Xmlac_util.Bitset.t option -> unit;
      (** Undo-journal primitive for bitmaps; mirrors
          {!t.restore_sign}, including the [None] conventions. *)
  delete_update : Xmlac_xpath.Ast.expr -> int;
      (** Applies a delete update: removes the selected nodes and their
          subtrees; returns the number of subtree roots removed. *)
  has_node : int -> bool;
      (** Whether a node with this universal id is currently stored;
          O(1) natively, a handful of index probes relationally. *)
  live_ids : unit -> int list;
  node_count : unit -> int;
}

val accessible_ids : t -> default:Xmlac_xml.Tree.sign -> int list
(** Ids whose effective sign (explicit or default) is [Plus],
    ascending — the materialized [\[\[P\]\](T)]. *)

val effective_sign : t -> default:Xmlac_xml.Tree.sign -> int -> Xmlac_xml.Tree.sign
(** Explicit sign if present, the default otherwise. *)

val effective_bits : t -> default:Xmlac_util.Bitset.t -> int -> Xmlac_util.Bitset.t
(** Explicit bitmap if present, the default otherwise. *)

val accessible_ids_role : t -> default:Xmlac_util.Bitset.t -> role:int -> int list
(** Ids whose effective bitmap has the role's bit set, ascending — the
    materialized [\[\[P\]\](T)] of one subject. *)

(** {1 Fault injection} *)

val with_faults : prefix:string -> t -> t
(** Threads the mutating operations through fault points named
    [<prefix>.set_sign] and [<prefix>.set_bits] (hit once {e per node}
    stamped — [set_bits_batch] included, whose crossing granularity
    follows its per-node write granularity — so counted triggers land
    mid-write),
    [<prefix>.reset_signs], [<prefix>.reset_bits] and
    [<prefix>.delete]; [eval_ids] crosses [<prefix>.eval] once per
    query — as does each plan of an [eval_plans] batch — the read-path
    site transient triggers use to fail a request without corrupting
    state.  Other read operations pass through untouched. *)

(** {1 Annotation undo journal} *)

type journal
(** Per-backend undo journal for one annotation epoch: every sign or
    bitmap overwrite performed through a {!journaled} wrapper while the
    journal is active records the prior value, so {!rollback} can
    restore the pre-epoch state after a crash. *)

val journal : unit -> journal
(** A fresh, inactive journal. *)

val journaled : journal -> t -> t
(** Wraps the backend so [set_sign_ids] / [reset_signs] record each
    overwritten [(id, prior sign)] and [set_bits_ids] / [reset_bits]
    each overwritten [(id, prior bitmap)] into the journal while it is
    active.  Compose {e inside} {!with_faults} so a write interrupted
    by a fault is neither journaled nor applied. *)

val journal_begin : journal -> unit
(** Start recording (clears previous entries). *)

val journal_stop : journal -> unit
(** Stop recording and discard entries — the commit path. *)

val journal_entries : journal -> int
(** Recorded overwrites (an id written twice counts twice). *)

val rollback : journal -> int
(** Restores every journaled sign and bitmap, newest first (so an id
    written twice ends at its original value), then deactivates the
    journal.  Returns the number of restores performed.  Requires the
    journal to have been attached with {!journaled}. *)
