(** The storage-backend interface the access-control engine drives.

    Figure 3's annotator / reannotator / requester talk to both stores
    through exactly these operations; {!Rel_backend} routes them
    through SQL over the shredded database, {!Xml_backend} through
    XPath over the native tree.  Node identity is the universal id in
    both. *)

type t = {
  name : string;  (** e.g. "xquery", "row-sql", "column-sql". *)
  eval_ids : Xmlac_xpath.Ast.expr -> int list;
      (** Ids selected by an expression, ascending. *)
  eval_plan : Plan.t -> int list;
      (** Ids in the annotation plan's answer, ascending — the plan is
          lowered to the backend's own algebra (SQL with balanced
          unions relationally, id-set algebra natively), with any
          [Plan.Restrict] applied as a semijoin on the
          answer. *)
  set_sign_ids : int list -> Xmlac_xml.Tree.sign -> int;
      (** Stamps the sign on the given nodes; ids no longer present are
          skipped; returns how many were stamped. *)
  reset_signs : default:Xmlac_xml.Tree.sign -> unit;
      (** Returns every node to the unannotated/default state. *)
  sign_of : int -> Xmlac_xml.Tree.sign option;
      (** [None] when the node carries no explicit annotation (native
          store) or does not exist. *)
  delete_update : Xmlac_xpath.Ast.expr -> int;
      (** Applies a delete update: removes the selected nodes and their
          subtrees; returns the number of subtree roots removed. *)
  has_node : int -> bool;
      (** Whether a node with this universal id is currently stored;
          O(1) natively, a handful of index probes relationally. *)
  live_ids : unit -> int list;
  node_count : unit -> int;
}

val accessible_ids : t -> default:Xmlac_xml.Tree.sign -> int list
(** Ids whose effective sign (explicit or default) is [Plus],
    ascending — the materialized [\[\[P\]\](T)]. *)

val effective_sign : t -> default:Xmlac_xml.Tree.sign -> int -> Xmlac_xml.Tree.sign
(** Explicit sign if present, the default otherwise. *)
