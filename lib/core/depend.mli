(** The rule dependency graph (Section 5.3, algorithms Depend and
    Depend-Resolve of Figure 7).

    Two rules are neighbours when they have {e opposite} effects and
    their scopes are related; when a rule is triggered by an update,
    every rule reachable from it in this graph must be re-evaluated
    too (R3 pulls in R1 in the paper's example).

    Relatedness comes in two strengths:
    - [Paper]: neighbours have opposite effects and are related by
      containment either way or syntactic equality —
      [r ⊑ r' ∨ r' ⊑ r ∨ r = r'] — exactly the published algorithm;
    - [Overlap]: neighbours are rules of {e any} effect whose scopes
      overlap at the schema level.  Both relaxations are needed for
      completeness: opposite-effect overlapping rules change the
      conflict outcome, and same-effect overlapping rules may keep a
      node annotated after it leaves a triggered rule's scope.  This
      mode closes the gap the paper acknowledges and is what the
      re-annotation correctness property is proved against. *)

type mode = Paper | Overlap of Xmlac_xml.Schema_graph.t

type t

val build : mode:mode -> Policy.t -> t
(** O(n^2) containment/overlap tests; rules are identified by their
    position in [Policy.rules]. *)

val mode : t -> mode
val policy : t -> Policy.t

val neighbours : t -> int -> int list
(** Direct neighbours of the rule at the given index. *)

val depends : t -> int -> int list
(** Transitive closure, excluding the rule itself — the [r.depends]
    list of Figure 7. *)

val pp : Format.formatter -> t -> unit
