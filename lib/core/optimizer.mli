(** Policy optimization: redundancy elimination (Section 5.1,
    algorithm Redundancy-Elimination of Figure 4).

    A rule [R] is redundant when some other rule [R'] of the {e same}
    effect contains it ([R.resource ⊑ R'.resource]): every node [R]
    would stamp is already stamped identically by [R'].  Containment is
    decided by {!Xmlac_xpath.Containment}; because that test is a
    sound under-approximation, the optimizer may keep a redundant rule
    but never removes a non-redundant one — the optimized policy is
    always equivalent to the original. *)

type removal = {
  removed : Rule.t;
  because_of : Rule.t;  (** The same-effect rule containing it. *)
}

type report = {
  result : Policy.t;
  removals : removal list;  (** In elimination order. *)
}

val optimize : ?schema:Xmlac_xml.Schema_graph.t -> Policy.t -> report
(** Eliminates redundant rules separately within the positive and the
    negative sets, then reassembles the policy (rules of opposite
    effect never eliminate each other — R3 vs R1 in the paper).
    With [schema], containment is decided relative to the DTD
    ({!Xmlac_xpath.Containment.contained_in_schema}), which removes
    strictly more redundancy — the schema-aware optimization the
    paper's conclusion calls for.  Only sound when every document the
    policy will ever guard validates against that DTD. *)

val optimize_policy : ?schema:Xmlac_xml.Schema_graph.t -> Policy.t -> Policy.t
(** [optimize] without the report. *)

val pp_report : Format.formatter -> report -> unit
