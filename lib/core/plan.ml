module Tree = Xmlac_xml.Tree
module Sg = Xmlac_xml.Schema_graph
module Xp = Xmlac_xpath
module Sql = Xmlac_reldb.Sql
module Translate = Xmlac_shrex.Translate
module Timing = Xmlac_util.Timing
module Ids = Set.Make (Int)

type node =
  | Empty
  | Scope of Xp.Ast.expr
  | Union of node list
  | Except of node * node
  | Intersect of node * node
  | Restrict of Ids.t * node

type t = { query : node; mark : Rule.effect; default : Rule.effect }

(* --- construction ------------------------------------------------- *)

let scope_union rules =
  Union (List.map (fun (r : Rule.t) -> Scope r.Rule.resource) rules)

(* Figure 5: the nodes to flip to the non-default sign. *)
let of_policy policy =
  let grants = scope_union (Policy.positive policy) in
  let denies = scope_union (Policy.negative policy) in
  let ds = Policy.ds policy in
  let query =
    match (ds, Policy.cr policy) with
    | Rule.Minus, Rule.Minus -> Except (grants, denies)
    | Rule.Minus, Rule.Plus -> grants
    | Rule.Plus, Rule.Minus -> denies
    | Rule.Plus, Rule.Plus -> Except (denies, grants)
  in
  { query; mark = Rule.opposite ds; default = ds }

let of_rules policy rules = of_policy (Policy.with_rules policy rules)

let restrict ids t = { t with query = Restrict (ids, t.query) }

(* --- inspection --------------------------------------------------- *)

let rec size_node = function
  | Empty | Scope _ -> 1
  | Union ps -> List.fold_left (fun n p -> n + size_node p) 1 ps
  | Except (a, b) | Intersect (a, b) -> 1 + size_node a + size_node b
  | Restrict (_, p) -> 1 + size_node p

let size t = size_node t.query

let scopes t =
  let rec go acc = function
    | Empty -> acc
    | Scope e -> e :: acc
    | Union ps -> List.fold_left go acc ps
    | Except (a, b) | Intersect (a, b) -> go (go acc a) b
    | Restrict (_, p) -> go acc p
  in
  List.rev (go [] t.query)

let rec equal_node a b =
  match (a, b) with
  | Empty, Empty -> true
  | Scope p, Scope q -> Xp.Ast.equal_expr p q
  | Union ps, Union qs ->
      List.length ps = List.length qs && List.for_all2 equal_node ps qs
  | Except (a1, b1), Except (a2, b2) | Intersect (a1, b1), Intersect (a2, b2)
    ->
      equal_node a1 a2 && equal_node b1 b2
  | Restrict (s1, p1), Restrict (s2, p2) -> Ids.equal s1 s2 && equal_node p1 p2
  | _ -> false

(* --- rewriting ---------------------------------------------------- *)

type pass_stat = { pass : string; before : int; after : int }

let rec simplify = function
  | (Empty | Scope _) as p -> p
  | Union ps -> (
      let ps =
        List.concat_map
          (fun p ->
            match simplify p with Empty -> [] | Union qs -> qs | q -> [ q ])
          ps
      in
      match ps with [] -> Empty | [ p ] -> p | ps -> Union ps)
  | Except (a, b) -> (
      match (simplify a, simplify b) with
      | Empty, _ -> Empty
      | a, Empty -> a
      | a, b -> Except (a, b))
  | Intersect (a, b) -> (
      match (simplify a, simplify b) with
      | Empty, _ | _, Empty -> Empty
      | a, b -> Intersect (a, b))
  | Restrict (s, p) -> (
      if Ids.is_empty s then Empty
      else
        match simplify p with
        | Empty -> Empty
        | Restrict (s', p') -> Restrict (Ids.inter s s', p')
        | p -> Restrict (s, p))

(* Within one union front, [Scope p] is absorbed when some sibling
   [Scope q] contains it; ties between equivalent scopes keep the
   leftmost.  Only scope members participate — compound members are
   recursed into but never compared. *)
let absorb ?schema query =
  let contained p q =
    match schema with
    | None -> Xp.Containment.contained_in p q
    | Some sg -> Xp.Containment.contained_in_schema sg p q
  in
  let absorb_front ps =
    let arr = Array.of_list ps in
    let n = Array.length arr in
    let expr_of = function Scope e -> Some e | _ -> None in
    let absorbed i p =
      let rec any j =
        j < n
        && ((j <> i
            &&
            match expr_of arr.(j) with
            | None -> false
            | Some q -> contained p q && (j < i || not (contained q p)))
           || any (j + 1))
      in
      any 0
    in
    List.filteri
      (fun i member ->
        match expr_of member with
        | None -> true
        | Some p -> not (absorbed i p))
      ps
  in
  let rec go = function
    | (Empty | Scope _) as p -> p
    | Union ps -> Union (absorb_front (List.map go ps))
    | Except (a, b) -> Except (go a, go b)
    | Intersect (a, b) -> Intersect (go a, go b)
    | Restrict (s, p) -> Restrict (s, go p)
  in
  go query

let prune sg query =
  let rec go = function
    | Scope e when not (Xp.Schema_match.satisfiable sg e) -> Empty
    | (Empty | Scope _) as p -> p
    | Union ps -> Union (List.map go ps)
    | Except (a, b) -> Except (go a, go b)
    | Intersect (a, b) -> Intersect (go a, go b)
    | Restrict (s, p) -> Restrict (s, go p)
  in
  go query

let passes ?schema () =
  [ ("flatten", simplify) ]
  @ (match schema with
    | None -> []
    | Some sg -> [ ("prune-unsat", prune sg) ])
  @ [ ("absorb", fun q -> absorb ?schema q); ("simplify", simplify) ]

let rewrite_trace ?schema t =
  let query, rev_trace =
    List.fold_left
      (fun (q, trace) (pass, f) ->
        let q' = f q in
        ((q' : node), { pass; before = size_node q; after = size_node q' } :: trace))
      (t.query, []) (passes ?schema ())
  in
  ({ t with query }, List.rev rev_trace)

let rewrite ?schema t = fst (rewrite_trace ?schema t)

(* --- equivalence (for cross-role plan sharing) --------------------- *)

(* Whether two plans have provably identical answers on every document:
   structural recursion, with [Scope]s compared up to mutual
   containment so syntactic variants of the same path collapse.  Marks
   are deliberately ignored — two roles can share one query evaluation
   and fan the answer out with opposite marks. *)
let equiv ?schema a b =
  let scopes_equiv p q =
    Xp.Ast.equal_expr p q
    ||
    let contained x y =
      match schema with
      | None -> Xp.Containment.contained_in x y
      | Some sg -> Xp.Containment.contained_in_schema sg x y
    in
    contained p q && contained q p
  in
  let rec go a b =
    match (a, b) with
    | Empty, Empty -> true
    | Scope p, Scope q -> scopes_equiv p q
    | Union ps, Union qs ->
        List.length ps = List.length qs && List.for_all2 go ps qs
    | Except (a1, b1), Except (a2, b2) | Intersect (a1, b1), Intersect (a2, b2)
      ->
        go a1 a2 && go b1 b2
    | Restrict (s1, p1), Restrict (s2, p2) -> Ids.equal s1 s2 && go p1 p2
    | _ -> false
  in
  go a.query b.query

(* --- native lowering ---------------------------------------------- *)

let ids_of_table tbl = Hashtbl.fold (fun id () s -> Ids.add id s) tbl Ids.empty

let rec eval_node_memo memo doc = function
  | Empty -> Ids.empty
  | Scope e -> (
      match memo with
      | None -> ids_of_table (Xp.Eval.node_set doc e)
      | Some tbl -> (
          let key = Xp.Pp.expr_to_string e in
          match Hashtbl.find_opt tbl key with
          | Some s -> s
          | None ->
              let s = ids_of_table (Xp.Eval.node_set doc e) in
              Hashtbl.replace tbl key s;
              s))
  | Union ps ->
      List.fold_left
        (fun acc p -> Ids.union acc (eval_node_memo memo doc p))
        Ids.empty ps
  | Except (a, b) ->
      Ids.diff (eval_node_memo memo doc a) (eval_node_memo memo doc b)
  | Intersect (a, b) ->
      Ids.inter (eval_node_memo memo doc a) (eval_node_memo memo doc b)
  | Restrict (s, p) -> Ids.inter s (eval_node_memo memo doc p)

let eval_node doc p = eval_node_memo None doc p

let eval_native doc t = eval_node doc t.query
let native_ids doc t = Ids.elements (eval_native doc t)

(* One scope memo across a batch of plans: role plans from one policy
   share most of their scopes, so each distinct XPath evaluates once
   per document no matter how many roles reference it. *)
let native_ids_shared doc ts =
  let memo = Some (Hashtbl.create 32) in
  List.map (fun t -> Ids.elements (eval_node_memo memo doc t.query)) ts

(* --- relational lowering ------------------------------------------ *)

let split_restriction t =
  let rec go acc = function
    | Restrict (s, p) ->
        go (Some (match acc with None -> s | Some a -> Ids.inter a s)) p
    | p -> (acc, p)
  in
  let restriction, query = go None t.query in
  (restriction, { t with query })

let to_sql mapping t =
  let rec go = function
    | Empty -> Translate.empty mapping
    | Scope e -> Translate.translate mapping e
    | Union ps -> (
        (* Every scope itself lowers to a union of ShreX branches;
           flattening the whole front before balancing gives one
           balanced n-ary union over all branches. *)
        match
          Sql.balanced_union
            (List.concat_map (fun p -> Sql.flatten_union (go p)) ps)
        with
        | None -> Translate.empty mapping
        | Some q -> q)
    | Except (a, b) -> Sql.Except (go a, go b)
    | Intersect (a, b) -> Sql.Intersect (go a, go b)
    | Restrict _ ->
        invalid_arg "Plan.to_sql: Restrict has no relational form"
  in
  go t.query

(* --- xquery lowering ---------------------------------------------- *)

let rec xq_node ~on_restrict = function
  | Empty | Union [] -> "()"
  | Scope e -> Xp.Pp.expr_to_string e
  | Union ps -> String.concat " union " (List.map (xq_atom ~on_restrict) ps)
  | Except (a, b) ->
      xq_atom ~on_restrict a ^ " except " ^ xq_atom ~on_restrict b
  | Intersect (a, b) ->
      xq_atom ~on_restrict a ^ " intersect " ^ xq_atom ~on_restrict b
  | Restrict (s, p) -> on_restrict s p

and xq_atom ~on_restrict p =
  match p with
  | Empty | Scope _ | Union [] | Restrict _ -> xq_node ~on_restrict p
  | Union _ | Except _ | Intersect _ -> "(" ^ xq_node ~on_restrict p ^ ")"

let to_xquery ~doc_name t =
  let body =
    xq_node
      ~on_restrict:(fun _ _ ->
        invalid_arg "Plan.to_xquery: Restrict has no XQuery form")
      t.query
  in
  Printf.sprintf "for $n in doc(\"%s\")(%s)\nreturn xmlac:annotate($n, \"%s\")"
    doc_name body
    (Rule.effect_to_string t.mark)

(* --- printing ----------------------------------------------------- *)

let node_to_string =
  xq_node ~on_restrict:(fun s p ->
      Printf.sprintf "restrict{%d}(%s)" (Ids.cardinal s)
        (xq_node
           ~on_restrict:(fun _ _ -> assert false (* fused by simplify *))
           p))

let pp_node ppf n = Format.pp_print_string ppf (node_to_string n)

let pp ppf t =
  Format.fprintf ppf "mark %s: %s"
    (Rule.effect_to_string t.mark)
    (node_to_string t.query)

(* --- explain ------------------------------------------------------ *)

type explain = {
  raw : t;
  rewritten : t;
  trace : pass_stat list;
  xquery : string;
  sql : Sql.query option;
  scope_counts : (string * int) list;
  answer_size : int option;
  timings : (string * float) list;
}

let explain ?schema ?mapping ?doc ?(doc_name = "doc") t =
  let (rewritten, trace), rewrite_s =
    Timing.time (fun () -> rewrite_trace ?schema t)
  in
  let _, core = split_restriction rewritten in
  let xquery, xquery_s = Timing.time (fun () -> to_xquery ~doc_name core) in
  let sql, sql_timing =
    match mapping with
    | None -> (None, [])
    | Some m ->
        let q, s = Timing.time (fun () -> to_sql m core) in
        (Some q, [ ("lower:sql", s) ])
  in
  let scope_counts, answer_size, native_timing =
    match doc with
    | None -> ([], None, [])
    | Some d ->
        let counts =
          List.map
            (fun e ->
              (Xp.Pp.expr_to_string e, Hashtbl.length (Xp.Eval.node_set d e)))
            (scopes rewritten)
        in
        let answer, s = Timing.time (fun () -> eval_native d rewritten) in
        (counts, Some (Ids.cardinal answer), [ ("eval:native", s) ])
  in
  {
    raw = t;
    rewritten;
    trace;
    xquery;
    sql;
    scope_counts;
    answer_size;
    timings =
      (("rewrite", rewrite_s) :: ("lower:xquery", xquery_s) :: sql_timing)
      @ native_timing;
  }

let pp_explain ppf e =
  Format.fprintf ppf "@[<v>plan (raw, %d nodes):@;<1 2>%a@," (size e.raw) pp
    e.raw;
  Format.fprintf ppf "rewrite passes:@,";
  List.iter
    (fun { pass; before; after } ->
      Format.fprintf ppf "  %-12s %d -> %d%s@," pass before after
        (if after < before then "  (shrunk)" else ""))
    e.trace;
  Format.fprintf ppf "plan (rewritten, %d nodes):@;<1 2>%a@," (size e.rewritten)
    pp e.rewritten;
  Format.fprintf ppf "xquery lowering:@;<1 2>%s@,"
    (String.concat " " (String.split_on_char '\n' e.xquery));
  (match e.sql with
  | None -> ()
  | Some q ->
      Format.fprintf ppf
        "sql lowering (%d query nodes, union depth %d):@;<1 2>%s@," (Sql.size q)
        (Sql.depth q) (Sql.query_to_string q));
  (match e.scope_counts with
  | [] -> ()
  | counts ->
      Format.fprintf ppf "per-scope node counts:@,";
      List.iter
        (fun (expr, n) -> Format.fprintf ppf "  %-40s %d@," expr n)
        counts);
  (match e.answer_size with
  | None -> ()
  | Some n -> Format.fprintf ppf "answer: %d node(s) to mark %s@," n
        (Rule.effect_to_string e.rewritten.mark));
  Format.fprintf ppf "timings:@,";
  List.iter
    (fun (stage, s) ->
      Format.fprintf ppf "  %-14s %a@," stage Timing.pp_seconds s)
    e.timings;
  Format.fprintf ppf "@]"
