(** The annotation-plan intermediate representation.

    Annotation-Queries (Section 5.2, Figure 5) compiles a policy into
    one set-algebraic query over the scopes of its rules, and partial
    re-annotation (Section 5.3) runs the same query restricted to the
    triggered rules and the affected region.  This module makes that
    query a first-class object — built once from either entry point,
    rewritten by analysis passes, and lowered to each store's own
    algebra — instead of a flat record every layer re-interprets by
    hand.

    The pipeline is

    {v policy / triggered rules
        |  of_policy / of_rules (+ restrict)
        v
      plan IR  --rewrite-->  smaller plan IR
        |
        +-- native_ids   (id-set algebra over the XML tree)
        +-- to_sql       (ShreX translation, balanced n-ary unions)
        +-- to_xquery    (executable FLWOR text for Xmldb.Xquery) v}

    Rewrites only ever shrink the query ({e fewer} scopes to evaluate,
    {e smaller} lowered artifacts) and preserve its answer: scope
    absorption relies on {!Xmlac_xpath.Containment} (instance-sound;
    with a schema, sound for documents whose node label paths the DTD
    realizes), unsatisfiable-scope pruning on
    {!Xmlac_xpath.Schema_match.satisfiable} (same proviso), and union
    flattening / empty elimination are identities of the set
    algebra. *)

module Ids : Set.S with type elt = int
(** Universal node-id sets — the common currency of the three
    lowerings. *)

(** {1 The IR} *)

type node =
  | Empty  (** The empty node set. *)
  | Scope of Xmlac_xpath.Ast.expr  (** One rule's scope [\[\[e\]\]]. *)
  | Union of node list  (** N-ary union; [Union \[\]] = [Empty]. *)
  | Except of node * node
  | Intersect of node * node
  | Restrict of Ids.t * node
      (** Intersection with a materialized id set — the reannotator's
          affected region.  Only the native lowering can evaluate it
          in-store; relational and XQuery consumers peel it off with
          {!split_restriction} and apply it as a semijoin on the
          answer. *)

type t = {
  query : node;
  mark : Rule.effect;  (** The sign stamped on the query's answer. *)
  default : Rule.effect;  (** The policy's [ds]; always [opposite mark]. *)
}

(** {1 Construction} *)

val of_policy : Policy.t -> t
(** Figure 5: [grants EXCEPT denies] marked ["+"] for deny/deny,
    [grants] for deny/allow, [denies] marked ["-"] for allow/deny,
    [denies EXCEPT grants] for allow/allow. *)

val of_rules : Policy.t -> Rule.t list -> t
(** The restricted compilation of Section 5.3: same [ds]/[cr], only
    the given (triggered) rules.  [of_rules p (Policy.rules p)] is
    [of_policy p]. *)

val restrict : Ids.t -> t -> t
(** Wraps the query in a [Restrict] node on the given id set. *)

(** {1 Inspection} *)

val size : t -> int
(** Number of IR nodes. *)

val scopes : t -> Xmlac_xpath.Ast.expr list
(** Every [Scope] expression, left to right. *)

val equal_node : node -> node -> bool

val equiv : ?schema:Xmlac_xml.Schema_graph.t -> t -> t -> bool
(** Whether two plans provably have the same answer on every document:
    structural equality with [Scope]s compared up to mutual containment
    ({!Xmlac_xpath.Containment}), so syntactic variants of one path
    collapse.  Marks are ignored — two roles can share one evaluation
    of a common query and fan the answer out under different marks.
    Sound but incomplete: [false] only costs a duplicate evaluation. *)

(** {1 Rewriting} *)

type pass_stat = { pass : string; before : int; after : int }
(** IR node counts around one pass. *)

val simplify : node -> node
(** Union flattening into n-ary form, empty elimination
    ([Union \[\] = Empty], [Except (Empty, _) = Empty],
    [Except (p, Empty) = p], [Intersect] with [Empty] = [Empty]),
    singleton-union unwrapping, and fusion of nested restrictions. *)

val absorb : ?schema:Xmlac_xml.Schema_graph.t -> node -> node
(** Containment-based scope absorption: inside every union, a scope
    contained in a sibling scope is dropped (the rewriting analogue of
    Redundancy-Elimination, applied to the compiled query rather than
    the policy — it also absorbs across rules the optimizer must keep,
    e.g. the primary union of an allow/allow policy contains the
    denies regardless of effect).  With [schema], containment is
    decided relative to the DTD, which absorbs strictly more. *)

val prune : Xmlac_xml.Schema_graph.t -> node -> node
(** Replaces scopes unsatisfiable under the schema
    ({!Xmlac_xpath.Schema_match.satisfiable}) with [Empty]. *)

val rewrite : ?schema:Xmlac_xml.Schema_graph.t -> t -> t
(** The full pipeline: simplify; prune (when [schema] is given);
    absorb; simplify. *)

val rewrite_trace : ?schema:Xmlac_xml.Schema_graph.t -> t -> t * pass_stat list
(** {!rewrite} with per-pass before/after sizes. *)

(** {1 Lowerings} *)

val eval_native : Xmlac_xml.Tree.t -> t -> Ids.t
(** Direct evaluation over the native store: each scope materializes
    its id set through {!Xmlac_xpath.Eval.node_set} and the set
    algebra runs on those — no document scan. *)

val native_ids : Xmlac_xml.Tree.t -> t -> int list
(** {!eval_native} as an ascending list. *)

val native_ids_shared : Xmlac_xml.Tree.t -> t list -> int list list
(** Evaluates a batch of plans over one document with a shared scope
    memo: each distinct XPath (by printed form) is evaluated once no
    matter how many plans reference it — the native store's half of the
    multi-role shared annotation pass. *)

val split_restriction : t -> Ids.t option * t
(** Peels top-level restrictions off the query (intersecting nested
    ones); the remaining plan is [Restrict]-free at the root and
    lowerable to SQL/XQuery, with the returned set to be applied to
    the answer. *)

val to_sql : Xmlac_shrex.Mapping.t -> t -> Xmlac_reldb.Sql.query
(** ShreX-translated scopes combined with balanced n-ary UNIONs (the
    translation's own branches are flattened into the same front) and
    EXCEPT / INTERSECT.  [Empty] lowers to
    {!Xmlac_shrex.Translate.empty}.
    @raise Invalid_argument on a remaining [Restrict] — call
    {!split_restriction} first. *)

val to_xquery : doc_name:string -> t -> string
(** Executable FLWOR text for the {!Xmlac_xmldb.Xquery} fragment:
    [for $n in doc("...")(...) return xmlac:annotate($n, mark)], with
    [()] for [Empty] so every plan round-trips through the parser.
    @raise Invalid_argument on a remaining [Restrict]. *)

(** {1 Explain} *)

type explain = {
  raw : t;
  rewritten : t;
  trace : pass_stat list;
  xquery : string;  (** Lowered FLWOR text (restriction peeled). *)
  sql : Xmlac_reldb.Sql.query option;  (** When a mapping is supplied. *)
  scope_counts : (string * int) list;
      (** Per-scope node counts of the rewritten plan, when a document
          is supplied. *)
  answer_size : int option;  (** Native answer size on that document. *)
  timings : (string * float) list;
      (** Seconds per stage: rewrite, each lowering, native
          evaluation. *)
}

val explain :
  ?schema:Xmlac_xml.Schema_graph.t ->
  ?mapping:Xmlac_shrex.Mapping.t ->
  ?doc:Xmlac_xml.Tree.t ->
  ?doc_name:string ->
  t ->
  explain
(** Rewrites the plan and instruments every stage; [doc_name] (default
    ["doc"]) only affects the generated XQuery text. *)

val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
(** ["mark +: (//a union //b) except (//c)"]. *)

val pp_explain : Format.formatter -> explain -> unit
