module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath
module Bitset = Xmlac_util.Bitset

type t = {
  ds : Rule.effect;
  cr : Rule.effect;
  rules : Rule.t list;
  subjects : Subject.t;
}

let make ?(subjects = Subject.solo) ~ds ~cr rules =
  List.iter
    (fun (r : Rule.t) ->
      List.iter
        (fun s ->
          if not (Subject.mem subjects s) then
            invalid_arg
              (Printf.sprintf
                 "Policy.make: rule %s is qualified with undeclared role %S"
                 r.Rule.name s))
        r.Rule.subjects)
    rules;
  { ds; cr; rules; subjects }

let ds t = t.ds
let cr t = t.cr
let rules t = t.rules
let subjects t = t.subjects
let roles t = Subject.names t.subjects
let role_count t = Subject.count t.subjects
let positive t = List.filter Rule.is_positive t.rules
let negative t = List.filter Rule.is_negative t.rules
let size t = List.length t.rules

let with_rules t rules = make ~subjects:t.subjects ~ds:t.ds ~cr:t.cr rules

let find_rule t name =
  List.find_opt (fun r -> String.equal r.Rule.name name) t.rules

(* --- per-subject resolution ---------------------------------------- *)

let unknown_role what role =
  invalid_arg (Printf.sprintf "Policy.%s: unknown role %S" what role)

let resolved_ds t role =
  if not (Subject.mem t.subjects role) then unknown_role "resolved_ds" role;
  Option.value (Subject.resolved_ds t.subjects role) ~default:t.ds

let resolved_cr t role =
  if not (Subject.mem t.subjects role) then unknown_role "resolved_cr" role;
  Option.value (Subject.resolved_cr t.subjects role) ~default:t.cr

(* The one-role special case: the policy a single subject sees.  The
   rule set keeps declaration order; per-role (ds, cr) overrides are
   folded in; the resulting policy is single-subject (solo DAG) so
   every downstream consumer — plan builder, optimizer, annotator —
   works unchanged on it. *)
let for_subject t role =
  match Subject.index t.subjects role with
  | None -> unknown_role "for_subject" role
  | Some _ ->
      let closure = Subject.closure t.subjects role in
      let applicable =
        List.filter_map
          (fun (r : Rule.t) ->
            if Rule.applies_to ~closure r then
              Some { r with Rule.subjects = [] }
            else None)
          t.rules
      in
      {
        ds = resolved_ds t role;
        cr = resolved_cr t role;
        rules = applicable;
        subjects = Subject.solo;
      }

(* Role indices a rule reaches — the subject-coverage bitmap the
   optimizer compares before treating one rule as subsuming another. *)
let applicability t (r : Rule.t) =
  Bitset.of_list
    (List.filter_map
       (fun role ->
         if Rule.applies_to ~closure:(Subject.closure t.subjects role) r then
           Subject.index t.subjects role
         else None)
       (roles t))

(* Roles whose resolved default semantics grants: bit set in the
   bitmap a reset writes to every node. *)
let default_bits t =
  Bitset.of_list
    (List.filter_map
       (fun role ->
         if resolved_ds t role = Rule.Plus then Subject.index t.subjects role
         else None)
       (roles t))

(* --- reference semantics ------------------------------------------- *)

(* Union of rule scopes as an id set. *)
let scope_set doc rules =
  let set = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun (n : Tree.node) -> Hashtbl.replace set n.Tree.id ())
        (Rule.scope doc r))
    rules;
  set

let accessible_id_set_solo t doc =
  let a = scope_set doc (positive t) in
  let d = scope_set doc (negative t) in
  let universe () =
    let u = Hashtbl.create 64 in
    Tree.iter (fun n -> Hashtbl.replace u n.Tree.id ()) doc;
    u
  in
  let minus x y =
    let r = Hashtbl.create (Hashtbl.length x) in
    Hashtbl.iter (fun k () -> if not (Hashtbl.mem y k) then Hashtbl.replace r k ()) x;
    r
  in
  (* Table 2. *)
  match (t.ds, t.cr) with
  | Rule.Plus, Rule.Plus -> minus (universe ()) (minus d a)
  | Rule.Minus, Rule.Plus -> a
  | Rule.Plus, Rule.Minus -> minus (universe ()) d
  | Rule.Minus, Rule.Minus -> minus a d

(* Omitted subject = the anonymous single-subject view: global
   (ds, cr) over all rules regardless of qualifiers — exactly the
   pre-subject semantics, which a solo policy coincides with. *)
let accessible_id_set ?subject t doc =
  match subject with
  | None -> accessible_id_set_solo t doc
  | Some role -> accessible_id_set_solo (for_subject t role) doc

let accessible_nodes ?subject t doc =
  let set = accessible_id_set ?subject t doc in
  List.filter (fun (n : Tree.node) -> Hashtbl.mem set n.Tree.id) (Tree.nodes doc)

let accessible_ids ?subject t doc =
  List.sort Stdlib.compare
    (Hashtbl.fold
       (fun id () acc -> id :: acc)
       (accessible_id_set ?subject t doc)
       [])

let node_accessible ?subject t doc n =
  Hashtbl.mem (accessible_id_set ?subject t doc) n.Tree.id

let annotate_reference ?subject t doc =
  let set = accessible_id_set ?subject t doc in
  List.iter
    (fun (n : Tree.node) ->
      Tree.set_sign doc n
        (Some (if Hashtbl.mem set n.Tree.id then Tree.Plus else Tree.Minus)))
    (Tree.nodes doc)

(* Per-node role bitmaps by the specification: every role's Table 2,
   evaluated independently, gathered node-major.  The executable
   oracle the shared-pass annotator is tested against. *)
let accessible_bits_reference t doc =
  let per_role =
    List.mapi
      (fun i role -> (i, accessible_id_set ~subject:role t doc))
      (roles t)
  in
  let tbl = Hashtbl.create 256 in
  Tree.iter
    (fun n ->
      let bits =
        Bitset.of_list
          (List.filter_map
             (fun (i, set) ->
               if Hashtbl.mem set n.Tree.id then Some i else None)
             per_role)
      in
      Hashtbl.replace tbl n.Tree.id bits)
    doc;
  tbl

let pp ppf t =
  Format.fprintf ppf "policy (ds=%s, cr=%s):@."
    (Rule.effect_to_string t.ds)
    (Rule.effect_to_string t.cr);
  if not (Subject.is_solo t.subjects) then
    Format.fprintf ppf "%a@." Subject.pp t.subjects;
  List.iter (fun r -> Format.fprintf ppf "  %a@." Rule.pp r) t.rules
