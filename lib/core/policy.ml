module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath

type t = {
  ds : Rule.effect;
  cr : Rule.effect;
  rules : Rule.t list;
}

let make ~ds ~cr rules = { ds; cr; rules }

let ds t = t.ds
let cr t = t.cr
let rules t = t.rules
let positive t = List.filter Rule.is_positive t.rules
let negative t = List.filter Rule.is_negative t.rules
let size t = List.length t.rules

let with_rules t rules = { t with rules }

let find_rule t name =
  List.find_opt (fun r -> String.equal r.Rule.name name) t.rules

(* Union of rule scopes as an id set. *)
let scope_set doc rules =
  let set = Hashtbl.create 64 in
  List.iter
    (fun r ->
      List.iter
        (fun (n : Tree.node) -> Hashtbl.replace set n.Tree.id ())
        (Rule.scope doc r))
    rules;
  set

let accessible_id_set t doc =
  let a = scope_set doc (positive t) in
  let d = scope_set doc (negative t) in
  let universe () =
    let u = Hashtbl.create 64 in
    Tree.iter (fun n -> Hashtbl.replace u n.Tree.id ()) doc;
    u
  in
  let minus x y =
    let r = Hashtbl.create (Hashtbl.length x) in
    Hashtbl.iter (fun k () -> if not (Hashtbl.mem y k) then Hashtbl.replace r k ()) x;
    r
  in
  (* Table 2. *)
  match (t.ds, t.cr) with
  | Rule.Plus, Rule.Plus -> minus (universe ()) (minus d a)
  | Rule.Minus, Rule.Plus -> a
  | Rule.Plus, Rule.Minus -> minus (universe ()) d
  | Rule.Minus, Rule.Minus -> minus a d

let accessible_nodes t doc =
  let set = accessible_id_set t doc in
  List.filter (fun (n : Tree.node) -> Hashtbl.mem set n.Tree.id) (Tree.nodes doc)

let accessible_ids t doc =
  List.sort Stdlib.compare
    (Hashtbl.fold (fun id () acc -> id :: acc) (accessible_id_set t doc) [])

let node_accessible t doc n =
  Hashtbl.mem (accessible_id_set t doc) n.Tree.id

let annotate_reference t doc =
  let set = accessible_id_set t doc in
  Tree.iter
    (fun n ->
      Tree.set_sign n
        (Some (if Hashtbl.mem set n.Tree.id then Tree.Plus else Tree.Minus)))
    doc

let pp ppf t =
  Format.fprintf ppf "policy (ds=%s, cr=%s):@."
    (Rule.effect_to_string t.ds)
    (Rule.effect_to_string t.cr);
  List.iter (fun r -> Format.fprintf ppf "  %a@." Rule.pp r) t.rules
