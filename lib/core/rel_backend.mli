(** Relational backend: every operation goes through SQL over the
    shredded database — the PostgreSQL / MonetDB-SQL role.

    Annotation updates follow the paper's Annotate algorithm
    (Figure 6) literally: the annotation query's id set is intersected
    with each table's ids, and each hit becomes an
    [UPDATE t SET s = ... WHERE id = ...] statement through the
    executor. *)

val make : Xmlac_shrex.Mapping.t -> Xmlac_reldb.Database.t -> Backend.t
(** The database must already contain the shredded document
    ({!Xmlac_shrex.Shred.load}). The backend's name reflects the
    database's storage engine: ["row-sql"] or ["column-sql"]. *)
