module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath

type effect = Tree.sign = Plus | Minus

let effect_to_string = Tree.sign_to_string
let opposite = function Plus -> Minus | Minus -> Plus

type t = {
  name : string;
  resource : Xp.Ast.expr;
  effect : effect;
}

let make ?name ~resource effect =
  let name =
    match name with Some n -> n | None -> Xp.Pp.expr_to_string resource
  in
  { name; resource; effect }

let parse ?name s effect = make ?name ~resource:(Xp.Parser.parse_exn s) effect

let is_positive r = r.effect = Plus
let is_negative r = r.effect = Minus

let scope doc r = Xp.Eval.eval doc r.resource

let in_scope doc r n = Xp.Eval.matches doc r.resource n

let pp ppf r =
  Format.fprintf ppf "%s: %s (%s)" r.name
    (Xp.Pp.expr_to_string r.resource)
    (effect_to_string r.effect)

let equal a b = a.effect = b.effect && Xp.Ast.equal_expr a.resource b.resource
