module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath

type effect = Tree.sign = Plus | Minus

let effect_to_string = Tree.sign_to_string
let opposite = function Plus -> Minus | Minus -> Plus

type t = {
  name : string;
  resource : Xp.Ast.expr;
  effect : effect;
  subjects : string list;
}

let make ?name ?(subjects = []) ~resource effect =
  let name =
    match name with Some n -> n | None -> Xp.Pp.expr_to_string resource
  in
  { name; resource; effect; subjects }

let parse ?name ?subjects s effect =
  make ?name ?subjects ~resource:(Xp.Parser.parse_exn s) effect

let unqualified r = r.subjects = []

(* Whether the rule reaches a role whose inheritance closure is
   [closure]: unqualified rules reach every role; a qualified rule
   reaches the roles it names and their heirs. *)
let applies_to ~closure r =
  r.subjects = [] || List.exists (fun s -> List.mem s r.subjects) closure

let is_positive r = r.effect = Plus
let is_negative r = r.effect = Minus

let scope doc r = Xp.Eval.eval doc r.resource

let in_scope doc r n = Xp.Eval.matches doc r.resource n

let pp ppf r =
  Format.fprintf ppf "%s: %s (%s)" r.name
    (Xp.Pp.expr_to_string r.resource)
    (effect_to_string r.effect);
  match r.subjects with
  | [] -> ()
  | ss -> Format.fprintf ppf " @@%s" (String.concat ",@" ss)

let equal a b =
  a.effect = b.effect
  && Xp.Ast.equal_expr a.resource b.resource
  && List.sort compare a.subjects = List.sort compare b.subjects
