(** The assembled system of Figure 3: optimizer + annotator +
    reannotator + requester over a native XML store and two relational
    stores kept in lockstep.

    [create] shreds one source document into a row-engine database
    ("PostgreSQL") and a column-engine database ("MonetDB/SQL"), keeps
    a private native copy ("MonetDB/XQuery"), optimizes the policy and
    precomputes the rule dependency graph.  Updates are applied to all
    three stores so their annotations can be compared at any point. *)

type backend_kind = Native | Row_sql | Column_sql

val backend_kind_to_string : backend_kind -> string
val all_backend_kinds : backend_kind list

type trigger_mode = Paper_mode | Overlap_mode
(** See {!Depend.mode}; [Overlap_mode] is the complete variant. *)

type t

val create :
  ?mode:trigger_mode ->
  ?optimize:bool ->
  dtd:Xmlac_xml.Dtd.t ->
  policy:Policy.t ->
  Xmlac_xml.Tree.t ->
  t
(** [optimize] (default [true]) runs redundancy elimination first.
    The source document is copied; the caller's tree is not touched. *)

val policy : t -> Policy.t
(** The (possibly optimized) policy in force. *)

val original_policy : t -> Policy.t
val optimizer_report : t -> Optimizer.report option
val mapping : t -> Xmlac_shrex.Mapping.t
val schema_graph : t -> Xmlac_xml.Schema_graph.t
val depend : t -> Depend.t

val plan : t -> Plan.t
(** The cached annotation plan: {!Plan.of_policy} of the in-force
    policy, rewritten against the schema graph at [create] time.
    Every {!annotate} call evaluates this one plan. *)

val explain : ?with_doc:bool -> t -> Plan.explain
(** Instrumented compilation of the in-force policy: rewrite trace,
    both lowerings, and — unless [~with_doc:false] — per-scope node
    counts and the native answer size on the live document. *)

val backend : t -> backend_kind -> Backend.t
val document : t -> Xmlac_xml.Tree.t
(** The native store's live document. *)

val annotate : t -> backend_kind -> Annotator.stats
val annotate_all : t -> (backend_kind * Annotator.stats) list

val request : t -> backend_kind -> string -> Requester.decision
(** All-or-nothing query answering against the materialized
    annotations. *)

val update : t -> string -> (backend_kind * Reannotator.stats) list
(** Applies a delete update (XPath string) to every store and
    re-annotates each partially. *)

val insert :
  t -> at:string -> fragment:Xmlac_xml.Tree.t ->
  (backend_kind * Reannotator.stats) list
(** Grafts a copy of [fragment] under every node selected by [at] in
    every store (the relational stores mirror the native store's fresh
    universal ids, so the three stay comparable) and partially
    re-annotates each.  The trigger treats the insertion points —
    [at/<fragment-root>] — as the update expression. *)

val consistent : t -> bool
(** Whether all three stores currently materialize the same accessible
    node set — the cross-backend invariant the tests lean on. *)

val accessible : t -> backend_kind -> int list
