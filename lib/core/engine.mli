(** The assembled system of Figure 3: optimizer + annotator +
    reannotator + requester over a native XML store and two relational
    stores kept in lockstep.

    [create] shreds one source document into a row-engine database
    ("PostgreSQL") and a column-engine database ("MonetDB/SQL"), keeps
    a private native copy ("MonetDB/XQuery"), optimizes the policy and
    precomputes the rule dependency graph.  Updates are applied to all
    three stores so their annotations can be compared at any point.

    {2 The request fast lane}

    The paper's requester (Section 4) reads the materialized sign of
    every selected node on every call.  The engine instead owns a
    {!Cam} over the native store's signs — O(depth) lookups against a
    map whose size follows the sign {e changes}, not the document —
    and a bounded {!Decision_cache} keyed by (backend, query text), so
    a query repeated between updates costs one hash lookup.  Every
    mutation ({!annotate}, {!update}, {!insert}) bumps the engine's
    {!epoch}, which invalidates all cached decisions at once; document
    updates repair the CAM {e incrementally} from the re-annotator's
    changed-id report ([Reannotator.stats.changed]), with a full
    rebuild as fallback ({!cam_check} verifies the incremental map
    against a fresh build).  The whole path is instrumented through
    {!Xmlac_util.Metrics} — cache hits/misses, CAM lookups and touched
    entries, per-stage timings — surfaced by [xmlacctl explain
    --request] and the [exp_requester] bench.

    {2 Sign epochs and crash recovery}

    Every mutating operation — {!annotate}, {!update}, {!insert} — runs
    as an atomic {e sign epoch}: begin markers are framed into both
    relational WALs ({!Xmlac_reldb.Wal.begin_epoch}), per-backend undo
    journals record the previous sign of every node written
    ({!Backend.journaled}), and only a successful operation commits the
    epoch and advances {!sign_epoch}.  The stores' write paths are
    threaded through deterministic fault points
    ({!Xmlac_util.Fault.point}: [native.set_sign], [row.set_sign],
    [wal.append], [cam.repair], …); when an armed point fires, the
    resulting {!Xmlac_util.Fault.Crash} escapes the operation and
    leaves the epoch open — a simulated kill.  {!recover} then plays
    the restart: truncate both WALs to their last committed epoch, roll
    every backend's partial sign writes back through the journals, and
    either stop there (sign-only operations land on the pre-operation
    materialization) or re-apply the structural mutation and re-run the
    repair from the stashed {!Reannotator.prepared} state (structural
    operations land on the post-operation materialization).  Either
    way the stores are back in lockstep, the CAM and decision cache are
    rebuilt coherently, and the epoch counter never runs backwards —
    an aborted epoch's number is consumed. *)

type backend_kind = Native | Row_sql | Column_sql

val backend_kind_to_string : backend_kind -> string
val all_backend_kinds : backend_kind list

type trigger_mode = Paper_mode | Overlap_mode
(** See {!Depend.mode}; [Overlap_mode] is the complete variant. *)

type t

val create :
  ?mode:trigger_mode ->
  ?optimize:bool ->
  ?cache_capacity:int ->
  dtd:Xmlac_xml.Dtd.t ->
  policy:Policy.t ->
  Xmlac_xml.Tree.t ->
  t
(** [optimize] (default [true]) runs redundancy elimination first.
    [cache_capacity] bounds the decision cache (default
    {!Decision_cache.default_capacity}).  The source document is
    copied; the caller's tree is not touched. *)

val policy : t -> Policy.t
(** The (possibly optimized) policy in force. *)

val original_policy : t -> Policy.t
val optimizer_report : t -> Optimizer.report option
val mapping : t -> Xmlac_shrex.Mapping.t
val schema_graph : t -> Xmlac_xml.Schema_graph.t
val depend : t -> Depend.t

val plan : t -> Plan.t
(** The cached annotation plan: {!Plan.of_policy} of the in-force
    policy, rewritten against the schema graph at [create] time.
    Every {!annotate} call evaluates this one plan. *)

val explain : ?with_doc:bool -> t -> Plan.explain
(** Instrumented compilation of the in-force policy: rewrite trace,
    both lowerings, and — unless [~with_doc:false] — per-scope node
    counts and the native answer size on the live document. *)

val backend : t -> backend_kind -> Backend.t
val document : t -> Xmlac_xml.Tree.t
(** The native store's live document. *)

val annotate : t -> backend_kind -> Annotator.stats
(** Full annotation of one store; bumps the {!epoch} and, for the
    native store, rebuilds the CAM. *)

val annotate_all : t -> (backend_kind * Annotator.stats) list

val annotate_subjects : t -> backend_kind -> Annotator.subjects_stats
(** The multi-subject shared pass ({!Annotator.annotate_subjects}) on
    one store: every role's accessibility materialized as per-node
    bitmaps in one annotation epoch.  Bumps the {!epoch}; the native
    store's per-role CAMs are dropped and rebuilt lazily on the next
    subject request.  Crash-safe like {!annotate}: a killed pass is
    rolled back through the bitmap journal, never leaving a partial
    bitmap visible. *)

val annotate_subjects_all : t -> (backend_kind * Annotator.subjects_stats) list

val request :
  ?subject:string ->
  ?lane:Rewrite.lane ->
  t ->
  backend_kind ->
  string ->
  Requester.decision
(** All-or-nothing query answering.  Two enforcement lanes share the
    entry point (and the decision cache, whose key carries the
    effective lane):

    {ul
    {- {e materialized} — the paper's lane and the fast path: served
       from the decision cache when the query repeats within the
       current epoch, otherwise evaluated through the backend with
       accessibility checked against the CAM.  (While the stores are
       known to have diverged — some but not all annotated —
       relational requests read their own signs directly.)}
    {- {e rewrite} — the request is compiled against the policy
       ({!Requester.request_rewritten}) and answered with zero sign or
       bitmap reads, so a store with no committed annotation epoch
       still answers the true policy decision.}}

    [~lane] (default {!Rewrite.Auto}) selects: [Auto] picks the
    materialized lane iff the layer the request would read — signs for
    the anonymous subject, role bitmaps for a named one — has a
    committed annotation epoch on this store ({!resolve_lane} reports
    the choice and why).  Per-lane evaluations are tallied as
    [lane.materialized] / [lane.rewrite] metrics.

    [~subject] answers for one role instead of the anonymous
    single-subject view: accessibility is checked against that role's
    bitmap slice — through a lazily built per-role CAM on the fast
    path — the cache key carries the role, and the cache/CAM counters
    are additionally tallied per role ([cache.hits.<role>], …).
    @raise Invalid_argument on a malformed query (naming the
    expression and error position) or an unknown role. *)

val resolve_lane :
  ?subject:string ->
  ?lane:Rewrite.lane ->
  t ->
  backend_kind ->
  Rewrite.lane * string
(** The lane {!request} would answer through, with the reason
    ("forced", "annotated store", "never-annotated store") — what
    [xmlacctl explain] prints.  Never returns {!Rewrite.Auto}. *)

val request_direct :
  ?subject:string -> t -> backend_kind -> string -> Requester.decision
(** The pre-fast-lane path: per-node sign (or per-role bit) reads
    through the backend, no CAM, no cache.  The baseline the
    [exp_requester] bench and the equivalence property compare
    {!request} against.
    @raise Invalid_argument like {!request}. *)

val update : t -> string -> (backend_kind * Reannotator.stats) list
(** Applies a delete update (XPath string) to every store and
    re-annotates each partially; bumps the {!epoch} and repairs the
    CAM incrementally from the native store's changed-id report. *)

val insert :
  t -> at:string -> fragment:Xmlac_xml.Tree.t ->
  (backend_kind * Reannotator.stats) list
(** Grafts a copy of [fragment] under every node selected by [at] in
    every store (the relational stores mirror the native store's fresh
    universal ids, so the three stay comparable) and partially
    re-annotates each.  The trigger treats the insertion points —
    [at/<fragment-root>] — as the update expression.  Bumps the
    {!epoch}; the CAM entries of the changed nodes and of the grafted
    subtrees are rebuilt incrementally.

    Aliasing contract: the engine takes ownership of [fragment]
    {e without copying it} — the grafts deep-copy out of it, and the
    retained reference exists only so a crash-recovery roll-forward
    can re-read it.  The caller must not mutate [fragment] after the
    call (re-using it as the source of further inserts is fine). *)

val consistent : t -> bool
(** Whether all three stores currently materialize the same accessible
    node set — the cross-backend invariant the tests lean on. *)

val accessible : t -> backend_kind -> int list

val accessible_subject : t -> backend_kind -> string -> int list
(** One role's accessible ids off the store's effective bitmaps.
    @raise Invalid_argument on an unknown role. *)

val consistent_subjects : t -> bool
(** {!consistent}, per role: every declared role's accessible set
    agrees across all three stores' bitmap layers. *)

(** {1 Fast-lane observability} *)

val metrics : t -> Xmlac_util.Metrics.t
(** Counters and stage timings of the request path: [cache.hits],
    [cache.misses], [cam.lookups], [cam.touched], [cam.purged],
    [cam.full_rebuilds], [fastlane.bypass]; stages [request],
    [request.eval], [request.check], [cam.maintain]. *)

val cam : t -> Cam.t
(** The engine's live CAM over the native store's signs. *)

val role_cam : t -> string -> Cam.t
(** The per-role CAM over the native store's bitmap slice for [role] —
    built lazily on first use ([cam.role_builds]) and cached until the
    bitmaps move ({!annotate_subjects}, {!update}, {!insert},
    {!refresh}, {!recover}).
    @raise Invalid_argument on an unknown role. *)

val decision_cache : t -> Requester.decision Decision_cache.t
(** The engine's bounded decision cache — exposed read-only in spirit
    for observability ([length] / [capacity] / [evictions] /
    [stale_drops]); its churn is mirrored into {!metrics} as
    [cache.evictions] and [cache.stale_drops]. *)

val epoch : t -> int
(** Version counter of the materialized state; bumped by {!annotate},
    {!update}, {!insert} and {!refresh}.  Cached decisions from older
    epochs are never served. *)

val cam_check : t -> bool
(** The checked fallback: compares the incrementally maintained CAM
    against a fresh build.  Returns [true] when they agree; on
    disagreement repairs the engine by installing the fresh map
    (counted as [cam.check_failures]) and returns [false]. *)

val refresh : t -> unit
(** Invalidate the fast lane wholesale: bump the epoch, clear the
    decision cache and rebuild the CAM.  Call after mutating a
    backend's signs behind the engine's back (e.g. driving
    {!Annotator} directly on {!backend}). *)

(** {1 Sign epochs and crash recovery} *)

val sign_epoch : t -> int
(** The last {e committed} sign epoch.  Starts at [0]; every committed
    mutating operation advances it by one, and {!recover} consumes the
    open epoch's number — the counter is strictly monotone and never
    reused. *)

val open_epoch : t -> int option
(** The uncommitted epoch a crash left behind, if any.  While it is
    set, every mutating entry point raises [Invalid_argument] — run
    {!recover} first. *)

val wal : t -> backend_kind -> Xmlac_reldb.Wal.t option
(** The write-ahead log attached to a relational store ([None] for
    {!Native}, which is journaled in memory instead).  Exposed for the
    durability tests and [xmlacctl explain]. *)

(** {1 MVCC snapshots}

    Every committed {!sign_epoch} is published as an immutable
    {!Snapshot.t} the instant it commits — including epoch 0, the
    load-time materialization, published at {!create}.  Readers pin
    the current snapshot and answer from it without ever blocking on
    (or being corrupted by) the writer's next epoch; unpinned old
    snapshots are reclaimed.  Publication happens only {e between}
    epochs ([create], commit, {!recover}, {!refresh}), so a pinned
    snapshot can never expose a partial epoch. *)

val snapshots : t -> Snapshot.registry
(** The engine's snapshot registry (stats, [Snapshot.pp_registry]). *)

val current_snapshot : t -> Snapshot.t
(** The snapshot of the last committed epoch.  Always exists —
    {!create} publishes epoch 0.  Unpinned: a reader that wants to
    hold it across commits must {!pin_snapshot} instead. *)

val pin_snapshot : t -> Snapshot.t
(** Pin and return the current snapshot; the caller owes exactly one
    {!unpin_snapshot}.  While pinned it survives any number of later
    commits, recoveries and refreshes, byte-identically. *)

val unpin_snapshot : t -> Snapshot.t -> unit
(** Release one pin; a retired snapshot is reclaimed when its last
    pin goes.  @raise Invalid_argument when [snap] is not pinned. *)

type direction = [ `None | `Back | `Forward ]

type recovery = {
  recovered_epoch : int option;
      (** The epoch that was open, or [None] if nothing was in
          flight. *)
  direction : direction;
      (** [`Back]: a sign-only operation was rolled back to the
          pre-epoch materialization.  [`Forward]: a structural
          operation was re-applied and its repair re-run.  [`None]:
          there was nothing to do. *)
  wal_dropped : int;  (** WAL entries truncated across both stores. *)
  signs_rolled_back : int;
      (** Journal entries replayed (partial writes undone). *)
  repaired : backend_kind list;
      (** The backends whose repair was re-driven (roll-forward
          only). *)
}

val recover : t -> recovery
(** The simulated restart after a {!Xmlac_util.Fault.Crash}: clears
    the fault registry's kill state and every armed trigger
    ({!Xmlac_util.Fault.recover}), truncates both WALs to their last
    committed epoch ({!Xmlac_reldb.Wal.recover}), rolls partial sign
    writes back through the undo journals, and resolves the open epoch
    as described in the module preamble — backwards for {!annotate},
    forwards for {!update} / {!insert}.  Restores lockstep tracking,
    bumps the request {!epoch}, clears the decision cache and rebuilds
    the CAM, so the fast lane is coherent with the recovered signs.
    Safe to call when nothing crashed (reports [`None]), and
    {e idempotent}: a second call after a completed recovery is a pure
    no-op — no epoch bump, no cache clear, no counter movement. *)

(** {1 Replication}

    The hooks [Xmlac_replicate] builds on.  A committed epoch's
    operation travels to replicas as a {!shipped_op} — a logical,
    deterministic description replayed through the replica's own
    engine entry points, so a shipped epoch inherits the full sign
    epoch machinery above: journaled writes, WAL framing, and
    crash recovery that lands strictly pre- or post-epoch. *)

type shipped_op =
  | Ship_noop
      (** Consume one epoch number without touching any store — what
          the leader ships for an epoch its own crash recovery rolled
          back, keeping replicas aligned without replaying an
          operation that never took effect. *)
  | Ship_annotate of backend_kind
  | Ship_annotate_subjects of backend_kind
  | Ship_update of string
  | Ship_insert of { at : string; fragment : Xmlac_xml.Tree.t }
      (** The fragment is reconstructed from serialized XML on the
          wire; replicas graft it with the same universal ids because
          both sides run the deterministic insert path over identical
          documents. *)

val apply_replica : t -> shipped_op -> unit
(** Replay one shipped epoch through the normal (crash-safe) mutation
    path, bypassing the {!read_only} guard.  Crosses the
    ["repl.apply"] fault point first; a {!Xmlac_util.Fault.Crash}
    escaping mid-apply leaves an open epoch that {!recover} resolves
    into the pre- or post-epoch state, never a mix.
    @raise Invalid_argument while an epoch is open (recover first). *)

val read_only : t -> bool

val set_read_only : t -> bool -> unit
(** A read-only engine (a follower replica) refuses every direct
    mutating entry point with [Invalid_argument]; {!apply_replica}
    (and {!recover}) still work.  Promotion clears the flag. *)

val state_checksum : t -> int32
(** Deterministic digest of the enforcement-relevant materialization:
    the anonymous and every role's accessible id set on all three
    backends.  Engine-local epoch counters are excluded, so a replica
    whose own crash recoveries consumed extra epoch numbers still
    digests equal once its answers converge on the leader's — this is
    the divergence check shipped with every frame and re-verified by
    promotion. *)
