module Tree = Xmlac_xml.Tree
module Metrics = Xmlac_util.Metrics
module Fault = Xmlac_util.Fault

type t = {
  epoch : int;
  doc : Tree.t;  (* frozen private copy, signs and bitmaps included *)
  cam : Cam.t;  (* frozen single-subject map *)
  annotated : bool;  (* signs had a committed annotation epoch at capture *)
  bits_annotated : bool;  (* ... and likewise the role bitmaps *)
  policy : Policy.t;
  role_cams : (string, Cam.t) Hashtbl.t;
      (* Per-role maps over the frozen bitmaps, built lazily on the
         first request naming each role; guarded by [lock]. *)
  cache : Requester.decision Decision_cache.t;
      (* Private memo table.  The epoch is fixed for the snapshot's
         lifetime, so entries never go stale — the epoch tag only
         guards against misuse.  Guarded by [lock]. *)
  metrics : Metrics.t;
  lock : Mutex.t;
      (* Guards [role_cams] and [cache]; the rest is frozen.  The pin
         count is guarded by the owning registry's lock instead, so
         pin/publish/reclaim are atomic with respect to each other. *)
  mutable pins : int;
}

let with_lock lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let capture ?(annotated = true) ?(bits_annotated = true) ~epoch ~policy ~cam
    ~metrics doc =
  Metrics.incr metrics "snapshot.captures";
  {
    epoch;
    doc = Tree.copy doc;
    cam = Cam.freeze cam;
    annotated;
    bits_annotated;
    policy;
    role_cams = Hashtbl.create 4;
    cache = Decision_cache.create ();
    metrics;
    lock = Mutex.create ();
    pins = 0;
  }

let epoch t = t.epoch
let document t = t.doc
let cam t = t.cam
let annotated t = t.annotated
let bits_annotated t = t.bits_annotated
let pins t = t.pins

let resolve_lane ?subject ?(lane = Rewrite.Auto) t =
  match lane with
  | Rewrite.Materialized -> (Rewrite.Materialized, "forced")
  | Rewrite.Rewrite -> (Rewrite.Rewrite, "forced")
  | Rewrite.Auto ->
      let ann =
        match subject with None -> t.annotated | Some _ -> t.bits_annotated
      in
      if ann then (Rewrite.Materialized, "annotated at capture")
      else (Rewrite.Rewrite, "never annotated at capture")

(* One role's view of the frozen bitmaps.  Built under the lock: a
   duplicate build racing outside it would be harmless but wasted, and
   [Cam.build_role] crosses no checkpoints or fault points, so nothing
   can raise mid-build except allocation failure. *)
let role_cam t role =
  match Hashtbl.find_opt t.role_cams role with
  | Some c -> c
  | None ->
      let idx =
        match Subject.index (Policy.subjects t.policy) role with
        | Some i -> i
        | None -> invalid_arg ("Snapshot.request: unknown role " ^ role)
      in
      let c =
        Cam.build_role t.doc ~role:idx
          ~default:(Policy.resolved_ds t.policy role)
      in
      Hashtbl.replace t.role_cams role c;
      Metrics.incr t.metrics "snapshot.role_cam_builds";
      c

(* The materialized lane over the frozen state: evaluate on the frozen
   tree, check accessibility against the frozen (per-role) CAM. *)
let materialized_decision ?subject t expr =
  let cam =
    match subject with
    | None -> t.cam
    | Some role -> with_lock t.lock (fun () -> role_cam t role)
  in
  let ids =
    Xmlac_xpath.Eval.eval t.doc expr
    |> List.map (fun n -> n.Tree.id)
    |> List.sort_uniq compare
  in
  Requester.decide ~ids ~accessible:(fun id ->
      match Tree.find t.doc id with
      | Some n -> Cam.lookup cam n = Tree.Plus
      | None -> false)

(* The rewrite lane over the frozen state: compile the request against
   the frozen policy and evaluate the granted/residue pair on the
   frozen tree — no CAM, no sign, no bitmap, so a never-annotated
   frozen document still answers the true policy decision. *)
let rewritten_decision ?subject t expr =
  let compiled = Rewrite.compile ?subject t.policy expr in
  let answer = Rewrite.eval_tree t.doc compiled in
  if answer.Rewrite.blocked > 0 then
    Requester.Denied { blocked = answer.Rewrite.blocked }
  else
    Requester.decide ~ids:answer.Rewrite.granted_ids
      ~accessible:(fun _ -> true)

let request ?subject ?lane t query =
  Metrics.incr t.metrics "snapshot.reads";
  let lane, _reason = resolve_lane ?subject ?lane t in
  let lane_tag = match lane with Rewrite.Rewrite -> "R" | _ -> "M" in
  let key =
    match subject with
    | None -> lane_tag ^ "\x00" ^ query
    | Some role -> lane_tag ^ "@" ^ role ^ "\x00" ^ query
  in
  match
    with_lock t.lock (fun () ->
        Decision_cache.find t.cache ~epoch:t.epoch key)
  with
  | Some d ->
      Metrics.incr t.metrics "snapshot.cache.hits";
      d
  | None ->
      Metrics.incr t.metrics "snapshot.cache.misses";
      let expr = Requester.parse_or_fail query in
      (* The frozen-read checkpoint: lets the serve layer inject
         transient faults into the pinned read path (retry tests, the
         chaos soak) without touching the live stores. *)
      Fault.point "snapshot.read";
      let d =
        match lane with
        | Rewrite.Rewrite -> rewritten_decision ?subject t expr
        | _ -> materialized_decision ?subject t expr
      in
      with_lock t.lock (fun () ->
          Decision_cache.add t.cache ~epoch:t.epoch key d);
      d

(* --- registry ------------------------------------------------------ *)

type registry = {
  mutable current_snap : t option;
  mutable retired_snaps : t list;  (* pinned old snapshots, newest first *)
  mutable published_count : int;
  mutable reclaimed_count : int;
  mutable max_retired_count : int;
  reg_metrics : Metrics.t;
  reg_lock : Mutex.t;
}

let create_registry ~metrics () =
  {
    current_snap = None;
    retired_snaps = [];
    published_count = 0;
    reclaimed_count = 0;
    max_retired_count = 0;
    reg_metrics = metrics;
    reg_lock = Mutex.create ();
  }

let publish reg snap =
  (* Crash here = the epoch committed but its snapshot never became
     current; [Engine.recover]'s idempotent path republishes. *)
  Fault.point "snapshot.publish";
  let freed =
    with_lock reg.reg_lock (fun () ->
        let freed =
          match reg.current_snap with
          | None -> 0
          | Some old when old.pins = 0 -> 1  (* reclaimed on the spot *)
          | Some old ->
              reg.retired_snaps <- old :: reg.retired_snaps;
              0
        in
        reg.current_snap <- Some snap;
        reg.published_count <- reg.published_count + 1;
        reg.reclaimed_count <- reg.reclaimed_count + freed;
        let lag = List.length reg.retired_snaps in
        if lag > reg.max_retired_count then reg.max_retired_count <- lag;
        freed)
  in
  Metrics.incr reg.reg_metrics "snapshot.publishes";
  if freed > 0 then begin
    Metrics.add reg.reg_metrics "snapshot.reclaims" freed;
    Fault.point "snapshot.reclaim"
  end

let current reg = with_lock reg.reg_lock (fun () -> reg.current_snap)

let current_epoch reg =
  with_lock reg.reg_lock (fun () ->
      Option.map (fun s -> s.epoch) reg.current_snap)

let pin reg =
  let snap =
    with_lock reg.reg_lock (fun () ->
        match reg.current_snap with
        | None -> invalid_arg "Snapshot.pin: nothing published yet"
        | Some s ->
            s.pins <- s.pins + 1;
            s)
  in
  Metrics.incr reg.reg_metrics "snapshot.pins";
  snap

let unpin reg snap =
  let freed =
    with_lock reg.reg_lock (fun () ->
        if snap.pins <= 0 then invalid_arg "Snapshot.unpin: not pinned";
        snap.pins <- snap.pins - 1;
        let is_current =
          match reg.current_snap with Some c -> c == snap | None -> false
        in
        if snap.pins = 0 && not is_current then begin
          reg.retired_snaps <-
            List.filter (fun s -> s != snap) reg.retired_snaps;
          reg.reclaimed_count <- reg.reclaimed_count + 1;
          true
        end
        else false)
  in
  Metrics.incr reg.reg_metrics "snapshot.unpins";
  if freed then begin
    Metrics.incr reg.reg_metrics "snapshot.reclaims";
    Fault.point "snapshot.reclaim"
  end

let live reg =
  with_lock reg.reg_lock (fun () ->
      (match reg.current_snap with Some _ -> 1 | None -> 0)
      + List.length reg.retired_snaps)

let retired reg =
  with_lock reg.reg_lock (fun () -> List.length reg.retired_snaps)

let published reg = with_lock reg.reg_lock (fun () -> reg.published_count)
let reclaimed reg = with_lock reg.reg_lock (fun () -> reg.reclaimed_count)

let max_retired reg =
  with_lock reg.reg_lock (fun () -> reg.max_retired_count)

let pp_registry ppf reg =
  let cur, cur_pins, ret, pub, rec_, lag =
    with_lock reg.reg_lock (fun () ->
        ( Option.map (fun s -> s.epoch) reg.current_snap,
          (match reg.current_snap with Some s -> s.pins | None -> 0),
          List.length reg.retired_snaps,
          reg.published_count,
          reg.reclaimed_count,
          reg.max_retired_count ))
  in
  Format.fprintf ppf
    "snapshots: current epoch %s (%d pin%s), %d retired, %d published, %d \
     reclaimed, max lag %d"
    (match cur with None -> "none" | Some e -> string_of_int e)
    cur_pins
    (if cur_pins = 1 then "" else "s")
    ret pub rec_ lag
