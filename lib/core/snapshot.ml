module Tree = Xmlac_xml.Tree
module Metrics = Xmlac_util.Metrics
module Fault = Xmlac_util.Fault
module Iset = Set.Make (Int)

(* A memoized decision remembers which node ids it examined — the
   query's answers plus their ancestors (every id whose effective sign
   a CAM lookup read).  Carry-forward into the next epoch's snapshot
   is sound exactly when none of those ids was touched. *)
type memo = { examined : int list; decision : Requester.decision }

type t = {
  epoch : int;
  doc : Tree.t;  (* frozen COW view (or a deep copy from [capture_full]) *)
  gen : int;  (* the generation the view froze; -1 for deep copies *)
  stats : Tree.freeze_stats option;  (* change-set accounting; COW only *)
  cam : Cam.t;  (* frozen single-subject map *)
  annotated : bool;  (* signs had a committed annotation epoch at capture *)
  bits_annotated : bool;  (* ... and likewise the role bitmaps *)
  policy : Policy.t;
  role_cams : (string, Cam.t) Hashtbl.t;
      (* Per-role maps over the frozen bitmaps, built lazily on the
         first request naming each role (or carried from the previous
         snapshot when the epoch touched no bitmap); guarded by
         [lock]. *)
  cache : memo Decision_cache.t;
      (* Private memo table.  The epoch is fixed for the snapshot's
         lifetime, so entries never go stale — the epoch tag only
         guards against misuse.  Guarded by [lock]. *)
  metrics : Metrics.t;
  lock : Mutex.t;
      (* Guards [role_cams] and [cache]; the rest is frozen.  The pin
         count is guarded by the owning registry's lock instead, so
         pin/publish/reclaim are atomic with respect to each other. *)
  mutable pins : int;
}

let with_lock lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* Decisions and per-role maps survive into the next snapshot when the
   epoch's change set provably cannot have moved them:

   - any entry dies on a structural epoch (insert/delete/value writes
     can move answer sets without touching previously examined ids);
   - a materialized-lane entry additionally dies when the change set
     intersects its examined ids (a sign or bitmap write there can
     flip an effective sign the decision read);
   - a rewrite-lane entry reads no annotation at all, so it survives
     any non-structural epoch;
   - the per-role maps survive iff the epoch touched neither structure
     nor any bitmap.

   All of it is gated on provenance: the captured view must be the
   very next generation of the same tree family as [prev]'s, under
   the same (physically equal) policy — otherwise the tree-level
   change set does not describe the gap between the two snapshots and
   the new snapshot simply starts cold (correct, just slower). *)
let carry_forward ~prev ~stats t =
  let continuous =
    Tree.family prev.doc = Tree.family t.doc
    && stats.Tree.frozen_gen = prev.gen + 1
    && prev.policy == t.policy
  in
  if continuous then begin
    let structural = stats.Tree.structural in
    let changed = Iset.of_list stats.Tree.changed in
    let untouched ids = not (List.exists (fun id -> Iset.mem id changed) ids) in
    let carried = ref 0 in
    with_lock prev.lock (fun () ->
        if not structural then
          Decision_cache.iter
            (fun key ~epoch:_ (m : memo) ->
              let keep =
                if String.length key > 0 && key.[0] = 'R' then true
                else untouched m.examined
              in
              if keep then begin
                Decision_cache.add t.cache ~epoch:t.epoch key m;
                incr carried
              end)
            prev.cache;
        if (not structural) && not stats.Tree.bits_touched then
          Hashtbl.iter
            (fun role c -> Hashtbl.replace t.role_cams role c)
            prev.role_cams);
    if !carried > 0 then Metrics.add t.metrics "snapshot.cache.carried" !carried
  end

let capture ?(annotated = true) ?(bits_annotated = true) ?prev ~epoch ~policy
    ~cam ~metrics doc =
  Metrics.incr metrics "snapshot.captures";
  let view, stats = Tree.freeze doc in
  let t =
    {
      epoch;
      doc = view;
      gen = stats.Tree.frozen_gen;
      stats = Some stats;
      cam = Cam.freeze cam;
      annotated;
      bits_annotated;
      policy;
      role_cams = Hashtbl.create 4;
      cache = Decision_cache.create ();
      metrics;
      lock = Mutex.create ();
      pins = 0;
    }
  in
  (match prev with Some p -> carry_forward ~prev:p ~stats t | None -> ());
  t

let capture_full ?(annotated = true) ?(bits_annotated = true) ~epoch ~policy
    ~cam ~metrics doc =
  Metrics.incr metrics "snapshot.captures";
  {
    epoch;
    doc = Tree.copy doc;
    gen = -1;
    stats = None;
    cam = Cam.freeze cam;
    annotated;
    bits_annotated;
    policy;
    role_cams = Hashtbl.create 4;
    cache = Decision_cache.create ();
    metrics;
    lock = Mutex.create ();
    pins = 0;
  }

let epoch t = t.epoch
let document t = t.doc
let cam t = t.cam
let annotated t = t.annotated
let bits_annotated t = t.bits_annotated
let pins t = t.pins
let cow t = t.stats <> None
let cached_decisions t = with_lock t.lock (fun () -> Decision_cache.length t.cache)

let resolve_lane ?subject ?(lane = Rewrite.Auto) t =
  match lane with
  | Rewrite.Materialized -> (Rewrite.Materialized, "forced")
  | Rewrite.Rewrite -> (Rewrite.Rewrite, "forced")
  | Rewrite.Auto ->
      let ann =
        match subject with None -> t.annotated | Some _ -> t.bits_annotated
      in
      if ann then (Rewrite.Materialized, "annotated at capture")
      else (Rewrite.Rewrite, "never annotated at capture")

(* One role's view of the frozen bitmaps.  Built under the lock: a
   duplicate build racing outside it would be harmless but wasted, and
   [Cam.build_role] crosses no checkpoints or fault points, so nothing
   can raise mid-build except allocation failure. *)
let role_cam t role =
  match Hashtbl.find_opt t.role_cams role with
  | Some c -> c
  | None ->
      let idx =
        match Subject.index (Policy.subjects t.policy) role with
        | Some i -> i
        | None -> invalid_arg ("Snapshot.request: unknown role " ^ role)
      in
      let c =
        Cam.build_role t.doc ~role:idx
          ~default:(Policy.resolved_ds t.policy role)
      in
      Hashtbl.replace t.role_cams role c;
      Metrics.incr t.metrics "snapshot.role_cam_builds";
      c

(* The materialized lane over the frozen state: evaluate on the frozen
   tree, check accessibility against the frozen (per-role) CAM.  Also
   reports the ids the decision examined — the answers plus all their
   ancestors, i.e. every node whose annotation a [Cam.lookup] walk can
   have read — which is what makes the memo carriable. *)
let materialized_decision ?subject t expr =
  let cam =
    match subject with
    | None -> t.cam
    | Some role -> with_lock t.lock (fun () -> role_cam t role)
  in
  let answers = Xmlac_xpath.Eval.eval t.doc expr in
  let ids =
    List.map (fun (n : Tree.node) -> n.Tree.id) answers
    |> List.sort_uniq compare
  in
  let examined =
    List.concat_map
      (fun (n : Tree.node) ->
        n.Tree.id
        :: List.map (fun (a : Tree.node) -> a.Tree.id) (Tree.ancestors n))
      answers
    |> List.sort_uniq compare
  in
  let d =
    Requester.decide ~ids ~accessible:(fun id ->
        match Tree.find t.doc id with
        | Some n -> Cam.lookup cam n = Tree.Plus
        | None -> false)
  in
  { examined; decision = d }

(* The rewrite lane over the frozen state: compile the request against
   the frozen policy and evaluate the granted/residue pair on the
   frozen tree — no CAM, no sign, no bitmap, so a never-annotated
   frozen document still answers the true policy decision (and the
   memo examines no annotation, making it carriable across any
   non-structural epoch). *)
let rewritten_decision ?subject t expr =
  let compiled = Rewrite.compile ?subject t.policy expr in
  let answer = Rewrite.eval_tree t.doc compiled in
  let d =
    if answer.Rewrite.blocked > 0 then
      Requester.Denied { blocked = answer.Rewrite.blocked }
    else
      Requester.decide ~ids:answer.Rewrite.granted_ids
        ~accessible:(fun _ -> true)
  in
  { examined = []; decision = d }

let request ?subject ?lane t query =
  Metrics.incr t.metrics "snapshot.reads";
  let lane, _reason = resolve_lane ?subject ?lane t in
  let lane_tag = match lane with Rewrite.Rewrite -> "R" | _ -> "M" in
  let key =
    match subject with
    | None -> lane_tag ^ "\x00" ^ query
    | Some role -> lane_tag ^ "@" ^ role ^ "\x00" ^ query
  in
  match
    with_lock t.lock (fun () ->
        Decision_cache.find t.cache ~epoch:t.epoch key)
  with
  | Some m ->
      Metrics.incr t.metrics "snapshot.cache.hits";
      m.decision
  | None ->
      Metrics.incr t.metrics "snapshot.cache.misses";
      let expr = Requester.parse_or_fail query in
      (* The frozen-read checkpoint: lets the serve layer inject
         transient faults into the pinned read path (retry tests, the
         chaos soak) without touching the live stores. *)
      Fault.point "snapshot.read";
      let m =
        match lane with
        | Rewrite.Rewrite -> rewritten_decision ?subject t expr
        | _ -> materialized_decision ?subject t expr
      in
      with_lock t.lock (fun () ->
          Decision_cache.add t.cache ~epoch:t.epoch key m);
      m.decision

(* --- registry ------------------------------------------------------ *)

(* Shared-chunk accounting.  Successive COW snapshots of one tree
   family share node records; a record born in generation [born_gen]
   and displaced (superseded or deleted) while generation [died_gen]
   was being written is referenced exactly by the frozen views of
   generations [born_gen, died_gen - 1].  [publish] records each
   epoch's displaced records as such a segment; a reclaim triggers a
   [gc] pass that releases every segment no live snapshot generation
   falls inside.  The accounting is authoritative for observability
   and the bench's memory assertions — the actual freeing is the OCaml
   GC's, which collects a record exactly when the last view sharing it
   is reclaimed, so a crash between the reclaim and the sweep can
   never corrupt a pinned neighbor (it merely leaves advisory counts
   behind, rebuilt at the next publish). *)
type segment = { born_gen : int; died_gen : int; seg_count : int }

type registry = {
  mutable current_snap : t option;
  mutable retired_snaps : t list;  (* pinned old snapshots, newest first *)
  mutable published_count : int;
  mutable reclaimed_count : int;
  mutable max_retired_count : int;
  mutable seg_family : int option;  (* tree family the segments describe *)
  mutable segments : segment list;
  mutable shared_total : int;  (* lifetime records entering segments *)
  mutable freed_total : int;  (* lifetime records released by gc *)
  mutable gc_passes : int;
  reg_metrics : Metrics.t;
  reg_lock : Mutex.t;
}

let create_registry ~metrics () =
  {
    current_snap = None;
    retired_snaps = [];
    published_count = 0;
    reclaimed_count = 0;
    max_retired_count = 0;
    seg_family = None;
    segments = [];
    shared_total = 0;
    freed_total = 0;
    gc_passes = 0;
    reg_metrics = metrics;
    reg_lock = Mutex.create ();
  }

(* Must run under [reg_lock]. *)
let record_segments_locked reg snap =
  match snap.stats with
  | None -> ()
  | Some (st : Tree.freeze_stats) ->
      let fam = Tree.family snap.doc in
      if reg.seg_family <> Some fam then begin
        (* A different document family shares nothing with the old
           segments; they can never be referenced again. *)
        reg.segments <- [];
        reg.seg_family <- Some fam
      end;
      List.iter
        (fun (born, count) ->
          if count > 0 then begin
            reg.segments <-
              { born_gen = born; died_gen = st.Tree.frozen_gen;
                seg_count = count }
              :: reg.segments;
            reg.shared_total <- reg.shared_total + count
          end)
        st.Tree.displaced

(* Release segments no live snapshot generation needs.  Crossed on
   every reclaim-triggered pass — freed or not — so the crash sweeps
   deterministically cover the [snapshot.gc] point. *)
let gc reg =
  let freed =
    with_lock reg.reg_lock (fun () ->
        let live =
          (match reg.current_snap with Some s -> [ s ] | None -> [])
          @ reg.retired_snaps
        in
        let live_gens =
          List.filter_map
            (fun s ->
              if s.stats <> None && reg.seg_family = Some (Tree.family s.doc)
              then Some s.gen
              else None)
            live
        in
        let needed seg =
          List.exists
            (fun g -> seg.born_gen <= g && g < seg.died_gen)
            live_gens
        in
        let keep, drop = List.partition needed reg.segments in
        reg.segments <- keep;
        reg.gc_passes <- reg.gc_passes + 1;
        let n = List.fold_left (fun a s -> a + s.seg_count) 0 drop in
        reg.freed_total <- reg.freed_total + n;
        n)
  in
  if freed > 0 then Metrics.add reg.reg_metrics "snapshot.chunks_freed" freed;
  Fault.point "snapshot.gc"

let publish reg snap =
  (* Crash here = the epoch committed but its snapshot never became
     current; [Engine.recover]'s idempotent path republishes. *)
  Fault.point "snapshot.publish";
  (* Crash between here and the swap leaves at most advisory sharing
     counts behind — never a dangling shared record. *)
  Fault.point "snapshot.share";
  let freed =
    with_lock reg.reg_lock (fun () ->
        let freed =
          match reg.current_snap with
          | None -> 0
          | Some old when old.pins = 0 -> 1  (* reclaimed on the spot *)
          | Some old ->
              reg.retired_snaps <- old :: reg.retired_snaps;
              0
        in
        record_segments_locked reg snap;
        reg.current_snap <- Some snap;
        reg.published_count <- reg.published_count + 1;
        reg.reclaimed_count <- reg.reclaimed_count + freed;
        let lag = List.length reg.retired_snaps in
        if lag > reg.max_retired_count then reg.max_retired_count <- lag;
        freed)
  in
  Metrics.incr reg.reg_metrics "snapshot.publishes";
  if freed > 0 then begin
    Metrics.add reg.reg_metrics "snapshot.reclaims" freed;
    Fault.point "snapshot.reclaim";
    gc reg
  end

let current reg = with_lock reg.reg_lock (fun () -> reg.current_snap)

let current_epoch reg =
  with_lock reg.reg_lock (fun () ->
      Option.map (fun s -> s.epoch) reg.current_snap)

let pin reg =
  let snap =
    with_lock reg.reg_lock (fun () ->
        match reg.current_snap with
        | None -> invalid_arg "Snapshot.pin: nothing published yet"
        | Some s ->
            s.pins <- s.pins + 1;
            s)
  in
  Metrics.incr reg.reg_metrics "snapshot.pins";
  snap

let unpin reg snap =
  let freed =
    with_lock reg.reg_lock (fun () ->
        if snap.pins <= 0 then invalid_arg "Snapshot.unpin: not pinned";
        snap.pins <- snap.pins - 1;
        let is_current =
          match reg.current_snap with Some c -> c == snap | None -> false
        in
        if snap.pins = 0 && not is_current then begin
          reg.retired_snaps <-
            List.filter (fun s -> s != snap) reg.retired_snaps;
          reg.reclaimed_count <- reg.reclaimed_count + 1;
          true
        end
        else false)
  in
  Metrics.incr reg.reg_metrics "snapshot.unpins";
  if freed then begin
    Metrics.incr reg.reg_metrics "snapshot.reclaims";
    Fault.point "snapshot.reclaim";
    gc reg
  end

let live reg =
  with_lock reg.reg_lock (fun () ->
      (match reg.current_snap with Some _ -> 1 | None -> 0)
      + List.length reg.retired_snaps)

let retired reg =
  with_lock reg.reg_lock (fun () -> List.length reg.retired_snaps)

let published reg = with_lock reg.reg_lock (fun () -> reg.published_count)
let reclaimed reg = with_lock reg.reg_lock (fun () -> reg.reclaimed_count)

let max_retired reg =
  with_lock reg.reg_lock (fun () -> reg.max_retired_count)

let shared_records reg =
  with_lock reg.reg_lock (fun () ->
      List.fold_left (fun a s -> a + s.seg_count) 0 reg.segments)

let shared_total reg = with_lock reg.reg_lock (fun () -> reg.shared_total)
let freed_total reg = with_lock reg.reg_lock (fun () -> reg.freed_total)
let gc_passes reg = with_lock reg.reg_lock (fun () -> reg.gc_passes)

let pp_registry ppf reg =
  let cur, cur_pins, ret, pub, rec_, lag =
    with_lock reg.reg_lock (fun () ->
        ( Option.map (fun s -> s.epoch) reg.current_snap,
          (match reg.current_snap with Some s -> s.pins | None -> 0),
          List.length reg.retired_snaps,
          reg.published_count,
          reg.reclaimed_count,
          reg.max_retired_count ))
  in
  Format.fprintf ppf
    "snapshots: current epoch %s (%d pin%s), %d retired, %d published, %d \
     reclaimed, max lag %d"
    (match cur with None -> "none" | Some e -> string_of_int e)
    cur_pins
    (if cur_pins = 1 then "" else "s")
    ret pub rec_ lag

let pp_sharing ppf reg =
  let segs, held, shared, freed, passes =
    with_lock reg.reg_lock (fun () ->
        ( List.length reg.segments,
          List.fold_left (fun a s -> a + s.seg_count) 0 reg.segments,
          reg.shared_total,
          reg.freed_total,
          reg.gc_passes ))
  in
  Format.fprintf ppf
    "sharing: %d segment%s holding %d displaced record%s, %d shared lifetime, \
     %d freed, %d gc pass%s"
    segs
    (if segs = 1 then "" else "s")
    held
    (if held = 1 then "" else "s")
    shared freed passes
    (if passes = 1 then "" else "es")
