module Xp = Xmlac_xpath

type mode = Paper | Overlap of Xmlac_xml.Schema_graph.t

type t = {
  mode : mode;
  policy : Policy.t;
  rules : Rule.t array;
  adj : int list array;  (** Neighbour indices. *)
  closure : int list array;  (** Transitive closure (lazy-built). *)
}

let related mode (a : Rule.t) (b : Rule.t) =
  match mode with
  | Paper ->
      Xp.Containment.comparable a.Rule.resource b.Rule.resource
      || Xp.Ast.equal_expr a.Rule.resource b.Rule.resource
  | Overlap sg -> Xp.Schema_match.overlap sg a.Rule.resource b.Rule.resource

let build ~mode policy =
  let rules = Array.of_list (Policy.rules policy) in
  let n = Array.length rules in
  let adj = Array.make n [] in
  (* Paper mode restricts neighbours to opposite effects, as published.
     Overlap mode connects rules of any effect: a node leaving a
     triggered rule's scope may still be covered by a same-effect
     untriggered rule, and must not be reset — the wider closure is
     what makes partial re-annotation provably coincide with full
     annotation. *)
  let signs_ok i j =
    match mode with
    | Paper -> rules.(i).Rule.effect <> rules.(j).Rule.effect
    | Overlap _ -> true
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && signs_ok i j && related mode rules.(i) rules.(j) then
        adj.(i) <- j :: adj.(i)
    done;
    adj.(i) <- List.rev adj.(i)
  done;
  (* Depend-Resolve: DFS from every rule. *)
  let closure = Array.make n [] in
  for i = 0 to n - 1 do
    let visited = Array.make n false in
    visited.(i) <- true;
    let acc = ref [] in
    let rec resolve r =
      List.iter
        (fun nb ->
          if not visited.(nb) then begin
            visited.(nb) <- true;
            acc := nb :: !acc;
            resolve nb
          end)
        adj.(r)
    in
    resolve i;
    closure.(i) <- List.rev !acc
  done;
  { mode; policy; rules; adj; closure }

let mode t = t.mode
let policy t = t.policy
let neighbours t i = t.adj.(i)
let depends t i = t.closure.(i)

let pp ppf t =
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "%a@.  depends: %s@." Rule.pp r
        (String.concat ", "
           (List.map (fun j -> t.rules.(j).Rule.name) t.closure.(i))))
    t.rules
