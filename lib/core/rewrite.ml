module Fault = Xmlac_util.Fault

type lane = Auto | Materialized | Rewrite

let lane_to_string = function
  | Auto -> "auto"
  | Materialized -> "materialized"
  | Rewrite -> "rewrite"

let lane_of_string = function
  | "auto" -> Some Auto
  | "materialized" -> Some Materialized
  | "rewrite" -> Some Rewrite
  | _ -> None

let pp_lane ppf l = Format.pp_print_string ppf (lane_to_string l)

type compiled = {
  subject : string option;
  granted : Plan.t;
  residue : Plan.t;
}

(* The accessible region under a compiled policy plan is the plan's
   answer when [mark = Plus] (everything else defaults to [Minus]) and
   its complement when [mark = Minus] — so intersecting or subtracting
   the request's scope against [plan.query] expresses both the granted
   and the denied part of the answer without a complement operator. *)
let compile ?schema ?plan ?subject policy expr =
  Fault.point "rewrite.compile";
  let plan =
    match (subject, plan) with
    | None, Some p -> p
    | None, None -> Plan.rewrite ?schema (Plan.of_policy policy)
    | Some role, _ ->
        Plan.rewrite ?schema (Plan.of_policy (Policy.for_subject policy role))
  in
  let scope = Plan.Scope expr in
  let granted_q, residue_q =
    match plan.Plan.mark with
    | Rule.Plus ->
        ( Plan.Intersect (scope, plan.Plan.query),
          Plan.Except (scope, plan.Plan.query) )
    | Rule.Minus ->
        ( Plan.Except (scope, plan.Plan.query),
          Plan.Intersect (scope, plan.Plan.query) )
  in
  let finish mark query =
    Plan.rewrite ?schema { Plan.query; mark; default = Rule.opposite mark }
  in
  {
    subject;
    granted = finish Rule.Plus granted_q;
    residue = finish Rule.Minus residue_q;
  }

type answer = { granted_ids : int list; blocked : int }

let eval (b : Backend.t) c =
  match b.Backend.eval_plans [ c.granted; c.residue ] with
  | [ granted_ids; residue_ids ] ->
      { granted_ids; blocked = List.length residue_ids }
  | _ -> assert false

let eval_tree doc c =
  match Plan.native_ids_shared doc [ c.granted; c.residue ] with
  | [ granted_ids; residue_ids ] ->
      { granted_ids; blocked = List.length residue_ids }
  | _ -> assert false

let pp_compiled ppf c =
  (match c.subject with
  | Some role -> Format.fprintf ppf "as %s:@." role
  | None -> ());
  Format.fprintf ppf "granted: %a@.residue: %a" Plan.pp c.granted Plan.pp
    c.residue
