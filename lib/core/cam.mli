(** Compressed accessibility map (related work of the paper: Yu et al.,
    TODS 2004; Zhang et al., DKE 2007).

    Accessibility is strongly clustered — whole subtrees tend to share
    one sign — so instead of one sign per node, a CAM stores a sign
    only at nodes whose {e effective} sign differs from their parent's;
    a lookup walks up to the nearest recorded ancestor.  This is the
    compact labeling the paper cites as the more sophisticated way to
    store annotations, provided here as a diagnostics/alternative
    representation over the same materialized signs. *)

type t

val build : Xmlac_xml.Tree.t -> default:Xmlac_xml.Tree.sign -> t
(** Reads the document's current (possibly partial) annotations; an
    unannotated node's effective sign is [default] — the native
    store's interpretation (Section 5.2). *)

val lookup : t -> Xmlac_xml.Tree.node -> Xmlac_xml.Tree.sign
(** Effective sign of a node of the document the map was built from.
    O(depth) worst case; O(1) when the node itself carries an entry. *)

val entries : t -> int
(** Stored sign changes. *)

val node_count : t -> int
(** Document size at build time. *)

val compression_ratio : t -> float
(** [entries / node_count]; small is good — 1.0 means the map
    degenerated to one sign per node. *)

val pp : Format.formatter -> t -> unit
