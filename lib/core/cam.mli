(** Compressed accessibility map (related work of the paper: Yu et al.,
    TODS 2004; Zhang et al., DKE 2007).

    Accessibility is strongly clustered — whole subtrees tend to share
    one sign — so instead of one sign per node, a CAM stores a sign
    only at nodes whose {e effective} sign differs from their parent's;
    a lookup walks up to the nearest recorded ancestor.  This is the
    compact labeling the paper cites as the more sophisticated way to
    store annotations.

    Since PR 2 the CAM is also the requester's hot-path index
    ({!Engine.request}): the engine owns one map over the native
    store's signs and maintains it {e incrementally} — after partial
    re-annotation (Section 5.3) only the entries of the nodes whose
    sign actually changed (plus their children, whose change-point
    status depends on the parent) are recomputed, so maintenance cost
    follows the affected region, not the document.  The invariant
    maintained throughout: a node carries an entry iff its effective
    sign differs from its parent's effective sign (the root's
    reference sign being [default]). *)

type t

val build : Xmlac_xml.Tree.t -> default:Xmlac_xml.Tree.sign -> t
(** Reads the document's current (possibly partial) annotations; an
    unannotated node's effective sign is [default] — the native
    store's interpretation (Section 5.2). *)

val build_with :
  Xmlac_xml.Tree.t ->
  default:Xmlac_xml.Tree.sign ->
  read:(Xmlac_xml.Tree.node -> Xmlac_xml.Tree.sign option) ->
  t
(** {!build} generalized over the annotation being indexed: [read]
    extracts a node's explicit sign (or [None] for unannotated) and is
    retained for incremental maintenance.  [build] is
    [build_with ~read:(fun n -> n.sign)]. *)

val build_role :
  Xmlac_xml.Tree.t -> role:int -> default:Xmlac_xml.Tree.sign -> t
(** A per-role map over the bitmap slots: a node with a materialized
    bitmap reads as [Plus] iff the role's bit is set; an unannotated
    node inherits [default] (the role's resolved default
    semantics). *)

val freeze : t -> t
(** An O(1) frozen copy: the entry map is persistent, so the copy
    shares it by reference and later incremental maintenance on either
    side leaves the other untouched.  Entries are keyed by node id and
    {!lookup} walks the parent chain of the node it is handed, so the
    copy answers for any tree with the same ids and parent chains — in
    particular the COW view an MVCC snapshot captures. *)

val lookup : t -> Xmlac_xml.Tree.node -> Xmlac_xml.Tree.sign
(** Effective sign of a node of the document the map was built from.
    O(depth) worst case; O(1) when the node itself carries an entry.
    Crosses one {!Xmlac_util.Deadline.checkpoint} per call, so lookups
    under a serve-layer budget time out cooperatively. *)

val default : t -> Xmlac_xml.Tree.sign

val entries : t -> int
(** Stored sign changes. *)

val node_count : t -> int
(** Document size at build time (kept current by the incremental
    maintenance operations). *)

val compression_ratio : t -> float
(** [entries / node_count]; small is good — 1.0 means the map
    degenerated to one sign per node. *)

(** {1 Incremental maintenance}

    All three operations return how many nodes (or entries) they
    examined — the engine's [cam.touched] counter, which the
    [exp_requester] bench checks against the re-annotator's affected
    region. *)

val apply_changes : t -> Xmlac_xml.Tree.t -> changed:int list -> int
(** [apply_changes t doc ~changed] repairs the map after the sign
    slots of the nodes in [changed] were rewritten in place.  A sign
    write at [n] can only move the change points at [n] itself and at
    [n]'s children, so exactly those entries are recomputed; ids no
    longer present in [doc] are ignored (see {!purge}).  Returns the
    number of distinct nodes examined. *)

val rebuild_subtree : t -> Xmlac_xml.Tree.t -> root:int -> int
(** Recomputes every entry in the subtree rooted at id [root]
    (inheriting from the live parent's effective sign) — used for
    freshly grafted fragments, whose nodes have no entries yet.
    Returns the subtree's node count; 0 when [root] is not in
    [doc]. *)

val purge : t -> Xmlac_xml.Tree.t -> int
(** Drops entries whose node no longer exists in [doc] (deleted
    subtrees).  Stale entries are unreachable from {!lookup} — walks
    start at live nodes — so this is garbage collection, not
    correctness repair; O(entries).  Returns how many were dropped. *)

val equal : t -> t -> bool
(** Same default and identical entry sets — the checked-fallback test:
    an incrementally maintained map must equal a fresh {!build}. *)

val pp : Format.formatter -> t -> unit
