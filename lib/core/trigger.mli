(** The Trigger algorithm (Section 5.3, Figure 8).

    Given an update [u] (an XPath expression locating the inserted or
    deleted nodes), a rule is {e triggered} when some member of its
    expansion ({!Xmlac_xpath.Expand}) is related to [u]; the
    dependency closure of the triggered rules is then added.  The
    relatedness test follows the dependency graph's mode:
    [x ⊑ u ∨ u ⊑ x ∨ x = u] in [Paper] mode, schema overlap in
    [Overlap] mode.

    Schema-based expansion (the same schema graph as the [Overlap]
    mode, or none in pure [Paper] mode) rewrites descendant axes inside
    predicates into child-only chains, which is what lets
    [//patient\[.//experimental\]] react to a deletion of
    [//treatment]. *)

type result = {
  directly : int list;  (** Rule indices triggered by expansion vs update. *)
  via_depends : int list;  (** Additional indices from the dependency
                               closure. *)
}

val all : result -> int list
(** Union, ascending. *)

val run :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Depend.t ->
  update:Xmlac_xpath.Ast.expr ->
  result
(** [schema] controls expansion only; relatedness follows the
    dependency graph's mode. *)

val run_all :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Depend.t ->
  updates:Xmlac_xpath.Ast.expr list ->
  result
(** Union of {!run} over several update expressions — used for insert
    updates, where the grafted root and its descendants are located by
    different paths. *)

val triggered_rules : Depend.t -> result -> Rule.t list
