module Tree = Xmlac_xml.Tree
open Xmlac_xpath.Ast

type decision =
  | Permitted of { targets : int }
  | Refused of { blocked : int }

let check_delete (backend : Backend.t) ~default expr =
  let targets = backend.Backend.eval_ids expr in
  (* The subtrees vanish too: close over descendants via expr//*. *)
  let subtree_expr =
    { steps = expr.steps @ [ step Descendant Wildcard ] }
  in
  let doomed =
    List.sort_uniq Stdlib.compare
      (targets @ backend.Backend.eval_ids subtree_expr)
  in
  let blocked =
    List.length
      (List.filter
         (fun id -> Backend.effective_sign backend ~default id <> Tree.Plus)
         doomed)
  in
  if blocked = 0 then Permitted { targets = List.length targets }
  else Refused { blocked }

let guarded_delete ?schema (backend : Backend.t) depend ~update =
  let default = Policy.ds (Depend.policy depend) in
  match check_delete backend ~default update with
  | Permitted _ -> Ok (Reannotator.reannotate ?schema backend depend ~update)
  | Refused _ as d -> Error d

let pp ppf = function
  | Permitted { targets } ->
      Format.fprintf ppf "permitted (%d subtree(s))" targets
  | Refused { blocked } ->
      Format.fprintf ppf "refused (%d inaccessible node(s))" blocked
