(** Annotation queries (Section 5.2, algorithm Annotation-Queries of
    Figure 5).

    A policy compiles to one set-algebraic query over the scopes of its
    rules; evaluating it yields the nodes whose sign must be set to the
    {e opposite} of the default — the paper stores only non-default
    annotations in the native store and initializes the [s] column to
    the default relationally, so in both backends the nodes {e to
    update} are:

    - ds = deny,  cr = deny  -> grants EXCEPT denies  (marked "+")
    - ds = deny,  cr = allow -> grants                (marked "+")
    - ds = allow, cr = deny  -> denies                (marked "-")
    - ds = allow, cr = allow -> denies EXCEPT grants  (marked "-")

    The same abstract query renders to SQL (through the ShreX
    translation, combined with UNION / EXCEPT) and to an XQuery-style
    expression for the native store. *)

type shape = Single | Except
(** [Single]: the primary union alone. [Except]: primary union minus
    secondary union. *)

type t = {
  primary : Xmlac_xpath.Ast.expr list;
  secondary : Xmlac_xpath.Ast.expr list;  (** Empty when [shape] is [Single]. *)
  shape : shape;
  mark : Rule.effect;  (** The sign stamped on the query's answer. *)
}

val build : Policy.t -> t

val eval_native : Xmlac_xml.Tree.t -> t -> Xmlac_xml.Tree.node list
(** Direct set-algebraic evaluation over the tree, in document
    order. *)

val to_sql : Xmlac_shrex.Mapping.t -> t -> Xmlac_reldb.Sql.query
(** UNION of the translated primaries, EXCEPT the UNION of the
    translated secondaries when applicable.  An empty primary set
    yields a query with an empty answer. *)

val to_xquery_string : doc_name:string -> t -> string
(** Display form mirroring the paper's example:
    [for $n in doc("...")//((R1 union R2) except R3) return
    xmlac:annotate($n, "+")]. *)

val pp : Format.formatter -> t -> unit
