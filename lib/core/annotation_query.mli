(** Annotation queries (Section 5.2, algorithm Annotation-Queries of
    Figure 5).

    A policy compiles to one set-algebraic query over the scopes of its
    rules; evaluating it yields the nodes whose sign must be set to the
    {e opposite} of the default — the paper stores only non-default
    annotations in the native store and initializes the [s] column to
    the default relationally, so in both backends the nodes {e to
    update} are:

    - ds = deny,  cr = deny  -> grants EXCEPT denies  (marked "+")
    - ds = deny,  cr = allow -> grants                (marked "+")
    - ds = allow, cr = deny  -> denies                (marked "-")
    - ds = allow, cr = allow -> denies EXCEPT grants  (marked "-")

    This module is the Figure 5 surface form; every interpretation is
    delegated to the {!Plan} IR via {!to_plan}, so all three backends
    share one evaluator, one SQL lowering, and one XQuery printer. *)

type shape = Single | Except
(** [Single]: the primary union alone. [Except]: primary union minus
    secondary union. *)

type t = {
  primary : Xmlac_xpath.Ast.expr list;
  secondary : Xmlac_xpath.Ast.expr list;  (** Empty when [shape] is [Single]. *)
  shape : shape;
  mark : Rule.effect;  (** The sign stamped on the query's answer. *)
}

val build : Policy.t -> t

val to_plan : t -> Plan.t
(** The plan IR of the query ([to_plan (build p)] and
    {!Plan.of_policy}[ p] agree up to simplification); the plan's
    [default] is the opposite of [mark]. *)

val eval_native : Xmlac_xml.Tree.t -> t -> Xmlac_xml.Tree.node list
(** {!Plan.eval_native} on {!to_plan}: each scope materializes its id
    set and the set algebra runs on those, no document scan.  Nodes
    come back in ascending id order (= document order for documents
    whose ids were assigned in preorder, as the parser and generators
    do). *)

val to_sql : Xmlac_shrex.Mapping.t -> t -> Xmlac_reldb.Sql.query
(** {!Plan.to_sql} on {!to_plan}: balanced n-ary UNION of the
    translated primaries, EXCEPT the UNION of the translated
    secondaries when applicable.  An empty primary set yields a query
    with an empty answer. *)

val to_xquery_string : doc_name:string -> t -> string
(** {!Plan.to_xquery} on {!to_plan} — executable text mirroring the
    paper's example:
    [for $n in doc("...")((R1 union R2) except (R3)) return
    xmlac:annotate($n, "+")], with [()] for an empty union so the
    output always parses back through {!Xmlac_xmldb.Xquery}. *)

val pp : Format.formatter -> t -> unit
