(** Textual policy files.

    The paper's system reads policies from files ("we manually designed
    policies ... several policy files"); this is our concrete syntax:

    {[
      # hospital ward policy
      role staff
      role doctor inherits staff
      role auditor default allow conflict allow
      default deny
      conflict deny
      allow //patient
      allow @staff //patient/name
      deny  @doctor,@auditor //patient[treatment]
      allow //regular
    ]}

    [default] and [conflict] each take [allow] or [deny] and may appear
    at most once (both default to [deny], the common configuration).

    [role NAME] declares a subject role; declaration order is the
    role's bit index ({!Subject}).  Optional clauses, each at most
    once: [inherits a,b] (parent roles — forward references are fine),
    [default allow|deny] and [conflict allow|deny] (per-role
    overrides).  A file with no [role] lines yields a single-subject
    policy ({!Subject.solo}).

    Every remaining non-comment line is [allow <xpath>] or
    [deny <xpath>], optionally qualified with the roles it applies to:
    [allow @doctor,@nurse <xpath>].  Unqualified rules apply to every
    role.  Rules are named R1, R2, ... in file order.

    Parsing is strict: duplicate or unknown roles, inheritance cycles,
    and qualifiers naming undeclared roles are rejected with an
    {!error} carrying the line and column of the offending token. *)

type error = {
  line : int;  (** 1-based. *)
  pos : int;  (** 1-based column of the offending token. *)
  message : string;
}

val error_to_string : error -> string
(** ["line 3, col 7: unknown role \"nurse\" in rule qualifier"]. *)

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Policy.t, error) result

val parse_exn : string -> Policy.t
(** @raise Invalid_argument with the rendered {!error}. *)

val to_string : Policy.t -> string
(** Round-trips through {!parse} (rule names are positional). *)
