(** Textual policy files.

    The paper's system reads policies from files ("we manually designed
    policies ... several policy files"); this is our concrete syntax:

    {[
      # hospital ward policy
      default deny
      conflict deny
      allow //patient
      allow //patient/name
      deny  //patient[treatment]
      deny  //patient[.//experimental]
      allow //regular
    ]}

    [default] and [conflict] each take [allow] or [deny] and may appear
    at most once (both default to [deny], the common configuration);
    every remaining non-comment line is [allow <xpath>] or
    [deny <xpath>].  Rules are named R1, R2, ... in file order. *)

val parse : string -> (Policy.t, string) result
val parse_exn : string -> Policy.t

val to_string : Policy.t -> string
(** Round-trips through {!parse} (rule names are positional). *)
