(** Security views (related work of the paper: Fan et al. 2004, Kuper
    et al. 2009).

    A security view is the document a user is actually allowed to see:
    the materialized alternative to annotations, mentioned by the paper
    as the approach that avoids information leaks for read-only
    policies.  Two classical constructions are provided:

    - [`Prune]: keep a node iff it and {e all} its ancestors are
      accessible — an inaccessible node hides its whole subtree, even
      accessible descendants (no structural leak at all);
    - [`Promote]: keep every accessible node; the accessible children
      of an inaccessible node are promoted to its nearest kept
      ancestor, preserving relative order (maximal information,
      slightly distorted structure).

    The view is a fresh document with fresh node ids; values of
    inaccessible nodes never appear in it. *)

type mode = Prune | Promote

val materialize :
  ?mode:mode -> ?subject:string -> Policy.t -> Xmlac_xml.Tree.t ->
  Xmlac_xml.Tree.t
(** Default mode is [Promote].  The view's root element always exists
    (same name as the source root); when the source root itself is
    inaccessible the view root is a hollow placeholder carrying neither
    value nor, in [`Prune] mode, any children.  [?subject] builds one
    role's view ({!Policy.accessible_ids}'s subject parameter);
    omitted, the anonymous single-subject view.
    @raise Invalid_argument on an unknown role. *)

val visible_ids :
  ?mode:mode -> ?subject:string -> Policy.t -> Xmlac_xml.Tree.t -> int list
(** The {e source} ids represented in the view, ascending (the view's
    own nodes carry fresh ids).  In [Promote] mode this is exactly
    {!Policy.accessible_ids}; in [Prune] mode, the accessible nodes
    all of whose ancestors are accessible too.  The visibility oracle
    the cross-lane equivalence property checks both enforcement lanes
    against. *)

val visible_count :
  ?mode:mode -> ?subject:string -> Policy.t -> Xmlac_xml.Tree.t -> int
(** Number of source nodes represented in the view
    ([List.length (visible_ids …)]), not counting a placeholder
    root. *)
