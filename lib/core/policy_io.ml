type error = { line : int; pos : int; message : string }

let error_to_string e =
  Printf.sprintf "line %d, col %d: %s" e.line e.pos e.message

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)

exception Fail of error

let fail ~line ~pos message = raise (Fail { line; pos; message })

let effect_of_string = function
  | "allow" -> Some Rule.Plus
  | "deny" -> Some Rule.Minus
  | _ -> None

let effect_word = function Rule.Plus -> "allow" | Rule.Minus -> "deny"

(* Cursor over one raw line: byte offsets, columns in errors are
   offset + 1 so editors agree with them. *)
let skip_ws s i =
  let n = String.length s in
  let rec go i = if i < n && (s.[i] = ' ' || s.[i] = '\t') then go (i + 1) else i in
  go i

let next_word s i =
  let i = skip_ws s i in
  let n = String.length s in
  if i >= n then None
  else
    let j = ref i in
    while !j < n && s.[!j] <> ' ' && s.[!j] <> '\t' do incr j done;
    Some (String.sub s i (!j - i), i, !j)

let rest_of_line s i =
  let i = skip_ws s i in
  String.trim (String.sub s i (String.length s - i))

(* A role declaration as read, with enough positions to point errors
   at the offending token rather than the whole line. *)
type raw_decl = {
  d_name : string;
  d_line : int;
  d_name_pos : int;
  d_inherits : (string * int) list; (* (parent, column) *)
  d_ds : Rule.effect option;
  d_cr : Rule.effect option;
}

let parse_role_name ~line ~pos name =
  if name = "" then fail ~line ~pos "expected role name";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> ()
      | _ ->
          fail ~line ~pos
            (Printf.sprintf "invalid role name %S (use letters, digits, _, -)"
               name))
    name;
  name

let parse_role_list ~line ~pos s =
  List.map
    (fun part ->
      let part = if String.length part > 0 && part.[0] = '@' then
          String.sub part 1 (String.length part - 1)
        else part
      in
      (parse_role_name ~line ~pos part, pos))
    (String.split_on_char ',' s)

(* role NAME [inherits a,b] [default allow|deny] [conflict allow|deny] *)
let parse_role_decl ~line s i =
  let name, name_pos, i =
    match next_word s i with
    | None -> fail ~line ~pos:(String.length s + 1) "expected role name"
    | Some (w, p, j) -> (parse_role_name ~line ~pos:(p + 1) w, p + 1, j)
  in
  let rec clauses acc i =
    match next_word s i with
    | None -> acc
    | Some ("inherits", p, j) -> (
        if acc.d_inherits <> [] then fail ~line ~pos:(p + 1) "duplicate 'inherits'";
        match next_word s j with
        | None -> fail ~line ~pos:(j + 1) "expected role list after 'inherits'"
        | Some (lst, lp, k) ->
            clauses
              { acc with d_inherits = parse_role_list ~line ~pos:(lp + 1) lst }
              k)
    | Some (("default" | "conflict") as kw, p, j) -> (
        let already =
          if kw = "default" then acc.d_ds <> None else acc.d_cr <> None
        in
        if already then fail ~line ~pos:(p + 1) (Printf.sprintf "duplicate %S" kw);
        match next_word s j with
        | Some (v, vp, k) -> (
            match effect_of_string v with
            | Some e ->
                clauses
                  (if kw = "default" then { acc with d_ds = Some e }
                   else { acc with d_cr = Some e })
                  k
            | None ->
                fail ~line ~pos:(vp + 1)
                  (Printf.sprintf "expected '%s allow' or '%s deny'" kw kw))
        | None ->
            fail ~line ~pos:(j + 1)
              (Printf.sprintf "expected '%s allow' or '%s deny'" kw kw))
    | Some (w, p, _) ->
        fail ~line ~pos:(p + 1) (Printf.sprintf "unknown role clause %S" w)
  in
  clauses
    { d_name = name; d_line = line; d_name_pos = name_pos; d_inherits = [];
      d_ds = None; d_cr = None }
    i

let reject_cycles decls =
  let by_name = Hashtbl.create 16 in
  List.iteri (fun i (d : raw_decl) -> Hashtbl.replace by_name d.d_name i) decls;
  let arr = Array.of_list decls in
  let state = Array.make (Array.length arr) `White in
  let rec visit i trail =
    match state.(i) with
    | `Black -> ()
    | `Grey ->
        let d = arr.(i) in
        fail ~line:d.d_line ~pos:d.d_name_pos
          (Printf.sprintf "role inheritance cycle: %s"
             (String.concat " -> " (List.rev (d.d_name :: trail))))
    | `White ->
        state.(i) <- `Grey;
        List.iter
          (fun (p, _) -> visit (Hashtbl.find by_name p) (arr.(i).d_name :: trail))
          arr.(i).d_inherits;
        state.(i) <- `Black
  in
  Array.iteri (fun i _ -> visit i []) arr

let parse text =
  try
    let lines = String.split_on_char '\n' text in
    let ds = ref None and cr = ref None in
    let decls = ref [] (* reversed *) in
    let rules = ref [] (* reversed *) in
    let qualifiers = ref [] (* (line, pos, role) per qualified reference *) in
    let count = ref 0 in
    List.iteri
      (fun lineno raw ->
        let line = lineno + 1 in
        let i = skip_ws raw 0 in
        if i >= String.length raw || raw.[i] = '#' then ()
        else
          match next_word raw i with
          | None -> ()
          | Some ("role", _, j) ->
              let d = parse_role_decl ~line raw j in
              if List.exists (fun (o : raw_decl) -> o.d_name = d.d_name) !decls
              then
                fail ~line ~pos:d.d_name_pos
                  (Printf.sprintf "duplicate role %S" d.d_name);
              decls := d :: !decls
          | Some ((("default" | "conflict") as kw), kwp, j) -> (
              let slot = if kw = "default" then ds else cr in
              match (!slot, effect_of_string (rest_of_line raw j)) with
              | Some _, _ ->
                  fail ~line ~pos:(kwp + 1)
                    (Printf.sprintf "duplicate '%s'" kw)
              | None, Some e -> slot := Some e
              | None, None ->
                  fail ~line ~pos:(kwp + 1)
                    (Printf.sprintf "expected '%s allow' or '%s deny'" kw kw))
          | Some ((("allow" | "deny") as kw), _, j) -> (
              let effect = Option.get (effect_of_string kw) in
              (* Optional subject qualifier: @role1,@role2 *)
              let subjects, j =
                match next_word raw j with
                | Some (w, p, k) when String.length w > 0 && w.[0] = '@' ->
                    let roles = parse_role_list ~line ~pos:(p + 1) w in
                    List.iter
                      (fun (r, pos) -> qualifiers := (line, pos, r) :: !qualifiers)
                      roles;
                    (List.map fst roles, k)
                | _ -> ([], j)
              in
              let xp = rest_of_line raw j in
              let xp_pos = skip_ws raw j + 1 in
              if xp = "" then fail ~line ~pos:xp_pos "expected XPath expression";
              match Xmlac_xpath.Parser.parse xp with
              | Ok resource ->
                  incr count;
                  rules :=
                    Rule.make ~name:(Printf.sprintf "R%d" !count) ~subjects
                      ~resource effect
                    :: !rules
              | Error e ->
                  fail ~line ~pos:xp_pos
                    (Format.asprintf "bad XPath %S (%a)" xp
                       Xmlac_xpath.Parser.pp_error e))
          | Some (w, p, _) ->
              fail ~line ~pos:(p + 1) (Printf.sprintf "unknown keyword %S" w))
      lines;
    let decls = List.rev !decls in
    (* Unknown parents, then cycles — each pointed at its declaration. *)
    List.iter
      (fun (d : raw_decl) ->
        List.iter
          (fun (p, pos) ->
            if not (List.exists (fun (o : raw_decl) -> o.d_name = p) decls) then
              fail ~line:d.d_line ~pos
                (Printf.sprintf "role %S inherits unknown role %S" d.d_name p))
          d.d_inherits)
      decls;
    reject_cycles decls;
    let subjects =
      match decls with
      | [] -> Subject.solo
      | ds ->
          Subject.make_exn
            (List.map
               (fun (d : raw_decl) ->
                 Subject.role
                   ~inherits:(List.map fst d.d_inherits)
                   ?ds:d.d_ds ?cr:d.d_cr d.d_name)
               ds)
    in
    (* Qualified rules must name declared roles. *)
    List.iter
      (fun (line, pos, r) ->
        if not (Subject.mem subjects r) then
          fail ~line ~pos
            (Printf.sprintf "unknown role %S in rule qualifier" r))
      (List.rev !qualifiers);
    let ds = Option.value !ds ~default:Rule.Minus in
    let cr = Option.value !cr ~default:Rule.Minus in
    Ok (Policy.make ~subjects ~ds ~cr (List.rev !rules))
  with Fail e -> Error e

let parse_exn text =
  match parse text with
  | Ok p -> p
  | Error e -> invalid_arg ("Policy_io.parse: " ^ error_to_string e)

let to_string policy =
  let buf = Buffer.create 256 in
  let subjects = Policy.subjects policy in
  if not (Subject.is_solo subjects) then
    List.iter
      (fun (d : Subject.decl) ->
        Buffer.add_string buf (Printf.sprintf "role %s" d.Subject.name);
        (match d.Subject.inherits with
        | [] -> ()
        | ps ->
            Buffer.add_string buf
              (Printf.sprintf " inherits %s" (String.concat "," ps)));
        (match d.Subject.ds with
        | Some e -> Buffer.add_string buf (" default " ^ effect_word e)
        | None -> ());
        (match d.Subject.cr with
        | Some e -> Buffer.add_string buf (" conflict " ^ effect_word e)
        | None -> ());
        Buffer.add_char buf '\n')
      (Subject.decls subjects);
  Buffer.add_string buf
    (Printf.sprintf "default %s\n" (effect_word (Policy.ds policy)));
  Buffer.add_string buf
    (Printf.sprintf "conflict %s\n" (effect_word (Policy.cr policy)));
  List.iter
    (fun (r : Rule.t) ->
      let qual =
        match r.Rule.subjects with
        | [] -> ""
        | ss -> " " ^ String.concat "," (List.map (fun s -> "@" ^ s) ss)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n"
           (effect_word r.Rule.effect)
           qual
           (Xmlac_xpath.Pp.expr_to_string r.Rule.resource)))
    (Policy.rules policy);
  Buffer.contents buf
