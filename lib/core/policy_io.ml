let effect_of_string = function
  | "allow" -> Some Rule.Plus
  | "deny" -> Some Rule.Minus
  | _ -> None

let strip s = String.trim s

let split_first_word s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, strip (String.sub s i (String.length s - i)))

let parse text =
  let lines = String.split_on_char '\n' text in
  let ds = ref None and cr = ref None in
  let rules = ref [] in
  let count = ref 0 in
  let error = ref None in
  List.iteri
    (fun lineno raw ->
      if !error = None then
        let line = strip raw in
        if line = "" || line.[0] = '#' then ()
        else
          let keyword, rest = split_first_word line in
          let fail msg =
            error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg)
          in
          match keyword with
          | "default" -> (
              match (!ds, effect_of_string rest) with
              | Some _, _ -> fail "duplicate 'default'"
              | None, Some e -> ds := Some e
              | None, None -> fail "expected 'default allow' or 'default deny'")
          | "conflict" -> (
              match (!cr, effect_of_string rest) with
              | Some _, _ -> fail "duplicate 'conflict'"
              | None, Some e -> cr := Some e
              | None, None -> fail "expected 'conflict allow' or 'conflict deny'")
          | "allow" | "deny" -> (
              let effect =
                match effect_of_string keyword with
                | Some e -> e
                | None -> assert false
              in
              match Xmlac_xpath.Parser.parse rest with
              | Ok resource ->
                  incr count;
                  rules :=
                    Rule.make ~name:(Printf.sprintf "R%d" !count) ~resource effect
                    :: !rules
              | Error e ->
                  fail
                    (Format.asprintf "bad XPath %S (%a)" rest
                       Xmlac_xpath.Parser.pp_error e))
          | _ -> fail (Printf.sprintf "unknown keyword %S" keyword))
    lines;
  match !error with
  | Some msg -> Error msg
  | None ->
      let ds = Option.value !ds ~default:Rule.Minus in
      let cr = Option.value !cr ~default:Rule.Minus in
      Ok (Policy.make ~ds ~cr (List.rev !rules))

let parse_exn text =
  match parse text with
  | Ok p -> p
  | Error msg -> invalid_arg ("Policy_io.parse: " ^ msg)

let effect_word = function Rule.Plus -> "allow" | Rule.Minus -> "deny"

let to_string policy =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "default %s\n" (effect_word (Policy.ds policy)));
  Buffer.add_string buf
    (Printf.sprintf "conflict %s\n" (effect_word (Policy.cr policy)));
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s\n"
           (effect_word r.Rule.effect)
           (Xmlac_xpath.Pp.expr_to_string r.Rule.resource)))
    (Policy.rules policy);
  Buffer.contents buf
