(** Native XML backend: direct XPath evaluation and in-place sign
    mutation over one document — the MonetDB/XQuery role.

    In the paper's native store (Section 5.2), annotations are [sign]
    attributes written by the generated
    [for $n in doc(...)(...) return xmlac:annotate($n, ...)] queries;
    here the same surface is the sign slot of {!Xmlac_xml.Tree} nodes,
    and plan evaluation short-circuits the XQuery text to direct
    id-set evaluation (the text form itself is covered by
    {!Xmlac_xmldb.Xquery}). *)

val make : Xmlac_xml.Tree.t -> Backend.t
(** The backend operates on the document in place. *)
