(** Native XML backend: direct XPath evaluation and in-place sign
    mutation over one document — the MonetDB/XQuery role. *)

val make : Xmlac_xml.Tree.t -> Backend.t
(** The backend operates on the document in place. *)
