type stats = {
  reset_default : Rule.effect;
  marked : int;
  total : int;
}

let annotate_with_plan (backend : Backend.t) (plan : Plan.t) =
  backend.Backend.reset_signs ~default:plan.Plan.default;
  let ids = backend.Backend.eval_plan plan in
  let marked = backend.Backend.set_sign_ids ids plan.Plan.mark in
  {
    reset_default = plan.Plan.default;
    marked;
    total = backend.Backend.node_count ();
  }

let annotate ?schema ?(rewrite = true) backend policy =
  let plan = Plan.of_policy policy in
  let plan = if rewrite then Plan.rewrite ?schema plan else plan in
  annotate_with_plan backend plan

let coverage stats =
  if stats.total = 0 then 0.0
  else float_of_int stats.marked /. float_of_int stats.total
