type stats = {
  reset_default : Rule.effect;
  marked : int;
  total : int;
}

let annotate_with_plan (backend : Backend.t) (plan : Plan.t) =
  backend.Backend.reset_signs ~default:plan.Plan.default;
  let ids = backend.Backend.eval_plan plan in
  let marked = backend.Backend.set_sign_ids ids plan.Plan.mark in
  {
    reset_default = plan.Plan.default;
    marked;
    total = backend.Backend.node_count ();
  }

let annotate ?schema ?(rewrite = true) backend policy =
  let plan = Plan.of_policy policy in
  let plan = if rewrite then Plan.rewrite ?schema plan else plan in
  annotate_with_plan backend plan

let coverage stats =
  if stats.total = 0 then 0.0
  else float_of_int stats.marked /. float_of_int stats.total

(* --- multi-subject shared pass ------------------------------------- *)

type subjects_stats = {
  roles : int;
  distinct_plans : int;
  shared_plans : int;
  stamped : int;
  bits_total : int;
}

(* One plan per role, in bit order: the role's projected single-subject
   policy compiled and rewritten exactly as the single-plan path
   would.  Roles whose projections coincide — same resolved ds/cr and
   the same applicable rules (structurally equal resources, equal
   effects) — compile (and rewrite, the expensive step) once and share
   the plan value; a miss only costs the duplicate compile it would
   have paid anyway. *)
let compile_subjects ?schema ?(rewrite = true) policy =
  let same_proj p q =
    Policy.ds p = Policy.ds q
    && Policy.cr p = Policy.cr q
    &&
    let rp = Policy.rules p and rq = Policy.rules q in
    List.length rp = List.length rq
    && List.for_all2
         (fun (a : Rule.t) (b : Rule.t) ->
           a.Rule.effect = b.Rule.effect
           && (a.Rule.resource == b.Rule.resource
              || Xmlac_xpath.Ast.equal_expr a.Rule.resource b.Rule.resource))
         rp rq
  in
  let compiled = ref [] in
  List.map
    (fun role ->
      let p = Policy.for_subject policy role in
      match List.find_opt (fun (q, _) -> same_proj p q) !compiled with
      | Some (_, plan) -> plan
      | None ->
          let plan = Plan.of_policy p in
          let plan = if rewrite then Plan.rewrite ?schema plan else plan in
          compiled := (p, plan) :: !compiled;
          plan)
    (Policy.roles policy)

(* Group the role plans by answer equivalence ({!Plan.equiv}), keeping
   bit order within and across groups.  Marks may differ inside a
   group — the answer is shared, the fan-out direction is per role. *)
let share ?schema plans =
  let groups = ref [] (* (representative, (role, value) list ref), reversed *) in
  List.iteri
    (fun role (p : Plan.t) ->
      let value = p.Plan.mark = Rule.Plus in
      match
        (* Plans deduplicated by [compile_subjects] are physically
           shared, so most lookups resolve on [==] without touching
           the containment-based equivalence check. *)
        List.find_opt
          (fun (rep, _) -> rep == p || Plan.equiv ?schema rep p)
          !groups
      with
      | Some (_, members) -> members := (role, value) :: !members
      | None -> groups := (p, ref [ (role, value) ]) :: !groups)
    plans;
  List.rev_map (fun (rep, members) -> (rep, List.rev !members)) !groups

let annotate_subjects ?schema ?(rewrite = true) (backend : Backend.t) policy =
  let default = Policy.default_bits policy in
  backend.Backend.reset_bits ~default;
  let plans = compile_subjects ?schema ~rewrite policy in
  let groups = share ?schema plans in
  let answers = backend.Backend.eval_plans (List.map fst groups) in
  (* Gather every (role, value) edit per node before touching the
     store, so each touched node's bitmap is read, updated and
     serialized once for the whole epoch — not once per role.  Nodes
     keep first-touch order (group order, ascending ids within), and a
     node's edits keep role order, so the write sequence is a
     reordering of the old per-role loops over commuting single-bit
     edits. *)
  let per_node : (int, (int * bool) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let order = ref [] (* first-touch order, reversed *) in
  List.iter2
    (fun (_, members) ids ->
      List.iter
        (fun id ->
          let edits =
            match Hashtbl.find_opt per_node id with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace per_node id r;
                order := id :: !order;
                r
          in
          List.iter (fun (role, value) -> edits := (role, value) :: !edits)
            members)
        ids)
    groups answers;
  let batch =
    List.rev_map
      (fun id -> (id, List.rev !(Hashtbl.find per_node id)))
      !order
  in
  let stamped = backend.Backend.set_bits_batch batch ~default in
  let roles = List.length plans in
  {
    roles;
    distinct_plans = List.length groups;
    shared_plans = roles - List.length groups;
    stamped;
    bits_total = backend.Backend.node_count ();
  }
