type stats = {
  reset_default : Rule.effect;
  marked : int;
  total : int;
}

let annotate_with_query (backend : Backend.t) policy query =
  let default = Policy.ds policy in
  backend.Backend.reset_signs ~default;
  let ids = backend.Backend.eval_annotation_query query in
  let marked = backend.Backend.set_sign_ids ids query.Annotation_query.mark in
  { reset_default = default; marked; total = backend.Backend.node_count () }

let annotate backend policy =
  annotate_with_query backend policy (Annotation_query.build policy)

let coverage stats =
  if stats.total = 0 then 0.0
  else float_of_int stats.marked /. float_of_int stats.total
