module Tree = Xmlac_xml.Tree

type decision =
  | Granted of int list
  | Denied of { blocked : int }

let request (backend : Backend.t) ~default expr =
  let ids = backend.Backend.eval_ids expr in
  let blocked =
    List.length
      (List.filter
         (fun id -> Backend.effective_sign backend ~default id <> Tree.Plus)
         ids)
  in
  if blocked = 0 then Granted ids else Denied { blocked }

let request_string backend ~default s =
  request backend ~default (Xmlac_xpath.Parser.parse_exn s)

let is_granted = function Granted _ -> true | Denied _ -> false

let pp ppf = function
  | Granted ids -> Format.fprintf ppf "granted (%d node(s))" (List.length ids)
  | Denied { blocked } ->
      Format.fprintf ppf "denied (%d inaccessible node(s))" blocked
