module Tree = Xmlac_xml.Tree
module Deadline = Xmlac_util.Deadline

type decision =
  | Granted of int list
  | Denied of { blocked : int }

(* One deadline checkpoint per selected node: the serve layer's
   cooperative timeout fires inside the accessibility sweep, so a
   request over a huge answer set cannot blow its budget silently. *)
let decide ~ids ~accessible =
  let blocked =
    List.length
      (List.filter
         (fun id ->
           Deadline.checkpoint ();
           not (accessible id))
         ids)
  in
  if blocked = 0 then Granted ids else Denied { blocked }

let request_via ~sign (backend : Backend.t) expr =
  Deadline.checkpoint ();
  let ids = backend.Backend.eval_ids expr in
  decide ~ids ~accessible:(fun id -> sign id = Tree.Plus)

let request (backend : Backend.t) ~default expr =
  request_via ~sign:(Backend.effective_sign backend ~default) backend expr

(* The rewrite lane: no sign or bitmap read — the backend evaluates the
   compiled granted/residue plan pair and the residue count is the
   blocked count.  Routing the granted ids back through [decide] keeps
   the per-node deadline checkpoints, so a huge rewritten answer is
   interruptible exactly like a materialized one. *)
let request_rewritten ?schema ?plan ?subject (backend : Backend.t) policy expr =
  Deadline.checkpoint ();
  let compiled = Rewrite.compile ?schema ?plan ?subject policy expr in
  let answer = Rewrite.eval backend compiled in
  if answer.Rewrite.blocked > 0 then Denied { blocked = answer.Rewrite.blocked }
  else decide ~ids:answer.Rewrite.granted_ids ~accessible:(fun _ -> true)

let parse_or_fail s =
  match Xmlac_xpath.Parser.parse s with
  | Ok e -> e
  | Error { Xmlac_xpath.Parser.pos; message } ->
      invalid_arg
        (Printf.sprintf "request: cannot parse %S at position %d: %s" s pos
           message)

let request_string backend ~default s =
  request backend ~default (parse_or_fail s)

let is_granted = function Granted _ -> true | Denied _ -> false

let pp ppf = function
  | Granted ids -> Format.fprintf ppf "granted (%d node(s))" (List.length ids)
  | Denied { blocked } ->
      Format.fprintf ppf "denied (%d inaccessible node(s))" blocked
