(** The requester front-end (Section 4).

    Read-only XPath queries are answered with all-or-nothing
    semantics: if every node the query selects is accessible under the
    materialized annotations, the nodes are returned; if any selected
    node is inaccessible, the whole request is denied.

    The decision is deliberately split from the sign source: {!decide}
    works on any accessibility oracle, so the same all-or-nothing rule
    serves direct sign reads ({!request}), the engine's CAM fast lane
    ({!Engine.request}) and the property tests that pin the two
    against each other. *)

type decision =
  | Granted of int list  (** The selected node ids, ascending. *)
  | Denied of { blocked : int }
      (** At least one selected node is inaccessible; [blocked] counts
          them. *)

val decide : ids:int list -> accessible:(int -> bool) -> decision
(** The all-or-nothing rule itself: grants iff every selected id is
    accessible.  An empty answer is granted (vacuously). *)

val request_via :
  sign:(int -> Xmlac_xml.Tree.sign) -> Backend.t ->
  Xmlac_xpath.Ast.expr -> decision
(** Evaluates the query through the backend but reads effective signs
    through [sign] — the engine passes a CAM lookup here. *)

val request :
  Backend.t -> default:Rule.effect -> Xmlac_xpath.Ast.expr -> decision
(** [request_via] over the backend's own per-node sign reads;
    [default] is the policy's default semantics, needed to interpret
    unannotated nodes. *)

val request_rewritten :
  ?schema:Xmlac_xml.Schema_graph.t ->
  ?plan:Plan.t ->
  ?subject:string ->
  Backend.t ->
  Policy.t ->
  Xmlac_xpath.Ast.expr ->
  decision
(** The {e rewrite} lane: the request is compiled against the policy
    ({!Rewrite.compile} — [plan] short-circuits with a pre-rewritten
    policy plan, [subject] selects one role's projection) and both
    emitted plans are evaluated through the backend, so the decision
    reads no sign or bitmap at all — never-annotated stores answer
    correctly.  Blocked counts equal the materialized lane's exactly
    (the residue plan's answer {e is} the set of selected inaccessible
    nodes).  Crosses the [rewrite.compile] fault point before touching
    the backend, and the same per-node deadline checkpoints as
    {!request} on the granted answer.
    @raise Invalid_argument on an unknown role. *)

val request_string :
  Backend.t -> default:Rule.effect -> string -> decision
(** Parses then requests.
    @raise Invalid_argument on parse errors; the message names the
    offending expression and the position of the error. *)

val parse_or_fail : string -> Xmlac_xpath.Ast.expr
(** The parse step of {!request_string}, shared with the engine so
    every request path reports parse errors identically.
    @raise Invalid_argument with expression and position on error. *)

val is_granted : decision -> bool
val pp : Format.formatter -> decision -> unit
