(** The requester front-end (Section 4).

    Read-only XPath queries are answered with all-or-nothing
    semantics: if every node the query selects is accessible under the
    materialized annotations, the nodes are returned; if any selected
    node is inaccessible, the whole request is denied. *)

type decision =
  | Granted of int list  (** The selected node ids, ascending. *)
  | Denied of { blocked : int }
      (** At least one selected node is inaccessible; [blocked] counts
          them. *)

val request :
  Backend.t -> default:Rule.effect -> Xmlac_xpath.Ast.expr -> decision
(** [default] is the policy's default semantics, needed to interpret
    unannotated nodes. An empty answer is granted (vacuously). *)

val request_string :
  Backend.t -> default:Rule.effect -> string -> decision
(** Parses then requests. @raise Invalid_argument on parse errors. *)

val is_granted : decision -> bool
val pp : Format.formatter -> decision -> unit
