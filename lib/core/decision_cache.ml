type 'a entry = { epoch : int; value : 'a }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; may hold replaced keys *)
  on_evict : int -> unit;
  on_stale : int -> unit;
  mutable evictions : int;
  mutable stale_drops : int;
}

let default_capacity = 256

let create ?(capacity = default_capacity) ?(on_evict = ignore)
    ?(on_stale = ignore) () =
  if capacity < 1 then invalid_arg "Decision_cache.create: capacity < 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    order = Queue.create ();
    on_evict;
    on_stale;
    evictions = 0;
    stale_drops = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let evictions t = t.evictions
let stale_drops t = t.stale_drops

let find t ~epoch key =
  match Hashtbl.find_opt t.table key with
  | Some e when e.epoch = epoch -> Some e.value
  | Some _ ->
      (* A decision from a previous document/annotation state: dead
         weight under the current epoch — drop it eagerly so stale
         entries never crowd out live ones. *)
      Hashtbl.remove t.table key;
      t.stale_drops <- t.stale_drops + 1;
      t.on_stale 1;
      None
  | None -> None

(* Evict in insertion order until under capacity.  The queue may hold
   keys whose entry was since removed (stale-epoch eviction) — those
   are skipped for free. *)
let make_room t =
  let evicted = ref 0 in
  let rec go () =
    if Hashtbl.length t.table >= t.capacity then
      match Queue.take_opt t.order with
      | None -> ()  (* queue exhausted: table was filled by re-adds *)
      | Some key ->
          if Hashtbl.mem t.table key then begin
            Hashtbl.remove t.table key;
            incr evicted
          end;
          go ()
  in
  go ();
  if !evicted > 0 then begin
    t.evictions <- t.evictions + !evicted;
    t.on_evict !evicted
  end

let add t ~epoch key value =
  if not (Hashtbl.mem t.table key) then begin
    make_room t;
    Queue.add key t.order
  end;
  Hashtbl.replace t.table key { epoch; value }

let iter f t =
  Hashtbl.iter (fun key (e : 'a entry) -> f key ~epoch:e.epoch e.value) t.table

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order
