type 'a entry = { epoch : int; value : 'a }

type 'a t = {
  capacity : int;
  table : (string, 'a entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order; may hold replaced keys *)
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Decision_cache.create: capacity < 1";
  { capacity; table = Hashtbl.create (min capacity 64); order = Queue.create () }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let find t ~epoch key =
  match Hashtbl.find_opt t.table key with
  | Some e when e.epoch = epoch -> Some e.value
  | Some _ ->
      (* A decision from a previous document/annotation state: dead
         weight under the current epoch — drop it eagerly so stale
         entries never crowd out live ones. *)
      Hashtbl.remove t.table key;
      None
  | None -> None

(* Evict in insertion order until under capacity.  The queue may hold
   keys whose entry was since removed (stale-epoch eviction) — those
   are skipped for free. *)
let rec make_room t =
  if Hashtbl.length t.table >= t.capacity then
    match Queue.take_opt t.order with
    | None -> ()  (* queue exhausted: table was filled by re-adds *)
    | Some key ->
        Hashtbl.remove t.table key;
        make_room t

let add t ~epoch key value =
  if not (Hashtbl.mem t.table key) then begin
    make_room t;
    Queue.add key t.order
  end;
  Hashtbl.replace t.table key { epoch; value }

let clear t =
  Hashtbl.reset t.table;
  Queue.clear t.order
