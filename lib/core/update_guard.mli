(** Access control for update operations — the extension the paper
    leaves as future work (Section 8).

    A delete update is treated like a read request with all-or-nothing
    semantics over everything it would destroy: the update is permitted
    only when every node it selects {e and every node in their
    subtrees} is currently accessible.  The subtree closure prevents an
    update from deleting data its issuer is not even allowed to see. *)

type decision =
  | Permitted of { targets : int }
      (** Subtree roots the update would remove. *)
  | Refused of { blocked : int }
      (** Inaccessible nodes among the would-be-deleted. *)

val check_delete :
  Backend.t -> default:Rule.effect -> Xmlac_xpath.Ast.expr -> decision
(** Pure check; the document is not modified. *)

val guarded_delete :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Backend.t ->
  Depend.t ->
  update:Xmlac_xpath.Ast.expr ->
  (Reannotator.stats, decision) result
(** [check_delete], and on permission the update is applied with
    partial re-annotation; [Error] carries the refusal. *)

val pp : Format.formatter -> decision -> unit
