(** Full document annotation (Section 5.2, algorithm Annotate).

    Resets every node to the policy's default, evaluates the
    annotation query, and stamps its answer with the opposite sign.
    After [annotate], the backend's effective signs materialize
    [\[\[P\]\](T)] exactly. *)

type stats = {
  reset_default : Rule.effect;  (** The default sign applied first. *)
  marked : int;  (** Nodes stamped with the non-default sign. *)
  total : int;  (** Nodes in the store at annotation time. *)
}

val annotate : Backend.t -> Policy.t -> stats

val annotate_with_query : Backend.t -> Policy.t -> Annotation_query.t -> stats
(** Same, but with a pre-built (possibly restricted) annotation
    query — the reannotator's entry point. *)

val coverage : stats -> float
(** Fraction of nodes carrying the non-default sign, in [0, 1] — the
    paper's "doc coverage" axis of Figure 11. *)
