(** Full document annotation (Section 5.2, algorithm Annotate).

    Resets every node to the policy's default, evaluates the
    annotation plan, and stamps its answer with the opposite sign.
    After [annotate], the backend's effective signs materialize
    [\[\[P\]\](T)] exactly. *)

type stats = {
  reset_default : Rule.effect;  (** The default sign applied first. *)
  marked : int;  (** Nodes stamped with the non-default sign. *)
  total : int;  (** Nodes in the store at annotation time. *)
}

val annotate :
  ?schema:Xmlac_xml.Schema_graph.t -> ?rewrite:bool -> Backend.t -> Policy.t -> stats
(** Compiles the policy with {!Plan.of_policy}, runs the rewrite
    pipeline (on by default; [schema] enables the schema-aware
    passes), and annotates.  [~rewrite:false] evaluates the raw plan —
    the ablation baseline. *)

val annotate_with_plan : Backend.t -> Plan.t -> stats
(** Same, but with a pre-built (possibly rewritten or restricted)
    plan — the engine's cached-plan entry point. *)

val coverage : stats -> float
(** Fraction of nodes carrying the non-default sign, in [0, 1] — the
    paper's "doc coverage" axis of Figure 11. *)

(** {1 Multi-subject shared pass}

    One annotation pass materializes every role's accessibility as
    per-node role bitmaps: compile each role's projected policy
    ({!Policy.for_subject}), collapse answer-equivalent plans across
    roles ({!Plan.equiv}), evaluate each distinct plan once
    ({!Backend.t.eval_plans}), and fan each answer out to the bit of
    every role sharing it. *)

type subjects_stats = {
  roles : int;  (** Roles annotated (= policy role count). *)
  distinct_plans : int;  (** Plans actually evaluated after sharing. *)
  shared_plans : int;
      (** Role plans served by another role's evaluation
          ([roles - distinct_plans]). *)
  stamped : int;  (** Total per-role bit stamps applied. *)
  bits_total : int;  (** Nodes in the store at annotation time. *)
}

val compile_subjects :
  ?schema:Xmlac_xml.Schema_graph.t -> ?rewrite:bool -> Policy.t -> Plan.t list
(** Each role's plan in bit order, compiled and rewritten exactly as
    the single-plan path would compile {!Policy.for_subject}. *)

val share :
  ?schema:Xmlac_xml.Schema_graph.t ->
  Plan.t list ->
  (Plan.t * (int * bool) list) list
(** Groups a bit-ordered plan list by {!Plan.equiv}: each group is a
    representative plan plus the [(role bit, stamp value)] fan-out of
    every role whose plan it answers — [value] is [true] when that
    role's mark grants.  Group order is first appearance; members stay
    in bit order. *)

val annotate_subjects :
  ?schema:Xmlac_xml.Schema_graph.t ->
  ?rewrite:bool ->
  Backend.t ->
  Policy.t ->
  subjects_stats
(** Resets every bitmap to {!Policy.default_bits}, then runs the shared
    pass.  Afterwards the backend's effective bitmaps materialize every
    role's [\[\[P\]\](T)] exactly ({!Backend.accessible_ids_role}). *)
