(** Full document annotation (Section 5.2, algorithm Annotate).

    Resets every node to the policy's default, evaluates the
    annotation plan, and stamps its answer with the opposite sign.
    After [annotate], the backend's effective signs materialize
    [\[\[P\]\](T)] exactly. *)

type stats = {
  reset_default : Rule.effect;  (** The default sign applied first. *)
  marked : int;  (** Nodes stamped with the non-default sign. *)
  total : int;  (** Nodes in the store at annotation time. *)
}

val annotate :
  ?schema:Xmlac_xml.Schema_graph.t -> ?rewrite:bool -> Backend.t -> Policy.t -> stats
(** Compiles the policy with {!Plan.of_policy}, runs the rewrite
    pipeline (on by default; [schema] enables the schema-aware
    passes), and annotates.  [~rewrite:false] evaluates the raw plan —
    the ablation baseline. *)

val annotate_with_plan : Backend.t -> Plan.t -> stats
(** Same, but with a pre-built (possibly rewritten or restricted)
    plan — the engine's cached-plan entry point. *)

val coverage : stats -> float
(** Fraction of nodes carrying the non-default sign, in [0, 1] — the
    paper's "doc coverage" axis of Figure 11. *)
