(** Document updates on the native store.

    The paper's updates are "XPath expressions that specify the
    location of the nodes to be inserted or deleted" (Section 5.3);
    deletion removes the designated nodes together with their
    subtrees. *)

val delete : Xmlac_xml.Tree.t -> Xmlac_xpath.Ast.expr -> int
(** Deletes every node the expression selects (with its subtree);
    returns the number of subtree roots removed.  Selecting the
    document root raises [Invalid_argument] — a document cannot delete
    itself. *)

val insert :
  Xmlac_xml.Tree.t ->
  at:Xmlac_xpath.Ast.expr ->
  fragment:Xmlac_xml.Tree.t ->
  int
(** Grafts a copy of the fragment under every node selected by [at];
    returns the number of copies inserted.  Fresh universal ids are
    assigned to the copies. *)

val insert_nodes :
  Xmlac_xml.Tree.t ->
  at:Xmlac_xpath.Ast.expr ->
  fragment:Xmlac_xml.Tree.t ->
  Xmlac_xml.Tree.node list
(** Like {!insert}, returning the freshly grafted subtree roots — the
    engine mirrors exactly these nodes (same universal ids) into the
    relational stores. *)
