(** A miniature XQuery engine — exactly the fragment the paper runs
    against MonetDB/XQuery (Section 5.2):

    {[
      for $n in doc("xmlgen")((//patient union //patient/name union
                               //regular) except
                              (//patient[treatment] union
                               //patient[.//experimental]))
      return xmlac:annotate($n, "+")
    ]}

    Grammar:

    {[
      query   ::= flwor | source
      flwor   ::= 'for' '$'name 'in' source 'return' action
      action  ::= 'xmlac:annotate(' '$'name ',' '"' sign '"' ')'
                | '$'name
      source  ::= 'doc(' '"' docname '"' ')' '(' setexpr ')'
      setexpr ::= atom (('union' | 'except' | 'intersect') atom)*
      atom    ::= absolute-XPath | '(' setexpr ')' | '()'
    ]}

    [()] is the empty sequence — the union over zero rule scopes that
    degenerate policies compile to (e.g. a rule-less policy), so every
    generated annotation query round-trips through this parser.

    Set operators associate left with equal precedence (parenthesize,
    as the generated queries do).  This is what lets the output of
    [Xmlac_core.Annotation_query.to_xquery_string] be executed, not
    just displayed. *)

type action = Return | Annotate of Xmlac_xml.Tree.sign

type t = {
  doc_name : string;
  action : action;  (** [Return] for a plain node-set query. *)
}
(** Structural summary of a parsed query, for inspection. *)

type outcome =
  | Nodes of Xmlac_xml.Tree.node list
      (** Document order, for [Return] queries. *)
  | Annotated of int  (** Nodes whose sign was set. *)

val parse : string -> (t * (Xmlac_xml.Tree.t -> outcome), string) Stdlib.result
(** Parses a query; the returned closure evaluates it against the
    document bound to the query's [doc(...)] name. *)

val run : Store.t -> string -> (outcome, string) Stdlib.result
(** Parses and evaluates against the store ([doc("n")] looks up
    document [n]). *)

val run_exn : Store.t -> string -> outcome
(** @raise Invalid_argument on parse/lookup errors. *)
