module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath

type action = Return | Annotate of Tree.sign

type t = {
  doc_name : string;
  action : action;
}

type outcome =
  | Nodes of Tree.node list
  | Annotated of int

(* Set expressions over node sets, with XPath leaves.  [Empty] is the
   XQuery empty sequence [()], which the generated annotation queries
   use for the union over zero rule scopes. *)
type setexpr =
  | Empty
  | Path of Xp.Ast.expr
  | Union of setexpr * setexpr
  | Except of setexpr * setexpr
  | Intersect of setexpr * setexpr

exception Err of string

type state = { input : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Err m)) fmt

let len st = String.length st.input
let peek st = if st.pos >= len st then '\000' else st.input.[st.pos]

let skip_ws st =
  while
    st.pos < len st
    && (match st.input.[st.pos] with
       | ' ' | '\t' | '\n' | '\r' -> true
       | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let eat_keyword st kw =
  skip_ws st;
  let n = String.length kw in
  if st.pos + n <= len st && String.sub st.input st.pos n = kw then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let expect st kw = if not (eat_keyword st kw) then fail "expected %S" kw

let parse_string_literal st =
  skip_ws st;
  if peek st <> '"' then fail "expected a string literal";
  st.pos <- st.pos + 1;
  let start = st.pos in
  while st.pos < len st && peek st <> '"' do
    st.pos <- st.pos + 1
  done;
  if st.pos >= len st then fail "unterminated string literal";
  let s = String.sub st.input start (st.pos - start) in
  st.pos <- st.pos + 1;
  s

let parse_var st =
  skip_ws st;
  if peek st <> '$' then fail "expected a variable";
  st.pos <- st.pos + 1;
  let start = st.pos in
  while
    st.pos < len st
    && (match peek st with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
       | _ -> false)
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail "empty variable name";
  String.sub st.input start (st.pos - start)

(* An XPath atom runs until a token that cannot belong to the
   expression at depth 0: whitespace, ')' or ','. Brackets nest. *)
let parse_xpath_atom st =
  skip_ws st;
  let start = st.pos in
  let depth = ref 0 in
  let continue = ref true in
  while !continue && st.pos < len st do
    (match peek st with
    | '[' -> incr depth
    | ']' -> decr depth
    | '(' when !depth > 0 -> ()
    | ')' when !depth = 0 -> continue := false
    | (' ' | '\t' | '\n' | '\r' | ',') when !depth = 0 -> continue := false
    | _ -> ());
    if !continue then st.pos <- st.pos + 1
  done;
  let text = String.sub st.input start (st.pos - start) in
  if text = "" then fail "expected an XPath expression";
  match Xp.Parser.parse text with
  | Ok e -> e
  | Error e -> fail "bad XPath %S (%s)" text (Format.asprintf "%a" Xp.Parser.pp_error e)

let rec parse_setexpr st =
  let atom = parse_atom st in
  parse_ops st atom

and parse_atom st =
  skip_ws st;
  if peek st = '(' then begin
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = ')' then begin
      (* The empty sequence [()]. *)
      st.pos <- st.pos + 1;
      Empty
    end
    else begin
      let e = parse_setexpr st in
      expect st ")";
      e
    end
  end
  else Path (parse_xpath_atom st)

and parse_ops st acc =
  skip_ws st;
  if eat_keyword st "union" then parse_ops st (Union (acc, parse_atom st))
  else if eat_keyword st "except" then parse_ops st (Except (acc, parse_atom st))
  else if eat_keyword st "intersect" then
    parse_ops st (Intersect (acc, parse_atom st))
  else acc

let parse_source st =
  expect st "doc";
  expect st "(";
  let doc_name = parse_string_literal st in
  expect st ")";
  expect st "(";
  let e = parse_setexpr st in
  expect st ")";
  (doc_name, e)

(* Evaluation: node sets as id-keyed tables plus document order from a
   final filter pass. *)
let rec eval_set doc = function
  | Empty -> Hashtbl.create 1
  | Path e ->
      let set = Hashtbl.create 64 in
      List.iter
        (fun (n : Tree.node) -> Hashtbl.replace set n.Tree.id ())
        (Xp.Eval.eval doc e);
      set
  | Union (a, b) ->
      let sa = eval_set doc a and sb = eval_set doc b in
      Hashtbl.iter (fun id () -> Hashtbl.replace sa id ()) sb;
      sa
  | Except (a, b) ->
      let sa = eval_set doc a and sb = eval_set doc b in
      Hashtbl.iter (fun id () -> Hashtbl.remove sa id) sb;
      sa
  | Intersect (a, b) ->
      let sa = eval_set doc a and sb = eval_set doc b in
      let out = Hashtbl.create (Hashtbl.length sa) in
      Hashtbl.iter
        (fun id () -> if Hashtbl.mem sb id then Hashtbl.replace out id ())
        sa;
      out

let nodes_of_set doc set =
  List.filter (fun (n : Tree.node) -> Hashtbl.mem set n.Tree.id) (Tree.nodes doc)

let parse input =
  let st = { input; pos = 0 } in
  try
    skip_ws st;
    let summary, evaluate =
      if eat_keyword st "for" then begin
        let v = parse_var st in
        expect st "in";
        let doc_name, setexpr = parse_source st in
        expect st "return";
        skip_ws st;
        let action =
          if eat_keyword st "xmlac:annotate" then begin
            expect st "(";
            let v' = parse_var st in
            if v' <> v then fail "unbound variable $%s" v';
            expect st ",";
            let sign_text = parse_string_literal st in
            expect st ")";
            match Tree.sign_of_string sign_text with
            | Some s -> Annotate s
            | None -> fail "invalid sign %S" sign_text
          end
          else begin
            let v' = parse_var st in
            if v' <> v then fail "unbound variable $%s" v';
            Return
          end
        in
        ( { doc_name; action },
          fun doc ->
            let nodes = nodes_of_set doc (eval_set doc setexpr) in
            match action with
            | Return -> Nodes nodes
            | Annotate s ->
                List.iter (fun n -> Store.annotate doc n s) nodes;
                Annotated (List.length nodes) )
      end
      else begin
        let doc_name, setexpr = parse_source st in
        ( { doc_name; action = Return },
          fun doc -> Nodes (nodes_of_set doc (eval_set doc setexpr)) )
      end
    in
    skip_ws st;
    if st.pos <> len st then fail "trailing input at offset %d" st.pos;
    Ok (summary, evaluate)
  with Err m -> Error m

let run store input =
  match parse input with
  | Error _ as e -> e
  | Ok (summary, evaluate) -> (
      match Store.doc_opt store summary.doc_name with
      | None -> Error (Printf.sprintf "unknown document %S" summary.doc_name)
      | Some doc -> Ok (evaluate doc))

let run_exn store input =
  match run store input with
  | Ok r -> r
  | Error m -> invalid_arg ("Xquery.run: " ^ m)
