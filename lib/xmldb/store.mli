(** The native XML store.

    Plays the role of MonetDB/XQuery in the paper: documents are kept
    as trees, accessibility annotations live directly on the nodes (the
    [sign] attribute of Section 5.2), and queries are evaluated by the
    XPath engine.  The [xmlac:annotate] XQuery function of the paper
    becomes {!annotate}: insert-or-replace of the sign. *)

type t

val create : unit -> t

val add : t -> name:string -> Xmlac_xml.Tree.t -> unit
(** Registers a document. Raises [Invalid_argument] on duplicates. *)

val load_xml : t -> name:string -> string -> (Xmlac_xml.Tree.t, string) result
(** Parses XML text and registers the result — the native "loading"
    path measured in Figure 9. *)

val doc : t -> string -> Xmlac_xml.Tree.t
(** @raise Not_found for unregistered names. *)

val doc_opt : t -> string -> Xmlac_xml.Tree.t option
val remove : t -> string -> unit
val names : t -> string list

(** {1 Annotation} *)

val annotate :
  Xmlac_xml.Tree.t -> Xmlac_xml.Tree.node -> Xmlac_xml.Tree.sign -> unit
(** [xmlac:annotate($n, $val)] — sets or replaces the node's sign in
    the given document. *)

val annotate_all :
  Xmlac_xml.Tree.t -> Xmlac_xpath.Ast.expr -> Xmlac_xml.Tree.sign -> int
(** Annotates every node selected by the expression; returns how many
    were touched. *)

val clear_annotations : Xmlac_xml.Tree.t -> unit

(** {1 Queries} *)

val eval : t -> doc:string -> Xmlac_xpath.Ast.expr -> Xmlac_xml.Tree.node list

val eval_ids : t -> doc:string -> Xmlac_xpath.Ast.expr -> int list
(** Selected universal ids, ascending — directly comparable with
    [Xmlac_shrex.Translate.eval_ids]. *)
