module Tree = Xmlac_xml.Tree
module Xml_parser = Xmlac_xml.Xml_parser
module Eval = Xmlac_xpath.Eval

type t = {
  docs : (string, Tree.t) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () = { docs = Hashtbl.create 8; order = [] }

let add t ~name doc =
  if Hashtbl.mem t.docs name then
    invalid_arg ("Store.add: duplicate document " ^ name);
  Hashtbl.replace t.docs name doc;
  t.order <- name :: t.order

let load_xml t ~name text =
  match Xml_parser.parse text with
  | Ok doc ->
      add t ~name doc;
      Ok doc
  | Error e -> Error (Format.asprintf "%a" Xml_parser.pp_error e)

let doc t name = Hashtbl.find t.docs name
let doc_opt t name = Hashtbl.find_opt t.docs name

let remove t name =
  Hashtbl.remove t.docs name;
  t.order <- List.filter (fun n -> not (String.equal n name)) t.order

let names t = List.rev t.order

let annotate doc node sign = Tree.set_sign doc node (Some sign)

let annotate_all doc expr sign =
  let nodes = Eval.eval doc expr in
  List.iter (fun n -> annotate doc n sign) nodes;
  List.length nodes

let clear_annotations = Tree.clear_signs

let eval t ~doc:name expr = Eval.eval (doc t name) expr

let eval_ids t ~doc:name expr =
  List.sort Stdlib.compare
    (List.map (fun (n : Tree.node) -> n.Tree.id) (eval t ~doc:name expr))
