module Tree = Xmlac_xml.Tree
module Eval = Xmlac_xpath.Eval

let delete doc expr =
  let targets = Eval.eval doc expr in
  (* Deleting an ancestor first detaches its descendants, so skip any
     target no longer in the document. *)
  List.fold_left
    (fun count (n : Tree.node) ->
      if Tree.mem doc n then begin
        if Tree.parent n = None then
          invalid_arg "Update.delete: cannot delete the document root";
        Tree.delete doc n;
        count + 1
      end
      else count)
    0 targets

let insert_nodes doc ~at ~fragment =
  let targets = Eval.eval doc at in
  List.map (fun parent -> Tree.graft doc parent fragment) targets

let insert doc ~at ~fragment = List.length (insert_nodes doc ~at ~fragment)
