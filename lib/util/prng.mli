(** Deterministic pseudo-random number generation.

    All random data in the library (document generation, workload
    synthesis, benchmark inputs) flows through this module so that runs
    are reproducible bit-for-bit given a seed.  The generator is
    splitmix64, which is small, fast and statistically adequate for
    workload synthesis. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current
    state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    decorrelated from [t]'s continuation; used to hand substreams to
    subcomponents without sharing state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements of [xs]
    in random order. *)

val geometric : t -> float -> int
(** [geometric t p] samples the number of failures before the first
    success of a Bernoulli(p); used for skewed fan-outs. *)

val word : t -> int -> string
(** [word t n] is a lowercase pseudo-word of length [n]. *)

val words : t -> int -> string
(** [words t n] is [n] pseudo-words joined with spaces. *)
