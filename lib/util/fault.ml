exception Crash of string
exception Transient of string

let seed_env_var = "XMLAC_FAULT_SEED"

let env_seed () =
  match Sys.getenv_opt seed_env_var with
  | None -> None
  | Some s -> Int64.of_string_opt (String.trim s)

type trigger = After of int | Prob of float

(* The registry is process-global mutable state shared by every domain
   (worker domains cross snapshot fault points concurrently with the
   writer).  One mutex guards all of it; [point] computes its verdict
   under the lock and raises outside it, so an armed fault never
   propagates while the lock is held. *)
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* Armed state: counted triggers carry their remaining hits so [After n]
   fires exactly on the n-th hit after arming. *)
type armed = Count of int ref | P of float

let rng = ref (Prng.create ~seed:(Option.value (env_seed ()) ~default:1L))
let set_seed seed = with_lock (fun () -> rng := Prng.create ~seed)

(* name -> lifetime hit count; names are never forgotten, so tests can
   enumerate every point the workload crossed. *)
let registry : (string, int) Hashtbl.t = Hashtbl.create 64
let armed_points : (string, armed) Hashtbl.t = Hashtbl.create 16
let all_prob = ref None
let dead = ref None (* Some site once a trigger fired *)

(* Recoverable faults live in their own table: a transient trigger
   raises [Transient] without killing the registry, so the caller may
   retry — the serve layer's containment model. *)
let transient_points : (string, armed) Hashtbl.t = Hashtbl.create 16
let all_transient_prob = ref None
let transient_count = ref 0

let check_trigger ~what = function
  | After n ->
      if n < 1 then
        invalid_arg (Printf.sprintf "Fault.%s: After n needs n >= 1" what);
      Count (ref n)
  | Prob p ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg (Printf.sprintf "Fault.%s: Prob p needs 0 <= p <= 1" what);
      P p

let arm name trigger =
  let armed = check_trigger ~what:"arm" trigger in
  with_lock (fun () -> Hashtbl.replace armed_points name armed)

let arm_transient name trigger =
  let armed = check_trigger ~what:"arm_transient" trigger in
  with_lock (fun () -> Hashtbl.replace transient_points name armed)

let arm_all ~prob =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Fault.arm_all: prob must be in [0, 1]";
  with_lock (fun () -> all_prob := Some prob)

let arm_all_transient ~prob =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Fault.arm_all_transient: prob must be in [0, 1]";
  with_lock (fun () -> all_transient_prob := Some prob)

let disarm name =
  with_lock (fun () ->
      Hashtbl.remove armed_points name;
      Hashtbl.remove transient_points name)

let disarm_all_locked () =
  Hashtbl.reset armed_points;
  all_prob := None;
  Hashtbl.reset transient_points;
  all_transient_prob := None

let disarm_all () = with_lock disarm_all_locked

let killed () = with_lock (fun () -> !dead <> None)
let crash_site () = with_lock (fun () -> !dead)

(* The verdict [point] computes under the lock and acts on outside
   it.  Crash verdicts set [dead] while still locked, so concurrent
   crossings on other domains observe the killed process before the
   exception even propagates here. *)
type verdict = Ok_ | Crashed of string | Transiented of string

let point name =
  let verdict =
    with_lock (fun () ->
        match !dead with
        | Some site ->
            (* The process is dead: nothing past the crash site may
               run. *)
            Crashed site
        | None -> (
            Hashtbl.replace registry name
              (1 + Option.value (Hashtbl.find_opt registry name) ~default:0);
            let crash =
              match Hashtbl.find_opt armed_points name with
              | Some (Count r) ->
                  decr r;
                  !r <= 0
              | Some (P p) -> Prng.bernoulli !rng p
              | None -> (
                  match !all_prob with
                  | Some p -> Prng.bernoulli !rng p
                  | None -> false)
            in
            if crash then begin
              dead := Some name;
              Crashed name
            end
            else
              match Hashtbl.find_opt transient_points name with
              | Some (Count r) ->
                  decr r;
                  if !r <= 0 then begin
                    (* Counted transients are one-shot: the fault
                       clears itself, so a retry of the same operation
                       goes through — the recoverable half of the
                       fault model. *)
                    Hashtbl.remove transient_points name;
                    incr transient_count;
                    Transiented name
                  end
                  else Ok_
              | Some (P p) ->
                  if Prng.bernoulli !rng p then begin
                    incr transient_count;
                    Transiented name
                  end
                  else Ok_
              | None -> (
                  match !all_transient_prob with
                  | Some p when Prng.bernoulli !rng p ->
                      incr transient_count;
                      Transiented name
                  | _ -> Ok_)))
  in
  match verdict with
  | Ok_ -> ()
  | Crashed site -> raise (Crash site)
  | Transiented site -> raise (Transient site)

let recover () =
  with_lock (fun () ->
      dead := None;
      disarm_all_locked ())

let reset () =
  recover ();
  with_lock (fun () ->
      transient_count := 0;
      let names = Hashtbl.fold (fun name _ acc -> name :: acc) registry [] in
      List.iter (fun name -> Hashtbl.replace registry name 0) names)

let registered () =
  with_lock (fun () ->
      List.sort String.compare
        (Hashtbl.fold (fun name _ acc -> name :: acc) registry []))

let hits name =
  with_lock (fun () ->
      Option.value (Hashtbl.find_opt registry name) ~default:0)

let total_hits () =
  with_lock (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) registry 0)

let transient_fires () = with_lock (fun () -> !transient_count)
