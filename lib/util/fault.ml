exception Crash of string
exception Transient of string

let seed_env_var = "XMLAC_FAULT_SEED"

let env_seed () =
  match Sys.getenv_opt seed_env_var with
  | None -> None
  | Some s -> Int64.of_string_opt (String.trim s)

type trigger = After of int | Prob of float

(* Armed state: counted triggers carry their remaining hits so [After n]
   fires exactly on the n-th hit after arming. *)
type armed = Count of int ref | P of float

let rng = ref (Prng.create ~seed:(Option.value (env_seed ()) ~default:1L))
let set_seed seed = rng := Prng.create ~seed

(* name -> lifetime hit count; names are never forgotten, so tests can
   enumerate every point the workload crossed. *)
let registry : (string, int) Hashtbl.t = Hashtbl.create 64
let armed_points : (string, armed) Hashtbl.t = Hashtbl.create 16
let all_prob = ref None
let dead = ref None (* Some site once a trigger fired *)

(* Recoverable faults live in their own table: a transient trigger
   raises [Transient] without killing the registry, so the caller may
   retry — the serve layer's containment model. *)
let transient_points : (string, armed) Hashtbl.t = Hashtbl.create 16
let all_transient_prob = ref None
let transient_count = ref 0

let check_trigger ~what = function
  | After n ->
      if n < 1 then
        invalid_arg (Printf.sprintf "Fault.%s: After n needs n >= 1" what);
      Count (ref n)
  | Prob p ->
      if not (p >= 0.0 && p <= 1.0) then
        invalid_arg (Printf.sprintf "Fault.%s: Prob p needs 0 <= p <= 1" what);
      P p

let arm name trigger =
  Hashtbl.replace armed_points name (check_trigger ~what:"arm" trigger)

let arm_transient name trigger =
  Hashtbl.replace transient_points name
    (check_trigger ~what:"arm_transient" trigger)

let arm_all ~prob =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Fault.arm_all: prob must be in [0, 1]";
  all_prob := Some prob

let arm_all_transient ~prob =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Fault.arm_all_transient: prob must be in [0, 1]";
  all_transient_prob := Some prob

let disarm name =
  Hashtbl.remove armed_points name;
  Hashtbl.remove transient_points name

let disarm_all () =
  Hashtbl.reset armed_points;
  all_prob := None;
  Hashtbl.reset transient_points;
  all_transient_prob := None

let killed () = !dead <> None
let crash_site () = !dead

let fire name =
  dead := Some name;
  raise (Crash name)

let fire_transient name =
  incr transient_count;
  raise (Transient name)

let point name =
  (match !dead with
  | Some site ->
      (* The process is dead: nothing past the crash site may run. *)
      raise (Crash site)
  | None -> ());
  Hashtbl.replace registry name
    (1 + Option.value (Hashtbl.find_opt registry name) ~default:0);
  (match Hashtbl.find_opt armed_points name with
  | Some (Count r) ->
      decr r;
      if !r <= 0 then fire name
  | Some (P p) -> if Prng.bernoulli !rng p then fire name
  | None -> (
      match !all_prob with
      | Some p when Prng.bernoulli !rng p -> fire name
      | _ -> ()));
  match Hashtbl.find_opt transient_points name with
  | Some (Count r) ->
      decr r;
      if !r <= 0 then begin
        (* Counted transients are one-shot: the fault clears itself, so
           a retry of the same operation goes through — the recoverable
           half of the fault model. *)
        Hashtbl.remove transient_points name;
        fire_transient name
      end
  | Some (P p) -> if Prng.bernoulli !rng p then fire_transient name
  | None -> (
      match !all_transient_prob with
      | Some p when Prng.bernoulli !rng p -> fire_transient name
      | _ -> ())

let recover () =
  dead := None;
  disarm_all ()

let reset () =
  recover ();
  transient_count := 0;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) registry [] in
  List.iter (fun name -> Hashtbl.replace registry name 0) names

let registered () =
  List.sort String.compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) registry [])

let hits name = Option.value (Hashtbl.find_opt registry name) ~default:0
let total_hits () = Hashtbl.fold (fun _ n acc -> acc + n) registry 0
let transient_fires () = !transient_count
