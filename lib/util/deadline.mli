(** Cooperative per-call deadline budgets.

    The serving layer ({!Xmlac_serve.Serve}) promises every request a
    bounded worst case even when a backend misbehaves; since the
    evaluation pipeline is single-threaded, the only honest way to
    enforce that is cooperatively.  A caller installs a {e budget}
    around a unit of work with {!with_budget}; the hot loops of the
    request path ({!Xmlac_core.Requester.decide} per selected node,
    {!Xmlac_core.Cam.lookup} per walk) call {!checkpoint}, which is a
    single mutable-cell read when no budget is installed and raises
    {!Expired} once the budget runs out.

    Two currencies, usable together:

    - {e ticks} — a count of checkpoint crossings.  Deterministic, so
      the tests and the seeded soak harness use it to force timeouts
      at exactly reproducible places.
    - {e seconds} — wall clock against {!Timing.now_wall}, checked
      every few ticks to amortize the clock read.  What a real
      deployment sets.

    Budgets nest: an inner {!with_budget} shadows the outer one for
    its extent and the outer budget is restored on exit (normal or
    exceptional).  The installed budget is {e domain-local}
    ([Domain.DLS]): every worker domain in the serving pool carries
    its own ambient budget, so one reader's expiry never interrupts
    another's call — one domain, one active call. *)

exception Expired of string
(** Raised by {!checkpoint} once the active budget is exhausted,
    carrying the budget's label. *)

val with_budget :
  ?label:string -> ?ticks:int -> ?seconds:float -> (unit -> 'a) -> 'a
(** [with_budget ?ticks ?seconds f] runs [f] with a deadline budget
    installed.  With neither [ticks] nor [seconds], [f] runs with no
    budget at all (zero overhead, checkpoints are no-ops).  [label]
    (default ["deadline"]) names the budget in {!Expired}.
    @raise Invalid_argument when [ticks < 0] or [seconds < 0]. *)

val checkpoint : unit -> unit
(** The cooperative timeout check.  No-op without an active budget;
    otherwise consumes one tick and (periodically) compares the clock.
    @raise Expired when the budget is exhausted — and on every further
    checkpoint until the {!with_budget} extent unwinds. *)

val active : unit -> bool
(** Whether a budget is currently installed. *)

val remaining_ticks : unit -> int option
(** Ticks left in the active budget; [None] without an active budget
    or when the budget is wall-clock only. *)
