type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) t.dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    let x = t.data.(t.len) in
    t.data.(t.len) <- t.dummy;
    Some x
  end

let clear t =
  Array.fill t.data 0 t.len t.dummy;
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let map_to_list f t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (f t.data.(i) :: acc) in
  loop (t.len - 1) []

let to_list t = map_to_list Fun.id t

let to_array t = Array.sub t.data 0 t.len

let of_list ~dummy xs =
  let t = create ~dummy () in
  List.iter (push t) xs;
  t

let filter_in_place p t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let x = t.data.(i) in
    if p x then begin
      t.data.(!j) <- x;
      incr j
    end
  done;
  Array.fill t.data !j (t.len - !j) t.dummy;
  t.len <- !j
