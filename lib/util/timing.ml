(* [Sys.time] measures processor time, which for a single-threaded
   CPU-bound caller coincides with wall time.  Concurrent callers
   (the domain pool, the latency benches) must use [now_wall]:
   processor time aggregates across domains and would overstate
   per-request latency by the domain count. *)

let now () = Sys.time ()
let now_wall () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let time_n ~n f =
  assert (n >= 1);
  let t0 = now () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = now () in
  (t1 -. t0) /. float_of_int n

let repeat_until ~min_runs ~min_seconds f =
  let t0 = now () in
  let runs = ref 0 in
  while !runs < min_runs || now () -. t0 < min_seconds do
    ignore (Sys.opaque_identity (f ()));
    incr runs
  done;
  (now () -. t0) /. float_of_int !runs

let percentile samples ~p =
  if Array.length samples = 0 then invalid_arg "Timing.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Timing.percentile: p outside [0,100]";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  (* Nearest-rank on the sorted sample: deterministic and defined for
     tiny sample counts, which the walkthrough transcripts rely on. *)
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let pp_seconds ppf s =
  let abs = Float.abs s in
  if abs < 1e-6 then Format.fprintf ppf "%.3g ns" (s *. 1e9)
  else if abs < 1e-3 then Format.fprintf ppf "%.3g us" (s *. 1e6)
  else if abs < 1.0 then Format.fprintf ppf "%.3g ms" (s *. 1e3)
  else Format.fprintf ppf "%.3g s" s
