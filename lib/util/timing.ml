(* [Sys.time] measures processor time, which for this single-threaded
   CPU-bound library coincides with wall time and needs no extra
   dependency (Unix is not linked). *)

let now () = Sys.time ()

let time f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let time_n ~n f =
  assert (n >= 1);
  let t0 = now () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = now () in
  (t1 -. t0) /. float_of_int n

let repeat_until ~min_runs ~min_seconds f =
  let t0 = now () in
  let runs = ref 0 in
  while !runs < min_runs || now () -. t0 < min_seconds do
    ignore (Sys.opaque_identity (f ()));
    incr runs
  done;
  (now () -. t0) /. float_of_int !runs

let pp_seconds ppf s =
  let abs = Float.abs s in
  if abs < 1e-6 then Format.fprintf ppf "%.3g ns" (s *. 1e9)
  else if abs < 1e-3 then Format.fprintf ppf "%.3g us" (s *. 1e6)
  else if abs < 1.0 then Format.fprintf ppf "%.3g ms" (s *. 1e3)
  else Format.fprintf ppf "%.3g s" s
