(** Wall-clock measurement helpers for the benchmark harness.

    Every timing figure the repository reports — the Section 7
    reproductions in [bench/] (loading, response, annotation and
    re-annotation times of Figures 9-12), the [explain] stage trace,
    and the {!Metrics} stage timers — goes through [now]/[time] here,
    so the clock source and its resolution are decided in one place. *)

val now : unit -> float
(** Processor time in seconds.  Equals wall time only while the
    process is single-threaded and CPU-bound; concurrent measurements
    must use {!now_wall}. *)

val now_wall : unit -> float
(** Wall-clock time in seconds ([Unix.gettimeofday]).  The clock
    behind every concurrent latency figure: processor time aggregates
    across OCaml domains and would overstate per-request latency. *)

val percentile : float array -> p:float -> float
(** [percentile samples ~p] is the nearest-rank [p]-th percentile
    (0 <= [p] <= 100) of [samples], which is left unmodified.
    Raises [Invalid_argument] on an empty array. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)

val time_n : n:int -> (unit -> 'a) -> float
(** [time_n ~n f] runs [f] [n] times and returns the mean elapsed time
    per run, in seconds. [n] must be >= 1. *)

val repeat_until : min_runs:int -> min_seconds:float -> (unit -> 'a) -> float
(** Runs [f] at least [min_runs] times and until [min_seconds] of total
    runtime have elapsed, returning the mean time per run. *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-friendly duration: ns/us/ms/s with 3 significant digits. *)
