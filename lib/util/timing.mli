(** Wall-clock measurement helpers for the benchmark harness.

    Every timing figure the repository reports — the Section 7
    reproductions in [bench/] (loading, response, annotation and
    re-annotation times of Figures 9-12), the [explain] stage trace,
    and the {!Metrics} stage timers — goes through [now]/[time] here,
    so the clock source and its resolution are decided in one place. *)

val now : unit -> float
(** Monotonic time in seconds. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed wall
    time in seconds. *)

val time_n : n:int -> (unit -> 'a) -> float
(** [time_n ~n f] runs [f] [n] times and returns the mean elapsed time
    per run, in seconds. [n] must be >= 1. *)

val repeat_until : min_runs:int -> min_seconds:float -> (unit -> 'a) -> float
(** Runs [f] at least [min_runs] times and until [min_seconds] of total
    runtime have elapsed, returning the mean time per run. *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-friendly duration: ns/us/ms/s with 3 significant digits. *)
