(* Roaring-style compressed bitmap over non-negative ints.

   The value space is chunked by the high bits (key = v lsr 16); each
   chunk holds at most 65536 members and is stored in whichever of
   three container shapes is smallest for its population:

     Arr  — sorted array of low-16 values (sparse chunks),
     Bmp  — 8 KiB bit array (dense, irregular chunks),
     Run  — sorted (start, length) runs (dense, contiguous chunks).

   Binary operations normalize both sides of a chunk to the bit-array
   form, combine word-wise, then re-compact to the cheapest shape —
   simple, branch-free, and plenty fast for chunk counts in the tens.
   The structure is immutable: every operation returns a fresh value
   and never aliases mutable state with its inputs. *)

type container =
  | Arr of int array
  | Bmp of bytes
  | Run of (int * int) array

type t = (int * container) array (* sorted by chunk key, no empty chunks *)

let chunk_bits = 16
let chunk_size = 1 lsl chunk_bits (* 65536 *)
let bmp_bytes = chunk_size / 8 (* 8192 *)
let arr_max = 4096

let key v = v lsr chunk_bits
let low v = v land (chunk_size - 1)

let empty : t = [||]
let is_empty (t : t) = Array.length t = 0

(* --- container primitives ----------------------------------------- *)

let card_container = function
  | Arr a -> Array.length a
  | Run rs -> Array.fold_left (fun acc (_, len) -> acc + len) 0 rs
  | Bmp b ->
      let n = ref 0 in
      Bytes.iter
        (fun c ->
          let x = ref (Char.code c) in
          while !x <> 0 do
            x := !x land (!x - 1);
            incr n
          done)
        b;
      !n

let mem_container v = function
  | Arr a ->
      let rec bin lo hi =
        lo < hi
        &&
        let mid = (lo + hi) / 2 in
        let x = a.(mid) in
        if x = v then true else if x < v then bin (mid + 1) hi else bin lo mid
      in
      bin 0 (Array.length a)
  | Bmp b -> Char.code (Bytes.get b (v lsr 3)) land (1 lsl (v land 7)) <> 0
  | Run rs ->
      Array.exists (fun (start, len) -> v >= start && v < start + len) rs

let iter_container f base = function
  | Arr a -> Array.iter (fun v -> f (base + v)) a
  | Run rs ->
      Array.iter
        (fun (start, len) ->
          for v = start to start + len - 1 do
            f (base + v)
          done)
        rs
  | Bmp b ->
      for byte = 0 to bmp_bytes - 1 do
        let c = Char.code (Bytes.get b byte) in
        if c <> 0 then
          for bit = 0 to 7 do
            if c land (1 lsl bit) <> 0 then f (base + (byte * 8) + bit)
          done
      done

let to_bmp = function
  | Bmp b -> Bytes.copy b
  | c ->
      let b = Bytes.make bmp_bytes '\x00' in
      iter_container
        (fun v ->
          Bytes.set b (v lsr 3)
            (Char.chr (Char.code (Bytes.get b (v lsr 3)) lor (1 lsl (v land 7)))))
        0 c;
      b

(* Count maximal runs of consecutive set bits. *)
let run_count_of_bmp b =
  let runs = ref 0 and prev = ref false in
  for v = 0 to chunk_size - 1 do
    let set = Char.code (Bytes.get b (v lsr 3)) land (1 lsl (v land 7)) <> 0 in
    if set && not !prev then incr runs;
    prev := set
  done;
  !runs

(* Re-compact a bit array into the cheapest container; [None] when the
   chunk is empty.  Shape costs in words: Arr n -> n, Run m -> 2m,
   Bmp -> 1024. *)
let compact_bmp b =
  let card = card_container (Bmp b) in
  if card = 0 then None
  else
    let nruns = run_count_of_bmp b in
    let cost_arr = if card <= arr_max then card else max_int in
    let cost_run = 2 * nruns in
    let cost_bmp = bmp_bytes / 8 in
    if cost_run <= cost_arr && cost_run <= cost_bmp then begin
      let rs = Array.make nruns (0, 0) in
      let i = ref 0 and start = ref (-1) and prev = ref false in
      for v = 0 to chunk_size - 1 do
        let set =
          Char.code (Bytes.get b (v lsr 3)) land (1 lsl (v land 7)) <> 0
        in
        if set && not !prev then start := v;
        if (not set) && !prev then begin
          rs.(!i) <- (!start, v - !start);
          incr i
        end;
        prev := set
      done;
      if !prev then rs.(!i) <- (!start, chunk_size - !start);
      Some (Run rs)
    end
    else if cost_arr <= cost_bmp then begin
      let a = Array.make card 0 in
      let i = ref 0 in
      iter_container
        (fun v ->
          a.(!i) <- v;
          incr i)
        0 (Bmp b);
      Some (Arr a)
    end
    else Some (Bmp b)

(* --- construction -------------------------------------------------- *)

let of_sorted_unique l : t =
  (* Group consecutive values by chunk key; each group is already a
     sorted unique low-value list, so Arr (or its compaction) is
     immediate. *)
  let chunks = ref [] in
  let flush k vals =
    match vals with
    | [] -> ()
    | _ ->
        let a = Array.of_list (List.rev vals) in
        let c =
          if Array.length a <= arr_max then
            (* Small chunk: Arr, unless it is one dense run. *)
            let n = Array.length a in
            if n > 2 && a.(n - 1) - a.(0) = n - 1 then Run [| (a.(0), n) |]
            else Arr a
          else
            match compact_bmp (to_bmp (Arr a)) with
            | Some c -> c
            | None -> assert false
        in
        chunks := (k, c) :: !chunks
  in
  let rec go k vals = function
    | [] -> flush k vals
    | v :: rest ->
        if v < 0 then invalid_arg "Bitset: negative member";
        let kv = key v in
        if kv = k then go k (low v :: vals) rest
        else begin
          flush k vals;
          go kv [ low v ] rest
        end
  in
  (match l with
  | [] -> ()
  | v :: _ -> go (key (max v 0)) [] l);
  Array.of_list (List.rev !chunks)

let of_list l = of_sorted_unique (List.sort_uniq Stdlib.compare l)
let singleton v = of_list [ v ]

(* --- queries ------------------------------------------------------- *)

let find_chunk (t : t) k =
  let rec bin lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let ck, c = t.(mid) in
      if ck = k then Some c else if ck < k then bin (mid + 1) hi else bin lo mid
  in
  bin 0 (Array.length t)

let mem v (t : t) =
  v >= 0
  && match find_chunk t (key v) with
     | None -> false
     | Some c -> mem_container (low v) c

let cardinal (t : t) =
  Array.fold_left (fun acc (_, c) -> acc + card_container c) 0 t

let iter f (t : t) =
  Array.iter (fun (k, c) -> iter_container f (k * chunk_size) c) t

let fold f (t : t) acc =
  let acc = ref acc in
  iter (fun v -> acc := f v !acc) t;
  !acc

let to_list t = List.rev (fold (fun v acc -> v :: acc) t [])

let choose (t : t) =
  if is_empty t then None
  else
    let k, c = t.(0) in
    let r = ref None in
    (try
       iter_container
         (fun v ->
           r := Some v;
           raise Exit)
         (k * chunk_size) c
     with Exit -> ());
    !r

(* --- set algebra --------------------------------------------------- *)

let bmp_op f x y =
  let r = Bytes.make bmp_bytes '\x00' in
  for i = 0 to bmp_bytes - 1 do
    Bytes.set r i
      (Char.chr (f (Char.code (Bytes.get x i)) (Char.code (Bytes.get y i)) land 0xFF))
  done;
  r

(* Merge-walk over the two sorted chunk arrays.  [keep_left]/[keep_right]
   say whether an unmatched chunk survives (union/diff keep the left,
   union keeps the right, intersection keeps neither). *)
let merge ~keep_left ~keep_right ~combine (a : t) (b : t) : t =
  let out = ref [] in
  let push k = function None -> () | Some c -> out := (k, c) :: !out in
  let la = Array.length a and lb = Array.length b in
  let i = ref 0 and j = ref 0 in
  while !i < la || !j < lb do
    if !j >= lb || (!i < la && fst a.(!i) < fst b.(!j)) then begin
      let k, c = a.(!i) in
      if keep_left then push k (Some c);
      incr i
    end
    else if !i >= la || fst b.(!j) < fst a.(!i) then begin
      let k, c = b.(!j) in
      if keep_right then push k (Some c);
      incr j
    end
    else begin
      let k, ca = a.(!i) and _, cb = b.(!j) in
      push k (combine ca cb);
      incr i;
      incr j
    end
  done;
  Array.of_list (List.rev !out)

let union a b =
  merge ~keep_left:true ~keep_right:true
    ~combine:(fun ca cb -> compact_bmp (bmp_op ( lor ) (to_bmp ca) (to_bmp cb)))
    a b

let inter a b =
  merge ~keep_left:false ~keep_right:false
    ~combine:(fun ca cb -> compact_bmp (bmp_op ( land ) (to_bmp ca) (to_bmp cb)))
    a b

let diff a b =
  merge ~keep_left:true ~keep_right:false
    ~combine:(fun ca cb ->
      compact_bmp (bmp_op (fun x y -> x land lnot y) (to_bmp ca) (to_bmp cb)))
    a b

(* --- single-member update fast paths ------------------------------- *)

(* [add]/[remove] are the per-node stamp primitives of multi-role
   annotation (one call per node per role), so they must not pay the
   generic binary-op cost of expanding a chunk to an 8 KiB bit array
   and re-compacting.  Instead they patch the one affected container:
   sorted insert/delete for Arr, a bit flip for Bmp, run
   extension/splitting for Run.  Unchanged inputs are returned as-is —
   values are immutable, so sharing is safe (the merge walk already
   shares unmatched containers). *)

type update = Unchanged | Replaced of container | Emptied

let arr_insert_at a i v =
  let n = Array.length a in
  let out = Array.make (n + 1) 0 in
  Array.blit a 0 out 0 i;
  out.(i) <- v;
  Array.blit a i out (i + 1) (n - i);
  out

let arr_delete_at a i =
  let n = Array.length a in
  let out = Array.make (n - 1) 0 in
  Array.blit a 0 out 0 i;
  Array.blit a (i + 1) out i (n - 1 - i);
  out

let lower_bound a v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let bmp_nonempty b =
  let r = ref false in
  (try
     for i = 0 to bmp_bytes - 1 do
       if Bytes.get b i <> '\x00' then begin
         r := true;
         raise Exit
       end
     done
   with Exit -> ());
  !r

let add_container v = function
  | Arr a ->
      let i = lower_bound a v in
      if i < Array.length a && a.(i) = v then Unchanged
      else if Array.length a < arr_max then Replaced (Arr (arr_insert_at a i v))
      else
        (* Sparse shape overflows: densify once. *)
        let b = to_bmp (Arr a) in
        Bytes.set b (v lsr 3)
          (Char.chr (Char.code (Bytes.get b (v lsr 3)) lor (1 lsl (v land 7))));
        (match compact_bmp b with Some c -> Replaced c | None -> assert false)
  | Bmp b ->
      if Char.code (Bytes.get b (v lsr 3)) land (1 lsl (v land 7)) <> 0 then
        Unchanged
      else begin
        let b = Bytes.copy b in
        Bytes.set b (v lsr 3)
          (Char.chr (Char.code (Bytes.get b (v lsr 3)) lor (1 lsl (v land 7))));
        Replaced (Bmp b)
      end
  | Run rs ->
      if mem_container v (Run rs) then Unchanged
      else begin
        (* Extend an adjacent run (coalescing when the gap closes) or
           insert a fresh length-1 run, keeping starts sorted. *)
        let out = ref [] and placed = ref false in
        let push (s, l) =
          match !out with
          | (ps, pl) :: rest when ps + pl = s -> out := (ps, pl + l) :: rest
          | _ -> out := (s, l) :: !out
        in
        Array.iter
          (fun (s, l) ->
            if (not !placed) && v < s then begin
              push (v, 1);
              placed := true
            end;
            push (s, l))
          rs;
        if not !placed then push (v, 1);
        Replaced (Run (Array.of_list (List.rev !out)))
      end

let remove_container v = function
  | Arr a ->
      let i = lower_bound a v in
      if i >= Array.length a || a.(i) <> v then Unchanged
      else if Array.length a = 1 then Emptied
      else Replaced (Arr (arr_delete_at a i))
  | Bmp b ->
      if Char.code (Bytes.get b (v lsr 3)) land (1 lsl (v land 7)) = 0 then
        Unchanged
      else begin
        let b = Bytes.copy b in
        Bytes.set b (v lsr 3)
          (Char.chr
             (Char.code (Bytes.get b (v lsr 3)) land lnot (1 lsl (v land 7))));
        if bmp_nonempty b then Replaced (Bmp b) else Emptied
      end
  | Run rs ->
      if not (mem_container v (Run rs)) then Unchanged
      else begin
        let out = ref [] in
        Array.iter
          (fun (s, l) ->
            if v < s || v >= s + l then out := (s, l) :: !out
            else begin
              (* Shrink or split the run around [v]. *)
              if v > s then out := (s, v - s) :: !out;
              if v < s + l - 1 then out := (v + 1, s + l - 1 - v) :: !out
            end)
          rs;
        match List.rev !out with
        | [] -> Emptied
        | runs -> Replaced (Run (Array.of_list runs))
      end

let chunk_lower_bound (t : t) k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst t.(mid) < k then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t)

let add v (t : t) =
  if v < 0 then invalid_arg "Bitset: negative member";
  let k = key v and lv = low v in
  let n = Array.length t in
  let i = chunk_lower_bound t k in
  if i < n && fst t.(i) = k then
    match add_container lv (snd t.(i)) with
    | Unchanged -> t
    | Replaced c ->
        let out = Array.copy t in
        out.(i) <- (k, c);
        out
    | Emptied -> assert false
  else begin
    let out = Array.make (n + 1) (k, Arr [| lv |]) in
    Array.blit t 0 out 0 i;
    Array.blit t i out (i + 1) (n - i);
    out
  end

let remove v (t : t) =
  if v < 0 then invalid_arg "Bitset: negative member";
  let k = key v and lv = low v in
  let n = Array.length t in
  let i = chunk_lower_bound t k in
  if i >= n || fst t.(i) <> k then t
  else
    match remove_container lv (snd t.(i)) with
    | Unchanged -> t
    | Replaced c ->
        let out = Array.copy t in
        out.(i) <- (k, c);
        out
    | Emptied ->
        let out = Array.make (n - 1) (0, Arr [||]) in
        Array.blit t 0 out 0 i;
        Array.blit t (i + 1) out i (n - 1 - i);
        out

let equal (a : t) (b : t) =
  (* Containers are not canonical across construction paths (Arr vs Run
     for the same members), so compare by membership via diff. *)
  cardinal a = cardinal b && is_empty (diff a b)

let subset a b = is_empty (diff a b)

(* --- memory accounting --------------------------------------------- *)

(* Approximate heap bytes of the compressed representation: container
   payloads only, one word per Arr member, two per Run, 8 KiB per Bmp,
   plus 3 words of per-chunk bookkeeping. *)
let memory_bytes (t : t) =
  let w = Sys.word_size / 8 in
  Array.fold_left
    (fun acc (_, c) ->
      acc + (3 * w)
      +
      match c with
      | Arr a -> Array.length a * w
      | Run rs -> 2 * Array.length rs * w
      | Bmp _ -> bmp_bytes)
    0 t

(* --- serialization ------------------------------------------------- *)

(* Printable, self-validating wire form for WAL records and the
   relational bits column:

     RB1|<chunks>            e.g.  RB1|0:A0003.0005|1:R0000+0010

   per chunk: hex key, ':', shape tag, payload — Arr values separated
   by '.', Run (start+length) pairs by '.', Bmp as raw hex.  All
   numbers are 4-digit lowercase hex.  Deserialization re-validates
   ordering and bounds and fails loudly on any deviation. *)

let hex4 v = Printf.sprintf "%04x" v

let to_string (t : t) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "RB1";
  Array.iter
    (fun (k, c) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (Printf.sprintf "%x:" k);
      match c with
      | Arr a ->
          Buffer.add_char buf 'A';
          Array.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char buf '.';
              Buffer.add_string buf (hex4 v))
            a
      | Run rs ->
          Buffer.add_char buf 'R';
          Array.iteri
            (fun i (s, len) ->
              if i > 0 then Buffer.add_char buf '.';
              Buffer.add_string buf (hex4 s);
              Buffer.add_char buf '+';
              Buffer.add_string buf (hex4 len))
            rs
      | Bmp b ->
          Buffer.add_char buf 'B';
          Bytes.iter
            (fun ch -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code ch)))
            b)
    t;
  Buffer.contents buf

let corrupt fmt =
  Printf.ksprintf (fun m -> failwith ("Bitset.of_string: corrupt bitmap: " ^ m)) fmt

let parse_hex what s =
  match int_of_string_opt ("0x" ^ s) with
  | Some v when v >= 0 -> v
  | _ -> corrupt "bad %s %S" what s

let parse_chunk part =
  match String.index_opt part ':' with
  | None -> corrupt "chunk %S lacks a key" part
  | Some i ->
      let k = parse_hex "chunk key" (String.sub part 0 i) in
      let body = String.sub part (i + 1) (String.length part - i - 1) in
      if body = "" then corrupt "chunk %x has no shape" k;
      let payload = String.sub body 1 (String.length body - 1) in
      let container =
        match body.[0] with
        | 'A' ->
            let vals =
              List.map (parse_hex "member") (String.split_on_char '.' payload)
            in
            List.iter
              (fun v -> if v >= chunk_size then corrupt "member %x overflows" v)
              vals;
            let rec sorted = function
              | a :: (b :: _ as rest) ->
                  if a >= b then corrupt "unsorted array chunk" else sorted rest
              | _ -> ()
            in
            sorted vals;
            if vals = [] then corrupt "empty array chunk";
            Arr (Array.of_list vals)
        | 'R' ->
            let runs =
              List.map
                (fun r ->
                  match String.split_on_char '+' r with
                  | [ s; l ] ->
                      let s = parse_hex "run start" s
                      and l = parse_hex "run length" l in
                      if l < 1 || s + l > chunk_size then
                        corrupt "run %x+%x out of bounds" s l;
                      (s, l)
                  | _ -> corrupt "bad run %S" r)
                (String.split_on_char '.' payload)
            in
            let rec disjoint = function
              | (s1, l1) :: ((s2, _) :: _ as rest) ->
                  if s1 + l1 >= s2 then corrupt "overlapping runs"
                  else disjoint rest
              | _ -> ()
            in
            disjoint runs;
            if runs = [] then corrupt "empty run chunk";
            Run (Array.of_list runs)
        | 'B' ->
            if String.length payload <> 2 * bmp_bytes then
              corrupt "bitmap chunk has %d hex digits" (String.length payload);
            let b = Bytes.make bmp_bytes '\x00' in
            for i = 0 to bmp_bytes - 1 do
              Bytes.set b i
                (Char.chr (parse_hex "bitmap byte" (String.sub payload (2 * i) 2)))
            done;
            if card_container (Bmp b) = 0 then corrupt "empty bitmap chunk";
            Bmp b
        | c -> corrupt "unknown shape %C" c
      in
      (k, container)

let of_string s =
  match String.split_on_char '|' s with
  | magic :: chunks ->
      if magic <> "RB1" then corrupt "bad magic %S" magic;
      let parsed = List.map parse_chunk chunks in
      let rec keys_sorted = function
        | (k1, _) :: ((k2, _) :: _ as rest) ->
            if k1 >= k2 then corrupt "chunk keys out of order"
            else keys_sorted rest
        | _ -> ()
      in
      keys_sorted parsed;
      (Array.of_list parsed : t)
  | [] -> corrupt "empty input"

(* --- printing ------------------------------------------------------ *)

let pp ppf t =
  let n = cardinal t in
  if n <= 16 then
    Format.fprintf ppf "{%s}"
      (String.concat "," (List.map string_of_int (to_list t)))
  else Format.fprintf ppf "{%d members, %d bytes}" n (memory_bytes t)
