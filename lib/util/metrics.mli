(** Lightweight named counters and per-stage timers.

    The requester fast lane (Section 4 of the paper, plus the CAM and
    decision-cache layers this implementation adds on top) is only
    trustworthy when it is observable: every cache hit, CAM lookup and
    fallback rebuild is counted here, and every pipeline stage can be
    timed.  A registry is a plain value — the engine owns one per
    instance, benches and the CLI create their own — so counters never
    leak between two systems living in one process.

    All operations are O(1) hash-table updates; a counter that was
    never touched reads as zero.

    A registry is safe to share across OCaml domains: a private mutex
    guards the tables, so snapshot readers on worker domains can bump
    counters while the writer domain runs its stage timers.  Stage
    re-entrancy is tracked per registry (not per domain) — stage
    timers are meaningful on the single writer path, counters
    everywhere. *)

type t
(** A mutable registry of counters and stage timers. *)

val stale_snapshot_denials : string
(** The canonical counter name (["serve.stale_snapshot_denials"]) for
    degraded requests answered with a blanket denial because the
    pinned snapshot's epoch no longer matches the committed
    [sign_epoch].  Incremented by [Serve], surfaced by
    [xmlacctl explain --request] and [xmlacctl health]. *)

val repl_stale_denials : string
(** The canonical counter name (["repl.stale_denials"]) for follower
    reads blanket-denied fail-closed because replication lag exceeded
    the configured epoch threshold (or the follower was marked
    divergent).  Incremented by [Xmlac_replicate], surfaced by
    [xmlacctl replicate] / [health] / [explain --request]. *)

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
(** Add one to a named counter, creating it at zero first if needed. *)

val add : t -> string -> int -> unit
(** Add an arbitrary (non-negative) amount to a named counter. *)

val counter : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Stage timers} *)

val time : t -> string -> (unit -> 'a) -> 'a
(** [time m stage f] runs [f], accumulating its wall-clock time and a
    call count under [stage].  Re-entrant uses of the same stage nest
    without double counting the outer span (the inner span is part of
    the outer one and only the outer is recorded). *)

val timings : t -> (string * float * int) list
(** All stages as [(name, total_seconds, calls)], sorted by name. *)

(** {1 Reporting} *)

val hit_rate : t -> hits:string -> misses:string -> float
(** [hits / (hits + misses)], or 0 when both are zero. *)

val reset : t -> unit
(** Zero every counter and timer. *)

val pp : Format.formatter -> t -> unit
(** Tabular dump: counters first, then stages with mean time per
    call.  Stable order, so safe for golden-output tests when the
    timing columns are filtered out. *)
