type align = Left | Right

type row = Cells of string list | Rule

type t = {
  headers : string list;
  ncols : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~headers =
  let ncols = List.length headers in
  { headers; ncols; aligns = List.map (fun _ -> Right) headers; rows = [] }

let set_align t aligns =
  if List.length aligns <> t.ncols then
    invalid_arg "Tabular.set_align: arity mismatch";
  t.aligns <- aligns

let add_row t cells =
  let n = List.length cells in
  if n > t.ncols then invalid_arg "Tabular.add_row: too many cells";
  let cells =
    if n = t.ncols then cells
    else cells @ List.init (t.ncols - n) (fun _ -> "")
  in
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Rule -> ()
    | Cells cs ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs
  in
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells cs =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i (c, a) ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a widths.(i) c))
      (List.map2 (fun c a -> (c, a)) cs t.aligns);
    Buffer.add_string buf " |\n"
  in
  let emit_rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Rule -> emit_rule () | Cells cs -> emit_cells cs) rows;
  emit_rule ();
  Buffer.contents buf

let print t = print_string (render t)
