(** Plain-text table rendering for benchmark and report output.

    The paper presents its evaluation as tables and figures (Tables
    3 and 5, Figures 9-12); the [bench/] reproductions print their
    counterparts through this module so every experiment reports in
    one aligned, diff-friendly format. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with the given column headers; alignment defaults to
    [Right] for every column. *)

val set_align : t -> align list -> unit
(** Per-column alignment; the list must match the header count. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header count are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between the surrounding rows. *)

val render : t -> string
(** The table as a string, newline-terminated. *)

val print : t -> unit
(** [render] to stdout. *)
