type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = next_int64 t in
  { state = mix s }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits so the Int64 -> int conversion cannot wrap to a
     negative value on 64-bit platforms (OCaml ints are 63-bit). *)
  let r =
    Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL)
  in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, as in the standard doubles-from-bits recipe *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_list t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  let k = min k (Array.length arr) in
  Array.to_list (Array.sub arr 0 k)

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  let rec loop n = if bernoulli t p then n else loop (n + 1) in
  loop 0

let word t n =
  String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))

let words t n =
  let rec loop acc i =
    if i = 0 then String.concat " " (List.rev acc)
    else loop (word t (int_in t 3 9) :: acc) (i - 1)
  in
  loop [] n
