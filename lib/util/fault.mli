(** Deterministic fault injection.

    Crash-safety claims are only as good as the crashes they were
    tested against.  This module gives the whole system one
    seed-addressable registry of {e fault points}: a mutating code path
    calls {!point} with a stable name ("wal.append", "row.set_sign",
    "cam.repair", ...), which is a no-op in production but — when the
    point is {e armed} — raises {!Crash} there, simulating the process
    dying mid-operation.  Tests and the [exp_recovery] bench arm points
    with counted triggers (die on the [n]-th hit, which reaches the
    middle of a multi-row sign write) or probabilistic ones (die with
    probability [p], PRNG-seeded so a failing run is replayable from
    its seed).

    After a crash fires, the registry is {e killed}: durable appends
    must refuse to proceed ({!killed} is checked by [Wal.log]) and
    every further {!point} call re-raises, so a test cannot silently
    write past its own kill.  [Engine.recover] — the simulated process
    restart — calls {!recover} to clear the flag and disarm all
    triggers before repairing the stores.

    The state is global (one "process", one crash), which is exactly
    the model being simulated; tests that arm faults must
    {!recover}/{!reset} between cases. *)

exception Crash of string
(** Raised by {!point}, carrying the fault point's name. *)

val seed_env_var : string
(** ["XMLAC_FAULT_SEED"] — read once at startup; when set, seeds the
    probabilistic triggers (the CI fault-matrix job sets it). *)

val env_seed : unit -> int64 option
(** The parsed value of {!seed_env_var}, if present and numeric. *)

val set_seed : int64 -> unit
(** Reseed the probabilistic-trigger PRNG; equal seeds give equal
    crash schedules for equal [point] call sequences. *)

type trigger =
  | After of int  (** Crash on the [n]-th hit of the point (1-based). *)
  | Prob of float  (** Crash each hit with probability [p]. *)

val arm : string -> trigger -> unit
(** Arm one named point.  Re-arming replaces the previous trigger. *)

val arm_all : prob:float -> unit
(** Arm {e every} point — including ones not yet registered — with a
    probabilistic trigger; individually armed points keep their own. *)

val disarm : string -> unit
val disarm_all : unit -> unit
(** Also clears the {!arm_all} probability. *)

val point : string -> unit
(** Registers the point's name and counts the hit.  Raises {!Crash}
    when the point's trigger fires, or — once {!killed} — immediately,
    naming the original crash site. *)

val killed : unit -> bool
(** A crash has fired and {!recover} has not yet run. *)

val crash_site : unit -> string option
(** Name of the point whose trigger fired, while {!killed}. *)

val recover : unit -> unit
(** The simulated restart: clears the killed flag and disarms every
    trigger (registry and hit counts survive, like a process
    restarting over the same binary). *)

val reset : unit -> unit
(** {!recover} plus zeroing all hit counters; point names stay
    registered so coverage enumeration survives. *)

val registered : unit -> string list
(** Every name ever passed to {!point}, sorted — the coverage
    enumeration the fault-matrix tests iterate over. *)

val hits : string -> int
(** Times the named point was passed (0 if never). *)

val total_hits : unit -> int
