(** Deterministic fault injection.

    Crash-safety claims are only as good as the crashes they were
    tested against.  This module gives the whole system one
    seed-addressable registry of {e fault points}: a mutating code path
    calls {!point} with a stable name ("wal.append", "row.set_sign",
    "cam.repair", ...), which is a no-op in production but — when the
    point is {e armed} — raises {!Crash} there, simulating the process
    dying mid-operation.  Tests and the [exp_recovery] bench arm points
    with counted triggers (die on the [n]-th hit, which reaches the
    middle of a multi-row sign write) or probabilistic ones (die with
    probability [p], PRNG-seeded so a failing run is replayable from
    its seed).

    After a crash fires, the registry is {e killed}: durable appends
    must refuse to proceed ({!killed} is checked by [Wal.log]) and
    every further {!point} call re-raises, so a test cannot silently
    write past its own kill.  [Engine.recover] — the simulated process
    restart — calls {!recover} to clear the flag and disarm all
    triggers before repairing the stores.

    Besides crashes the registry models {e recoverable} faults: a
    transient trigger ({!arm_transient}, {!arm_all_transient}) makes
    {!point} raise {!Transient} without killing the process — the I/O
    hiccup, lock timeout or dropped connection class of failure the
    serving layer ({!Xmlac_serve.Serve}) retries with backoff and
    feeds into its circuit breakers.  Counted transients are one-shot
    (the fault clears itself once fired), so a bounded retry
    deterministically succeeds; probabilistic transients persist until
    disarmed.

    The state is global (one "process", one crash), which is exactly
    the model being simulated; tests that arm faults must
    {!recover}/{!reset} between cases.  A private mutex makes every
    operation atomic across OCaml domains — a crash trigger fired on
    one domain is observed as a killed process by every other domain's
    next {!point} crossing — and {!point} raises outside the lock, so
    an armed fault never propagates with the lock held. *)

exception Crash of string
(** Raised by {!point}, carrying the fault point's name. *)

exception Transient of string
(** Raised by {!point} when a {e transient} trigger fires, carrying the
    fault point's name.  The registry is {e not} killed: the caller may
    retry the failed operation. *)

val seed_env_var : string
(** ["XMLAC_FAULT_SEED"] — read once at startup; when set, seeds the
    probabilistic triggers (the CI fault-matrix job sets it). *)

val env_seed : unit -> int64 option
(** The parsed value of {!seed_env_var}, if present and numeric. *)

val set_seed : int64 -> unit
(** Reseed the probabilistic-trigger PRNG; equal seeds give equal
    crash schedules for equal [point] call sequences. *)

type trigger =
  | After of int  (** Crash on the [n]-th hit of the point (1-based). *)
  | Prob of float  (** Crash each hit with probability [p]. *)

val arm : string -> trigger -> unit
(** Arm one named point.  Re-arming replaces the previous trigger. *)

val arm_all : prob:float -> unit
(** Arm {e every} point — including ones not yet registered — with a
    probabilistic trigger; individually armed points keep their own. *)

val arm_transient : string -> trigger -> unit
(** Arm one named point with a {e recoverable} trigger: when it fires,
    {!point} raises {!Transient} and the process survives.  A counted
    transient ([After n]) fires once and disarms itself; a
    probabilistic one fires independently on every hit.  Crash and
    transient arms on the same point coexist (the crash trigger is
    checked first). *)

val arm_all_transient : prob:float -> unit
(** Arm every point with a probabilistic transient trigger;
    individually armed transients keep their own. *)

val disarm : string -> unit
(** Clears both the crash and the transient arm of the point. *)

val disarm_all : unit -> unit
(** Also clears the {!arm_all} and {!arm_all_transient}
    probabilities. *)

val point : string -> unit
(** Registers the point's name and counts the hit.  Raises {!Crash}
    when the point's crash trigger fires, or — once {!killed} —
    immediately, naming the original crash site; raises {!Transient}
    when a transient trigger fires. *)

val killed : unit -> bool
(** A crash has fired and {!recover} has not yet run. *)

val crash_site : unit -> string option
(** Name of the point whose trigger fired, while {!killed}. *)

val recover : unit -> unit
(** The simulated restart: clears the killed flag and disarms every
    trigger (registry and hit counts survive, like a process
    restarting over the same binary). *)

val reset : unit -> unit
(** {!recover} plus zeroing all hit counters; point names stay
    registered so coverage enumeration survives. *)

val registered : unit -> string list
(** Every name ever passed to {!point}, sorted — the coverage
    enumeration the fault-matrix tests iterate over. *)

val hits : string -> int
(** Times the named point was passed (0 if never). *)

val total_hits : unit -> int

val transient_fires : unit -> int
(** Transient faults raised since the last {!reset} — the injected
    error count the resilience bench reports alongside its latency
    figures. *)
