type stage = {
  mutable total : float;  (* seconds, outermost spans only *)
  mutable calls : int;
  mutable depth : int;  (* re-entrancy guard *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  stages : (string, stage) Hashtbl.t;
  lock : Mutex.t;
      (* Guards both tables and every stage/counter cell.  Snapshot
         readers on worker domains bump counters concurrently with the
         writer domain's stage timers; unsynchronized Hashtbl growth
         would corrupt the buckets. *)
}

let stale_snapshot_denials = "serve.stale_snapshot_denials"
let repl_stale_denials = "repl.stale_denials"

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let create () =
  { counters = Hashtbl.create 16; stages = Hashtbl.create 8;
    lock = Mutex.create () }

(* Callers hold [t.lock]. *)
let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let add t name n =
  with_lock t (fun () ->
      let r = counter_ref t name in
      r := !r + n)

let incr t name = add t name 1

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let counters t =
  with_lock t (fun () ->
      List.sort compare
        (Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []))

(* Callers hold [t.lock]. *)
let stage_ref t name =
  match Hashtbl.find_opt t.stages name with
  | Some s -> s
  | None ->
      let s = { total = 0.0; calls = 0; depth = 0 } in
      Hashtbl.replace t.stages name s;
      s

let time t name f =
  (* The depth guard is per registry, not per domain: stage timers are
     only meaningful on the single writer path, so concurrent [time]
     on one stage would fold the spans together (safely — the lock
     keeps the cells consistent — just not per-domain). *)
  let s, outer =
    with_lock t (fun () ->
        let s = stage_ref t name in
        s.depth <- s.depth + 1;
        (s, s.depth = 1))
  in
  if not outer then
    (* Nested span of the same stage: already covered by the outer
       one; count the call but not the time. *)
    Fun.protect
      ~finally:(fun () ->
        with_lock t (fun () ->
            s.calls <- s.calls + 1;
            s.depth <- s.depth - 1))
      f
  else
    let start = Timing.now () in
    Fun.protect
      ~finally:(fun () ->
        let elapsed = Timing.now () -. start in
        with_lock t (fun () ->
            s.total <- s.total +. elapsed;
            s.calls <- s.calls + 1;
            s.depth <- s.depth - 1))
      f

let timings t =
  with_lock t (fun () ->
      List.sort compare
        (Hashtbl.fold
           (fun name s acc -> (name, s.total, s.calls) :: acc)
           t.stages []))

let hit_rate t ~hits ~misses =
  let h = counter t hits and m = counter t misses in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let reset t =
  with_lock t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.stages)

let pp ppf t =
  let counters = counters t and timings = timings t in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-28s %10d@," name v)
    counters;
  List.iter
    (fun (name, total, calls) ->
      let mean = if calls = 0 then 0.0 else total /. float_of_int calls in
      Format.fprintf ppf "%-28s %10d call(s)  total %a  mean %a@," name calls
        Timing.pp_seconds total Timing.pp_seconds mean)
    timings;
  Format.fprintf ppf "@]"
