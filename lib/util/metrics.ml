type stage = {
  mutable total : float;  (* seconds, outermost spans only *)
  mutable calls : int;
  mutable depth : int;  (* re-entrancy guard *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  stages : (string, stage) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; stages = Hashtbl.create 8 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters name r;
      r

let add t name n = counter_ref t name := !(counter_ref t name) + n
let incr t name = add t name 1
let counter t name = match Hashtbl.find_opt t.counters name with
  | Some r -> !r
  | None -> 0

let counters t =
  List.sort compare
    (Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters [])

let stage_ref t name =
  match Hashtbl.find_opt t.stages name with
  | Some s -> s
  | None ->
      let s = { total = 0.0; calls = 0; depth = 0 } in
      Hashtbl.replace t.stages name s;
      s

let time t name f =
  let s = stage_ref t name in
  s.depth <- s.depth + 1;
  if s.depth > 1 then
    (* Nested span of the same stage: already covered by the outer
       one; count the call but not the time. *)
    Fun.protect ~finally:(fun () -> s.depth <- s.depth - 1) (fun () ->
        s.calls <- s.calls + 1;
        f ())
  else
    let start = Timing.now () in
    Fun.protect
      ~finally:(fun () ->
        s.total <- s.total +. (Timing.now () -. start);
        s.calls <- s.calls + 1;
        s.depth <- s.depth - 1)
      f

let timings t =
  List.sort compare
    (Hashtbl.fold
       (fun name s acc -> (name, s.total, s.calls) :: acc)
       t.stages [])

let hit_rate t ~hits ~misses =
  let h = counter t hits and m = counter t misses in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.stages

let pp ppf t =
  let counters = counters t and timings = timings t in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-28s %10d@," name v)
    counters;
  List.iter
    (fun (name, total, calls) ->
      let mean = if calls = 0 then 0.0 else total /. float_of_int calls in
      Format.fprintf ppf "%-28s %10d call(s)  total %a  mean %a@," name calls
        Timing.pp_seconds total Timing.pp_seconds mean)
    timings;
  Format.fprintf ppf "@]"
