exception Expired of string

type budget = {
  label : string;
  mutable ticks : int option;  (* remaining checkpoint crossings *)
  deadline : float option;  (* absolute wall-clock bound *)
  mutable clock_countdown : int;  (* checkpoints until next clock read *)
}

(* One domain, one active call.  The ambient budget is domain-local
   state (DLS): each worker domain in the serving pool installs and
   checks its own budget without seeing — or expiring — anyone
   else's.  [with_budget] shadows and restores, so nesting works. *)
let key : budget option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get key

(* Reading the clock on every checkpoint would dominate tight loops;
   one read per stride keeps the overshoot bounded and small. *)
let clock_stride = 32

let active () = !(current ()) <> None

let remaining_ticks () =
  match !(current ()) with Some b -> b.ticks | None -> None

let checkpoint () =
  match !(current ()) with
  | None -> ()
  | Some b ->
      (match b.ticks with
      | Some n ->
          if n <= 0 then raise (Expired b.label) else b.ticks <- Some (n - 1)
      | None -> ());
      (match b.deadline with
      | None -> ()
      | Some d ->
          b.clock_countdown <- b.clock_countdown - 1;
          if b.clock_countdown <= 0 then begin
            b.clock_countdown <- clock_stride;
            if Timing.now_wall () > d then raise (Expired b.label)
          end)

let with_budget ?(label = "deadline") ?ticks ?seconds f =
  (match ticks with
  | Some n when n < 0 -> invalid_arg "Deadline.with_budget: ticks < 0"
  | _ -> ());
  (match seconds with
  | Some s when s < 0.0 -> invalid_arg "Deadline.with_budget: seconds < 0"
  | _ -> ());
  match (ticks, seconds) with
  | None, None -> f ()
  | _ ->
      let b =
        {
          label;
          ticks;
          deadline = Option.map (fun s -> Timing.now_wall () +. s) seconds;
          clock_countdown = 1;  (* first checkpoint reads the clock *)
        }
      in
      let cell = current () in
      let saved = !cell in
      cell := Some b;
      Fun.protect ~finally:(fun () -> cell := saved) f
