(** Roaring-style compressed bitmaps over non-negative ints.

    The multi-subject engine's workhorse representation: per-node
    {e role} sets (which roles may access this node) and per-role
    {e id} sets (which nodes a role may access) are both values of
    this one type.  The value space is chunked by the high bits; each
    chunk is stored as a sorted array (sparse), an 8 KiB bit array
    (dense) or a run list (contiguous), whichever is smallest —
    the classic Roaring container scheme.

    Values are immutable: every operation returns a fresh bitmap and
    never aliases mutable state with its inputs, so bitmaps can be
    stashed in undo journals and snapshots without defensive copies. *)

type t

val empty : t
val is_empty : t -> bool

val singleton : int -> t
(** @raise Invalid_argument on a negative member. *)

val of_list : int list -> t
(** Duplicates are collapsed; order is irrelevant.
    @raise Invalid_argument on a negative member. *)

val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val equal : t -> t -> bool
(** Extensional equality — container shapes may differ between equal
    bitmaps (an array chunk and a run chunk can hold the same
    members). *)

val subset : t -> t -> bool
(** [subset a b] is whether every member of [a] is in [b]. *)

val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order. *)

val to_list : t -> int list
(** Ascending. *)

val choose : t -> int option
(** Smallest member, if any. *)

val memory_bytes : t -> int
(** Approximate heap footprint of the compressed representation —
    what the multirole bench reports as bitmap bytes/node. *)

val to_string : t -> string
(** Printable, self-validating wire form — safe inside SQL string
    literals, WAL records and crash journals. *)

val of_string : string -> t
(** Inverse of {!to_string}, re-validating shape, ordering and bounds.
    @raise Failure on any malformed input; the message contains
    ["corrupt"] so the serving layer classifies it as storage
    corruption. *)

val pp : Format.formatter -> t -> unit
