(** Growable arrays.

    Used for column storage in the relational engine and for building
    node/tuple collections without intermediate lists.  Amortized O(1)
    append; O(1) random access. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty vector. [dummy] fills unused
    slots; it is never observable through the API. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** O(1); raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val map_to_list : ('a -> 'b) -> 'a t -> 'b list
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : dummy:'a -> 'a list -> 'a t

val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keeps only elements satisfying the predicate, preserving order. *)
