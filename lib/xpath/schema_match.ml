open Ast
module Sg = Xmlac_xml.Schema_graph
module Dtd = Xmlac_xml.Dtd

let test_ok test label =
  match test with Wildcard -> true | Name l -> String.equal l label

(* Spine matching, qualifiers ignored. The label path must be consumed
   entirely: expressions select the node at the end of the path. *)
let rec spine_match steps labels =
  match (steps, labels) with
  | [], [] -> true
  | [], _ :: _ -> false
  | s :: rest, labels -> (
      match s.axis with
      | Child -> (
          match labels with
          | [] -> false
          | l :: ls -> test_ok s.test l && spine_match rest ls)
      | Descendant ->
          let rec try_from = function
            | [] -> false
            | l :: ls ->
                (test_ok s.test l && spine_match rest ls) || try_from ls
          in
          try_from labels)

let spine_matches_path (e : expr) labels = spine_match e.steps labels

(* Qualifier satisfiability at a schema type: every qualifier path must
   be realizable as a downward path from the type (and its own nested
   qualifiers recursively). *)
let rec quals_sat sg ty quals = List.for_all (qual_sat sg ty) quals

and qual_sat sg ty = function
  | And (a, b) -> qual_sat sg ty a && qual_sat sg ty b
  | Exists p | Value (p, _, _) -> rel_sat sg ty p

and rel_sat sg ty = function
  | [] -> true
  | s :: rest ->
      let dtd = Sg.dtd sg in
      let candidates =
        match s.axis with
        | Child -> Dtd.child_types dtd ty
        | Descendant ->
            List.filter
              (fun c -> Sg.reachable sg ~src:ty ~dst:c)
              (Dtd.element_types dtd)
      in
      List.exists
        (fun c ->
          test_ok s.test c && quals_sat sg c s.quals && rel_sat sg c rest)
        candidates

(* Spine matching with qualifier checks: walk the expression and the
   label path together; when a step consumes a label, that label is the
   schema type of the landing node, so check the step's qualifiers
   there. *)
let rec full_match sg steps labels =
  match (steps, labels) with
  | [], [] -> true
  | [], _ :: _ -> false
  | s :: rest, labels -> (
      match s.axis with
      | Child -> (
          match labels with
          | [] -> false
          | l :: ls ->
              test_ok s.test l && quals_sat sg l s.quals
              && full_match sg rest ls)
      | Descendant ->
          let rec try_from = function
            | [] -> false
            | l :: ls ->
                (test_ok s.test l && quals_sat sg l s.quals
                && full_match sg rest ls)
                || try_from ls
          in
          try_from labels)

let matched_root_paths sg (e : expr) =
  List.filter (fun path -> full_match sg e.steps path) (Sg.root_paths sg)

let selected_types sg e =
  let paths = matched_root_paths sg e in
  List.sort_uniq String.compare
    (List.filter_map
       (fun p -> match List.rev p with [] -> None | last :: _ -> Some last)
       paths)

let satisfiable sg e = matched_root_paths sg e <> []

let overlap sg p q =
  let paths_p = matched_root_paths sg p in
  List.exists (fun path -> full_match sg q.steps path) paths_p

let disjoint sg p q = not (overlap sg p q)
