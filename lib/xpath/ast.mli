(** Abstract syntax of the XPath fragment of Section 2.2:

    {[
      Paths      p ::= axis::ntst | p[q] | p/p
      Qualifiers q ::= p | q and q | p = d
      Axes    axis ::= child | descendant
      Node test ntst ::= l | *
    ]}

    extended with the ordered comparisons that the paper's example
    policy uses (rule R8 is [//regular\[bill > 1000\]]).  Expressions in
    rules and queries are absolute; paths inside qualifiers are
    relative to the step they qualify. *)

type axis = Child | Descendant

type ntst = Name of string | Wildcard

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type path = step list
(** A relative path; the empty list denotes the context node itself
    (written [.]). *)

and step = { axis : axis; test : ntst; quals : qual list }
(** Multiple qualifiers on one step are an implicit conjunction. *)

and qual =
  | Exists of path  (** [p] — some node is selected by [p]. *)
  | Value of path * cmp * string
      (** [p = d] and friends — some node selected by [p] has a value
          in the given relation to the constant.  The empty path
          constrains the context node's own value. *)
  | And of qual * qual

type expr = { steps : path }
(** An absolute expression, anchored at the (virtual) document root:
    [/a/b] is [{steps = [child::a; child::b]}] and [//a] is
    [{steps = [descendant::a]}]. *)

val step : ?quals:qual list -> axis -> ntst -> step
val absolute : path -> expr

val cmp_to_string : cmp -> string
val cmp_holds : cmp -> string -> string -> bool
(** [cmp_holds op v d] compares a node value [v] against a constant
    [d]: numerically when both parse as numbers, lexicographically
    otherwise. *)

val equal_expr : expr -> expr -> bool
(** Structural (syntactic) equality, qualifier order significant. *)

val compare_expr : expr -> expr -> int

val size : expr -> int
(** Number of steps, including those inside qualifiers. *)

val has_descendant_in_qual : expr -> bool
(** Whether any qualifier contains a descendant-axis step — the case
    that requires schema-based expansion in Section 5.3. *)

val strip_quals : expr -> expr
(** The selection spine with all qualifiers removed. *)
