open Ast
module Prng = Xmlac_util.Prng
module Sg = Xmlac_xml.Schema_graph
module Dtd = Xmlac_xml.Dtd

type config = {
  descendant_prob : float;
  wildcard_prob : float;
  pred_prob : float;
  value_pred_prob : float;
  max_pred_depth : int;
  value_pool : string -> string list;
}

let default_config =
  {
    descendant_prob = 0.3;
    wildcard_prob = 0.1;
    pred_prob = 0.3;
    value_pred_prob = 0.4;
    max_pred_depth = 2;
    value_pool = (fun _ -> []);
  }

(* A random downward label chain from [ty], at most [depth] long and at
   least 1; None when [ty] is a leaf type. *)
let rec random_chain rng sg ty depth =
  if depth <= 0 then None
  else
    match Dtd.child_types (Sg.dtd sg) ty with
    | [] -> None
    | kids ->
        let k = Prng.choose_list rng kids in
        if depth = 1 || Prng.bool rng then Some [ k ]
        else (
          match random_chain rng sg k (depth - 1) with
          | None -> Some [ k ]
          | Some rest -> Some (k :: rest))

let leaf_value_pred cfg rng ty =
  match cfg.value_pool ty with
  | [] -> None
  | pool ->
      let d = Prng.choose_list rng pool in
      let op =
        if float_of_string_opt d <> None then
          Prng.choose rng [| Eq; Lt; Le; Gt; Ge |]
        else Eq
      in
      Some (op, d)

(* A random predicate for a step landing on [ty]. *)
let random_pred cfg rng sg ty =
  match random_chain rng sg ty cfg.max_pred_depth with
  | None -> (
      (* Leaf type: constrain the node's own value if possible. *)
      match leaf_value_pred cfg rng ty with
      | Some (op, d) -> Some (Value ([], op, d))
      | None -> None)
  | Some chain ->
      let path = List.map (fun l -> step Child (Name l)) chain in
      let landing = List.nth chain (List.length chain - 1) in
      if Prng.bernoulli rng cfg.value_pred_prob then
        match leaf_value_pred cfg rng landing with
        | Some (op, d) -> Some (Value (path, op, d))
        | None -> Some (Exists path)
      else Some (Exists path)

(* Turn a root label path into an expression: walk the labels, merging
   runs into descendant steps with probability [descendant_prob].
   The first step is descendant-anchored when merged with the (virtual)
   document root. *)
let of_label_path cfg rng sg labels =
  let steps =
    List.map
      (fun l ->
        let axis =
          if Prng.bernoulli rng cfg.descendant_prob then Descendant else Child
        in
        let test =
          (* Wildcards only on child steps: a descendant::* step selects
             virtually everything and makes workloads degenerate. *)
          if axis = Child && Prng.bernoulli rng cfg.wildcard_prob then Wildcard
          else Name l
        in
        (step axis test, l))
      labels
  in
  (* A descendant step absorbs the labels it skips: drop any child step
     immediately preceding a descendant step with probability 1/2 to
     actually exercise multi-level jumps. *)
  let rec absorb = function
    | (s1, _) :: ((s2, _) :: _ as rest)
      when s1.axis = Child && s2.axis = Descendant && Prng.bool rng ->
        absorb rest
    | x :: rest -> x :: absorb rest
    | [] -> []
  in
  let steps = absorb steps in
  let with_preds =
    List.map
      (fun (s, ty) ->
        if s.test <> Wildcard && Prng.bernoulli rng cfg.pred_prob then
          match random_pred cfg rng sg ty with
          | Some q -> { s with quals = [ q ] }
          | None -> s
        else s)
      steps
  in
  { steps = with_preds }

let gen_expr ?(config = default_config) rng sg =
  let paths = Sg.root_paths sg in
  let labels = Prng.choose_list rng paths in
  of_label_path config rng sg labels

let gen_targeting ?(config = default_config) rng sg ~target =
  match Sg.paths_to sg target with
  | [] -> invalid_arg ("Qgen.gen_targeting: unreachable type " ^ target)
  | paths ->
      let labels = Prng.choose_list rng paths in
      of_label_path config rng sg labels
