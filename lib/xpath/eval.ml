open Ast
module Tree = Xmlac_xml.Tree

(* Node sets stay in document order.  Steps stream over the tree
   (children lists / preorder subtree walks) instead of materializing
   descendant lists, qualifiers are evaluated with early exit, and a
   per-step seen-set removes the duplicates that nested context nodes
   would otherwise produce. *)

let test_ok test (n : Tree.node) =
  match test with Wildcard -> true | Name l -> String.equal l n.Tree.name

exception Found

let rec iter_descendants f (n : Tree.node) =
  List.iter
    (fun c ->
      f c;
      iter_descendants f c)
    n.Tree.children

(* Qualifier truth at a context node, short-circuited. *)
let rec qual_ok (n : Tree.node) = function
  | Exists p -> exists_rel n p (fun _ -> true)
  | Value (p, op, d) ->
      exists_rel n p (fun (m : Tree.node) ->
          match m.Tree.value with
          | Some v -> cmp_holds op v d
          | None -> false)
  | And (a, b) -> qual_ok n a && qual_ok n b

(* Does some node reachable from [n] via [p] satisfy [accept]?  The
   empty path tests the context node itself. *)
and exists_rel (n : Tree.node) (p : path) accept =
  match p with
  | [] -> accept n
  | s :: rest ->
      let candidate (c : Tree.node) =
        if
          test_ok s.test c
          && List.for_all (qual_ok c) s.quals
          && exists_rel c rest accept
        then raise Found
      in
      (try
         (match s.axis with
         | Child -> List.iter candidate n.Tree.children
         | Descendant -> iter_descendants candidate n);
         false
       with Found -> true)

(* One step applied to a context list (document order in, document
   order out). *)
let select_step context (s : step) =
  let out = ref [] in
  let seen = Hashtbl.create 64 in
  let consider (c : Tree.node) =
    if test_ok s.test c && not (Hashtbl.mem seen c.Tree.id) then begin
      Hashtbl.replace seen c.Tree.id ();
      if List.for_all (qual_ok c) s.quals then out := c :: !out
    end
  in
  List.iter
    (fun (n : Tree.node) ->
      match s.axis with
      | Child -> List.iter consider n.Tree.children
      | Descendant -> iter_descendants consider n)
    context;
  List.rev !out

let select_path context p = List.fold_left select_step context p

(* Absolute evaluation starts from the virtual document node, whose
   only child is the root element and whose descendants are every node
   of the tree. *)
let eval t (e : expr) =
  match e.steps with
  | [] -> [ Tree.root t ]
  | first :: rest ->
      let root = Tree.root t in
      let initial =
        let matching (n : Tree.node) =
          test_ok first.test n && List.for_all (qual_ok n) first.quals
        in
        match first.axis with
        | Child -> if matching root then [ root ] else []
        | Descendant ->
            let out = ref [] in
            let consider n = if matching n then out := n :: !out in
            consider root;
            iter_descendants consider root;
            List.rev !out
      in
      select_path initial rest

let eval_rel _t context p = select_path [ context ] p

let matches t e (n : Tree.node) =
  List.exists (fun (m : Tree.node) -> m.Tree.id = n.Tree.id) (eval t e)

let node_set t e =
  let set = Hashtbl.create 64 in
  List.iter (fun (n : Tree.node) -> Hashtbl.replace set n.Tree.id ()) (eval t e);
  set

let count t e = List.length (eval t e)
