(** Parser for the abbreviated XPath fragment.

    Accepted forms (all from the paper):
    - [//patient], [/hospital/dept]
    - [//patient\[treatment\]/name]
    - [//patient\[.//experimental\]]
    - [//regular\[med = "celecoxib"\]], [//regular\[bill > 1000\]]
    - conjunctions: [//a\[b and c = "d"\]], and stacked predicates
      [//a\[b\]\[c\]]
    - [.] inside a predicate constrains the context node's own value:
      [//med\[. = "celecoxib"\]]. *)

type error = { pos : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Ast.expr, error) result
(** Parses an absolute expression (must start with [/] or [//]). *)

val parse_exn : string -> Ast.expr
(** @raise Invalid_argument on a parse error. *)
