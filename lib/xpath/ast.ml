type axis = Child | Descendant

type ntst = Name of string | Wildcard

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type path = step list
and step = { axis : axis; test : ntst; quals : qual list }

and qual =
  | Exists of path
  | Value of path * cmp * string
  | And of qual * qual

type expr = { steps : path }

let step ?(quals = []) axis test = { axis; test; quals }
let absolute steps = { steps }

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let cmp_holds op v d =
  let c =
    match (float_of_string_opt v, float_of_string_opt d) with
    | Some x, Some y -> compare x y
    | _ -> String.compare v d
  in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec equal_path p1 p2 =
  match (p1, p2) with
  | [], [] -> true
  | s1 :: r1, s2 :: r2 -> equal_step s1 s2 && equal_path r1 r2
  | _ -> false

and equal_step s1 s2 =
  s1.axis = s2.axis && s1.test = s2.test
  && List.length s1.quals = List.length s2.quals
  && List.for_all2 equal_qual s1.quals s2.quals

and equal_qual q1 q2 =
  match (q1, q2) with
  | Exists p1, Exists p2 -> equal_path p1 p2
  | Value (p1, c1, d1), Value (p2, c2, d2) ->
      equal_path p1 p2 && c1 = c2 && String.equal d1 d2
  | And (a1, b1), And (a2, b2) -> equal_qual a1 a2 && equal_qual b1 b2
  | (Exists _ | Value _ | And _), _ -> false

let equal_expr e1 e2 = equal_path e1.steps e2.steps

let compare_expr e1 e2 = Stdlib.compare e1 e2

let rec path_size p = List.fold_left (fun acc s -> acc + step_size s) 0 p

and step_size s =
  1 + List.fold_left (fun acc q -> acc + qual_size q) 0 s.quals

and qual_size = function
  | Exists p -> path_size p
  | Value (p, _, _) -> path_size p
  | And (a, b) -> qual_size a + qual_size b

let size e = path_size e.steps

let rec qual_has_descendant = function
  | Exists p | Value (p, _, _) -> path_has_descendant_qualified p
  | And (a, b) -> qual_has_descendant a || qual_has_descendant b

and path_has_descendant_qualified p =
  List.exists
    (fun s ->
      s.axis = Descendant || List.exists qual_has_descendant s.quals)
    p

let has_descendant_in_qual e =
  List.exists (fun s -> List.exists qual_has_descendant s.quals) e.steps

let strip_quals e =
  { steps = List.map (fun s -> { s with quals = [] }) e.steps }
