(** Printing of XPath expressions in the standard abbreviated form:
    [//patient[treatment]/name], [//regular[bill > 1000]],
    [//patient[.//experimental]]. [Pp.expr_to_string] round-trips with
    {!Parser.parse}. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_path : Format.formatter -> Ast.path -> unit
val pp_qual : Format.formatter -> Ast.qual -> unit

val expr_to_string : Ast.expr -> string
val path_to_string : Ast.path -> string
