(** Tree patterns for XPath containment.

    An expression of the fragment XP(/, //, *, \[\], =) is equivalent to
    a tree pattern (Miklau & Suciu, JACM 51(1)): nodes are labeled with
    an element name or [*], edges are child or descendant edges, one
    root-to-leaf path (the {e spine}) carries the selection steps and
    its endpoint is the {e output} node; qualifier paths hang off the
    spine.  Value comparisons become constraints attached to the
    pattern node their path reaches. *)

type label = Root | Star | Label of string
(** [Root] labels the virtual document node only. *)

type edge = Echild | Edesc

type node = {
  pid : int;  (** Unique within one pattern. *)
  label : label;
  vcons : (Ast.cmp * string) list;
      (** Conjunction of value constraints on this node. *)
  kids : (edge * node) list;
}

type t = {
  root : node;  (** The virtual document node. *)
  spine : node list;  (** From [root] down to the output node. *)
  count : int;  (** Total number of pattern nodes. *)
}

val of_expr : Ast.expr -> t
(** Compile an absolute expression. *)

val output : t -> node
(** Last spine node. *)

val descendants : node -> node list
(** Proper descendants of a pattern node. *)

val spine_edges : t -> edge list
(** Edges along the spine, top to bottom; length = |spine| - 1. *)

val pp : Format.formatter -> t -> unit
