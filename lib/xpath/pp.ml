open Ast

let pp_ntst ppf = function
  | Name l -> Format.pp_print_string ppf l
  | Wildcard -> Format.pp_print_char ppf '*'

let needs_quotes d = float_of_string_opt d = None

let pp_const ppf d =
  if needs_quotes d then Format.fprintf ppf "%S" d
  else Format.pp_print_string ppf d

(* Relative paths inside qualifiers: a leading descendant step prints
   as [.//x]; a leading child step prints bare ([x/y]); the empty path
   prints as [.]. *)
let rec pp_rel ppf (p : path) =
  match p with
  | [] -> Format.pp_print_char ppf '.'
  | first :: _ ->
      if first.axis = Descendant then Format.pp_print_string ppf ".";
      pp_steps ppf p

and pp_steps ppf p =
  List.iteri
    (fun i s ->
      (match (i, s.axis) with
      | 0, Child -> ()
      | _, Child -> Format.pp_print_char ppf '/'
      | _, Descendant -> Format.pp_print_string ppf "//");
      pp_ntst ppf s.test;
      List.iter (fun q -> Format.fprintf ppf "[%a]" pp_qual q) s.quals)
    p

and pp_qual ppf = function
  | Exists p -> pp_rel ppf p
  | Value (p, op, d) ->
      Format.fprintf ppf "%a %s %a" pp_rel p (cmp_to_string op) pp_const d
  | And (a, b) -> Format.fprintf ppf "%a and %a" pp_qual a pp_qual b

let pp_path ppf p = pp_rel ppf p

let pp_expr ppf (e : expr) =
  (* Absolute expressions always start with a separator. *)
  match e.steps with
  | [] -> Format.pp_print_char ppf '/'
  | first :: _ ->
      (* [pp_steps] prints no separator before an index-0 child step
         and [//] before an index-0 descendant step, so only the
         leading [/] of a child-anchored expression is missing. *)
      if first.axis = Child then Format.pp_print_char ppf '/';
      pp_steps ppf e.steps

let to_string pp x = Format.asprintf "%a" pp x
let expr_to_string = to_string pp_expr
let path_to_string = to_string pp_path
