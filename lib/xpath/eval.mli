(** Evaluation of XPath expressions over {!Xmlac_xml.Tree} documents.

    [\[\[p\]\](T)] in the paper's notation: the set of nodes obtained by
    evaluating the absolute expression [p] on the root of [T].  Node
    sets are returned deduplicated, in document (preorder) order. *)

val eval : Xmlac_xml.Tree.t -> Ast.expr -> Xmlac_xml.Tree.node list
(** Evaluate an absolute expression on a document. *)

val eval_rel :
  Xmlac_xml.Tree.t -> Xmlac_xml.Tree.node -> Ast.path -> Xmlac_xml.Tree.node list
(** Evaluate a relative path from a context node (the empty path
    returns the context node itself). *)

val matches : Xmlac_xml.Tree.t -> Ast.expr -> Xmlac_xml.Tree.node -> bool
(** [matches t e n] iff [n] is in [eval t e]. *)

val node_set : Xmlac_xml.Tree.t -> Ast.expr -> (int, unit) Hashtbl.t
(** The answer as a set of universal node ids; convenient for the
    UNION/EXCEPT combinations of Section 5.2. *)

val count : Xmlac_xml.Tree.t -> Ast.expr -> int
