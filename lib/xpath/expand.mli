(** Rule expansion for the re-annotation trigger (Section 5.3).

    [Expand(p)] flattens an access-control rule's resource into the set
    of predicate-free absolute paths that the rule's applicability
    depends on:

    - the rule's selection spine with qualifiers stripped
      ([//patient\[treatment\]] contributes [//patient]); and
    - for every qualifier path, the root-anchored chain obtained by
      appending it to the spine prefix it qualifies, {e including every
      intermediate prefix} ([//patient\[treatment\]] contributes
      [//patient/treatment]).

    When a schema graph is supplied, descendant axes {e inside
    qualifier paths} are replaced by all child-only label chains the
    schema allows, as the paper prescribes:
    [//patient\[.//experimental\]] expands to
    [//patient/treatment] and [//patient/treatment/experimental].
    Descendant steps whose node test is [*] are kept as-is (the chain
    set would be the whole schema); this only makes the trigger less
    selective, never unsound. *)

val expand : ?schema:Xmlac_xml.Schema_graph.t -> Ast.expr -> Ast.expr list
(** Deduplicated; always contains the stripped selection spine. *)
