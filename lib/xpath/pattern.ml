open Ast

type label = Root | Star | Label of string

type edge = Echild | Edesc

type node = {
  pid : int;
  label : label;
  vcons : (cmp * string) list;
  kids : (edge * node) list;
}

type t = {
  root : node;
  spine : node list;
  count : int;
}

let edge_of_axis = function Child -> Echild | Descendant -> Edesc

let label_of_test = function Wildcard -> Star | Name l -> Label l

(* Pattern construction threads a counter for pids. Qualifier paths
   become subtrees; a [Value] qualifier adds its constraint to the node
   its path reaches (the context node itself for the empty path). *)

let of_expr (e : expr) =
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  (* Builds the subtree for a qualifier path, returning the kid edge
     list contribution; [vcon] applies to the path's endpoint. *)
  let rec build_qual_path (p : path) vcon : (edge * node) list * (cmp * string) list =
    match p with
    | [] ->
        (* Constraint lands on the context node. *)
        ([], match vcon with None -> [] | Some c -> [ c ])
    | s :: rest ->
        let sub_kids, sub_vcons = build_qual_path rest vcon in
        let qual_kids = List.concat_map build_qual s.quals in
        let child =
          {
            pid = fresh ();
            label = label_of_test s.test;
            vcons = sub_vcons;
            kids = qual_kids @ sub_kids;
          }
        in
        ([ (edge_of_axis s.axis, child) ], [])

  and build_qual (q : qual) : (edge * node) list =
    (* Returns kid subtrees; constraints on the context node itself are
       impossible here because [build_step] handles them separately. *)
    match q with
    | Exists p -> fst (build_qual_path p None)
    | Value (p, op, d) -> fst (build_qual_path p (Some (op, d)))
    | And (a, b) -> build_qual a @ build_qual b
  in
  (* Constraints addressed to the step node itself ([. = d]). *)
  let self_vcons quals =
    let rec collect = function
      | Value ([], op, d) -> [ (op, d) ]
      | And (a, b) -> collect a @ collect b
      | Exists _ | Value (_ :: _, _, _) -> []
    in
    List.concat_map collect quals
  in
  let rec build_spine (steps : path) : node list * (edge * node) option =
    match steps with
    | [] -> ([], None)
    | s :: rest ->
        let below_spine, below_kid = build_spine rest in
        let qual_kids = List.concat_map build_qual s.quals in
        let kids =
          qual_kids @ (match below_kid with None -> [] | Some k -> [ k ])
        in
        let n =
          {
            pid = fresh ();
            label = label_of_test s.test;
            vcons = self_vcons s.quals;
            kids;
          }
        in
        (n :: below_spine, Some (edge_of_axis s.axis, n))
  in
  let spine_below, first_kid = build_spine e.steps in
  let root =
    {
      pid = fresh ();
      label = Root;
      vcons = [];
      kids = (match first_kid with None -> [] | Some k -> [ k ]);
    }
  in
  { root; spine = root :: spine_below; count = !next }

let output t =
  match List.rev t.spine with
  | last :: _ -> last
  | [] -> assert false

let descendants n =
  let acc = ref [] in
  let rec go m =
    List.iter
      (fun (_, k) ->
        acc := k :: !acc;
        go k)
      m.kids
  in
  go n;
  List.rev !acc

let spine_edges t =
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        let edge =
          (* The spine child is among a's kids; retrieve its edge. *)
          match List.find_opt (fun (_, k) -> k.pid = b.pid) a.kids with
          | Some (e, _) -> e
          | None -> assert false
        in
        edge :: pairs rest
    | _ -> []
  in
  pairs t.spine

let pp ppf t =
  let pp_label ppf = function
    | Root -> Format.pp_print_string ppf "/"
    | Star -> Format.pp_print_char ppf '*'
    | Label l -> Format.pp_print_string ppf l
  in
  let spine_ids = List.map (fun n -> n.pid) t.spine in
  let rec go indent edge n =
    Format.fprintf ppf "%s%s%a#%d" indent
      (match edge with Echild -> "/" | Edesc -> "//")
      pp_label n.label n.pid;
    List.iter
      (fun (op, d) -> Format.fprintf ppf "{%s%s}" (Ast.cmp_to_string op) d)
      n.vcons;
    if List.mem n.pid spine_ids then Format.pp_print_string ppf " *spine*";
    Format.pp_print_newline ppf ();
    List.iter (fun (e, k) -> go (indent ^ "  ") e k) n.kids
  in
  go "" Echild t.root
