open Ast

type error = { pos : int; message : string }

let pp_error ppf e = Format.fprintf ppf "offset %d: %s" e.pos e.message

exception Err of error

type state = { input : string; mutable pos : int }

let fail st message = raise (Err { pos = st.pos; message })

let len st = String.length st.input
let eof st = st.pos >= len st
let peek st = if eof st then '\000' else st.input.[st.pos]

let peek2 st =
  if st.pos + 1 >= len st then '\000' else st.input.[st.pos + 1]

let skip_spaces st =
  while (not (eof st)) && (peek st = ' ' || peek st = '\t') do
    st.pos <- st.pos + 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(* Names may contain '.', but a bare '.' (context-node step) must not
   be swallowed as a name, so require a name-start character first. *)
let parse_name st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    st.pos <- st.pos + 1
  done;
  String.sub st.input start (st.pos - start)

let parse_ntst st =
  if peek st = '*' then begin
    st.pos <- st.pos + 1;
    Wildcard
  end
  else Name (parse_name st)

let parse_const st =
  skip_spaces st;
  match peek st with
  | ('"' | '\'') as quote ->
      st.pos <- st.pos + 1;
      let start = st.pos in
      while (not (eof st)) && peek st <> quote do
        st.pos <- st.pos + 1
      done;
      if eof st then fail st "unterminated string constant";
      let s = String.sub st.input start (st.pos - start) in
      st.pos <- st.pos + 1;
      s
  | c when (c >= '0' && c <= '9') || c = '-' ->
      let start = st.pos in
      st.pos <- st.pos + 1;
      while
        (not (eof st))
        && (let c = peek st in
            (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '+'
            || c = '-')
      do
        st.pos <- st.pos + 1
      done;
      String.sub st.input start (st.pos - start)
  | _ -> fail st "expected a constant"

let parse_cmp st =
  skip_spaces st;
  match (peek st, peek2 st) with
  | '=', _ ->
      st.pos <- st.pos + 1;
      Some Eq
  | '!', '=' ->
      st.pos <- st.pos + 2;
      Some Neq
  | '<', '=' ->
      st.pos <- st.pos + 2;
      Some Le
  | '<', _ ->
      st.pos <- st.pos + 1;
      Some Lt
  | '>', '=' ->
      st.pos <- st.pos + 2;
      Some Ge
  | '>', _ ->
      st.pos <- st.pos + 1;
      Some Gt
  | _ -> None

(* A separator before a step: '//' gives Descendant, '/' gives Child.
   Returns None when no separator is present. *)
let parse_sep st =
  if peek st = '/' then
    if peek2 st = '/' then begin
      st.pos <- st.pos + 2;
      Some Descendant
    end
    else begin
      st.pos <- st.pos + 1;
      Some Child
    end
  else None

let rec parse_steps st ~first_axis =
  let rec loop acc axis =
    let test = parse_ntst st in
    let quals = parse_quals st in
    let acc = { axis; test; quals } :: acc in
    match parse_sep st with
    | Some axis -> loop acc axis
    | None -> List.rev acc
  in
  loop [] first_axis

and parse_quals st =
  let rec loop acc =
    if peek st = '[' then begin
      st.pos <- st.pos + 1;
      let q = parse_conj st in
      skip_spaces st;
      if peek st <> ']' then fail st "expected ']'";
      st.pos <- st.pos + 1;
      loop (q :: acc)
    end
    else List.rev acc
  in
  loop []

and parse_conj st =
  let a = parse_atom st in
  skip_spaces st;
  if
    st.pos + 3 <= len st
    && String.sub st.input st.pos 3 = "and"
    && (st.pos + 3 = len st || not (is_name_char st.input.[st.pos + 3]))
  then begin
    st.pos <- st.pos + 3;
    skip_spaces st;
    And (a, parse_conj st)
  end
  else a

and parse_atom st =
  skip_spaces st;
  let path =
    if peek st = '.' then begin
      st.pos <- st.pos + 1;
      match parse_sep st with
      | Some axis -> parse_steps st ~first_axis:axis
      | None -> [] (* bare '.', the context node *)
    end
    else parse_steps st ~first_axis:Child
  in
  match parse_cmp st with
  | Some op -> Value (path, op, parse_const st)
  | None -> (
      match path with
      | [] -> fail st "bare '.' must be followed by a comparison"
      | _ -> Exists path)

let parse input =
  let st = { input; pos = 0 } in
  try
    match parse_sep st with
    | None -> Error { pos = 0; message = "expression must start with '/' or '//'" }
    | Some axis ->
        let steps = parse_steps st ~first_axis:axis in
        skip_spaces st;
        if not (eof st) then
          Error { pos = st.pos; message = "trailing characters" }
        else Ok { steps }
  with Err e -> Error e

let parse_exn input =
  match parse input with
  | Ok e -> e
  | Error e ->
      invalid_arg
        (Format.asprintf "Xpath.Parser.parse %S: %a" input pp_error e)
