open Ast
module P = Pattern

let num = float_of_string_opt

(* Constraint implication. Eq constants pin the value, so implication
   reduces to evaluating the target comparison on the pinned constant.
   Order-order implications are decided numerically only; anything else
   is conservatively refused. *)
let implies (cp : cmp * string) (cq : cmp * string) =
  if cp = cq then true
  else
    match (cp, cq) with
    | (Eq, d), (op, e) -> cmp_holds op d e
    | (Neq, d), (Neq, e) -> cmp_holds Eq d e
    | (op1, d), (op2, e) -> (
        match (num d, num e) with
        | Some a, Some b -> (
            match (op1, op2) with
            | Lt, Lt | Lt, Le | Le, Le -> a <= b
            | Le, Lt -> a < b
            | Gt, Gt | Gt, Ge | Ge, Ge -> a >= b
            | Ge, Gt -> a > b
            | Lt, Neq | Le, Neq -> a < b
            | Gt, Neq | Ge, Neq -> a > b
            | _ -> false)
        | _ -> false)

(* Label compatibility for mapping a q-node onto a p-node: q's
   constraints must be guaranteed by p's. *)
let compat (u : P.node) (v : P.node) =
  let label_ok =
    match (u.P.label, v.P.label) with
    | P.Root, P.Root -> true
    | P.Root, _ | _, P.Root -> false
    | P.Star, _ -> true
    | P.Label _, P.Star -> false
    | P.Label a, P.Label b -> String.equal a b
  in
  label_ok
  && List.for_all
       (fun cq -> List.exists (fun cp -> implies cp cq) v.P.vcons)
       u.P.vcons

(* Homomorphism on qualifier subtrees: u (from q) embeds at v (in p). *)
let make_embed () =
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let desc_memo : (int, P.node list) Hashtbl.t = Hashtbl.create 16 in
  let descendants v =
    match Hashtbl.find_opt desc_memo v.P.pid with
    | Some d -> d
    | None ->
        let d = P.descendants v in
        Hashtbl.replace desc_memo v.P.pid d;
        d
  in
  let rec embed (u : P.node) (v : P.node) =
    let key = (u.P.pid, v.P.pid) in
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        (* Break potential cycles defensively (patterns are trees, so
           none arise; the placeholder is never observed). *)
        Hashtbl.replace memo key false;
        let r =
          compat u v
          && List.for_all
               (fun (e, u') ->
                 match e with
                 | P.Echild ->
                     List.exists
                       (fun (e', v') -> e' = P.Echild && embed u' v')
                       v.P.kids
                 | P.Edesc ->
                     List.exists (fun v' -> embed u' v') (descendants v))
               u.P.kids
        in
        Hashtbl.replace memo key r;
        r
  in
  embed

(* Spine-to-spine dynamic program.  q's spine must map monotonically
   into p's spine with root->root and output->output; a child edge in q
   must land exactly one child edge further in p, a descendant edge may
   skip ahead arbitrarily. At every anchored pair, the off-spine
   qualifier subtrees of the q node must embed below the p node. *)
let hom_exists ~(qp : P.t) ~(pp : P.t) =
  let embed = make_embed () in
  let q_spine = Array.of_list qp.P.spine in
  let p_spine = Array.of_list pp.P.spine in
  let q_edges = Array.of_list (P.spine_edges qp) in
  let p_edges = Array.of_list (P.spine_edges pp) in
  let k = Array.length q_spine in
  let m = Array.length p_spine in
  (* Off-spine kids of a q spine node: all kids except the next spine
     node. *)
  let off_spine_kids i =
    let n = q_spine.(i) in
    let next_pid =
      if i + 1 < k then Some q_spine.(i + 1).P.pid else None
    in
    List.filter
      (fun ((_, kid) : P.edge * P.node) ->
        match next_pid with Some pid -> kid.P.pid <> pid | None -> true)
      n.P.kids
  in
  let anchors_ok i j =
    compat q_spine.(i) p_spine.(j)
    && List.for_all
         (fun (e, u') ->
           match e with
           | P.Echild ->
               List.exists
                 (fun (e', v') -> e' = P.Echild && embed u' v')
                 p_spine.(j).P.kids
           | P.Edesc ->
               List.exists (fun v' -> embed u' v') (P.descendants p_spine.(j)))
         (off_spine_kids i)
  in
  let feasible = Array.make_matrix k m false in
  feasible.(0).(0) <- anchors_ok 0 0;
  for i = 0 to k - 2 do
    for j = 0 to m - 1 do
      if feasible.(i).(j) then begin
        match q_edges.(i) with
        | P.Echild ->
            if j + 1 < m && p_edges.(j) = P.Echild && anchors_ok (i + 1) (j + 1)
            then feasible.(i + 1).(j + 1) <- true
        | P.Edesc ->
            for j' = j + 1 to m - 1 do
              if (not feasible.(i + 1).(j')) && anchors_ok (i + 1) j' then
                feasible.(i + 1).(j') <- true
            done
      end
    done
  done;
  feasible.(k - 1).(m - 1)

let contained_in p q =
  let pp = P.of_expr p and qp = P.of_expr q in
  hom_exists ~qp ~pp

let equivalent p q = contained_in p q && contained_in q p

let comparable p q = contained_in p q || contained_in q p

(* ------------------------------------------------------------------ *)
(* Schema-aware containment *)

module Sg = Xmlac_xml.Schema_graph
module Dtd = Xmlac_xml.Dtd

let test_ok test ty =
  match test with Wildcard -> true | Name l -> String.equal l ty

(* Child-only realizations of an expression's spine under the schema:
   every descendant step is replaced by each label chain the DTD
   allows, the step's qualifiers landing on the chain's last label.
   Qualifiers themselves are kept verbatim (they only shrink the
   semantics, so the realizations still cover the expression).  [None]
   when the realization set explodes past [limit]. *)
let realizations sg (e : expr) ~limit =
  let dtd = Sg.dtd sg in
  (* Chains for one step from a context type ([None] = virtual root);
     each chain lists the labels walked, ending at the landing type. *)
  let step_chains ctx (s : step) =
    match (ctx, s.axis) with
    | None, Child ->
        let root_ty = Dtd.root dtd in
        if test_ok s.test root_ty then [ [ root_ty ] ] else []
    | None, Descendant ->
        List.concat_map
          (fun path ->
            match List.rev path with
            | last :: _ when test_ok s.test last -> [ path ]
            | _ -> [])
          (Sg.root_paths sg)
    | Some ty, Child ->
        List.filter_map
          (fun child -> if test_ok s.test child then Some [ child ] else None)
          (Dtd.child_types dtd ty)
    | Some ty, Descendant ->
        List.concat_map
          (fun dst ->
            if test_ok s.test dst then
              List.filter_map
                (fun path ->
                  match path with [] | [ _ ] -> None | _ :: rest -> Some rest)
                (Sg.paths_between sg ~src:ty ~dst)
            else [])
          (Dtd.element_types dtd)
  in
  let exception Too_many in
  let count = ref 0 in
  (* Returns reversed step lists. *)
  let rec go ctx steps acc_rev =
    match steps with
    | [] ->
        incr count;
        if !count > limit then raise Too_many;
        [ acc_rev ]
    | s :: rest ->
        List.concat_map
          (fun chain ->
            let rec attach acc_rev = function
              | [] -> assert false
              | [ last ] ->
                  (* The chain's endpoint carries the step's quals. *)
                  ( { axis = Child; test = Name last; quals = s.quals }
                    :: acc_rev,
                    last )
              | l :: more ->
                  attach
                    ({ axis = Child; test = Name l; quals = [] } :: acc_rev)
                    more
            in
            let acc_rev, landing = attach acc_rev chain in
            go (Some landing) rest acc_rev)
          (step_chains ctx s)
  in
  match go None e.steps [] with
  | rev_lists -> Some (List.map (fun rl -> { steps = List.rev rl }) rev_lists)
  | exception Too_many -> None

let contained_in_schema sg p q =
  contained_in p q
  ||
  match realizations sg p ~limit:256 with
  | None -> false
  | Some rs -> List.for_all (fun r -> contained_in r q) rs
