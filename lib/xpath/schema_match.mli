(** Schema-level analysis of XPath expressions.

    Matches expressions against the label paths realizable under a
    (non-recursive) DTD.  Because value constraints are ignored, every
    judgement here over-approximates instance-level matching; hence
    {!disjoint} is sound (a [true] answer guarantees empty
    intersection on every valid document), which is what the
    dependency-graph and trigger machinery needs. *)

val spine_matches_path : Ast.expr -> string list -> bool
(** Does the selection spine (qualifiers ignored) match the given
    root-element-anchored label path exactly (i.e., select the node at
    the path's end)? *)

val matched_root_paths :
  Xmlac_xml.Schema_graph.t -> Ast.expr -> string list list
(** Schema root paths whose end node the expression can select on some
    valid document, with qualifier paths checked for schema
    satisfiability (value constraints ignored). *)

val selected_types : Xmlac_xml.Schema_graph.t -> Ast.expr -> string list
(** End types of {!matched_root_paths}, deduplicated. *)

val satisfiable : Xmlac_xml.Schema_graph.t -> Ast.expr -> bool
(** Whether the expression can select anything on some valid
    document. *)

val overlap : Xmlac_xml.Schema_graph.t -> Ast.expr -> Ast.expr -> bool
(** Some schema root path is selectable by both expressions — the
    over-approximation of [p ∩ q ≠ ∅] written [p ◦◦ q] in the
    paper. *)

val disjoint : Xmlac_xml.Schema_graph.t -> Ast.expr -> Ast.expr -> bool
(** [not (overlap ...)]; sound. *)
