(** XPath containment for XP(/, //, *, \[\], =).

    [contained_in p q] decides [p ⊑ q] — for every tree [T],
    [\[\[p\]\](T) ⊆ \[\[q\]\](T)] — via the canonical homomorphism test:
    [p ⊑ q] iff there is a homomorphism from pattern(q) into
    pattern(p) mapping root to root and output to output, child edges
    to child edges, descendant edges to downward paths of length >= 1,
    labels compatibly ([*] in q matches anything; a name in q requires
    the same name in p), and value constraints by implication.

    The homomorphism test is sound for the whole fragment, and complete
    on the sub-fragments used throughout the paper (in particular
    XP(/, //, \[\]) and XP(/, //, star) — Miklau & Suciu 2004); in the
    presence of both [*] and branching it is a sound
    under-approximation, which only ever makes the optimizer remove
    fewer rules and the trigger fire more rules: safety is
    preserved. *)

val contained_in : Ast.expr -> Ast.expr -> bool
(** [contained_in p q] is [p ⊑ q]. *)

val equivalent : Ast.expr -> Ast.expr -> bool
(** Mutual containment. *)

val comparable : Ast.expr -> Ast.expr -> bool
(** [p ⊑ q or q ⊑ p] — the relation used by the paper's dependency
    graph and Trigger algorithm. *)

val implies : Ast.cmp * string -> Ast.cmp * string -> bool
(** [implies cp cq]: every value satisfying constraint [cp] satisfies
    [cq].  Conservative (may answer [false] on exotic mixed
    numeric/string cases); exposed for tests. *)

(** {1 Schema-aware containment}

    The paper's conclusion calls for schema-aware optimizations "as
    they can produce more accurate results".  [contained_in_schema]
    decides containment {e over documents valid for the schema}: it
    first discards the parts of [p] the schema rules out, then checks
    that every child-only realization of [p]'s spine (descendant steps
    expanded through the schema's label chains) is contained in [q] by
    the homomorphism test.  This proves judgements the pure test
    cannot, e.g. [//dept ⊑ /hospital/dept] under the hospital DTD
    (every dept node sits right below the root), while remaining sound
    for valid documents. *)

val contained_in_schema :
  Xmlac_xml.Schema_graph.t -> Ast.expr -> Ast.expr -> bool
(** [contained_in_schema sg p q]: on every document valid against
    [sg]'s DTD, [\[\[p\]\] ⊆ \[\[q\]\]].  Implies nothing about invalid
    documents.  At least as complete as {!contained_in}. *)
