(** Schema-guided random XPath generation.

    Produces expressions of the paper's fragment that are satisfiable
    by construction (they follow label paths the DTD allows), for the
    coverage-policy dataset, the 55-query response-time workload and
    the property-based tests. *)

type config = {
  descendant_prob : float;  (** Probability of compressing a path
                                segment into a descendant step. *)
  wildcard_prob : float;  (** Probability of replacing a name test with
                              [*]. *)
  pred_prob : float;  (** Probability of attaching a predicate to a
                          step. *)
  value_pred_prob : float;  (** Probability that a predicate is a value
                                comparison rather than an existence
                                test. *)
  max_pred_depth : int;  (** Maximum steps in a predicate path. *)
  value_pool : string -> string list;
      (** Candidate constants for value predicates on a leaf element
          type; return [\[\]] when the type has no values. *)
}

val default_config : config

val gen_expr :
  ?config:config -> Xmlac_util.Prng.t -> Xmlac_xml.Schema_graph.t -> Ast.expr
(** A random absolute expression over the schema. *)

val gen_targeting :
  ?config:config ->
  Xmlac_util.Prng.t ->
  Xmlac_xml.Schema_graph.t ->
  target:string ->
  Ast.expr
(** A random expression whose spine ends at the given element type.
    Raises [Invalid_argument] if the type is unreachable. *)
