open Ast
module Sg = Xmlac_xml.Schema_graph

(* End types of an absolute stripped prefix under the schema; used to
   anchor descendant expansion of qualifier paths. *)
let end_types schema prefix =
  match schema with
  | None -> []
  | Some sg -> Schema_match.selected_types sg { steps = prefix }

(* All child-only label chains realizing [descendant::dst] from any of
   [ctx_types]; each chain excludes the source type and ends with
   [dst]. *)
let descendant_chains sg ctx_types dst =
  List.concat_map
    (fun src ->
      List.filter_map
        (fun path ->
          match path with
          | [] | [ _ ] -> None
          | _ :: rest -> Some rest (* drop the source type itself *))
        (Sg.paths_between sg ~src ~dst))
    ctx_types
  |> List.sort_uniq compare

let expand ?schema (e : expr) =
  let acc = ref [] in
  let emit steps = acc := { steps } :: !acc in
  (* Realizations of one qualifier step as child-only (or verbatim)
     step chains, given the types the prefix may land on. *)
  let realize_step prefix (s : step) : step list list =
    match (s.axis, s.test, schema) with
    | Descendant, Name dst, Some sg -> (
        match end_types schema prefix with
        | [] -> [ [ step Descendant s.test ] ]
        | ctx -> (
            match descendant_chains sg ctx dst with
            | [] -> [ [ step Descendant s.test ] ]
            | chains ->
                List.map
                  (fun chain -> List.map (fun l -> step Child (Name l)) chain)
                  chains))
    | _ -> [ [ step s.axis s.test ] ]
  in
  let rec walk_qual prefix = function
    | And (a, b) ->
        walk_qual prefix a;
        walk_qual prefix b
    | Exists p | Value (p, _, _) -> walk_rel prefix p
  and walk_rel prefix = function
    | [] -> ()
    | s :: rest ->
        List.iter
          (fun chain ->
            (* Every intermediate node of the chain is a prefix the
               update may touch. *)
            let rec along prefix = function
              | [] -> prefix
              | st :: more ->
                  let prefix = prefix @ [ st ] in
                  emit prefix;
                  along prefix more
            in
            let prefix' = along prefix chain in
            List.iter (walk_qual prefix') s.quals;
            walk_rel prefix' rest)
          (realize_step prefix s)
  in
  let rec walk_spine prefix = function
    | [] -> prefix
    | s :: rest ->
        let prefix = prefix @ [ step s.axis s.test ] in
        List.iter (walk_qual prefix) s.quals;
        walk_spine prefix rest
  in
  let spine = walk_spine [] e.steps in
  emit spine;
  (* Dedup syntactically. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let key = Pp.expr_to_string x in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.rev !acc)
