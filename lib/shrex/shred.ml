module Tree = Xmlac_xml.Tree
module Dtd = Xmlac_xml.Dtd
module Db = Xmlac_reldb.Database
module Table = Xmlac_reldb.Table
module Value = Xmlac_reldb.Value
module Sql = Xmlac_reldb.Sql

let tuple_of_node mapping ~default_sign ?(default_bits = Xmlac_util.Bitset.empty)
    (n : Tree.node) =
  let pid =
    match Tree.parent n with
    | None -> Value.Null
    | Some p -> Value.Int p.Tree.id
  in
  let value_cols =
    if Mapping.has_value_column mapping n.Tree.name then
      [ (match n.Tree.value with
        | Some v -> Value.Str v
        | None -> Value.Null) ]
    else []
  in
  [ Value.Int n.Tree.id; pid ] @ value_cols
  @ [ Value.Str default_sign;
      Value.Str (Xmlac_util.Bitset.to_string default_bits) ]

let insert_statements mapping ~default_sign ?default_bits doc =
  List.rev
    (Tree.fold
       (fun acc n ->
         Sql.Insert
           {
             table = n.Tree.name;
             values = tuple_of_node mapping ~default_sign ?default_bits n;
           }
         :: acc)
       [] doc)

let load mapping ~default_sign ?default_bits db doc =
  Mapping.create_tables mapping db;
  Tree.fold
    (fun count n ->
      let table = Db.table db n.Tree.name in
      Table.insert table
        (Array.of_list (tuple_of_node mapping ~default_sign ?default_bits n));
      count + 1)
    0 doc

let load_script db stmts = Xmlac_reldb.Executor.run_script db stmts

let insert_subtree mapping ~default_sign ?default_bits db node =
  let count = ref 0 in
  let rec go (n : Tree.node) =
    let table = Db.table db n.Tree.name in
    Table.insert table
      (Array.of_list (tuple_of_node mapping ~default_sign ?default_bits n));
    incr count;
    List.iter go (Tree.children n)
  in
  go node;
  !count

let node_table mapping db id =
  let rec go = function
    | [] -> None
    | ty :: rest -> (
        match Db.table_opt db ty with
        | Some table when Table.find_by_id table id <> None -> Some table
        | _ -> go rest)
  in
  go (Dtd.element_types (Mapping.dtd mapping))

let delete_subtrees mapping db ids =
  let dtd = Mapping.dtd mapping in
  let deleted = ref 0 in
  (* Recursive subtree deletion: a node of type [ty] can only have
     children in the tables of [ty]'s child types, so each level is a
     handful of pid-index probes. *)
  let rec delete_node ty id =
    List.iter
      (fun child_ty ->
        match Db.table_opt db child_ty with
        | None -> ()
        | Some child_table ->
            let id_col =
              Xmlac_reldb.Schema.column_index (Table.schema child_table) "id"
            in
            let child_ids =
              List.filter_map
                (fun row ->
                  match Table.get child_table ~row ~column:id_col with
                  | Value.Int cid -> Some cid
                  | _ -> None)
                (Table.rows_by_pid child_table id)
            in
            List.iter (delete_node child_ty) child_ids)
      (Dtd.child_types dtd ty);
    match Db.table_opt db ty with
    | Some table when Table.delete_by_id table id -> incr deleted
    | _ -> ()
  in
  List.iter
    (fun id ->
      match node_table mapping db id with
      | Some table -> delete_node (Table.name table) id
      | None -> ())
    ids;
  !deleted
