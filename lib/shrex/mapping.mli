(** The XML-to-relational mapping, à la ShreX (Section 5.2).

    Every element type [E] of the DTD maps to a relational table
    [E(id, pid, v?, s)]:
    - [id] — the universal identifier (the XML node's id), primary key;
    - [pid] — the parent node's id (NULL for the root tuple);
    - [v] — the node's text value, present only for PCDATA types;
    - [s] — the accessibility sign, ["+"] or ["-"].

    The element-type name doubles as the table name, which is safe
    because DTD names are valid SQL identifiers in our dialect. *)

type t

val of_dtd : Xmlac_xml.Dtd.t -> t
(** Requires a non-recursive DTD (the translation of descendant axes
    enumerates schema paths). Raises [Invalid_argument] otherwise. *)

val dtd : t -> Xmlac_xml.Dtd.t
val schema_graph : t -> Xmlac_xml.Schema_graph.t

val relational_schema : t -> Xmlac_reldb.Schema.t
(** One table per element type, in DTD declaration order. *)

val table_for : t -> string -> Xmlac_reldb.Schema.table
(** @raise Not_found for undeclared element types. *)

val has_value_column : t -> string -> bool
(** Whether the element type is PCDATA (its table carries [v]). *)

val create_tables : t -> Xmlac_reldb.Database.t -> unit

val ddl : t -> string
(** The CREATE TABLE script. *)
