(** XPath -> SQL translation over the ShreX mapping (Section 5.2).

    An expression of the fragment compiles to a UNION of conjunctive
    SELECT-PROJECT-JOIN queries, one per way the expression can be
    realized under the schema:

    - a child step becomes a join [child.pid = parent.id];
    - a descendant step anchored at the document root selects the whole
      table of each matching type (type = table membership);
    - an inner descendant step expands to every child-axis label chain
      the (non-recursive) schema allows, each chain a branch of the
      UNION;
    - wildcards branch over the child types the schema permits;
    - qualifiers add joins off the qualified step's alias, and value
      comparisons constrain the [v] column of PCDATA tables.

    Branches that the schema rules out (e.g. a value test on a
    non-PCDATA type) are dropped; an unsatisfiable expression yields a
    query returning no rows.  The produced query projects exactly the
    universal [id] of the selected nodes, so its answer is directly
    comparable with the native store's node set — the property the
    equivalence tests check. *)

val translate : Mapping.t -> Xmlac_xpath.Ast.expr -> Xmlac_reldb.Sql.query
(** Branches are combined with {!Xmlac_reldb.Sql.balanced_union}, so
    the union tree's depth is logarithmic in the branch count. *)

val empty : Mapping.t -> Xmlac_reldb.Sql.query
(** A syntactically valid query with an empty answer on every database
    of the mapping's schema — the relational bottom the annotation
    plan's [Empty] node lowers to. *)

val translate_string : Mapping.t -> string -> Xmlac_reldb.Sql.query
(** Convenience: parse then translate.
    @raise Invalid_argument on parse errors. *)

val eval_ids :
  Mapping.t -> Xmlac_reldb.Database.t -> Xmlac_xpath.Ast.expr -> int list
(** Translate and run, returning selected universal ids, ascending. *)
