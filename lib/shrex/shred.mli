(** Document shredding: XML tree -> relational tuples.

    One tuple per XML node, in the node's element-type table, with the
    node's id as primary key and the parent's id as [pid] (Table 4 of
    the paper).  Signs are initialized to the policy's default
    semantics; the multi-subject bitmap column [b] to [default_bits]
    (the policy's {!Xmlac_core.Policy.default_bits} in production,
    empty when absent). *)

val insert_statements :
  Mapping.t -> default_sign:string -> ?default_bits:Xmlac_util.Bitset.t ->
  Xmlac_xml.Tree.t -> Xmlac_reldb.Sql.stmt list
(** The INSERT script representing the document, in preorder (parents
    before children, so foreign keys always resolve). *)

val load :
  Mapping.t -> default_sign:string -> ?default_bits:Xmlac_util.Bitset.t ->
  Xmlac_reldb.Database.t -> Xmlac_xml.Tree.t -> int
(** Creates the mapped tables and inserts every node directly; returns
    the tuple count. The database must be empty of these tables. *)

val load_script : Xmlac_reldb.Database.t -> Xmlac_reldb.Sql.stmt list -> int
(** Executes a previously rendered INSERT script (tables must already
    exist) — the paper's "loading time" measurement path. *)

val insert_subtree :
  Mapping.t -> default_sign:string -> ?default_bits:Xmlac_util.Bitset.t ->
  Xmlac_reldb.Database.t -> Xmlac_xml.Tree.node -> int
(** Inserts the tuples of a freshly grafted subtree (the node and its
    descendants), reusing the node's universal ids and parent link;
    returns the tuple count.  The parent tuple must already exist. *)

val delete_subtrees : Mapping.t -> Xmlac_reldb.Database.t -> int list -> int
(** Deletes the tuples with the given ids and, transitively, all their
    descendant tuples (children are located through the pid indexes of
    the child-type tables). Returns the number of deleted tuples. *)

val node_table : Mapping.t -> Xmlac_reldb.Database.t -> int -> Xmlac_reldb.Table.t option
(** The table currently holding the tuple with the given universal id,
    found by scanning the (few) table indexes — the paper's
    "iterate over all tables" step. *)
