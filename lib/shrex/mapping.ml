module Dtd = Xmlac_xml.Dtd
module Sg = Xmlac_xml.Schema_graph
module Schema = Xmlac_reldb.Schema

type t = {
  dtd : Dtd.t;
  sg : Sg.t;
  schema : Schema.t;
  by_type : (string, Schema.table) Hashtbl.t;
  pcdata : (string, unit) Hashtbl.t;
}

let of_dtd dtd =
  let sg = Sg.build dtd in
  if Sg.is_recursive sg then
    invalid_arg "Mapping.of_dtd: recursive DTDs are not supported";
  let by_type = Hashtbl.create 32 in
  let pcdata = Hashtbl.create 32 in
  let schema =
    List.map
      (fun ty ->
        let is_pcdata = Dtd.content dtd ty = Dtd.Pcdata in
        if is_pcdata then Hashtbl.replace pcdata ty ();
        let cols =
          [ ("id", Schema.TInt); ("pid", Schema.TInt) ]
          @ (if is_pcdata then [ ("v", Schema.TStr) ] else [])
          @ [ ("s", Schema.TStr); ("b", Schema.TStr) ]
        in
        let table = Schema.table ty cols in
        Hashtbl.replace by_type ty table;
        table)
      (Dtd.element_types dtd)
  in
  { dtd; sg; schema; by_type; pcdata }

let dtd t = t.dtd
let schema_graph t = t.sg
let relational_schema t = t.schema

let table_for t ty =
  match Hashtbl.find_opt t.by_type ty with
  | Some table -> table
  | None -> raise Not_found

let has_value_column t ty = Hashtbl.mem t.pcdata ty

let create_tables t db =
  List.iter
    (fun table -> ignore (Xmlac_reldb.Database.create_table db table))
    t.schema

let ddl t =
  String.concat "\n" (List.map Schema.create_table_sql t.schema) ^ "\n"
