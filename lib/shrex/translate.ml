open Xmlac_xpath.Ast
module Sg = Xmlac_xml.Schema_graph
module Dtd = Xmlac_xml.Dtd
module Sql = Xmlac_reldb.Sql
module Value = Xmlac_reldb.Value

(* A conjunctive branch under construction: the joins and predicates
   accumulated so far, plus the alias/type of the context node. *)
type branch = {
  from : Sql.table_ref list;
  where : Sql.pred list;
  cur_alias : string;
  cur_type : string;
}

type ctx = { mapping : Mapping.t; mutable counter : int }

let fresh ctx ty =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%s%d" ty ctx.counter

let test_ok test ty =
  match test with Wildcard -> true | Name l -> String.equal l ty

(* Extend [b] with a join to a child tuple of type [ty]. *)
let join_child ctx b ty =
  let alias = fresh ctx ty in
  {
    from = b.from @ [ { Sql.table = ty; as_alias = alias } ];
    where =
      b.where
      @ [ Sql.eq (Sql.Col (Sql.col alias "pid")) (Sql.Col (Sql.col b.cur_alias "id")) ];
    cur_alias = alias;
    cur_type = ty;
  }

(* Extend [b] with joins along a child-type chain (excluding the
   source type). *)
let join_chain ctx b chain = List.fold_left (join_child ctx) b chain

(* All chains realizing a descendant step from [ty] to a type matching
   [test]; each chain excludes [ty]. *)
let descendant_chains ctx ty test =
  let sg = Mapping.schema_graph ctx.mapping in
  let dtd = Mapping.dtd ctx.mapping in
  let destinations =
    List.filter
      (fun dst -> test_ok test dst && Sg.reachable sg ~src:ty ~dst)
      (Dtd.element_types dtd)
  in
  List.concat_map
    (fun dst ->
      List.filter_map
        (fun path ->
          match path with [] | [ _ ] -> None | _ :: rest -> Some rest)
        (Sg.paths_between sg ~src:ty ~dst))
    destinations

let rec apply_step ctx (b : branch) (s : step) : branch list =
  let after_axis =
    match s.axis with
    | Child ->
        let kids = Dtd.child_types (Mapping.dtd ctx.mapping) b.cur_type in
        List.filter_map
          (fun ty -> if test_ok s.test ty then Some (join_child ctx b ty) else None)
          kids
    | Descendant ->
        List.map (join_chain ctx b) (descendant_chains ctx b.cur_type s.test)
  in
  List.concat_map (fun b' -> apply_quals ctx b' s.quals) after_axis

and apply_quals ctx b quals =
  List.fold_left
    (fun branches q -> List.concat_map (fun b' -> apply_qual ctx b' q) branches)
    [ b ] quals

(* Qualifiers extend the joins but return to the context alias. *)
and apply_qual ctx (b : branch) (q : qual) : branch list =
  match q with
  | And (a, c) ->
      List.concat_map (fun b' -> apply_qual ctx b' c) (apply_qual ctx b a)
  | Exists p ->
      List.map
        (fun b' -> { b' with cur_alias = b.cur_alias; cur_type = b.cur_type })
        (apply_rel ctx b p)
  | Value (p, op, d) ->
      let ends = apply_rel ctx b p in
      List.filter_map
        (fun b' ->
          if Mapping.has_value_column ctx.mapping b'.cur_type then
            Some
              {
                b' with
                where =
                  b'.where
                  @ [ Sql.Cmp
                        {
                          lhs = Sql.Col (Sql.col b'.cur_alias "v");
                          op = cmp_to_sql op;
                          rhs = Sql.Const (Value.Str d);
                        } ];
                cur_alias = b.cur_alias;
                cur_type = b.cur_type;
              }
          else None)
        ends

and apply_rel ctx b (p : path) : branch list =
  List.fold_left
    (fun branches s -> List.concat_map (fun b' -> apply_step ctx b' s) branches)
    [ b ] p

and cmp_to_sql = function
  | Eq -> Value.Eq
  | Neq -> Value.Neq
  | Lt -> Value.Lt
  | Le -> Value.Le
  | Gt -> Value.Gt
  | Ge -> Value.Ge

(* The first step is anchored at the virtual document root: a child
   step can only land on the DTD's root type (with a NULL pid); a
   descendant step lands on any tuple of a matching type — table
   membership is type membership, so no join is needed. *)
let initial_branches ctx (s : step) : branch list =
  let dtd = Mapping.dtd ctx.mapping in
  let starts =
    match s.axis with
    | Child ->
        let root_ty = Dtd.root dtd in
        if test_ok s.test root_ty then
          let alias = fresh ctx root_ty in
          [ {
              from = [ { Sql.table = root_ty; as_alias = alias } ];
              where = [ Sql.Is_null (Sql.col alias "pid") ];
              cur_alias = alias;
              cur_type = root_ty;
            } ]
        else []
    | Descendant ->
        List.filter_map
          (fun ty ->
            if test_ok s.test ty then
              let alias = fresh ctx ty in
              Some
                {
                  from = [ { Sql.table = ty; as_alias = alias } ];
                  where = [];
                  cur_alias = alias;
                  cur_type = ty;
                }
            else None)
          (Dtd.element_types dtd)
  in
  List.concat_map (fun b -> apply_quals ctx b s.quals) starts

(* A syntactically valid query with an empty answer, for expressions
   the schema rules out entirely. *)
let empty_query mapping =
  let root_ty = Dtd.root (Mapping.dtd mapping) in
  Sql.Select
    {
      proj = [ Sql.col "t0" "id" ];
      from = [ { Sql.table = root_ty; as_alias = "t0" } ];
      where =
        [ Sql.Cmp
            {
              lhs = Sql.Const (Value.Int 0);
              op = Value.Eq;
              rhs = Sql.Const (Value.Int 1);
            } ];
    }

let translate mapping (e : expr) =
  let ctx = { mapping; counter = 0 } in
  let branches =
    match e.steps with
    | [] -> []
    | first :: rest ->
        List.fold_left
          (fun branches s ->
            List.concat_map (fun b -> apply_step ctx b s) branches)
          (initial_branches ctx first)
          rest
  in
  let selects =
    List.map
      (fun b ->
        Sql.Select
          { proj = [ Sql.col b.cur_alias "id" ]; from = b.from; where = b.where })
      branches
  in
  match Sql.balanced_union selects with
  | None -> empty_query mapping
  | Some q -> q

let empty = empty_query

let translate_string mapping s =
  translate mapping (Xmlac_xpath.Parser.parse_exn s)

let eval_ids mapping db e =
  Xmlac_reldb.Executor.query_ids db (translate mapping e)
