module Prng = Xmlac_util.Prng
module Dtd = Xmlac_xml.Dtd
module Tree = Xmlac_xml.Tree
module Sg = Xmlac_xml.Schema_graph

type config = {
  fanout : rng:Prng.t -> parent:string -> child:string ->
           Dtd.occurrence -> int;
  value : rng:Prng.t -> elem:string -> string;
  choice : rng:Prng.t -> parent:string ->
           Dtd.particle list -> Dtd.particle option;
}

let default_config =
  {
    fanout =
      (fun ~rng ~parent:_ ~child:_ occ ->
        match occ with
        | Dtd.One -> 1
        | Dtd.Optional -> if Prng.bool rng then 1 else 0
        | Dtd.Star -> Prng.geometric rng 0.4
        | Dtd.Plus -> 1 + Prng.geometric rng 0.4);
    value = (fun ~rng ~elem:_ -> Prng.word rng (Prng.int_in rng 3 8));
    choice =
      (fun ~rng ~parent:_ particles ->
        let optionalish (p : Dtd.particle) =
          p.Dtd.occ = Dtd.Optional || p.Dtd.occ = Dtd.Star
        in
        if List.for_all optionalish particles && Prng.bernoulli rng 0.1 then None
        else Some (Prng.choose_list rng particles));
  }

let clamp occ n =
  match occ with
  | Dtd.One -> 1
  | Dtd.Optional -> max 0 (min 1 n)
  | Dtd.Star -> max 0 n
  | Dtd.Plus -> max 1 n

let generate ?(config = default_config) ~rng dtd =
  let sg = Sg.build dtd in
  if Sg.is_recursive sg then
    invalid_arg "Docgen.generate: recursive DTD";
  let doc = Tree.create ~root_name:(Dtd.root dtd) in
  let rec fill (node : Tree.node) =
    let ty = node.Tree.name in
    match Dtd.content dtd ty with
    | Dtd.Empty -> ()
    | Dtd.Pcdata ->
        Tree.set_value doc node (Some (config.value ~rng ~elem:ty))
    | Dtd.Seq particles ->
        List.iter
          (fun (p : Dtd.particle) ->
            let n =
              clamp p.Dtd.occ
                (config.fanout ~rng ~parent:ty ~child:p.Dtd.elem p.Dtd.occ)
            in
            for _ = 1 to n do
              fill (Tree.add_child doc node p.Dtd.elem)
            done)
          particles
    | Dtd.Choice particles -> (
        match config.choice ~rng ~parent:ty particles with
        | None -> ()
        | Some p ->
            let n =
              clamp p.Dtd.occ
                (max 1
                   (config.fanout ~rng ~parent:ty ~child:p.Dtd.elem p.Dtd.occ))
            in
            for _ = 1 to n do
              fill (Tree.add_child doc node p.Dtd.elem)
            done)
  in
  fill (Tree.root doc);
  doc
