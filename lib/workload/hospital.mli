(** The paper's motivating example (Section 1.1): the hospital schema
    of Figure 1, the partial document of Figure 2, and the policy of
    Table 1. *)

val dtd : Xmlac_xml.Dtd.t
(** hospital(dept+), dept(patients, staffinfo), patients(patient
    starred), staffinfo(staff starred), patient(psn, name, treatment?),
    treatment(regular? | experimental?), regular(med, bill),
    experimental(test, bill), staff(nurse | doctor),
    nurse/doctor(sid, name, phone); leaves are PCDATA. *)

val sample_document : unit -> Xmlac_xml.Tree.t
(** Figure 2: three patients — john doe (033, regular: enoxaparin,
    bill 700), jane doe (042, experimental: "regression hypnosis",
    bill 1600), joy smith (099, no treatment). *)

val policy : Xmlac_core.Policy.t
(** Table 1 (R1-R8), with the paper's running configuration: default
    semantics deny, conflict resolution deny overrides. *)

val optimized_rule_names : string list
(** Table 3: the redundancy-free policy keeps R1, R2, R3, R5, R6. *)

val accessible_sample_ids : unit -> int list
(** Reference accessible node set for {!sample_document} under
    {!policy} — used as a golden value in tests. *)

val generate :
  ?seed:int64 -> departments:int -> patients_per_dept:int -> unit ->
  Xmlac_xml.Tree.t
(** A larger random hospital instance (valid against {!dtd}) with the
    same value distributions as the sample: psn numbers, human-ish
    names, medication names including "celecoxib", bills in
    100..2000. *)
