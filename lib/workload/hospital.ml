module Dtd = Xmlac_xml.Dtd
module Tree = Xmlac_xml.Tree
module Prng = Xmlac_util.Prng
module Rule = Xmlac_core.Rule
module Policy = Xmlac_core.Policy

let dtd =
  Dtd.make ~root:"hospital"
    [
      ("hospital", Dtd.Seq [ { elem = "dept"; occ = Dtd.Plus } ]);
      ( "dept",
        Dtd.Seq
          [ { elem = "patients"; occ = Dtd.One };
            { elem = "staffinfo"; occ = Dtd.One } ] );
      ("patients", Dtd.Seq [ { elem = "patient"; occ = Dtd.Star } ]);
      ("staffinfo", Dtd.Seq [ { elem = "staff"; occ = Dtd.Star } ]);
      ( "patient",
        Dtd.Seq
          [ { elem = "psn"; occ = Dtd.One };
            { elem = "name"; occ = Dtd.One };
            { elem = "treatment"; occ = Dtd.Optional } ] );
      ( "treatment",
        Dtd.Choice
          [ { elem = "regular"; occ = Dtd.Optional };
            { elem = "experimental"; occ = Dtd.Optional } ] );
      ( "regular",
        Dtd.Seq
          [ { elem = "med"; occ = Dtd.One }; { elem = "bill"; occ = Dtd.One } ] );
      ( "experimental",
        Dtd.Seq
          [ { elem = "test"; occ = Dtd.One }; { elem = "bill"; occ = Dtd.One } ] );
      ( "staff",
        Dtd.Choice
          [ { elem = "nurse"; occ = Dtd.One };
            { elem = "doctor"; occ = Dtd.One } ] );
      ( "nurse",
        Dtd.Seq
          [ { elem = "sid"; occ = Dtd.One };
            { elem = "name"; occ = Dtd.One };
            { elem = "phone"; occ = Dtd.One } ] );
      ( "doctor",
        Dtd.Seq
          [ { elem = "sid"; occ = Dtd.One };
            { elem = "name"; occ = Dtd.One };
            { elem = "phone"; occ = Dtd.One } ] );
      ("psn", Dtd.Pcdata);
      ("name", Dtd.Pcdata);
      ("sid", Dtd.Pcdata);
      ("phone", Dtd.Pcdata);
      ("med", Dtd.Pcdata);
      ("bill", Dtd.Pcdata);
      ("test", Dtd.Pcdata);
    ]

type treatment =
  | Regular of string * string
  | Experimental of string * string
  | Unspecified  (** An empty treatment element — allowed by the choice
                     content model (both branches optional). *)

let add_patient doc patients ~psn ~name treatment =
  let p = Tree.add_child doc patients "patient" in
  ignore (Tree.add_child doc p ~value:psn "psn");
  ignore (Tree.add_child doc p ~value:name "name");
  (match treatment with
  | None -> ()
  | Some t ->
      let tr = Tree.add_child doc p "treatment" in
      (match t with
      | Regular (med, bill) ->
          let r = Tree.add_child doc tr "regular" in
          ignore (Tree.add_child doc r ~value:med "med");
          ignore (Tree.add_child doc r ~value:bill "bill")
      | Experimental (test, bill) ->
          let e = Tree.add_child doc tr "experimental" in
          ignore (Tree.add_child doc e ~value:test "test");
          ignore (Tree.add_child doc e ~value:bill "bill")
      | Unspecified -> ()));
  p

let add_staff doc staffinfo ~kind ~sid ~name ~phone =
  let s = Tree.add_child doc staffinfo "staff" in
  let k = Tree.add_child doc s kind in
  ignore (Tree.add_child doc k ~value:sid "sid");
  ignore (Tree.add_child doc k ~value:name "name");
  ignore (Tree.add_child doc k ~value:phone "phone");
  s

let sample_document () =
  let doc = Tree.create ~root_name:"hospital" in
  let dept = Tree.add_child doc (Tree.root doc) "dept" in
  let patients = Tree.add_child doc dept "patients" in
  let _ = Tree.add_child doc dept "staffinfo" in
  ignore
    (add_patient doc patients ~psn:"033" ~name:"john doe"
       (Some (Regular ("enoxaparin", "700"))));
  ignore
    (add_patient doc patients ~psn:"042" ~name:"jane doe"
       (Some (Experimental ("regression hypnosis", "1600"))));
  ignore (add_patient doc patients ~psn:"099" ~name:"joy smith" None);
  doc

(* Table 1. *)
let policy =
  Policy.make ~ds:Rule.Minus ~cr:Rule.Minus
    [
      Rule.parse ~name:"R1" "//patient" Rule.Plus;
      Rule.parse ~name:"R2" "//patient/name" Rule.Plus;
      Rule.parse ~name:"R3" "//patient[treatment]" Rule.Minus;
      Rule.parse ~name:"R4" "//patient[treatment]/name" Rule.Plus;
      Rule.parse ~name:"R5" "//patient[.//experimental]" Rule.Minus;
      Rule.parse ~name:"R6" "//regular" Rule.Plus;
      Rule.parse ~name:"R7" "//regular[med = \"celecoxib\"]" Rule.Plus;
      Rule.parse ~name:"R8" "//regular[bill > 1000]" Rule.Plus;
    ]

let optimized_rule_names = [ "R1"; "R2"; "R3"; "R5"; "R6" ]

let accessible_sample_ids () =
  let doc = sample_document () in
  Policy.accessible_ids policy doc

let first_names =
  [| "john"; "jane"; "joy"; "mary"; "peter"; "ana"; "george"; "lena";
     "nick"; "irene"; "sotiris"; "laz"; "chris"; "eva"; "max"; "tina" |]

let last_names =
  [| "doe"; "smith"; "jones"; "brown"; "murphy"; "adams"; "clark";
     "lewis"; "walker"; "young"; "harris"; "baker" |]

let meds =
  [| "enoxaparin"; "celecoxib"; "aspirin"; "ibuprofen"; "heparin";
     "atenolol"; "insulin"; "amoxicillin" |]

let tests =
  [| "regression hypnosis"; "gene panel"; "mri contrast"; "sleep study";
     "immunotherapy trial" |]

let generate ?(seed = 42L) ~departments ~patients_per_dept () =
  let rng = Prng.create ~seed in
  let doc = Tree.create ~root_name:"hospital" in
  let root = Tree.root doc in
  for _ = 1 to departments do
    let dept = Tree.add_child doc root "dept" in
    let patients = Tree.add_child doc dept "patients" in
    let staffinfo = Tree.add_child doc dept "staffinfo" in
    for _ = 1 to patients_per_dept do
      let psn = Printf.sprintf "%03d" (Prng.int rng 1000) in
      let name =
        Prng.choose rng first_names ^ " " ^ Prng.choose rng last_names
      in
      let treatment =
        if Prng.bernoulli rng 0.3 then None
        else if Prng.bernoulli rng 0.1 then Some Unspecified
        else if Prng.bernoulli rng 0.7 then
          Some
            (Regular
               ( Prng.choose rng meds,
                 string_of_int (100 + Prng.int rng 1900) ))
        else
          Some
            (Experimental
               ( Prng.choose rng tests,
                 string_of_int (500 + Prng.int rng 2500) ))
      in
      ignore (add_patient doc patients ~psn ~name treatment)
    done;
    let staff_count = max 1 (patients_per_dept / 4) in
    for _ = 1 to staff_count do
      let kind = if Prng.bool rng then "doctor" else "nurse" in
      ignore
        (add_staff doc staffinfo ~kind
           ~sid:(Printf.sprintf "S%04d" (Prng.int rng 10000))
           ~name:(Prng.choose rng first_names ^ " " ^ Prng.choose rng last_names)
           ~phone:(Printf.sprintf "555-%04d" (Prng.int rng 10000)))
    done
  done;
  doc
