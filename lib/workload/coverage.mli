(** The coverage policy dataset (Section 7.1).

    The paper crafts policies that "force the system to annotate
    increasingly larger portions of the data" and verifies achieved
    coverage after each annotation.  We do the same programmatically:
    a fixed set of small negative rules plus positive rules added
    greedily (largest node populations first) until the measured
    accessible fraction of a reference document reaches the target.
    All policies use the deny/deny configuration, like the paper. *)

val coverage_of : Xmlac_core.Policy.t -> Xmlac_xml.Tree.t -> float
(** Accessible fraction of the document's nodes in [0, 1]. *)

val policy_for_target :
  doc:Xmlac_xml.Tree.t -> target:float -> Xmlac_core.Policy.t
(** Smallest greedy policy whose coverage on [doc] is >= [target]
    (or the maximal candidate policy if the target is unreachable). *)

val dataset :
  doc:Xmlac_xml.Tree.t -> targets:float list ->
  (float * Xmlac_core.Policy.t) list
(** One policy per target, tagged with its {e measured} coverage on
    [doc] — the x-axis values of Figure 11. *)

val standard_targets : float list
(** 0.25, 0.30, ..., 0.70 — the range of Figure 11. *)
