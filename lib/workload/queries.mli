(** The query and update workloads of Section 7.2.

    The paper runs "55 different queries (of the same complexity as
    the coverage policy dataset)" for the response-time experiment
    (Figure 10) and reuses the same 55 expressions as delete updates
    for the re-annotation experiment (Figure 12).  The queries are
    synthesized from the XMark schema with a fixed seed, so every run
    of the benchmark sees the same workload. *)

val response_queries : ?n:int -> ?seed:int64 -> unit -> Xmlac_xpath.Ast.expr list
(** [n] defaults to 55. Schema-guided over {!Xmark.dtd}, with value
    predicates drawn from {!Xmark.value_pool}. *)

val delete_updates : ?n:int -> ?seed:int64 -> unit -> Xmlac_xpath.Ast.expr list
(** The same expressions filtered for use as delete updates: the
    document root is never a target. *)
