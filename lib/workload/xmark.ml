module Dtd = Xmlac_xml.Dtd
module Tree = Xmlac_xml.Tree
module Prng = Xmlac_util.Prng

let seq particles =
  Dtd.Seq
    (List.map (fun (elem, occ) -> { Dtd.elem; occ }) particles)

let dtd =
  Dtd.make ~root:"site"
    [
      ( "site",
        seq
          [ ("regions", Dtd.One); ("categories", Dtd.One);
            ("people", Dtd.One); ("open_auctions", Dtd.One);
            ("closed_auctions", Dtd.One) ] );
      ( "regions",
        seq
          [ ("africa", Dtd.One); ("asia", Dtd.One); ("australia", Dtd.One);
            ("europe", Dtd.One); ("namerica", Dtd.One);
            ("samerica", Dtd.One) ] );
      ("africa", seq [ ("item", Dtd.Star) ]);
      ("asia", seq [ ("item", Dtd.Star) ]);
      ("australia", seq [ ("item", Dtd.Star) ]);
      ("europe", seq [ ("item", Dtd.Star) ]);
      ("namerica", seq [ ("item", Dtd.Star) ]);
      ("samerica", seq [ ("item", Dtd.Star) ]);
      ( "item",
        seq
          [ ("location", Dtd.One); ("quantity", Dtd.One); ("name", Dtd.One);
            ("payment", Dtd.One); ("description", Dtd.One);
            ("shipping", Dtd.Optional) ] );
      ("categories", seq [ ("category", Dtd.Star) ]);
      ("category", seq [ ("name", Dtd.One); ("description", Dtd.One) ]);
      ("people", seq [ ("person", Dtd.Star) ]);
      ( "person",
        seq
          [ ("name", Dtd.One); ("emailaddress", Dtd.One);
            ("phone", Dtd.Optional); ("address", Dtd.Optional);
            ("creditcard", Dtd.Optional); ("profile", Dtd.Optional);
            ("watches", Dtd.Optional) ] );
      ( "address",
        seq
          [ ("street", Dtd.One); ("city", Dtd.One); ("country", Dtd.One);
            ("zipcode", Dtd.One) ] );
      ( "profile",
        seq
          [ ("interest", Dtd.Star); ("education", Dtd.Optional);
            ("gender", Dtd.Optional); ("business", Dtd.One);
            ("age", Dtd.Optional) ] );
      ("watches", seq [ ("watch", Dtd.Star) ]);
      ("open_auctions", seq [ ("open_auction", Dtd.Star) ]);
      ( "open_auction",
        seq
          [ ("initial", Dtd.One); ("reserve", Dtd.Optional);
            ("bidder", Dtd.Star); ("current", Dtd.One);
            ("itemref", Dtd.One); ("seller", Dtd.One);
            ("quantity", Dtd.One); ("type", Dtd.One);
            ("interval", Dtd.One) ] );
      ("bidder", seq [ ("date", Dtd.One); ("time", Dtd.One); ("increase", Dtd.One) ]);
      ("interval", seq [ ("start", Dtd.One); ("end", Dtd.One) ]);
      ("closed_auctions", seq [ ("closed_auction", Dtd.Star) ]);
      ( "closed_auction",
        seq
          [ ("seller", Dtd.One); ("buyer", Dtd.One); ("itemref", Dtd.One);
            ("price", Dtd.One); ("date", Dtd.One); ("quantity", Dtd.One);
            ("type", Dtd.One); ("annotation", Dtd.Optional) ] );
      ( "annotation",
        seq
          [ ("author", Dtd.One); ("description", Dtd.One);
            ("happiness", Dtd.One) ] );
      (* Leaves. *)
      ("location", Dtd.Pcdata);
      ("quantity", Dtd.Pcdata);
      ("name", Dtd.Pcdata);
      ("payment", Dtd.Pcdata);
      ("description", Dtd.Pcdata);
      ("shipping", Dtd.Pcdata);
      ("emailaddress", Dtd.Pcdata);
      ("phone", Dtd.Pcdata);
      ("street", Dtd.Pcdata);
      ("city", Dtd.Pcdata);
      ("country", Dtd.Pcdata);
      ("zipcode", Dtd.Pcdata);
      ("creditcard", Dtd.Pcdata);
      ("interest", Dtd.Pcdata);
      ("education", Dtd.Pcdata);
      ("gender", Dtd.Pcdata);
      ("business", Dtd.Pcdata);
      ("age", Dtd.Pcdata);
      ("watch", Dtd.Pcdata);
      ("initial", Dtd.Pcdata);
      ("reserve", Dtd.Pcdata);
      ("current", Dtd.Pcdata);
      ("itemref", Dtd.Pcdata);
      ("seller", Dtd.Pcdata);
      ("type", Dtd.Pcdata);
      ("date", Dtd.Pcdata);
      ("time", Dtd.Pcdata);
      ("increase", Dtd.Pcdata);
      ("start", Dtd.Pcdata);
      ("end", Dtd.Pcdata);
      ("buyer", Dtd.Pcdata);
      ("price", Dtd.Pcdata);
      ("author", Dtd.Pcdata);
      ("happiness", Dtd.Pcdata);
    ]

(* Value pools, shared between generation and query synthesis. *)
let countries =
  [ "United States"; "Greece"; "Germany"; "Japan"; "Brazil"; "Kenya";
    "Australia"; "France" ]

let cities =
  [ "Heraklion"; "Athens"; "Berlin"; "Tokyo"; "Sao Paulo"; "Nairobi";
    "Sydney"; "Paris" ]

let payments = [ "Cash"; "Creditcard"; "Money order"; "Personal Check" ]
let educations = [ "High School"; "College"; "Graduate School"; "Other" ]
let genders = [ "male"; "female" ]
let booleans = [ "Yes"; "No" ]
let auction_types = [ "Regular"; "Featured" ]
let happiness_levels = List.init 10 (fun i -> string_of_int (i + 1))
let quantities = List.init 10 (fun i -> string_of_int (i + 1))

let value_pool = function
  | "country" -> countries
  | "city" -> cities
  | "payment" -> payments
  | "education" -> educations
  | "gender" -> genders
  | "business" -> booleans
  | "type" -> auction_types
  | "happiness" -> happiness_levels
  | "quantity" -> quantities
  | "age" -> [ "18"; "25"; "30"; "40"; "50"; "65" ]
  | "price" | "initial" | "current" | "reserve" | "increase" ->
      [ "10"; "50"; "100"; "500"; "1000"; "5000" ]
  | _ -> []

(* Baseline entity counts at f = 1. *)
let base_items = 2000 (* spread over 6 regions *)
let base_people = 2500
let base_open = 1200
let base_closed = 1000
let base_categories = 100

let scaled factor base = max 1 (int_of_float (ceil (float_of_int base *. factor)))

let node_count_estimate ~factor =
  (* Average subtree sizes measured from the generator: item ~8,
     person ~14, open_auction ~17, closed_auction ~12, category ~3. *)
  13
  + (scaled factor base_items * 8)
  + (scaled factor base_people * 14)
  + (scaled factor base_open * 17)
  + (scaled factor base_closed * 12)
  + (scaled factor base_categories * 3)

let standard_factors = [ 0.0001; 0.001; 0.01; 0.1; 1.0; 2.0; 10.0 ]

let pick rng pool = Prng.choose_list rng pool

let date rng =
  Printf.sprintf "%02d/%02d/%4d" (Prng.int_in rng 1 12) (Prng.int_in rng 1 28)
    (Prng.int_in rng 1998 2001)

let time rng =
  Printf.sprintf "%02d:%02d:%02d" (Prng.int_in rng 0 23) (Prng.int_in rng 0 59)
    (Prng.int_in rng 0 59)

let money rng hi = Printf.sprintf "%d.%02d" (Prng.int_in rng 1 hi) (Prng.int rng 100)

let person_name rng =
  String.capitalize_ascii (Prng.word rng (Prng.int_in rng 3 7))
  ^ " "
  ^ String.capitalize_ascii (Prng.word rng (Prng.int_in rng 4 9))

let leaf_value rng = function
  | "location" | "country" -> pick rng countries
  | "city" -> pick rng cities
  | "quantity" -> pick rng quantities
  | "name" -> person_name rng
  | "payment" -> pick rng payments
  | "description" -> Prng.words rng (Prng.int_in rng 3 12)
  | "shipping" -> "Will ship " ^ (if Prng.bool rng then "internationally" else "only within country")
  | "emailaddress" -> Printf.sprintf "mailto:%s@example.com" (Prng.word rng 8)
  | "phone" -> Printf.sprintf "+%d (%d) %d" (Prng.int_in rng 1 99) (Prng.int_in rng 10 999) (Prng.int_in rng 1000000 9999999)
  | "street" -> Printf.sprintf "%d %s St" (Prng.int_in rng 1 99) (String.capitalize_ascii (Prng.word rng 6))
  | "zipcode" -> string_of_int (Prng.int_in rng 10000 99999)
  | "creditcard" ->
      Printf.sprintf "%04d %04d %04d %04d" (Prng.int rng 10000)
        (Prng.int rng 10000) (Prng.int rng 10000) (Prng.int rng 10000)
  | "interest" -> "category" ^ string_of_int (Prng.int_in rng 1 50)
  | "education" -> pick rng educations
  | "gender" -> pick rng genders
  | "business" -> pick rng booleans
  | "age" -> string_of_int (Prng.int_in rng 18 80)
  | "watch" -> "open_auction" ^ string_of_int (Prng.int_in rng 1 1000)
  | "initial" -> money rng 300
  | "reserve" -> money rng 800
  | "current" -> money rng 2000
  | "increase" -> money rng 30
  | "itemref" -> "item" ^ string_of_int (Prng.int_in rng 1 10000)
  | "seller" | "buyer" | "author" -> "person" ^ string_of_int (Prng.int_in rng 1 10000)
  | "type" -> pick rng auction_types
  | "date" -> date rng
  | "time" -> time rng
  | "start" -> date rng
  | "end" -> date rng
  | "price" -> money rng 3000
  | "happiness" -> pick rng happiness_levels
  | other -> Prng.word rng (String.length other)

let generate ?(seed = 20090101L) ~factor () =
  if factor <= 0.0 then invalid_arg "Xmark.generate: factor must be positive";
  let rng = Prng.create ~seed in
  (* Entity counts at this scale. *)
  let items = scaled factor base_items in
  let people = scaled factor base_people in
  let opens = scaled factor base_open in
  let closeds = scaled factor base_closed in
  let categories = scaled factor base_categories in
  (* Per-star-particle fan-outs: entity lists get their scaled counts;
     small inner lists (bidders, interests, watches) stay
     size-independent, as in xmlgen. *)
  let region_counts = Array.make 6 (items / 6) in
  for i = 0 to (items mod 6) - 1 do
    region_counts.(i) <- region_counts.(i) + 1
  done;
  let region_index = ref 0 in
  let fanout ~rng ~parent ~child occ =
    match (parent, child) with
    | ( ("africa" | "asia" | "australia" | "europe" | "namerica" | "samerica"),
        "item" ) ->
        let n = region_counts.(!region_index mod 6) in
        incr region_index;
        n
    | "people", "person" -> people
    | "open_auctions", "open_auction" -> opens
    | "closed_auctions", "closed_auction" -> closeds
    | "categories", "category" -> categories
    | "open_auction", "bidder" -> Prng.geometric rng 0.35
    | "profile", "interest" -> Prng.geometric rng 0.5
    | "watches", "watch" -> Prng.geometric rng 0.4
    | _, _ -> (
        match occ with
        | Dtd.One -> 1
        | Dtd.Optional -> if Prng.bernoulli rng 0.6 then 1 else 0
        | Dtd.Star -> Prng.geometric rng 0.5
        | Dtd.Plus -> 1 + Prng.geometric rng 0.5)
  in
  let config =
    {
      Docgen.fanout;
      value = (fun ~rng ~elem -> leaf_value rng elem);
      choice =
        (fun ~rng ~parent:_ particles -> Some (Prng.choose_list rng particles));
    }
  in
  Docgen.generate ~config ~rng dtd
