module Prng = Xmlac_util.Prng
module Sg = Xmlac_xml.Schema_graph
module Qgen = Xmlac_xpath.Qgen
module Ast = Xmlac_xpath.Ast

let sg = lazy (Sg.build Xmark.dtd)

let config =
  {
    Qgen.default_config with
    Qgen.value_pool = Xmark.value_pool;
    pred_prob = 0.35;
    descendant_prob = 0.4;
    wildcard_prob = 0.05;
  }

let response_queries ?(n = 55) ?(seed = 55L) () =
  let rng = Prng.create ~seed in
  let sg = Lazy.force sg in
  List.init n (fun _ -> Qgen.gen_expr ~config rng sg)

(* An expression is root-selecting when its spine is a single step that
   can match the root element. *)
let selects_root (e : Ast.expr) =
  match e.Ast.steps with
  | [ s ] -> (
      match s.Ast.test with
      | Ast.Wildcard -> true
      | Ast.Name l -> String.equal l "site")
  | _ -> false

let delete_updates ?(n = 55) ?(seed = 55L) () =
  let rng = Prng.create ~seed in
  let sg = Lazy.force sg in
  let rec collect acc k =
    if k = 0 then List.rev acc
    else
      let e = Qgen.gen_expr ~config rng sg in
      if selects_root e then collect acc k
      else collect (e :: acc) (k - 1)
  in
  collect [] n
