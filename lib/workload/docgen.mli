(** Generic random document generation from a DTD.

    Drives all synthetic workloads (the XMark-like dataset, enlarged
    hospital instances, property-test documents).  Fan-outs and leaf
    values are supplied by callbacks so each workload can shape its own
    distributions; the result is always valid against the DTD by
    construction. *)

type config = {
  fanout : rng:Xmlac_util.Prng.t -> parent:string -> child:string ->
           Xmlac_xml.Dtd.occurrence -> int;
      (** How many [child] elements to put under a [parent]; the result
          is clamped to the occurrence's legal range (0/1 minimums, 1
          maximum for [One]/[Optional]). *)
  value : rng:Xmlac_util.Prng.t -> elem:string -> string;
      (** Text for a PCDATA element. *)
  choice : rng:Xmlac_util.Prng.t -> parent:string ->
           Xmlac_xml.Dtd.particle list -> Xmlac_xml.Dtd.particle option;
      (** Which branch of a choice to take; [None] leaves the element
          empty (allowed only when every branch is optional). *)
}

val default_config : config
(** Geometric fan-outs (mean ~2) for starred particles, fair choice
    branches, short pseudo-word values. *)

val generate :
  ?config:config -> rng:Xmlac_util.Prng.t -> Xmlac_xml.Dtd.t -> Xmlac_xml.Tree.t
(** A fresh document rooted at the DTD's root type.  Raises
    [Invalid_argument] for recursive DTDs (generation may not
    terminate otherwise). *)
