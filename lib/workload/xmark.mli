(** The XMark-like benchmark dataset.

    The paper generates its documents with xmlgen from the XMark
    project, {e modified to eliminate all recursive paths} (Section
    7.1) so that the ShreX-style shredding and the schema-based
    expansion work.  This module is that modified generator: an auction
    site schema (regions/items, categories, people, open and closed
    auctions) without the recursive description/parlist part, driven by
    the same scale-factor parameter [f].

    Sizes are scaled down relative to the original xmlgen (f = 1 is
    roughly 10^5 nodes rather than 79 MB of XML) so the whole sweep
    fits a single-machine benchmark run; all figures compare shapes
    across [f], which scaling preserves. *)

val dtd : Xmlac_xml.Dtd.t

val generate : ?seed:int64 -> factor:float -> unit -> Xmlac_xml.Tree.t
(** Deterministic in [(seed, factor)]. [factor] must be positive. *)

val node_count_estimate : factor:float -> int
(** Rough expected node count, for sizing tables. *)

val value_pool : string -> string list
(** Candidate constants per PCDATA element type, matching the
    generator's own distributions — feeds value predicates in
    {!Xmlac_xpath.Qgen} so that generated queries actually select
    something. *)

val standard_factors : float list
(** The paper's Table 5 ladder: 0.0001, 0.001, 0.01, 0.1, 1, 2, 10. *)
