module Tree = Xmlac_xml.Tree
module Rule = Xmlac_core.Rule
module Policy = Xmlac_core.Policy

let coverage_of policy doc =
  let accessible = List.length (Policy.accessible_ids policy doc) in
  let total = Tree.size doc in
  if total = 0 then 0.0 else float_of_int accessible /. float_of_int total

(* A few deny rules over small, meaningful regions: sensitive person
   data and featured auctions. They keep the EXCEPT branch of the
   annotation query and the dependency machinery exercised. *)
let negative_rules =
  [
    Rule.parse ~name:"D1" "//creditcard" Rule.Minus;
    Rule.parse ~name:"D2" "//person[creditcard]/profile" Rule.Minus;
    Rule.parse ~name:"D3" "//open_auction[type = \"Featured\"]/reserve" Rule.Minus;
  ]

(* Candidate positive rules, roughly ordered from broad to narrow so
   the greedy loop can both leap and fine-tune. *)
let positive_candidates =
  [
    "//person"; "//open_auction"; "//item"; "//closed_auction";
    "//bidder"; "//address"; "//profile"; "//annotation"; "//interval";
    "//category"; "//watches"; "//name"; "//description"; "//date";
    "//quantity"; "//seller"; "//itemref"; "//price"; "//increase";
    "//time"; "//initial"; "//current"; "//emailaddress"; "//phone";
    "//street"; "//city"; "//country"; "//zipcode"; "//interest";
    "//education"; "//gender"; "//business"; "//age"; "//watch";
    "//type"; "//payment"; "//location"; "//buyer"; "//author";
    "//happiness"; "//start"; "//end"; "//reserve"; "//shipping";
    "//regions"; "//categories"; "//people"; "//open_auctions";
    "//closed_auctions"; "//africa"; "//asia"; "//australia";
    "//europe"; "//namerica"; "//samerica"; "/site";
  ]

let policy_for_target ~doc ~target =
  let base = Policy.make ~ds:Rule.Minus ~cr:Rule.Minus negative_rules in
  let rec grow policy candidates i =
    if coverage_of policy doc >= target then policy
    else
      match candidates with
      | [] -> policy
      | c :: rest ->
          let rule = Rule.parse ~name:(Printf.sprintf "A%d" i) c Rule.Plus in
          grow
            (Policy.with_rules policy (Policy.rules policy @ [ rule ]))
            rest (i + 1)
  in
  grow base positive_candidates 1

let dataset ~doc ~targets =
  List.map
    (fun target ->
      let p = policy_for_target ~doc ~target in
      (coverage_of p doc, p))
    targets

let standard_targets =
  [ 0.25; 0.30; 0.35; 0.40; 0.45; 0.50; 0.55; 0.60; 0.65; 0.70 ]
