type t = Null | Int of int | Str of string

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | (Null | Int _ | Str _), _ -> false

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1
  | Str x, Str y -> String.compare x y

type cmp = Eq | Neq | Lt | Le | Gt | Ge

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* The string forms feeding the dual numeric/lexicographic comparison
   used on the XPath side. *)
let scalar_compare a b =
  let as_strings x =
    match x with Int i -> string_of_int i | Str s -> s | Null -> assert false
  in
  let sa = as_strings a and sb = as_strings b in
  match (float_of_string_opt sa, float_of_string_opt sb) with
  | Some x, Some y -> Stdlib.compare x y
  | _ -> String.compare sa sb

let cmp_holds op a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | _ ->
      let c = scalar_compare a b in
      (match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)

let to_literal = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Str s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_literal v)
