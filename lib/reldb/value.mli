(** SQL values.

    The shredded representation only needs integers (universal ids),
    strings (node values, signs) and NULL (the root's missing parent);
    see Table 4 of the paper. *)

type t = Null | Int of int | Str of string

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order used for sorting and set operations: Null < Int < Str;
    ints numerically, strings lexicographically. *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

val cmp_to_string : cmp -> string

val cmp_holds : cmp -> t -> t -> bool
(** SQL-style comparison: any comparison involving [Null] is false.
    [Int]-[Str] comparisons coerce the string numerically when
    possible, otherwise compare the printed forms — mirroring the
    XPath-side [Xmlac_xpath.Ast.cmp_holds] so both backends agree. *)

val to_literal : t -> string
(** SQL literal syntax: [NULL], [42], ['it''s']. *)

val pp : Format.formatter -> t -> unit
