(** Query and statement evaluation.

    Selects are evaluated by nested-loop joins accelerated with the
    id/pid hash indexes — the translated XPath queries are chains of
    parent/child equijoins (Section 5.2), which this planner turns into
    index walks.  UNION / EXCEPT / INTERSECT follow SQL set semantics
    (duplicates eliminated), exactly what Annotation-Queries relies
    on. *)

type row = Value.t array

val run_query : Database.t -> Sql.query -> row list
(** Rows in no particular order; set operations deduplicate.

    Distinctness caveat: aliases that are neither projected nor
    referenced by later predicates are treated as EXISTS witnesses
    (first match wins), so result multiplicities follow
    [SELECT DISTINCT] rather than SQL bag semantics.  Every query the
    ShreX translation emits projects node ids and is consumed through
    {!query_ids}, for which the two semantics coincide. *)

val query_ids : Database.t -> Sql.query -> int list
(** First projected column of every result row as ids, ascending,
    deduplicated. Non-integer values raise [Invalid_argument]. *)

val run_stmt : Database.t -> Sql.stmt -> int
(** Executes a statement, returning the number of affected rows.
    UPDATE and DELETE recognize [id = const] conjuncts and use the
    primary index.  When the database has a WAL attached
    ({!Database.set_wal}), the statement text is journaled first. *)

val run_script : Database.t -> Sql.stmt list -> int
(** Total affected rows. *)
