(** Write-ahead logging simulation.

    Real database systems pay a per-statement price that an embedded
    in-memory engine does not: statement text reaches the server,
    is parsed, and the effects are journaled before commit.  The
    paper's Figure 9 (loading time) is dominated by exactly this cost —
    running one INSERT statement per tuple is "over one order of
    magnitude slower" than bulk-loading the XML file.

    This module reproduces the journaling part honestly: every logged
    statement is framed (length header), checksummed byte-by-byte and
    appended to an in-memory log, so logging cost scales with statement
    text size plus a per-record constant, like a real WAL append.
    Absolute magnitudes remain smaller than a client/server system's;
    EXPERIMENTS.md discusses the residual gap. *)

type t

val create : unit -> t

val log : t -> string -> unit
(** Appends one record. *)

val records : t -> int
val bytes_logged : t -> int

val checksum : t -> int32
(** Rolling checksum over everything logged; exposed so tests can
    detect lost or reordered records. *)

val reset : t -> unit
