(** Write-ahead logging simulation with epoch framing and recovery.

    Real database systems pay a per-statement price that an embedded
    in-memory engine does not: statement text reaches the server,
    is parsed, and the effects are journaled before commit.  The
    paper's Figure 9 (loading time) is dominated by exactly this cost —
    running one INSERT statement per tuple is "over one order of
    magnitude slower" than bulk-loading the XML file.

    This module reproduces the journaling part honestly: every logged
    statement is framed (length header), checksummed byte-by-byte and
    appended to an in-memory log, so logging cost scales with statement
    text size plus a per-record constant, like a real WAL append.

    Beyond the cost model, the log is now also the relational half of
    the engine's durability story ({!Xmlac_core.Engine}): mutating
    operations are bracketed by {!begin_epoch}/{!commit_epoch} markers,
    and {!recover} implements truncate-to-last-commit — it drops the
    torn final record of an interrupted append plus everything logged
    inside an epoch that never committed, restoring the record count,
    byte count and checksum to the values of the surviving prefix.
    Records logged outside any epoch (bulk load) are treated as
    committed on append.

    Appends check {!Xmlac_util.Fault.killed}: after a simulated crash
    the log refuses further writes loudly (raising [Failure]) until the
    crash is recovered, so a test cannot silently write past a kill.
    Fault points: ["wal.append"] before an append touches the log,
    ["wal.append.torn"] in the middle of one (the entry is in the log
    but its frame is incomplete — a torn record), ["wal.begin"] and
    ["wal.commit"] before the respective markers. *)

type t

type entry =
  | Begin of int  (** Epoch-open marker. *)
  | Commit of int  (** Epoch-commit marker. *)
  | Record of string  (** A journaled statement. *)

val create : unit -> t

val log : t -> string -> unit
(** Appends one record.
    @raise Failure after a simulated crash ({!Xmlac_util.Fault.killed})
    until recovery clears it. *)

val begin_epoch : t -> int -> unit
(** Opens epoch [n].  @raise Invalid_argument if an epoch is open. *)

val commit_epoch : t -> int -> unit
(** Commits epoch [n].  @raise Invalid_argument unless epoch [n] is the
    open epoch. *)

val open_epoch : t -> int option
(** The currently open (uncommitted) epoch, if any. *)

val last_committed : t -> int option
(** Highest committed epoch number seen, if any. *)

val records : t -> int
val bytes_logged : t -> int

val checksum : t -> int32
(** Rolling checksum over everything logged; exposed so tests can
    detect lost or reordered records.  Epoch markers participate. *)

val entries : t -> entry list
(** The retained log, oldest first.  Old committed entries may have
    been dropped by rotation ({!rotated}); the tail needed for
    {!recover} is always retained. *)

val rotated : t -> int
(** Entries dropped by memory-bounding rotation (checkpointing); they
    were all committed when dropped. *)

val replay : t -> (string -> unit) -> int
(** Applies the callback to every {e committed} retained record, oldest
    first — records of an open epoch and torn records are skipped, as
    {!recover} would drop them.  Returns how many were replayed.  Does
    not modify the log.  Implemented over the same committed-prefix
    cursor as {!fold_epochs} and {!recover}, so the three never
    disagree about what is committed. *)

val fold_epochs :
  ?from:int -> t -> ('a -> epoch:int -> records:string list -> 'a) -> 'a -> 'a
(** The incremental epoch cursor the replication shipper reads:
    committed retained epochs oldest-first, each with its record batch
    in log order.  An epoch is visited only once its commit marker is
    inside the committed prefix — a torn or open tail can never
    surface, even partially.  [~from] seeks: epochs numbered [<= from]
    are skipped (default: visit every retained epoch).  Records logged
    outside any epoch (bulk load) belong to the base image and are not
    visited.  Does not modify the log. *)

val epoch_records : t -> int -> string list option
(** Seek-by-epoch over {!fold_epochs}: committed epoch [n]'s records in
    log order, or [None] when [n] is uncommitted, torn or rotated
    away. *)

val epoch_checksum : t -> int -> int32 option
(** {!adler32} over committed epoch [n]'s records (seeded with [1l]),
    or [None] as in {!epoch_records}.  What the shipper frames and a
    follower re-derives from its own log to cross-check an applied
    epoch. *)

val adler32 : int32 -> string -> int32
(** The log's rolling checksum primitive (Adler-32), exposed so frames
    shipped to replicas are summed with the same arithmetic the log
    itself uses. *)

val recover : t -> int
(** Truncate-to-last-commit: drops torn entries and everything logged
    in an epoch that never committed, restores {!records},
    {!bytes_logged} and {!checksum} to the surviving prefix's values
    and closes the open epoch.  Returns the number of entries
    dropped. *)

val reset : t -> unit
(** Clears records, bytes, checksum, entries and epoch state
    together. *)
