(** SQL abstract syntax and rendering.

    Covers exactly what the paper's pipeline emits: conjunctive
    SELECT-PROJECT-JOIN queries over aliased tables (the ShreX
    translation of XPath), combined with UNION / EXCEPT / INTERSECT
    (the Annotation-Queries algorithm of Figure 5), plus the INSERT,
    UPDATE and DELETE statements used for loading, annotation and
    document updates. *)

type col = { alias : string; column : string }
(** A qualified column reference [alias.column]. *)

type scalar = Col of col | Const of Value.t

type pred =
  | Cmp of { lhs : scalar; op : Value.cmp; rhs : scalar }
  | Is_null of col
  | Not_null of col

type table_ref = { table : string; as_alias : string }

type select = {
  proj : col list;  (** Projected columns. *)
  from : table_ref list;
  where : pred list;  (** Conjunction. *)
}

type query =
  | Select of select
  | Union of query * query
  | Except of query * query
  | Intersect of query * query

type stmt =
  | Insert of { table : string; values : Value.t list }
  | Update of { table : string; set : (string * Value.t) list; where : pred list }
  | Delete of { table : string; where : pred list }

val col : string -> string -> col
val eq : scalar -> scalar -> pred

val query_to_string : query -> string
val stmt_to_string : stmt -> string
val pp_query : Format.formatter -> query -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val select_tables : query -> string list
(** All table names referenced anywhere in the query. *)

val balanced_union : query list -> query option
(** Combines the queries with UNION into a balanced binary tree
    ([None] on the empty list).  This is the n-ary union constructor
    used by the ShreX translation and the annotation-plan lowering:
    recursion depth stays logarithmic in the branch count instead of
    linear as with a left-leaning fold. *)

val flatten_union : query -> query list
(** The maximal run of top-level UNION operands, left to right;
    [[q]] when [q] is not a union. *)

val size : query -> int
(** Number of query-algebra nodes (SELECTs plus set operations) — the
    static cost measure reported by the plan-rewrite ablation. *)

val depth : query -> int
(** Height of the set-operation tree (1 for a bare SELECT). *)
