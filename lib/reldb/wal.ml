type t = {
  mutable buf : Buffer.t;
  mutable records : int;
  mutable total_bytes : int;
  mutable sum : int32;
}

let create () =
  { buf = Buffer.create 4096; records = 0; total_bytes = 0; sum = 1l }

(* Adler-32, the classic journaling checksum: cheap but touches every
   byte, which is the cost profile we want. *)
let adler32 sum s =
  let base = 65521l in
  let a = ref (Int32.logand sum 0xFFFFl) in
  let b = ref (Int32.logand (Int32.shift_right_logical sum 16) 0xFFFFl) in
  String.iter
    (fun c ->
      a := Int32.rem (Int32.add !a (Int32.of_int (Char.code c))) base;
      b := Int32.rem (Int32.add !b !a) base)
    s;
  Int32.logor (Int32.shift_left !b 16) !a

(* Every record carries a fixed-size header (LSN + type + CRC slot in a
   real log); it participates in the checksum like the payload. *)
let header = String.make 32 '\x2a'

let log t record =
  Buffer.add_string t.buf header;
  Buffer.add_string t.buf (string_of_int (String.length record));
  Buffer.add_char t.buf '\x00';
  Buffer.add_string t.buf record;
  Buffer.add_char t.buf '\n';
  t.sum <- adler32 (adler32 t.sum header) record;
  t.records <- t.records + 1;
  t.total_bytes <- t.total_bytes + String.length record;
  (* Bound memory on huge loads: the journal would be rotated on disk;
     here we just recycle the buffer while keeping the counters. *)
  if Buffer.length t.buf > 16 * 1024 * 1024 then Buffer.clear t.buf

let records t = t.records
let bytes_logged t = t.total_bytes
let checksum t = t.sum

let reset t =
  Buffer.clear t.buf;
  t.records <- 0;
  t.total_bytes <- 0;
  t.sum <- 1l
