module Fault = Xmlac_util.Fault

type entry = Begin of int | Commit of int | Record of string

(* One retained log entry.  [framed] is set only once the whole frame
   (header + payload + accounting) reached the log: a crash between the
   payload append and the accounting leaves a torn record, which
   recovery must drop.  Each cell snapshots the counters {e after}
   itself so truncation can restore the surviving prefix's counts and
   checksum exactly. *)
type cell = {
  entry : entry;
  mutable framed : bool;
  sum_after : int32;
  records_after : int;
  bytes_after : int;
}

type t = {
  mutable buf : Buffer.t;
  mutable cells : cell list; (* newest first *)
  mutable entry_count : int;
  mutable records : int;
  mutable total_bytes : int;
  mutable sum : int32;
  mutable open_ep : int option;
  mutable last_commit : int option;
  mutable rotated : int;
  (* Counter snapshot just before the oldest retained cell, so rotation
     (dropping old committed entries) keeps truncation exact. *)
  mutable base_sum : int32;
  mutable base_records : int;
  mutable base_bytes : int;
}

let create () =
  {
    buf = Buffer.create 4096;
    cells = [];
    entry_count = 0;
    records = 0;
    total_bytes = 0;
    sum = 1l;
    open_ep = None;
    last_commit = None;
    rotated = 0;
    base_sum = 1l;
    base_records = 0;
    base_bytes = 0;
  }

(* Adler-32, the classic journaling checksum: cheap but touches every
   byte, which is the cost profile we want. *)
let adler32 sum s =
  let base = 65521l in
  let a = ref (Int32.logand sum 0xFFFFl) in
  let b = ref (Int32.logand (Int32.shift_right_logical sum 16) 0xFFFFl) in
  String.iter
    (fun c ->
      a := Int32.rem (Int32.add !a (Int32.of_int (Char.code c))) base;
      b := Int32.rem (Int32.add !b !a) base)
    s;
  Int32.logor (Int32.shift_left !b 16) !a

(* Every record carries a fixed-size header (LSN + type + CRC slot in a
   real log); it participates in the checksum like the payload. *)
let header = String.make 32 '\x2a'

let payload = function
  | Begin n -> Printf.sprintf "BEGIN %d" n
  | Commit n -> Printf.sprintf "COMMIT %d" n
  | Record s -> s

(* Retention bound: committed entries beyond this are checkpointed away
   (counted in [rotated]); the tail recovery needs is always kept. *)
let max_retained = 65536

(* Index (oldest-first) of the first entry recovery would drop: the
   earliest torn entry, or the Begin of the open epoch — whichever
   comes first.  [None] means the whole retained log is committed. *)
let cut_index cells_oldest_first =
  let cut = ref None and open_begin = ref None in
  List.iteri
    (fun i c ->
      if !cut = None then
        if not c.framed then cut := Some i
        else
          match c.entry with
          | Begin _ -> open_begin := Some i
          | Commit _ -> open_begin := None
          | Record _ -> ())
    cells_oldest_first;
  match (!cut, !open_begin) with
  | Some a, Some b -> Some (min a b)
  | (Some _ as a), None -> a
  | None, b -> b

let rotate t =
  if t.entry_count > max_retained then begin
    let os = List.rev t.cells in
    let keep_from =
      let want = t.entry_count - (max_retained / 2) in
      match cut_index os with None -> want | Some c -> min want c
    in
    if keep_from > 0 then begin
      let dropped = ref [] and kept = ref [] in
      List.iteri
        (fun i c -> if i < keep_from then dropped := c :: !dropped else kept := c :: !kept)
        os;
      (match !dropped with
      | newest_dropped :: _ ->
          t.base_sum <- newest_dropped.sum_after;
          t.base_records <- newest_dropped.records_after;
          t.base_bytes <- newest_dropped.bytes_after
      | [] -> ());
      t.cells <- !kept;
      t.entry_count <- t.entry_count - keep_from;
      t.rotated <- t.rotated + keep_from
    end
  end

let refuse_if_killed what =
  if Fault.killed () then
    failwith (what ^ ": append after simulated crash (recover first)")

let append ?torn_point t entry =
  refuse_if_killed "Wal";
  let p = payload entry in
  Buffer.add_string t.buf header;
  Buffer.add_string t.buf (string_of_int (String.length p));
  Buffer.add_char t.buf '\x00';
  Buffer.add_string t.buf p;
  Buffer.add_char t.buf '\n';
  let cell =
    {
      entry;
      framed = false;
      sum_after = adler32 (adler32 t.sum header) p;
      records_after =
        (t.records + match entry with Record _ -> 1 | _ -> 0);
      bytes_after =
        (t.total_bytes + match entry with Record s -> String.length s | _ -> 0);
    }
  in
  t.cells <- cell :: t.cells;
  t.entry_count <- t.entry_count + 1;
  (match torn_point with Some pt -> Fault.point pt | None -> ());
  cell.framed <- true;
  t.sum <- cell.sum_after;
  t.records <- cell.records_after;
  t.total_bytes <- cell.bytes_after;
  (* Bound memory on huge loads: the byte image would be rotated on
     disk; here we recycle the buffer while keeping the counters. *)
  if Buffer.length t.buf > 16 * 1024 * 1024 then Buffer.clear t.buf;
  rotate t

let log t record =
  refuse_if_killed "Wal.log";
  Fault.point "wal.append";
  append ~torn_point:"wal.append.torn" t (Record record)

let begin_epoch t n =
  (match t.open_ep with
  | Some m ->
      invalid_arg (Printf.sprintf "Wal.begin_epoch: epoch %d already open" m)
  | None -> ());
  Fault.point "wal.begin";
  append t (Begin n);
  t.open_ep <- Some n

let commit_epoch t n =
  (match t.open_ep with
  | Some m when m = n -> ()
  | Some m ->
      invalid_arg
        (Printf.sprintf "Wal.commit_epoch: epoch %d open, cannot commit %d" m n)
  | None -> invalid_arg "Wal.commit_epoch: no epoch open");
  Fault.point "wal.commit";
  append t (Commit n);
  t.open_ep <- None;
  t.last_commit <- Some n

let open_epoch t = t.open_ep
let last_committed t = t.last_commit
let records t = t.records
let bytes_logged t = t.total_bytes
let checksum t = t.sum
let rotated t = t.rotated

let entries t = List.rev_map (fun c -> c.entry) t.cells

(* The one committed-prefix cursor every consumer shares: the retained
   cells oldest-first together with the cut recovery would truncate at.
   [replay], [fold_epochs] and [recover] all read the log through this,
   so "what counts as committed" has exactly one definition. *)
let committed_prefix t =
  let os = List.rev t.cells in
  (os, cut_index os)

let fold_committed t f acc =
  let os, cut = committed_prefix t in
  let _, acc =
    List.fold_left
      (fun (i, acc) c ->
        let committed = match cut with None -> true | Some j -> i < j in
        (i + 1, if committed then f acc c.entry else acc))
      (0, acc) os
  in
  acc

let replay t f =
  fold_committed t
    (fun n e ->
      match e with
      | Record s ->
          f s;
          n + 1
      | Begin _ | Commit _ -> n)
    0

(* Incremental epoch cursor: committed epochs oldest-first, each as its
   record batch.  An epoch only surfaces once its Commit marker is in
   the committed prefix, so a shipper can never frame a partial epoch.
   Records logged outside any epoch (bulk load) carry no epoch number
   and are not visited — they belong to the base image, not the
   replication stream. *)
let fold_epochs ?(from = min_int) t f acc =
  let finish (acc, open_) =
    ignore open_;
    acc
  in
  finish
    (fold_committed t
       (fun (acc, open_) e ->
         match (e, open_) with
         | Begin n, _ -> (acc, Some (n, []))
         | Record s, Some (n, rs) -> (acc, Some (n, s :: rs))
         | Record _, None -> (acc, None)
         | Commit n, Some (m, rs) when n = m ->
             if n > from then (f acc ~epoch:n ~records:(List.rev rs), None)
             else (acc, None)
         | Commit _, _ -> (acc, None))
       (acc, None))

let epoch_records t n =
  fold_epochs t
    (fun acc ~epoch ~records -> if epoch = n then Some records else acc)
    None

let epoch_checksum t n =
  Option.map
    (fun records -> List.fold_left adler32 1l records)
    (epoch_records t n)

let recover t =
  let os, cut = committed_prefix t in
  match cut with
  | None ->
      t.open_ep <- None;
      0
  | Some i ->
      let kept = ref [] in
      List.iteri (fun j c -> if j < i then kept := c :: !kept) os;
      let dropped = t.entry_count - i in
      t.cells <- !kept;
      t.entry_count <- i;
      (match !kept with
      | newest :: _ ->
          t.sum <- newest.sum_after;
          t.records <- newest.records_after;
          t.total_bytes <- newest.bytes_after
      | [] ->
          t.sum <- t.base_sum;
          t.records <- t.base_records;
          t.total_bytes <- t.base_bytes);
      (* The byte image's torn tail is gone with the counters; the
         buffer is only an accounting device, start it clean. *)
      Buffer.clear t.buf;
      t.open_ep <- None;
      dropped

let reset t =
  Buffer.clear t.buf;
  t.cells <- [];
  t.entry_count <- 0;
  t.records <- 0;
  t.total_bytes <- 0;
  t.sum <- 1l;
  t.open_ep <- None;
  t.last_commit <- None;
  t.rotated <- 0;
  t.base_sum <- 1l;
  t.base_records <- 0;
  t.base_bytes <- 0
