type col_type = TInt | TStr

let col_type_to_string = function TInt -> "INTEGER" | TStr -> "TEXT"

type column = { col_name : string; col_type : col_type }

type table = {
  table_name : string;
  columns : column list;
}

let table name cols =
  let columns =
    List.map (fun (col_name, col_type) -> { col_name; col_type }) cols
  in
  let names = List.map (fun c -> c.col_name) columns in
  if not (List.mem "id" names) then
    invalid_arg (Printf.sprintf "Schema.table %s: missing id column" name);
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg (Printf.sprintf "Schema.table %s: duplicate column" name);
  { table_name = name; columns }

let column_index t name =
  let rec go i = function
    | [] -> raise Not_found
    | c :: _ when String.equal c.col_name name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.columns

let has_column t name = List.exists (fun c -> String.equal c.col_name name) t.columns

let arity t = List.length t.columns

let create_table_sql t =
  let col c =
    let base = c.col_name ^ " " ^ col_type_to_string c.col_type in
    if String.equal c.col_name "id" then base ^ " PRIMARY KEY" else base
  in
  Printf.sprintf "CREATE TABLE %s (%s);" t.table_name
    (String.concat ", " (List.map col t.columns))

type t = table list

let find_table schema name =
  List.find_opt (fun t -> String.equal t.table_name name) schema
