(** A named collection of tables sharing one storage engine. *)

type t

val create : Table.engine -> t
val engine : t -> Table.engine

val set_wal : t -> Wal.t option -> unit
(** When a WAL is attached, the executor journals every data-modifying
    statement through it (see {!Wal}). Detached by default. *)

val wal : t -> Wal.t option

val create_table : t -> Schema.table -> Table.t
(** Raises [Invalid_argument] on duplicate names. *)

val table : t -> string -> Table.t
(** @raise Not_found for unknown tables. *)

val table_opt : t -> string -> Table.t option
val tables : t -> Table.t list
(** In creation order. *)

val total_tuples : t -> int
(** Live tuples across all tables. *)

val schema : t -> Schema.t
