type col = { alias : string; column : string }

type scalar = Col of col | Const of Value.t

type pred =
  | Cmp of { lhs : scalar; op : Value.cmp; rhs : scalar }
  | Is_null of col
  | Not_null of col

type table_ref = { table : string; as_alias : string }

type select = {
  proj : col list;
  from : table_ref list;
  where : pred list;
}

type query =
  | Select of query_select
  | Union of query * query
  | Except of query * query
  | Intersect of query * query

and query_select = select

type stmt =
  | Insert of { table : string; values : Value.t list }
  | Update of { table : string; set : (string * Value.t) list; where : pred list }
  | Delete of { table : string; where : pred list }

let col alias column = { alias; column }
let eq lhs rhs = Cmp { lhs; op = Value.Eq; rhs }

let col_to_string c = c.alias ^ "." ^ c.column

let scalar_to_string = function
  | Col c -> col_to_string c
  | Const v -> Value.to_literal v

let pred_to_string = function
  | Cmp { lhs; op; rhs } ->
      Printf.sprintf "%s %s %s" (scalar_to_string lhs)
        (Value.cmp_to_string op) (scalar_to_string rhs)
  | Is_null c -> col_to_string c ^ " IS NULL"
  | Not_null c -> col_to_string c ^ " IS NOT NULL"

let select_to_string s =
  let proj =
    match s.proj with
    | [] -> "*"
    | cols -> String.concat ", " (List.map col_to_string cols)
  in
  let from =
    String.concat ", "
      (List.map (fun r -> r.table ^ " " ^ r.as_alias) s.from)
  in
  let where =
    match s.where with
    | [] -> ""
    | ps -> " WHERE " ^ String.concat " AND " (List.map pred_to_string ps)
  in
  Printf.sprintf "SELECT %s FROM %s%s" proj from where

let rec query_to_string = function
  | Select s -> select_to_string s
  | Union (a, b) ->
      Printf.sprintf "(%s UNION %s)" (query_to_string a) (query_to_string b)
  | Except (a, b) ->
      Printf.sprintf "(%s EXCEPT %s)" (query_to_string a) (query_to_string b)
  | Intersect (a, b) ->
      Printf.sprintf "(%s INTERSECT %s)" (query_to_string a) (query_to_string b)

let stmt_to_string = function
  | Insert { table; values } ->
      Printf.sprintf "INSERT INTO %s VALUES (%s);" table
        (String.concat ", " (List.map Value.to_literal values))
  | Update { table; set; where } ->
      let sets =
        String.concat ", "
          (List.map (fun (c, v) -> c ^ " = " ^ Value.to_literal v) set)
      in
      let w =
        match where with
        | [] -> ""
        | ps -> " WHERE " ^ String.concat " AND " (List.map pred_to_string ps)
      in
      Printf.sprintf "UPDATE %s SET %s%s;" table sets w
  | Delete { table; where } ->
      let w =
        match where with
        | [] -> ""
        | ps -> " WHERE " ^ String.concat " AND " (List.map pred_to_string ps)
      in
      Printf.sprintf "DELETE FROM %s%s;" table w

let pp_query ppf q = Format.pp_print_string ppf (query_to_string q)
let pp_stmt ppf s = Format.pp_print_string ppf (stmt_to_string s)

let rec select_tables = function
  | Select s -> List.map (fun r -> r.table) s.from
  | Union (a, b) | Except (a, b) | Intersect (a, b) ->
      List.sort_uniq String.compare (select_tables a @ select_tables b)

(* N-ary unions.  The Annotation-Queries compilation and the ShreX
   translation both produce unions of many branches; a left-leaning
   fold hands the executor a degenerate depth-n operator tree.  A
   balanced tree keeps the set-operation recursion logarithmic in the
   branch count. *)
let rec balanced_union = function
  | [] -> None
  | [ q ] -> Some q
  | qs ->
      let rec split i acc rest =
        if i = 0 then (List.rev acc, rest)
        else
          match rest with
          | [] -> (List.rev acc, [])
          | x :: rest -> split (i - 1) (x :: acc) rest
      in
      let left, right = split (List.length qs / 2) [] qs in
      (match (balanced_union left, balanced_union right) with
      | Some a, Some b -> Some (Union (a, b))
      | (Some _ as q), None | None, (Some _ as q) -> q
      | None, None -> None)

let rec flatten_union = function
  | Union (a, b) -> flatten_union a @ flatten_union b
  | q -> [ q ]

let rec size = function
  | Select _ -> 1
  | Union (a, b) | Except (a, b) | Intersect (a, b) -> 1 + size a + size b

let rec depth = function
  | Select _ -> 1
  | Union (a, b) | Except (a, b) | Intersect (a, b) ->
      1 + max (depth a) (depth b)
