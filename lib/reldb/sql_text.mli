(** SQL script text: the on-disk form of a shredded document.

    The paper measures (Table 5) the size of "text files containing SQL
    INSERT statements representing the data" and (Figure 9) the time
    needed to run those files against a database.  This module renders
    and re-parses exactly that dialect: one [INSERT INTO t VALUES
    (...);] per tuple, integers, single-quoted strings with doubled
    quotes, and NULL. *)

val render_script : Sql.stmt list -> string
(** One statement per line. *)

val script_size : Sql.stmt list -> int
(** Byte size of [render_script] without materializing it. *)

val parse_script : string -> (Sql.stmt list, string) result
(** Parses a script of INSERT statements (other statement kinds are
    rejected — loading scripts contain only inserts). *)

val parse_script_exn : string -> Sql.stmt list
