open Sql

type row = Value.t array

(* Bindings during join evaluation: alias -> (table, live row offset). *)
type binding = { btable : Table.t; mutable brow : int; mutable bound : bool }

let scalar_value env = function
  | Const v -> v
  | Col c ->
      let b = Hashtbl.find env c.alias in
      let column = Schema.column_index (Table.schema b.btable) c.column in
      Table.get b.btable ~row:b.brow ~column

let scalar_refs = function Col c -> [ c.alias ] | Const _ -> []

let pred_refs = function
  | Cmp { lhs; rhs; _ } -> scalar_refs lhs @ scalar_refs rhs
  | Is_null c | Not_null c -> [ c.alias ]

let pred_holds env = function
  | Cmp { lhs; op; rhs } ->
      Value.cmp_holds op (scalar_value env lhs) (scalar_value env rhs)
  | Is_null c -> scalar_value env (Col c) = Value.Null
  | Not_null c -> scalar_value env (Col c) <> Value.Null

(* Index access choice for binding [alias], given already-bound
   aliases: an equality conjunct [alias.id = x] or [alias.pid = x]
   where [x] is a constant or a bound column. *)
type access =
  | Via_id of scalar
  | Via_pid of scalar
  | Scan

(* Compiled form: scalars resolved to readers. *)
type access' =
  | Via_id' of (unit -> Value.t)
  | Via_pid' of (unit -> Value.t)
  | Scan'

let choose_access preds alias bound_aliases =
  let usable x =
    match x with
    | Const _ -> true
    | Col c -> List.mem c.alias bound_aliases
  in
  let rec go best = function
    | [] -> best
    | p :: rest ->
        let candidate =
          match p with
          | Is_null _ | Not_null _ -> None
          | Cmp { op; _ } when op <> Value.Eq -> None
          | Cmp { lhs; rhs; _ } -> (
              match (lhs, rhs) with
              | Col c, x when c.alias = alias && usable x ->
                  if c.column = "id" then Some (Via_id x)
                  else if c.column = "pid" then Some (Via_pid x)
                  else None
              | x, Col c when c.alias = alias && usable x ->
                  if c.column = "id" then Some (Via_id x)
                  else if c.column = "pid" then Some (Via_pid x)
                  else None
              | _ -> None)
        in
        (match (best, candidate) with
        | _, Some (Via_id _ as a) -> a (* id index is unique: best *)
        | Scan, Some a -> go a rest
        | best, _ -> go best rest)
  in
  go Scan preds

(* Select evaluation compiles the query once — aliases to array slots,
   column names to indexes — so the inner join loops only do array
   reads and integer arithmetic. *)
let run_select db (s : select) =
  let aliases = Array.of_list (List.map (fun r -> r.as_alias) s.from) in
  let tables =
    Array.of_list (List.map (fun r -> Database.table db r.table) s.from)
  in
  let n = Array.length aliases in
  (if
     Array.length
       (Array.of_list (List.sort_uniq String.compare (Array.to_list aliases)))
     <> n
   then invalid_arg "Executor: duplicate alias");
  let position a =
    let rec go i =
      if i = n then invalid_arg ("Executor: unknown alias " ^ a)
      else if String.equal aliases.(i) a then i
      else go (i + 1)
    in
    go 0
  in
  (* Current row offsets per alias slot. *)
  let rows = Array.make n (-1) in
  (* A scalar compiled to a reader over [rows]. *)
  let compile_scalar = function
    | Const v -> fun () -> v
    | Col c ->
        let ai = position c.alias in
        let ci = Schema.column_index (Table.schema tables.(ai)) c.column in
        fun () -> Table.get tables.(ai) ~row:rows.(ai) ~column:ci
  in
  let compile_pred = function
    | Cmp { lhs; op; rhs } ->
        let l = compile_scalar lhs and r = compile_scalar rhs in
        fun () -> Value.cmp_holds op (l ()) (r ())
    | Is_null c ->
        let l = compile_scalar (Col c) in
        fun () -> l () = Value.Null
    | Not_null c ->
        let l = compile_scalar (Col c) in
        fun () -> l () <> Value.Null
  in
  (* Predicates become checkable once all their aliases are bound; each
     is attached to the last alias of the FROM order it mentions. *)
  let attach_at p =
    match pred_refs p with
    | [] -> 0
    | refs -> List.fold_left (fun m a -> max m (position a)) 0 refs
  in
  let checks = Array.make n [] in
  List.iter
    (fun p -> checks.(attach_at p) <- compile_pred p :: checks.(attach_at p))
    s.where;
  (* Index access per slot, decided at plan time. *)
  let accesses =
    Array.init n (fun i ->
        let raw =
          List.filter (fun p -> attach_at p = i) s.where
        in
        match
          choose_access raw aliases.(i)
            (Array.to_list (Array.sub aliases 0 i))
        with
        | Via_id x -> Via_id' (compile_scalar x)
        | Via_pid x -> Via_pid' (compile_scalar x)
        | Scan -> Scan')
  in
  let proj = Array.of_list (List.map (fun c -> compile_scalar (Col c)) s.proj) in
  (* Existential blocks.  The translated EXISTS qualifiers of XPath
     become groups of joined aliases that are never projected and never
     referenced after the group; enumerating more than one witness per
     group multiplies duplicate result rows — quadratically once a
     10^4-row qualifier chain sits next to a 10^4-row spine.  A
     contiguous run [i..j] of aliases forms a block when it is a
     connected component of the "shares a predicate among unbound
     aliases" graph containing no projected alias; the block is then
     evaluated as a single EXISTS: first witness wins. *)
  let projected = Array.make n false in
  List.iter (fun (c : col) -> projected.(position c.alias) <- true) s.proj;
  let connected i j =
    (* Do aliases i and j co-occur in some predicate? *)
    List.exists
      (fun p ->
        let refs = List.map position (pred_refs p) in
        List.mem i refs && List.mem j refs)
      s.where
  in
  let block_end = Array.make n None in
  let start = ref 0 in
  while !start < n do
    let i = !start in
    (* Grow the component of [i] within the aliases not yet assigned to
       earlier blocks. *)
    let in_comp = Array.make n false in
    in_comp.(i) <- true;
    let changed = ref true in
    while !changed do
      changed := false;
      for a = i to n - 1 do
        if in_comp.(a) then
          for b = i to n - 1 do
            if (not in_comp.(b)) && connected a b then begin
              in_comp.(b) <- true;
              changed := true
            end
          done
      done
    done;
    let members = ref [] in
    for a = n - 1 downto i do
      if in_comp.(a) then members := a :: !members
    done;
    let j = List.fold_left max i !members in
    let contiguous = List.length !members = j - i + 1 in
    let any_projected = List.exists (fun a -> projected.(a)) !members in
    if contiguous && not any_projected then begin
      block_end.(i) <- Some j;
      start := j + 1
    end
    else start := i + 1
  done;
  let results = ref [] in
  let emit () = results := Array.map (fun f -> f ()) proj :: !results in
  let satisfied i row =
    rows.(i) <- row;
    List.for_all (fun check -> check ()) checks.(i)
  in
  let for_each i f =
    let table = tables.(i) in
    match accesses.(i) with
    | Via_id' x -> (
        match x () with
        | Value.Int id -> (
            match Table.find_by_id table id with
            | Some row -> f row
            | None -> ())
        | _ -> ())
    | Via_pid' x -> (
        match x () with
        | Value.Int id -> List.iter f (Table.rows_by_pid table id)
        | _ -> ())
    | Scan' -> Table.iter_live table f
  in
  let exception Witness in
  let rec bind i =
    if i = n then emit ()
    else
      match block_end.(i) with
      | None -> for_each i (fun row -> if satisfied i row then bind (i + 1))
      | Some j ->
          (* EXISTS over the block [i..j]: stop at the first full
             witness; its bindings are dead after the block. *)
          let rec witness k =
            if k > j then raise Witness
            else for_each k (fun row -> if satisfied k row then witness (k + 1))
          in
          (try witness i with Witness -> bind (j + 1))
  in
  if n = 0 then emit () else bind 0;
  !results

let dedup rows =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (r : row) ->
      let key = Array.to_list r in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    rows

let rec run_query db = function
  | Select s -> run_select db s
  | Union (a, b) -> dedup (run_query db a @ run_query db b)
  | Except (a, b) ->
      let excluded = Hashtbl.create 64 in
      List.iter
        (fun (r : row) -> Hashtbl.replace excluded (Array.to_list r) ())
        (run_query db b);
      dedup
        (List.filter
           (fun (r : row) -> not (Hashtbl.mem excluded (Array.to_list r)))
           (run_query db a))
  | Intersect (a, b) ->
      let present = Hashtbl.create 64 in
      List.iter
        (fun (r : row) -> Hashtbl.replace present (Array.to_list r) ())
        (run_query db b);
      dedup
        (List.filter
           (fun (r : row) -> Hashtbl.mem present (Array.to_list r))
           (run_query db a))

let query_ids db q =
  let rows = run_query db q in
  let ids =
    List.map
      (fun (r : row) ->
        if Array.length r = 0 then
          invalid_arg "Executor.query_ids: empty projection";
        match r.(0) with
        | Value.Int id -> id
        | v ->
            invalid_arg
              (Printf.sprintf "Executor.query_ids: non-integer %s"
                 (Value.to_literal v)))
      rows
  in
  List.sort_uniq Stdlib.compare ids

(* Single-table WHERE evaluation for UPDATE/DELETE: predicates refer to
   bare columns through an alias equal to the table name. *)
let matching_rows db table_name where =
  let table = Database.table db table_name in
  let env = Hashtbl.create 1 in
  let b = { btable = table; brow = -1; bound = false } in
  Hashtbl.replace env table_name b;
  let id_const =
    List.find_map
      (fun p ->
        match p with
        | Cmp { lhs; op = Value.Eq; rhs } -> (
            match (lhs, rhs) with
            | Col { column = "id"; _ }, Const (Value.Int id)
            | Const (Value.Int id), Col { column = "id"; _ } ->
                Some id
            | _ -> None)
        | _ -> None)
      where
  in
  let holds row =
    b.brow <- row;
    List.for_all (pred_holds env) where
  in
  match id_const with
  | Some id -> (
      match Table.find_by_id table id with
      | Some row when holds row -> [ row ]
      | _ -> [])
  | None ->
      let acc = ref [] in
      Table.iter_live table (fun row -> if holds row then acc := row :: !acc);
      List.rev !acc

(* Journaling model: a row store commits one record per statement; a
   column store materializes one delta per column touched by an insert
   (MonetDB-style BAT appends), which is what makes its per-INSERT
   loading measurably more expensive in the paper's Figure 9. *)
let journal db stmt =
  match Database.wal db with
  | None -> ()
  | Some wal -> (
      match (stmt, Database.engine db) with
      | Insert { table; values }, Table.Column ->
          List.iter
            (fun v -> Wal.log wal (table ^ ":" ^ Value.to_literal v))
            values
      | _ -> Wal.log wal (Sql.stmt_to_string stmt))

let run_stmt db stmt =
  journal db stmt;
  match stmt with
  | Insert { table; values } ->
      Table.insert (Database.table db table) (Array.of_list values);
      1
  | Update { table; set; where } ->
      let t = Database.table db table in
      let schema = Table.schema t in
      let sets =
        List.map (fun (c, v) -> (Schema.column_index schema c, v)) set
      in
      let rows = matching_rows db table where in
      List.iter
        (fun row ->
          List.iter (fun (column, v) -> Table.update t ~row ~column v) sets)
        rows;
      List.length rows
  | Delete { table; where } ->
      let t = Database.table db table in
      let id_col = Schema.column_index (Table.schema t) "id" in
      let rows = matching_rows db table where in
      let ids =
        List.filter_map
          (fun row ->
            match Table.get t ~row ~column:id_col with
            | Value.Int id -> Some id
            | _ -> None)
          rows
      in
      List.iter (fun id -> ignore (Table.delete_by_id t id)) ids;
      List.length ids

let run_script db stmts =
  List.fold_left (fun acc s -> acc + run_stmt db s) 0 stmts
