module Vec = Xmlac_util.Vec

type engine = Row | Column

let engine_to_string = function Row -> "row" | Column -> "column"

(* Column stores maintain per-column properties (min/max/null count —
   MonetDB's BAT properties, a column store's zone maps); keeping them
   current is part of every append's cost. *)
type col_stats = {
  mutable vmin : Value.t option;
  mutable vmax : Value.t option;
  mutable nulls : int;
}

type storage =
  | Rows of Value.t array Vec.t
  | Columns of Value.t Vec.t array * col_stats array

type t = {
  schema : Schema.table;
  engine : engine;
  storage : storage;
  id_col : int;
  pid_col : int option;
  live : bool Vec.t; (* tombstones *)
  by_id : (int, int) Hashtbl.t; (* id -> row offset *)
  by_pid : (int, int list) Hashtbl.t; (* pid -> row offsets, reversed *)
}

let create engine schema =
  let storage =
    match engine with
    | Row -> Rows (Vec.create ~dummy:[||] ())
    | Column ->
        let arity = Schema.arity schema in
        Columns
          ( Array.init arity (fun _ -> Vec.create ~dummy:Value.Null ()),
            Array.init arity (fun _ -> { vmin = None; vmax = None; nulls = 0 })
          )
  in
  {
    schema;
    engine;
    storage;
    id_col = Schema.column_index schema "id";
    pid_col = (try Some (Schema.column_index schema "pid") with Not_found -> None);
    live = Vec.create ~dummy:false ();
    by_id = Hashtbl.create 64;
    by_pid = Hashtbl.create 64;
  }

let schema t = t.schema
let engine t = t.engine
let name t = t.schema.Schema.table_name

let physical_count t =
  match t.storage with
  | Rows rows -> Vec.length rows
  | Columns (cols, _) -> Vec.length cols.(0)

let get t ~row ~column =
  match t.storage with
  | Rows rows -> (Vec.get rows row).(column)
  | Columns (cols, _) -> Vec.get cols.(column) row

let update_stats stats v =
  match v with
  | Value.Null -> stats.nulls <- stats.nulls + 1
  | _ ->
      (match stats.vmin with
      | None -> stats.vmin <- Some v
      | Some m -> if Value.compare v m < 0 then stats.vmin <- Some v);
      (match stats.vmax with
      | None -> stats.vmax <- Some v
      | Some m -> if Value.compare v m > 0 then stats.vmax <- Some v)

let insert t values =
  if Array.length values <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert %s: arity mismatch" (name t));
  let id =
    match values.(t.id_col) with
    | Value.Int id -> id
    | _ -> invalid_arg (Printf.sprintf "Table.insert %s: non-integer id" (name t))
  in
  if Hashtbl.mem t.by_id id then
    invalid_arg (Printf.sprintf "Table.insert %s: duplicate id %d" (name t) id);
  let row = physical_count t in
  (match t.storage with
  | Rows rows -> Vec.push rows (Array.copy values)
  | Columns (cols, stats) ->
      Array.iteri
        (fun i col ->
          Vec.push col values.(i);
          update_stats stats.(i) values.(i))
        cols);
  Vec.push t.live true;
  Hashtbl.replace t.by_id id row;
  match t.pid_col with
  | None -> ()
  | Some pc -> (
      match values.(pc) with
      | Value.Int pid ->
          let cur =
            match Hashtbl.find_opt t.by_pid pid with
            | None -> []
            | Some l -> l
          in
          Hashtbl.replace t.by_pid pid (row :: cur)
      | _ -> ())

let live_count t = Hashtbl.length t.by_id

let is_live t row = Vec.get t.live row

let iter_live t f =
  for row = 0 to physical_count t - 1 do
    if is_live t row then f row
  done

let find_by_id t id =
  match Hashtbl.find_opt t.by_id id with
  | Some row when is_live t row -> Some row
  | _ -> None

let rows_by_pid t pid =
  match Hashtbl.find_opt t.by_pid pid with
  | None -> []
  | Some rows -> List.rev (List.filter (is_live t) rows)

let update t ~row ~column v =
  if column = t.id_col || Some column = t.pid_col then
    invalid_arg "Table.update: id/pid columns are immutable";
  match t.storage with
  | Rows rows -> (Vec.get rows row).(column) <- v
  | Columns (cols, stats) ->
      Vec.set cols.(column) row v;
      update_stats stats.(column) v

let delete_by_id t id =
  match find_by_id t id with
  | None -> false
  | Some row ->
      Vec.set t.live row false;
      Hashtbl.remove t.by_id id;
      true

let ids t =
  let acc = ref [] in
  iter_live t (fun row ->
      match get t ~row ~column:t.id_col with
      | Value.Int id -> acc := id :: !acc
      | _ -> ());
  List.sort Stdlib.compare !acc
