(** Physical tables with two storage engines.

    [Row] keeps one value array per tuple, appended to a growable
    vector — the PostgreSQL-like profile of the paper's evaluation:
    cheap single-tuple inserts, row-at-a-time scans.
    [Column] keeps one growable vector per column — the
    MonetDB/SQL-like profile: each insert touches every column vector
    (more expensive per tuple), while scans and joins that read few
    columns stream through contiguous memory.

    Both engines maintain a hash index on [id] (unique) and, when the
    table has a [pid] column, a multimap index on [pid]; the executor
    uses them for parent/child joins.  Deletion is by tombstone so that
    row offsets stay stable. *)

type engine = Row | Column

val engine_to_string : engine -> string

type t

val create : engine -> Schema.table -> t

val schema : t -> Schema.table
val engine : t -> engine
val name : t -> string

val insert : t -> Value.t array -> unit
(** The array must follow the schema's column order; its [id] must be
    an [Int] not already present. Raises [Invalid_argument]
    otherwise. *)

val live_count : t -> int
(** Number of non-deleted tuples. *)

val get : t -> row:int -> column:int -> Value.t
(** Physical access; the row must be live. *)

val iter_live : t -> (int -> unit) -> unit
(** Calls the function with every live row offset, in insertion
    order. *)

val find_by_id : t -> int -> int option
(** Live row offset holding the given id. *)

val rows_by_pid : t -> int -> int list
(** Live row offsets whose [pid] equals the given id; empty when the
    table has no [pid] column. *)

val update : t -> row:int -> column:int -> Value.t -> unit
(** In-place update. Updating [id] or [pid] raises
    [Invalid_argument] (indexes would go stale; the paper's pipeline
    never needs it). *)

val delete_by_id : t -> int -> bool
(** Tombstones the tuple with the given id; returns whether it
    existed. *)

val ids : t -> int list
(** All live ids, ascending. *)
