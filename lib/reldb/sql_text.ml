let render_script stmts =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Sql.stmt_to_string s);
      Buffer.add_char buf '\n')
    stmts;
  Buffer.contents buf

let script_size stmts =
  List.fold_left
    (fun acc s -> acc + String.length (Sql.stmt_to_string s) + 1)
    0 stmts

type state = { input : string; mutable pos : int }

let parse_script input =
  let st = { input; pos = 0 } in
  let len = String.length input in
  let eof () = st.pos >= len in
  let peek () = if eof () then '\000' else input.[st.pos] in
  let skip_spaces () =
    while
      (not (eof ()))
      && (match peek () with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      st.pos <- st.pos + 1
    done
  in
  let expect_kw kw =
    skip_spaces ();
    let n = String.length kw in
    if st.pos + n <= len && String.uppercase_ascii (String.sub input st.pos n) = kw
    then begin
      st.pos <- st.pos + n;
      true
    end
    else false
  in
  let parse_ident () =
    skip_spaces ();
    let start = st.pos in
    while
      (not (eof ()))
      && (match peek () with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
         | _ -> false)
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = start then None else Some (String.sub input start (st.pos - start))
  in
  let parse_value () =
    skip_spaces ();
    match peek () with
    | '\'' ->
        st.pos <- st.pos + 1;
        let buf = Buffer.create 16 in
        let rec loop () =
          if eof () then Error "unterminated string literal"
          else
            match peek () with
            | '\'' ->
                st.pos <- st.pos + 1;
                if peek () = '\'' then begin
                  Buffer.add_char buf '\'';
                  st.pos <- st.pos + 1;
                  loop ()
                end
                else Ok (Value.Str (Buffer.contents buf))
            | c ->
                Buffer.add_char buf c;
                st.pos <- st.pos + 1;
                loop ()
        in
        loop ()
    | 'N' | 'n' ->
        if expect_kw "NULL" then Ok Value.Null else Error "expected NULL"
    | '-' | '0' .. '9' ->
        let start = st.pos in
        if peek () = '-' then st.pos <- st.pos + 1;
        while (not (eof ())) && (match peek () with '0' .. '9' -> true | _ -> false) do
          st.pos <- st.pos + 1
        done;
        let text = String.sub input start (st.pos - start) in
        (match int_of_string_opt text with
        | Some i -> Ok (Value.Int i)
        | None -> Error ("bad integer " ^ text))
    | c -> Error (Printf.sprintf "unexpected character %C in value" c)
  in
  let rec parse_values acc =
    match parse_value () with
    | Error _ as e -> e
    | Ok v -> (
        skip_spaces ();
        match peek () with
        | ',' ->
            st.pos <- st.pos + 1;
            parse_values (v :: acc)
        | ')' ->
            st.pos <- st.pos + 1;
            Ok (List.rev (v :: acc))
        | c -> Error (Printf.sprintf "expected ',' or ')', found %C" c))
  in
  let rec loop acc =
    skip_spaces ();
    if eof () then Ok (List.rev acc)
    else if expect_kw "INSERT" then
      if not (expect_kw "INTO") then Error "expected INTO"
      else
        match parse_ident () with
        | None -> Error "expected a table name"
        | Some table ->
            if not (expect_kw "VALUES") then Error "expected VALUES"
            else begin
              skip_spaces ();
              if peek () <> '(' then Error "expected '('"
              else begin
                st.pos <- st.pos + 1;
                match parse_values [] with
                | Error _ as e -> e
                | Ok values ->
                    skip_spaces ();
                    if peek () = ';' then begin
                      st.pos <- st.pos + 1;
                      loop (Sql.Insert { table; values } :: acc)
                    end
                    else Error "expected ';'"
              end
            end
    else Error (Printf.sprintf "expected INSERT at offset %d" st.pos)
  in
  loop []

let parse_script_exn input =
  match parse_script input with
  | Ok stmts -> stmts
  | Error m -> invalid_arg ("Sql_text.parse_script: " ^ m)
