(** Relational schemas.

    The ShreX-style mapping gives every element type a table
    [ET(id, pid, v?, s)] — see Section 5.2 and Table 4 of the paper:
    [id] is the universal identifier (primary key), [pid] the parent's
    id (foreign key into the parent type's table), [v] the node value
    for PCDATA types, [s] the accessibility sign. *)

type col_type = TInt | TStr

val col_type_to_string : col_type -> string
(** SQL type names: INTEGER, TEXT. *)

type column = { col_name : string; col_type : col_type }

type table = {
  table_name : string;
  columns : column list;  (** In declaration order; must include [id]. *)
}

val table : string -> (string * col_type) list -> table
(** Raises [Invalid_argument] when no [id] column is declared or on a
    duplicate column name. *)

val column_index : table -> string -> int
(** Position of a column. @raise Not_found for unknown columns. *)

val has_column : table -> string -> bool

val arity : table -> int

val create_table_sql : table -> string
(** [CREATE TABLE t (id INTEGER PRIMARY KEY, ...)] text, for dumps. *)

type t = table list
(** A database schema: tables in creation order. *)

val find_table : t -> string -> table option
