type t = {
  engine : Table.engine;
  by_name : (string, Table.t) Hashtbl.t;
  mutable order : string list; (* reversed creation order *)
  mutable wal : Wal.t option;
}

let create engine =
  { engine; by_name = Hashtbl.create 32; order = []; wal = None }

let engine t = t.engine

let set_wal t wal = t.wal <- wal
let wal t = t.wal

let create_table t schema =
  let name = schema.Schema.table_name in
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Database.create_table: duplicate %s" name);
  let table = Table.create t.engine schema in
  Hashtbl.replace t.by_name name table;
  t.order <- name :: t.order;
  table

let table t name = Hashtbl.find t.by_name name
let table_opt t name = Hashtbl.find_opt t.by_name name

let tables t = List.rev_map (Hashtbl.find t.by_name) t.order

let total_tuples t =
  List.fold_left (fun acc tb -> acc + Table.live_count tb) 0 (tables t)

let schema t = List.map Table.schema (tables t)
