#!/usr/bin/env bash
# Cram-style transcript of the README walkthrough.  Runs the xmlacctl
# pipeline (generate -> annotate -> request -> update -> explain) in a
# scratch directory and prints each command with its output, so the
# promoted walkthrough.expected keeps the README honest.
set -u

xmlacctl=$(realpath "$1")
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cd "$work"

# Strip wall-clock readings (Timing.pp_seconds output) so the
# transcript stays deterministic.
detime() {
  sed -E 's/[0-9]+(\.[0-9]+)?(e[-+]?[0-9]+)? ?(ns|us|ms|s)\b/<time>/g'
}

show() {
  echo "\$ xmlacctl $*"
  "$xmlacctl" "$@" 2>&1 | detime
  status=${PIPESTATUS[0]}
  if [ "$status" -ne 0 ]; then echo "[exit $status]"; fi
}

cat > auction.policy <<'EOF'
# Auction-site policy, two roles: visitors see people by name only —
# anyone with a credit card on file is hidden from them entirely —
# while auditors (who inherit the visitor rules) also see the open
# auctions.
role visitor
role auditor inherits visitor
default deny
conflict deny
allow //person
allow //person/name
deny  @visitor //person[creditcard]
allow @auditor //open_auction
EOF
echo "\$ cat auction.policy"
cat auction.policy

show roles auction.policy
show generate -f 0.005 -o site.xml
show annotate site.xml auction.policy -o annotated.xml
show query annotated.xml auction.policy "//person/name"
show query annotated.xml auction.policy --subject visitor "//open_auction"
show query annotated.xml auction.policy --subject auditor "//open_auction"
show query annotated.xml auction.policy "//person"
# The rewrite lane: the same requests answered on the never-annotated
# site.xml — the auto lane notices the missing signs and rewrites, and
# forcing --lane rewrite skips sign reads even where signs exist.
show query site.xml auction.policy "//person/name"
show query site.xml auction.policy --lane rewrite --subject auditor "//open_auction"
show update annotated.xml auction.policy --dtd xmark "//person/creditcard" -o updated.xml
show query updated.xml auction.policy "//person"
show explain auction.policy --dtd xmark --doc site.xml \
  --request "//person/name" --request "//open_auction" \
  --subject visitor --subject auditor
show health auction.policy --dtd xmark --doc site.xml \
  --requests 24 --fault-rate 0.25 --seed 7 --followers 2
# Concurrent front end, pinned to --domains 1 so the scheduler is the
# deterministic sequential fallback and the transcript stays stable;
# the reader lines are identical at any domain count because every
# session answers from the epoch it pinned at open.
show serve auction.policy --dtd xmark --doc site.xml \
  --readers 4 --requests 6 --churn 3 --domains 1
# Replication: a leader ships its committed epochs to two followers
# over a seeded chaos transport (frames dropped, duplicated, reordered
# and torn at --fault-rate); followers detect the gaps, request
# re-ship, and converge to the leader's exact state.  --kill then
# kills the leader, promotes the least-lagged follower after digest
# verification, and commits one write through the new leader.
show replicate auction.policy --dtd xmark --doc site.xml \
  --churn 3 --fault-rate 0.2 --seed 7 --kill
