(* Tests for the ShreX-style mapping, shredding and XPath -> SQL
   translation, including the cross-backend equivalence property. *)

module Mapping = Xmlac_shrex.Mapping
module Shred = Xmlac_shrex.Shred
module Translate = Xmlac_shrex.Translate
module Tree = Xmlac_xml.Tree
module Dtd = Xmlac_xml.Dtd
module Db = Xmlac_reldb.Database
module Table = Xmlac_reldb.Table
module Value = Xmlac_reldb.Value
module Sql = Xmlac_reldb.Sql
module Sql_text = Xmlac_reldb.Sql_text
module Executor = Xmlac_reldb.Executor
module Eval = Xmlac_xpath.Eval
module Prng = Xmlac_util.Prng

let hospital = Xmlac_workload.Hospital.dtd
let mapping = Mapping.of_dtd hospital
let parse = Helpers.parse

let load_doc engine doc =
  let db = Db.create engine in
  let n = Shred.load mapping ~default_sign:"-" db doc in
  (db, n)

(* ------------------------------------------------------------------ *)
(* Mapping *)

let test_mapping_tables_per_type () =
  Alcotest.(check int) "one table per type"
    (List.length (Dtd.element_types hospital))
    (List.length (Mapping.relational_schema mapping))

let test_mapping_value_columns () =
  Alcotest.(check bool) "med has v" true (Mapping.has_value_column mapping "med");
  Alcotest.(check bool) "patient has no v" false
    (Mapping.has_value_column mapping "patient");
  let t = Mapping.table_for mapping "med" in
  Alcotest.(check bool) "v column present" true
    (Xmlac_reldb.Schema.has_column t "v");
  let t = Mapping.table_for mapping "patient" in
  Alcotest.(check bool) "no v column" false
    (Xmlac_reldb.Schema.has_column t "v")

let test_mapping_rejects_recursion () =
  let rec_dtd =
    Dtd.make ~root:"a" [ ("a", Dtd.Seq [ { elem = "a"; occ = Dtd.Star } ]) ]
  in
  try
    ignore (Mapping.of_dtd rec_dtd);
    Alcotest.fail "accepted recursive DTD"
  with Invalid_argument _ -> ()

let test_mapping_ddl_mentions_all () =
  let ddl = Mapping.ddl mapping in
  List.iter
    (fun ty ->
      Alcotest.(check bool) (ty ^ " in ddl") true
        (let needle = "CREATE TABLE " ^ ty ^ " " in
         let rec go i =
           i + String.length needle <= String.length ddl
           && (String.sub ddl i (String.length needle) = needle || go (i + 1))
         in
         go 0))
    (Dtd.element_types hospital)

(* ------------------------------------------------------------------ *)
(* Shredding *)

let test_shred_tuple_count () =
  let doc = Xmlac_workload.Hospital.sample_document () in
  let db, n = load_doc Table.Row doc in
  Alcotest.(check int) "one tuple per node" (Tree.size doc) n;
  Alcotest.(check int) "db total" (Tree.size doc) (Db.total_tuples db)

let test_shred_parent_links () =
  let doc = Xmlac_workload.Hospital.sample_document () in
  let db, _ = load_doc Table.Row doc in
  (* Every non-root tuple's pid must exist somewhere. *)
  let all_ids = Hashtbl.create 64 in
  List.iter
    (fun t -> List.iter (fun id -> Hashtbl.replace all_ids id ()) (Table.ids t))
    (Db.tables db);
  List.iter
    (fun t ->
      let schema = Table.schema t in
      let pid_col = Xmlac_reldb.Schema.column_index schema "pid" in
      Table.iter_live t (fun row ->
          match Table.get t ~row ~column:pid_col with
          | Value.Int pid ->
              Alcotest.(check bool) "pid resolves" true (Hashtbl.mem all_ids pid)
          | Value.Null -> () (* the root *)
          | _ -> Alcotest.fail "bad pid"))
    (Db.tables db)

let test_shred_values_and_signs () =
  let doc = Xmlac_workload.Hospital.sample_document () in
  let db, _ = load_doc Table.Row doc in
  let med = Db.table db "med" in
  Alcotest.(check int) "one med" 1 (Table.live_count med);
  Table.iter_live med (fun row ->
      Alcotest.(check bool) "value" true
        (Table.get med ~row ~column:2 = Value.Str "enoxaparin");
      Alcotest.(check bool) "default sign" true
        (Table.get med ~row ~column:3 = Value.Str "-"))

let test_shred_script_round_trip () =
  let doc = Xmlac_workload.Hospital.sample_document () in
  let stmts = Shred.insert_statements mapping ~default_sign:"-" doc in
  Alcotest.(check int) "one insert per node" (Tree.size doc)
    (List.length stmts);
  let text = Sql_text.render_script stmts in
  let stmts' = Sql_text.parse_script_exn text in
  let db = Db.create Table.Row in
  Mapping.create_tables mapping db;
  let n = Shred.load_script db stmts' in
  Alcotest.(check int) "loaded all" (Tree.size doc) n;
  (* The scripted load equals the direct load. *)
  let db2, _ = load_doc Table.Row doc in
  List.iter
    (fun t ->
      let t2 = Db.table db2 (Table.name t) in
      Alcotest.(check (list int)) (Table.name t) (Table.ids t2) (Table.ids t))
    (Db.tables db)

let test_node_table () =
  let doc = Xmlac_workload.Hospital.sample_document () in
  let db, _ = load_doc Table.Row doc in
  let patient_ids = Helpers.ids doc "//patient" in
  List.iter
    (fun id ->
      match Shred.node_table mapping db id with
      | Some t -> Alcotest.(check string) "patient table" "patient" (Table.name t)
      | None -> Alcotest.fail "not found")
    patient_ids;
  Alcotest.(check bool) "unknown id" true (Shred.node_table mapping db 9999 = None)

let test_delete_subtrees () =
  let doc = Xmlac_workload.Hospital.sample_document () in
  let db, total = load_doc Table.Row doc in
  (* Delete the two treatment subtrees: 2 treatment + regular + med +
     bill + experimental + test + bill = 8 tuples. *)
  let treatment_ids = Helpers.ids doc "//treatment" in
  let deleted = Shred.delete_subtrees mapping db treatment_ids in
  Alcotest.(check int) "deleted" 8 deleted;
  Alcotest.(check int) "remaining" (total - 8) (Db.total_tuples db);
  Alcotest.(check int) "no meds" 0 (Table.live_count (Db.table db "med"))

(* ------------------------------------------------------------------ *)
(* Translation *)

let doc = Xmlac_workload.Hospital.sample_document ()
let row_db, _ = load_doc Table.Row doc
let col_db, _ = load_doc Table.Column doc

let native_ids q = Helpers.ids doc q
let rel_ids db q = Translate.eval_ids mapping db (parse q)

let translation_cases =
  [
    "//patient"; "//patient/name"; "//patient[treatment]";
    "//patient[treatment]/name"; "//patient[.//experimental]";
    "//regular"; "//regular[med = \"celecoxib\"]";
    "//regular[med = \"enoxaparin\"]"; "//regular[bill > 1000]";
    "//experimental[bill > 1000]"; "/hospital"; "/hospital/dept";
    "/hospital/dept/patients/patient/psn"; "//name"; "//*"; "//dept/*";
    "//patient[psn = \"042\"]"; "//bill"; "//bill[. > 1000]";
    "//patient[psn and name]"; "//staff"; "//treatment";
    "//patient[treatment/regular]"; "/hospital//bill";
    "//patients//name"; "//patient[name = \"joy smith\"]";
  ]

let test_translation_equivalence () =
  List.iter
    (fun q ->
      Alcotest.(check (list int)) ("row: " ^ q) (native_ids q) (rel_ids row_db q);
      Alcotest.(check (list int)) ("col: " ^ q) (native_ids q) (rel_ids col_db q))
    translation_cases

let test_translation_unsatisfiable () =
  (* Schema-impossible expressions yield empty answers, not errors. *)
  List.iter
    (fun q -> Alcotest.(check (list int)) q [] (rel_ids row_db q))
    [ "//patient/bill"; "/dept"; "//psn/name"; "//regular[test]" ]

let test_translation_sql_shape () =
  (* //patient anchored at the root: no join needed, the whole table. *)
  let q = Translate.translate mapping (parse "//patient") in
  Alcotest.(check string) "table scan" "SELECT patient1.id FROM patient patient1"
    (Sql.query_to_string q)

let test_translation_join_shape () =
  let q = Translate.translate mapping (parse "//patient/name") in
  let s = Sql.query_to_string q in
  Alcotest.(check bool) "joins pid" true
    (let needle = "name2.pid = patient1.id" in
     let rec go i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let test_translation_descendant_union () =
  (* //name has three schema chains => (at least) a union of selects
     over the name table... anchored at the root it needs no chains,
     but //dept//name expands to three. *)
  let q = Translate.translate mapping (parse "//dept//name") in
  let rec count_selects = function
    | Sql.Select _ -> 1
    | Sql.Union (a, b) | Sql.Except (a, b) | Sql.Intersect (a, b) ->
        count_selects a + count_selects b
  in
  Alcotest.(check int) "three chains" 3 (count_selects q)

(* Property: translation agrees with native evaluation on random
   documents and random schema-guided expressions, on both engines. *)
let translation_equiv_prop =
  QCheck2.Test.make ~name:"XPath->SQL translation equals native eval"
    ~count:100 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let db, _ = load_doc Table.Row doc in
      let ok = ref true in
      for _ = 1 to 5 do
        let e = Helpers.random_hospital_expr rng in
        let native =
          List.sort compare
            (List.map (fun (n : Tree.node) -> n.Tree.id) (Eval.eval doc e))
        in
        let rel = Translate.eval_ids mapping db e in
        if native <> rel then ok := false
      done;
      !ok)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "shrex"
    [
      ( "mapping",
        [
          tc "table per type" test_mapping_tables_per_type;
          tc "value columns" test_mapping_value_columns;
          tc "rejects recursion" test_mapping_rejects_recursion;
          tc "ddl covers all types" test_mapping_ddl_mentions_all;
        ] );
      ( "shred",
        [
          tc "tuple count" test_shred_tuple_count;
          tc "parent links" test_shred_parent_links;
          tc "values and signs" test_shred_values_and_signs;
          tc "script round trip" test_shred_script_round_trip;
          tc "node table lookup" test_node_table;
          tc "delete subtrees" test_delete_subtrees;
        ] );
      ( "translate",
        [
          tc "equivalence on fixed cases" test_translation_equivalence;
          tc "unsatisfiable queries" test_translation_unsatisfiable;
          tc "scan shape" test_translation_sql_shape;
          tc "join shape" test_translation_join_shape;
          tc "descendant union" test_translation_descendant_union;
          QCheck_alcotest.to_alcotest translation_equiv_prop;
        ] );
    ]
