(* MVCC epoch snapshots: the registry's pin/publish/reclaim lifecycle,
   the engine's publish-on-commit integration, the pinned-reader
   isolation property (byte-identical decisions before, during and
   after the next epoch commits, against all three backends), the
   crash sweep where the writer dies mid-epoch under pinned readers,
   and the concurrent front end (Pool scheduling, Session lifecycle,
   a multi-domain smoke run). *)

open Xmlac_core
module Tree = Xmlac_xml.Tree
module Fault = Xmlac_util.Fault
module Prng = Xmlac_util.Prng
module Metrics = Xmlac_util.Metrics
module Pp = Xmlac_xpath.Pp
module W = Xmlac_workload
module S = Xmlac_serve.Serve
module Session = Xmlac_serve.Session
module Pool = Xmlac_serve.Pool

(* ------------------------------------------------------------------ *)
(* Fixtures. *)

let make_engine =
  let doc = lazy (W.Hospital.sample_document ()) in
  fun () ->
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (Lazy.force doc)

let annotated_engine () =
  let eng = make_engine () in
  ignore (Engine.annotate_all eng);
  eng

(* Control queries whose decisions move when treatments are deleted. *)
let probe_queries =
  [ "//patient/name"; "//nurse"; "//treatment"; "//patient/psn" ]

let probe_update = "//treatment"

(* A decision transcript of the snapshot: the "bytes" a pinned reader
   sees.  Rendering through the printer makes the comparison catch
   ordering changes too, not just set membership. *)
let transcript ?subject snap =
  String.concat "\n"
    (List.map
       (fun q ->
         Format.asprintf "%s -> %a" q Requester.pp
           (Snapshot.request ?subject snap q))
       probe_queries)

(* ------------------------------------------------------------------ *)
(* Registry lifecycle. *)

let capture_of eng =
  Snapshot.capture ~epoch:(Engine.sign_epoch eng)
    ~policy:(Engine.policy eng) ~cam:(Engine.cam eng)
    ~metrics:(Engine.metrics eng) (Engine.document eng)

let test_registry_lifecycle () =
  Fault.reset ();
  let eng = annotated_engine () in
  let m = Metrics.create () in
  let reg = Snapshot.create_registry ~metrics:m () in
  Alcotest.(check (option int)) "empty registry" None
    (Snapshot.current_epoch reg);
  (match Snapshot.pin reg with
  | _ -> Alcotest.fail "pin before first publish did not raise"
  | exception Invalid_argument _ -> ());
  let s0 = capture_of eng in
  Snapshot.publish reg s0;
  Alcotest.(check (option int)) "s0 current"
    (Some (Engine.sign_epoch eng))
    (Snapshot.current_epoch reg);
  Alcotest.(check int) "one live" 1 (Snapshot.live reg);
  (* Publishing over an unpinned current reclaims it immediately. *)
  let s1 = capture_of eng in
  Snapshot.publish reg s1;
  Alcotest.(check int) "unpinned predecessor reclaimed" 1
    (Snapshot.live reg);
  Alcotest.(check int) "reclaim counted" 1 (Snapshot.reclaimed reg);
  (* A pinned current is retired by the next publish, not reclaimed. *)
  let p = Snapshot.pin reg in
  Alcotest.(check int) "pin counted" 1 (Snapshot.pins p);
  let s2 = capture_of eng in
  Snapshot.publish reg s2;
  Alcotest.(check int) "pinned predecessor retired" 1
    (Snapshot.retired reg);
  Alcotest.(check int) "two live" 2 (Snapshot.live reg);
  Alcotest.(check int) "reclaim lag high-water" 1
    (Snapshot.max_retired reg);
  (* Reclaim happens exactly when the last pin goes. *)
  Snapshot.unpin reg p;
  Alcotest.(check int) "retired freed at refcount 0" 0
    (Snapshot.retired reg);
  Alcotest.(check int) "back to one live" 1 (Snapshot.live reg);
  (match Snapshot.unpin reg p with
  | () -> Alcotest.fail "double unpin did not raise"
  | exception Invalid_argument _ -> ());
  (* The current snapshot is never reclaimed, pinned or not. *)
  let c = Snapshot.pin reg in
  Snapshot.unpin reg c;
  Alcotest.(check bool) "current survives its last unpin" true
    (Snapshot.current reg <> None);
  Alcotest.(check int) "three publishes" 3 (Snapshot.published reg)

let test_engine_publishes_on_commit () =
  Fault.reset ();
  let eng = make_engine () in
  let reg = Engine.snapshots eng in
  Alcotest.(check (option int)) "epoch 0 published at create" (Some 0)
    (Snapshot.current_epoch reg);
  ignore (Engine.annotate_all eng);
  Alcotest.(check (option int)) "commit republishes"
    (Some (Engine.sign_epoch eng))
    (Snapshot.current_epoch reg);
  let pinned = Engine.pin_snapshot eng in
  let before = Engine.sign_epoch eng in
  ignore (Engine.update eng probe_update);
  Alcotest.(check bool) "writer advanced" true
    (Engine.sign_epoch eng > before);
  Alcotest.(check (option int)) "registry tracks the writer"
    (Some (Engine.sign_epoch eng))
    (Snapshot.current_epoch reg);
  Alcotest.(check int) "pinned epoch frozen" before
    (Snapshot.epoch pinned);
  Alcotest.(check int) "old epoch retired, not dropped" 2
    (Snapshot.live reg);
  Engine.unpin_snapshot eng pinned;
  Alcotest.(check int) "reclaimed on last unpin" 1 (Snapshot.live reg)

(* ------------------------------------------------------------------ *)
(* Pinned-reader isolation: deterministic backbone. *)

let test_pinned_reader_isolation () =
  Fault.reset ();
  let eng = annotated_engine () in
  let pinned = Engine.pin_snapshot eng in
  (* Before: the snapshot agrees with the live engine on every
     backend (they all materialize the same committed epoch). *)
  let before = transcript pinned in
  List.iter
    (fun kind ->
      List.iter
        (fun q ->
          Alcotest.(check string)
            (Printf.sprintf "snapshot = live %s on %s"
               (Engine.backend_kind_to_string kind) q)
            (Format.asprintf "%a" Requester.pp (Engine.request eng kind q))
            (Format.asprintf "%a" Requester.pp (Snapshot.request pinned q)))
        probe_queries)
    Engine.all_backend_kinds;
  (* After: the writer commits epoch N+1; the pinned transcript is
     byte-identical while the live one moved. *)
  ignore (Engine.update eng probe_update);
  Alcotest.(check string) "pinned transcript unchanged after commit"
    before (transcript pinned);
  let live_now =
    Format.asprintf "%a" Requester.pp
      (Engine.request eng Engine.Native "//treatment")
  in
  Alcotest.(check bool) "live engine did move" true
    (live_now
    <> Format.asprintf "%a" Requester.pp
         (Snapshot.request pinned "//treatment"));
  Engine.unpin_snapshot eng pinned

(* ------------------------------------------------------------------ *)
(* Crash sweep: the writer dies mid-epoch at every fault point the
   update crosses; the pinned reader's transcript must be identical
   while the corpse is still warm and after recovery. *)

let crossed_points () =
  (* Scout with faults disarmed: which points does the update cross? *)
  Fault.reset ();
  let eng = annotated_engine () in
  let before = List.map (fun p -> (p, Fault.hits p)) (Fault.registered ()) in
  ignore (Engine.update eng probe_update);
  let after = Fault.registered () in
  List.filter
    (fun p ->
      let h0 = try List.assoc p before with Not_found -> 0 in
      Fault.hits p > h0)
    after

let test_crash_sweep_pinned_readers () =
  let points = crossed_points () in
  List.iter
    (fun p ->
      Alcotest.(check bool) ("sweep covers " ^ p) true (List.mem p points))
    [ "snapshot.publish"; "snapshot.share"; "snapshot.reclaim"; "snapshot.gc" ];
  List.iter
    (fun point ->
      Fault.reset ();
      let eng = annotated_engine () in
      let pinned = Engine.pin_snapshot eng in
      let before = transcript pinned in
      Fault.arm point (Fault.After 1);
      (match Engine.update eng probe_update with
      | _ ->
          (* Some scouted points (e.g. snapshot.reclaim) are only
             crossed when no reader pins the old epoch; with the pin
             in place the update sails through.  Disarm so the stale
             trigger cannot fire at the unpin below. *)
          Fault.reset ()
      | exception Fault.Crash _ ->
          (* Writer dead mid-epoch: the pinned reader keeps answering,
             byte-identically, without waiting for recovery. *)
          Alcotest.(check string)
            (Printf.sprintf "transcript stable while dead at %s" point)
            before (transcript pinned);
          ignore (Engine.recover eng));
      Alcotest.(check string)
        (Printf.sprintf "transcript stable after recovery from %s" point)
        before (transcript pinned);
      Engine.unpin_snapshot eng pinned)
    points;
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* Structural sharing: published snapshots are COW views, memoized
   decisions carry across a non-structural epoch, and the registry's
   segment accounting drains to zero once no live generation needs the
   displaced records. *)

let test_cow_sharing_and_carry () =
  Fault.reset ();
  let eng = annotated_engine () in
  let reg = Engine.snapshots eng in
  let s0 = Engine.pin_snapshot eng in
  Alcotest.(check bool) "published snapshots share structure" true
    (Snapshot.cow s0);
  (* Memoize a rewrite-lane decision: it reads no annotation, so the
     next non-structural epoch must carry it instead of recomputing. *)
  let d0 =
    Format.asprintf "%a" Requester.pp
      (Snapshot.request ~lane:Rewrite.Rewrite s0 "//nurse")
  in
  Alcotest.(check bool) "memoized on the pinned epoch" true
    (Snapshot.cached_decisions s0 >= 1);
  (* Re-annotation rewrites signs but no structure. *)
  ignore (Engine.annotate_all eng);
  let s1 = Engine.pin_snapshot eng in
  Alcotest.(check bool) "decision carried before any request" true
    (Snapshot.cached_decisions s1 >= 1);
  Alcotest.(check string) "carried decision is the epoch's own answer" d0
    (Format.asprintf "%a" Requester.pp
       (Snapshot.request ~lane:Rewrite.Rewrite s1 "//nurse"));
  (* A structural epoch displaces shared records; the registry holds
     them as segments while pinned generations still need them. *)
  ignore (Engine.update eng probe_update);
  Alcotest.(check bool) "displaced records recorded at publish" true
    (Snapshot.shared_total reg > 0);
  Alcotest.(check bool) "pinned history keeps segments live" true
    (Snapshot.shared_records reg > 0);
  Engine.unpin_snapshot eng s0;
  Engine.unpin_snapshot eng s1;
  Alcotest.(check bool) "reclaim triggered gc sweeps" true
    (Snapshot.gc_passes reg >= 1);
  Alcotest.(check int) "no live generation needs the old segments" 0
    (Snapshot.shared_records reg);
  Alcotest.(check int) "every shared record accounted freed"
    (Snapshot.shared_total reg) (Snapshot.freed_total reg);
  Alcotest.(check bool) "sharing summary renders" true
    (String.length (Format.asprintf "%a" Snapshot.pp_sharing reg) > 0)

(* ------------------------------------------------------------------ *)
(* A killed COW publish must never corrupt a pinned neighbor.  The
   writer dies inside the sharing machinery — publish, segment
   recording, reclaim, gc sweep — while a reader pins an older view
   that shares records with both the corpse and the survivor.  The
   neighbor is checked two ways: its decision transcript (memoized)
   and a fresh structural walk over every node's effective sign, which
   re-reads the shared records and would expose any torn write. *)

let view_signature snap =
  let doc = Snapshot.document snap in
  let cam = Snapshot.cam snap in
  List.sort
    (fun (a : Tree.node) (b : Tree.node) -> compare a.Tree.id b.Tree.id)
    (Tree.nodes doc)
  |> List.map (fun (n : Tree.node) ->
         Printf.sprintf "%d=%s:%s" n.Tree.id n.Tree.name
           (Tree.sign_to_string (Cam.lookup cam n)))
  |> String.concat ","

let test_cow_kill_never_corrupts_pinned_neighbor () =
  List.iter
    (fun point ->
      Fault.reset ();
      let eng = annotated_engine () in
      (* Pin epoch N, then commit N+1 unpinned, so the next publish
         reclaims N+1 on the spot — the reclaim is what pulls the gc
         sweep into the victim update's path. *)
      let neighbor = Engine.pin_snapshot eng in
      let before = transcript neighbor in
      let before_sig = view_signature neighbor in
      ignore (Engine.update eng "//patient/psn");
      Fault.arm point (Fault.After 1);
      (match Engine.update eng probe_update with
      | _ ->
          (* The point was not crossed by this shape of commit; disarm
             so the stale trigger cannot fire below. *)
          Fault.reset ()
      | exception Fault.Crash _ ->
          Alcotest.(check string)
            (Printf.sprintf "neighbor transcript intact while dead at %s" point)
            before (transcript neighbor);
          Alcotest.(check string)
            (Printf.sprintf "neighbor records intact while dead at %s" point)
            before_sig (view_signature neighbor);
          ignore (Engine.recover eng));
      Fault.reset ();
      Alcotest.(check string)
        (Printf.sprintf "neighbor transcript intact after recovery from %s"
           point)
        before (transcript neighbor);
      Alcotest.(check string)
        (Printf.sprintf "neighbor records intact after recovery from %s" point)
        before_sig (view_signature neighbor);
      Engine.unpin_snapshot eng neighbor)
    [ "snapshot.publish"; "snapshot.share"; "snapshot.reclaim"; "snapshot.gc" ]

(* ------------------------------------------------------------------ *)
(* The qcheck property: random documents, policies and updates —
   a reader pinned on epoch N sees byte-identical decisions before,
   during (writer crashed mid-epoch) and after epoch N+1 commits,
   whatever the three backends are doing. *)

let roles_policy =
  lazy
    (Policy_io.parse_exn
       "role staff\n\
        role doctor inherits staff\n\
        default deny\n\
        conflict deny\n\
        allow //patient\n\
        deny @staff //patient[treatment]\n\
        allow @doctor //treatment\n")

let random_policy rng doc =
  match Prng.int rng 4 with
  | 0 -> W.Hospital.policy
  | 1 -> W.Coverage.policy_for_target ~doc ~target:0.3
  | 2 -> Lazy.force roles_policy
  | _ ->
      Policy.make ~ds:Rule.Minus ~cr:Rule.Minus
        (List.init
           (1 + Prng.int rng 4)
           (fun i ->
             Rule.make
               ~name:(Printf.sprintf "M%d" i)
               ~resource:(Helpers.random_hospital_expr rng)
               (if Prng.bool rng then Rule.Plus else Rule.Minus)))

let rec random_update rng =
  let e = Helpers.random_hospital_expr rng in
  match e.Xmlac_xpath.Ast.steps with
  | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Name "hospital"; _ } ]
  | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Wildcard; _ } ] ->
      random_update rng
  | _ -> Pp.expr_to_string e

let isolation_prop =
  QCheck2.Test.make
    ~name:
      "pinned on N: byte-identical decisions before/during/after N+1, all \
       backends"
    ~count:30
    QCheck2.Gen.(pair Helpers.seed_gen Helpers.seed_gen)
    (fun (doc_seed, fault_seed) ->
      Fault.reset ();
      let rng = Prng.create ~seed:doc_seed in
      let doc = Helpers.random_hospital_doc rng in
      let policy = random_policy rng doc in
      let update = random_update rng in
      let queries =
        List.init 4 (fun _ -> Pp.expr_to_string (Helpers.random_hospital_expr rng))
      in
      let eng = Engine.create ~dtd:W.Hospital.dtd ~policy doc in
      ignore (Engine.annotate_all eng);
      let pinned = Engine.pin_snapshot eng in
      let read () =
        String.concat "\n"
          (List.map
             (fun q ->
               Format.asprintf "%a" Requester.pp (Snapshot.request pinned q))
             queries)
      in
      let before = read () in
      (* Before: full fidelity — the snapshot answers exactly like the
         live engine on every backend at the pinned epoch. *)
      List.iter
        (fun kind ->
          List.iter
            (fun q ->
              let live =
                Format.asprintf "%a" Requester.pp (Engine.request eng kind q)
              in
              let snap =
                Format.asprintf "%a" Requester.pp
                  (Snapshot.request pinned q)
              in
              if live <> snap then
                QCheck2.Test.fail_reportf
                  "snapshot diverges from live %s on %s: %s vs %s"
                  (Engine.backend_kind_to_string kind)
                  q live snap)
            queries)
        Engine.all_backend_kinds;
      (* During: the writer crashes somewhere inside epoch N+1. *)
      Fault.set_seed fault_seed;
      Fault.arm_all ~prob:0.05;
      let crashed =
        match Engine.update eng update with
        | _ -> false
        | exception Fault.Crash _ -> true
      in
      if crashed && read () <> before then
        QCheck2.Test.fail_report
          "pinned reader moved while the writer lay dead mid-epoch";
      if crashed then ignore (Engine.recover eng) else Fault.reset ();
      (* After: N+1 (or its recovery) is committed. *)
      if read () <> before then
        QCheck2.Test.fail_report
          "pinned reader moved after the next epoch committed";
      Engine.unpin_snapshot eng pinned;
      true)

(* ------------------------------------------------------------------ *)
(* The COW ≡ full-copy property: along a random chain of committed
   epochs, every published COW snapshot must answer exactly like a
   deep-copy twin taken at the same instant — same decisions (with and
   without subjects, so the per-role maps are exercised), same visible
   node set, same effective sign at every node.  The twins are
   interrogated only after the whole chain has committed, so the COW
   side answers through carried memos and shared records that later
   epochs path-copied around, while the full side evaluates fresh on a
   private deep copy that shares nothing. *)

let cow_equiv_prop =
  QCheck2.Test.make
    ~name:"COW snapshot ≡ full-copy twin across random epoch chains"
    ~count:20
    QCheck2.Gen.(pair Helpers.seed_gen Helpers.seed_gen)
    (fun (doc_seed, op_seed) ->
      Fault.reset ();
      let rng = Prng.create ~seed:doc_seed in
      let doc = Helpers.random_hospital_doc rng in
      let policy = random_policy rng doc in
      let queries =
        List.init 4 (fun _ ->
            Pp.expr_to_string (Helpers.random_hospital_expr rng))
      in
      let eng = Engine.create ~dtd:W.Hospital.dtd ~policy doc in
      ignore (Engine.annotate_all eng);
      let roles = Policy.roles policy in
      if roles <> [] then ignore (Engine.annotate_subjects_all eng);
      let subjects = None :: List.map Option.some roles in
      let orng = Prng.create ~seed:op_seed in
      let twin () =
        let cow = Engine.pin_snapshot eng in
        let full =
          Snapshot.capture_full
            ~annotated:(Snapshot.annotated cow)
            ~bits_annotated:(Snapshot.bits_annotated cow)
            ~epoch:(Engine.sign_epoch eng) ~policy:(Engine.policy eng)
            ~cam:(Engine.cam eng)
            ~metrics:(Metrics.create ())
            (Engine.document eng)
        in
        (* Reading through the COW side now populates its memo cache,
           so the engine's next publish exercises carry-forward on
           entries this property will re-check at the end. *)
        List.iter
          (fun q -> ignore (Snapshot.request cow q))
          queries;
        (cow, full)
      in
      let pairs = ref [ twin () ] in
      for _ = 1 to 3 do
        (match Prng.int orng 3 with
        | 0 -> ignore (Engine.update eng (random_update orng))
        | 1 -> ignore (Engine.annotate_all eng)
        | _ ->
            if roles <> [] then ignore (Engine.annotate_subjects_all eng)
            else ignore (Engine.update eng (random_update orng)));
        pairs := twin () :: !pairs
      done;
      List.iter
        (fun (cow, full) ->
          if not (Snapshot.cow cow) then
            QCheck2.Test.fail_report "engine snapshot does not share structure";
          if Snapshot.cow full then
            QCheck2.Test.fail_report "capture_full claims sharing";
          if Snapshot.epoch cow <> Snapshot.epoch full then
            QCheck2.Test.fail_report "twins disagree on their epoch";
          (* Visible node set and every effective sign. *)
          let sc = view_signature cow and sf = view_signature full in
          if sc <> sf then
            QCheck2.Test.fail_reportf
              "COW view diverges from full copy at epoch %d: %s vs %s"
              (Snapshot.epoch cow) sc sf;
          (* Decisions, per subject and query. *)
          List.iter
            (fun subject ->
              List.iter
                (fun q ->
                  let d s =
                    Format.asprintf "%a" Requester.pp
                      (Snapshot.request ?subject s q)
                  in
                  let c = d cow and f = d full in
                  if c <> f then
                    QCheck2.Test.fail_reportf
                      "COW decision diverges at epoch %d%s on %s: %s vs %s"
                      (Snapshot.epoch cow)
                      (match subject with
                      | None -> ""
                      | Some r -> " @" ^ r)
                      q c f)
                queries)
            subjects)
        !pairs;
      List.iter (fun (cow, _) -> Engine.unpin_snapshot eng cow) !pairs;
      true)

(* ------------------------------------------------------------------ *)
(* Pool: scheduling semantics. *)

let test_pool_sequential () =
  let pool = Pool.create ~domains:1 () in
  Alcotest.(check bool) "one domain is sequential" true
    (Pool.sequential pool);
  let order = ref [] in
  let out =
    Pool.parallel pool
      (List.init 5 (fun i ->
           fun () ->
             order := i :: !order;
             i * i))
  in
  Alcotest.(check (list int)) "results in submission order"
    [ 0; 1; 4; 9; 16 ] out;
  Alcotest.(check (list int)) "sequential mode runs in order"
    [ 0; 1; 2; 3; 4 ] (List.rev !order);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_pool_parallel () =
  let pool = Pool.create ~domains:4 () in
  Alcotest.(check int) "four domains" 4 (Pool.size pool);
  let out = Pool.parallel pool (List.init 32 (fun i -> fun () -> i + 1)) in
  Alcotest.(check (list int)) "indexed results despite racing workers"
    (List.init 32 (fun i -> i + 1))
    out;
  (* A pool survives a failing batch and reports the exception. *)
  (match
     Pool.parallel pool
       [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]
   with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "first exn" "boom" m);
  let again = Pool.parallel pool [ (fun () -> 7) ] in
  Alcotest.(check (list int)) "pool reusable after a failure" [ 7 ] again;
  Pool.shutdown pool;
  (match Pool.parallel pool [ (fun () -> 0) ] with
  | _ -> Alcotest.fail "parallel after shutdown did not raise"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Session lifecycle. *)

let test_session_lifecycle () =
  Fault.reset ();
  let serve = S.create (annotated_engine ()) in
  let eng = S.engine serve in
  (match Session.open_ ~subject:"nobody" serve with
  | _ -> Alcotest.fail "unknown role accepted"
  | exception Invalid_argument _ -> ());
  let sess = Session.open_ serve in
  let e0 = Session.epoch sess in
  let r0 =
    match Session.request sess "//patient/name" with
    | Ok r -> r
    | Error e -> Alcotest.failf "session read failed: %s" e.S.message
  in
  Alcotest.(check bool) "served pinned" true (r0.S.served = S.Pinned);
  (* The writer commits; the session's epoch and answers hold. *)
  ignore (S.update serve probe_update);
  Alcotest.(check int) "epoch constant across the commit" e0
    (Session.epoch sess);
  (* refresh is the explicit opt-in to the new version. *)
  Session.refresh sess;
  Alcotest.(check int) "refresh re-pins the current epoch"
    (Engine.sign_epoch eng) (Session.epoch sess);
  let live_before_close = Snapshot.live (Engine.snapshots eng) in
  Session.close sess;
  Session.close sess (* idempotent *);
  Alcotest.(check bool) "closed" true (Session.closed sess);
  Alcotest.(check bool) "close releases the pin" true
    (Snapshot.live (Engine.snapshots eng) <= live_before_close);
  (match Session.request sess "//nurse" with
  | _ -> Alcotest.fail "read through a closed session"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Multi-domain smoke: real domains, pinned readers, a churning
   writer; every reply must match the pinned-epoch oracle. *)

let test_multidomain_smoke () =
  Fault.reset ();
  let serve = S.create (annotated_engine ()) in
  let pool = Pool.create ~domains:4 () in
  let readers = 6 in
  let sessions = List.init readers (fun _ -> Session.open_ serve) in
  let oracle =
    List.map
      (fun q ->
        Format.asprintf "%a" Requester.pp
          (Snapshot.request (Session.snapshot (List.hd sessions)) q))
      probe_queries
  in
  let reader sess () =
    let bad = ref 0 in
    for _ = 1 to 8 do
      List.iteri
        (fun i q ->
          match Session.request sess q with
          | Ok r ->
              if
                Format.asprintf "%a" Requester.pp r.S.decision
                <> List.nth oracle i
                || r.S.served <> S.Pinned
              then incr bad
          | Error _ -> incr bad)
        probe_queries
    done;
    !bad
  in
  let writer () =
    ignore (S.update serve probe_update);
    ignore (S.update serve "//patient/psn");
    0
  in
  let bad = Pool.parallel pool (List.map reader sessions @ [ writer ]) in
  Alcotest.(check int) "no stale, unpinned or failed replies" 0
    (List.fold_left ( + ) 0 bad);
  List.iter Session.close sessions;
  Pool.shutdown pool;
  let h = S.health serve in
  Alcotest.(check bool) "layer healthy after the run" true (S.healthy h);
  Fault.reset ()

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mvcc"
    [
      ( "registry",
        [
          tc "pin/publish/reclaim lifecycle" test_registry_lifecycle;
          tc "engine publishes every commit" test_engine_publishes_on_commit;
        ] );
      ( "isolation",
        [
          tc "pinned reader vs one commit" test_pinned_reader_isolation;
          tc "writer dies mid-epoch, readers unaffected"
            test_crash_sweep_pinned_readers;
        ] );
      ( "sharing",
        [
          tc "cow capture, carry-forward, segment gc"
            test_cow_sharing_and_carry;
          tc "killed publish never corrupts a pinned neighbor"
            test_cow_kill_never_corrupts_pinned_neighbor;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest isolation_prop;
          QCheck_alcotest.to_alcotest cow_equiv_prop;
        ] );
      ( "frontend",
        [
          tc "pool sequential mode" test_pool_sequential;
          tc "pool parallel barrier" test_pool_parallel;
          tc "session lifecycle" test_session_lifecycle;
          tc "multi-domain smoke" test_multidomain_smoke;
        ] );
    ]
