(* MVCC epoch snapshots: the registry's pin/publish/reclaim lifecycle,
   the engine's publish-on-commit integration, the pinned-reader
   isolation property (byte-identical decisions before, during and
   after the next epoch commits, against all three backends), the
   crash sweep where the writer dies mid-epoch under pinned readers,
   and the concurrent front end (Pool scheduling, Session lifecycle,
   a multi-domain smoke run). *)

open Xmlac_core
module Tree = Xmlac_xml.Tree
module Fault = Xmlac_util.Fault
module Prng = Xmlac_util.Prng
module Metrics = Xmlac_util.Metrics
module Pp = Xmlac_xpath.Pp
module W = Xmlac_workload
module S = Xmlac_serve.Serve
module Session = Xmlac_serve.Session
module Pool = Xmlac_serve.Pool

(* ------------------------------------------------------------------ *)
(* Fixtures. *)

let make_engine =
  let doc = lazy (W.Hospital.sample_document ()) in
  fun () ->
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (Lazy.force doc)

let annotated_engine () =
  let eng = make_engine () in
  ignore (Engine.annotate_all eng);
  eng

(* Control queries whose decisions move when treatments are deleted. *)
let probe_queries =
  [ "//patient/name"; "//nurse"; "//treatment"; "//patient/psn" ]

let probe_update = "//treatment"

(* A decision transcript of the snapshot: the "bytes" a pinned reader
   sees.  Rendering through the printer makes the comparison catch
   ordering changes too, not just set membership. *)
let transcript ?subject snap =
  String.concat "\n"
    (List.map
       (fun q ->
         Format.asprintf "%s -> %a" q Requester.pp
           (Snapshot.request ?subject snap q))
       probe_queries)

(* ------------------------------------------------------------------ *)
(* Registry lifecycle. *)

let capture_of eng =
  Snapshot.capture ~epoch:(Engine.sign_epoch eng)
    ~policy:(Engine.policy eng) ~cam:(Engine.cam eng)
    ~metrics:(Engine.metrics eng) (Engine.document eng)

let test_registry_lifecycle () =
  Fault.reset ();
  let eng = annotated_engine () in
  let m = Metrics.create () in
  let reg = Snapshot.create_registry ~metrics:m () in
  Alcotest.(check (option int)) "empty registry" None
    (Snapshot.current_epoch reg);
  (match Snapshot.pin reg with
  | _ -> Alcotest.fail "pin before first publish did not raise"
  | exception Invalid_argument _ -> ());
  let s0 = capture_of eng in
  Snapshot.publish reg s0;
  Alcotest.(check (option int)) "s0 current"
    (Some (Engine.sign_epoch eng))
    (Snapshot.current_epoch reg);
  Alcotest.(check int) "one live" 1 (Snapshot.live reg);
  (* Publishing over an unpinned current reclaims it immediately. *)
  let s1 = capture_of eng in
  Snapshot.publish reg s1;
  Alcotest.(check int) "unpinned predecessor reclaimed" 1
    (Snapshot.live reg);
  Alcotest.(check int) "reclaim counted" 1 (Snapshot.reclaimed reg);
  (* A pinned current is retired by the next publish, not reclaimed. *)
  let p = Snapshot.pin reg in
  Alcotest.(check int) "pin counted" 1 (Snapshot.pins p);
  let s2 = capture_of eng in
  Snapshot.publish reg s2;
  Alcotest.(check int) "pinned predecessor retired" 1
    (Snapshot.retired reg);
  Alcotest.(check int) "two live" 2 (Snapshot.live reg);
  Alcotest.(check int) "reclaim lag high-water" 1
    (Snapshot.max_retired reg);
  (* Reclaim happens exactly when the last pin goes. *)
  Snapshot.unpin reg p;
  Alcotest.(check int) "retired freed at refcount 0" 0
    (Snapshot.retired reg);
  Alcotest.(check int) "back to one live" 1 (Snapshot.live reg);
  (match Snapshot.unpin reg p with
  | () -> Alcotest.fail "double unpin did not raise"
  | exception Invalid_argument _ -> ());
  (* The current snapshot is never reclaimed, pinned or not. *)
  let c = Snapshot.pin reg in
  Snapshot.unpin reg c;
  Alcotest.(check bool) "current survives its last unpin" true
    (Snapshot.current reg <> None);
  Alcotest.(check int) "three publishes" 3 (Snapshot.published reg)

let test_engine_publishes_on_commit () =
  Fault.reset ();
  let eng = make_engine () in
  let reg = Engine.snapshots eng in
  Alcotest.(check (option int)) "epoch 0 published at create" (Some 0)
    (Snapshot.current_epoch reg);
  ignore (Engine.annotate_all eng);
  Alcotest.(check (option int)) "commit republishes"
    (Some (Engine.sign_epoch eng))
    (Snapshot.current_epoch reg);
  let pinned = Engine.pin_snapshot eng in
  let before = Engine.sign_epoch eng in
  ignore (Engine.update eng probe_update);
  Alcotest.(check bool) "writer advanced" true
    (Engine.sign_epoch eng > before);
  Alcotest.(check (option int)) "registry tracks the writer"
    (Some (Engine.sign_epoch eng))
    (Snapshot.current_epoch reg);
  Alcotest.(check int) "pinned epoch frozen" before
    (Snapshot.epoch pinned);
  Alcotest.(check int) "old epoch retired, not dropped" 2
    (Snapshot.live reg);
  Engine.unpin_snapshot eng pinned;
  Alcotest.(check int) "reclaimed on last unpin" 1 (Snapshot.live reg)

(* ------------------------------------------------------------------ *)
(* Pinned-reader isolation: deterministic backbone. *)

let test_pinned_reader_isolation () =
  Fault.reset ();
  let eng = annotated_engine () in
  let pinned = Engine.pin_snapshot eng in
  (* Before: the snapshot agrees with the live engine on every
     backend (they all materialize the same committed epoch). *)
  let before = transcript pinned in
  List.iter
    (fun kind ->
      List.iter
        (fun q ->
          Alcotest.(check string)
            (Printf.sprintf "snapshot = live %s on %s"
               (Engine.backend_kind_to_string kind) q)
            (Format.asprintf "%a" Requester.pp (Engine.request eng kind q))
            (Format.asprintf "%a" Requester.pp (Snapshot.request pinned q)))
        probe_queries)
    Engine.all_backend_kinds;
  (* After: the writer commits epoch N+1; the pinned transcript is
     byte-identical while the live one moved. *)
  ignore (Engine.update eng probe_update);
  Alcotest.(check string) "pinned transcript unchanged after commit"
    before (transcript pinned);
  let live_now =
    Format.asprintf "%a" Requester.pp
      (Engine.request eng Engine.Native "//treatment")
  in
  Alcotest.(check bool) "live engine did move" true
    (live_now
    <> Format.asprintf "%a" Requester.pp
         (Snapshot.request pinned "//treatment"));
  Engine.unpin_snapshot eng pinned

(* ------------------------------------------------------------------ *)
(* Crash sweep: the writer dies mid-epoch at every fault point the
   update crosses; the pinned reader's transcript must be identical
   while the corpse is still warm and after recovery. *)

let crossed_points () =
  (* Scout with faults disarmed: which points does the update cross? *)
  Fault.reset ();
  let eng = annotated_engine () in
  let before = List.map (fun p -> (p, Fault.hits p)) (Fault.registered ()) in
  ignore (Engine.update eng probe_update);
  let after = Fault.registered () in
  List.filter
    (fun p ->
      let h0 = try List.assoc p before with Not_found -> 0 in
      Fault.hits p > h0)
    after

let test_crash_sweep_pinned_readers () =
  let points = crossed_points () in
  Alcotest.(check bool) "sweep covers the snapshot publish point" true
    (List.mem "snapshot.publish" points);
  List.iter
    (fun point ->
      Fault.reset ();
      let eng = annotated_engine () in
      let pinned = Engine.pin_snapshot eng in
      let before = transcript pinned in
      Fault.arm point (Fault.After 1);
      (match Engine.update eng probe_update with
      | _ ->
          (* Some scouted points (e.g. snapshot.reclaim) are only
             crossed when no reader pins the old epoch; with the pin
             in place the update sails through.  Disarm so the stale
             trigger cannot fire at the unpin below. *)
          Fault.reset ()
      | exception Fault.Crash _ ->
          (* Writer dead mid-epoch: the pinned reader keeps answering,
             byte-identically, without waiting for recovery. *)
          Alcotest.(check string)
            (Printf.sprintf "transcript stable while dead at %s" point)
            before (transcript pinned);
          ignore (Engine.recover eng));
      Alcotest.(check string)
        (Printf.sprintf "transcript stable after recovery from %s" point)
        before (transcript pinned);
      Engine.unpin_snapshot eng pinned)
    points;
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* The qcheck property: random documents, policies and updates —
   a reader pinned on epoch N sees byte-identical decisions before,
   during (writer crashed mid-epoch) and after epoch N+1 commits,
   whatever the three backends are doing. *)

let random_policy rng doc =
  match Prng.int rng 3 with
  | 0 -> W.Hospital.policy
  | 1 -> W.Coverage.policy_for_target ~doc ~target:0.3
  | _ ->
      Policy.make ~ds:Rule.Minus ~cr:Rule.Minus
        (List.init
           (1 + Prng.int rng 4)
           (fun i ->
             Rule.make
               ~name:(Printf.sprintf "M%d" i)
               ~resource:(Helpers.random_hospital_expr rng)
               (if Prng.bool rng then Rule.Plus else Rule.Minus)))

let rec random_update rng =
  let e = Helpers.random_hospital_expr rng in
  match e.Xmlac_xpath.Ast.steps with
  | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Name "hospital"; _ } ]
  | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Wildcard; _ } ] ->
      random_update rng
  | _ -> Pp.expr_to_string e

let isolation_prop =
  QCheck2.Test.make
    ~name:
      "pinned on N: byte-identical decisions before/during/after N+1, all \
       backends"
    ~count:30
    QCheck2.Gen.(pair Helpers.seed_gen Helpers.seed_gen)
    (fun (doc_seed, fault_seed) ->
      Fault.reset ();
      let rng = Prng.create ~seed:doc_seed in
      let doc = Helpers.random_hospital_doc rng in
      let policy = random_policy rng doc in
      let update = random_update rng in
      let queries =
        List.init 4 (fun _ -> Pp.expr_to_string (Helpers.random_hospital_expr rng))
      in
      let eng = Engine.create ~dtd:W.Hospital.dtd ~policy doc in
      ignore (Engine.annotate_all eng);
      let pinned = Engine.pin_snapshot eng in
      let read () =
        String.concat "\n"
          (List.map
             (fun q ->
               Format.asprintf "%a" Requester.pp (Snapshot.request pinned q))
             queries)
      in
      let before = read () in
      (* Before: full fidelity — the snapshot answers exactly like the
         live engine on every backend at the pinned epoch. *)
      List.iter
        (fun kind ->
          List.iter
            (fun q ->
              let live =
                Format.asprintf "%a" Requester.pp (Engine.request eng kind q)
              in
              let snap =
                Format.asprintf "%a" Requester.pp
                  (Snapshot.request pinned q)
              in
              if live <> snap then
                QCheck2.Test.fail_reportf
                  "snapshot diverges from live %s on %s: %s vs %s"
                  (Engine.backend_kind_to_string kind)
                  q live snap)
            queries)
        Engine.all_backend_kinds;
      (* During: the writer crashes somewhere inside epoch N+1. *)
      Fault.set_seed fault_seed;
      Fault.arm_all ~prob:0.05;
      let crashed =
        match Engine.update eng update with
        | _ -> false
        | exception Fault.Crash _ -> true
      in
      if crashed && read () <> before then
        QCheck2.Test.fail_report
          "pinned reader moved while the writer lay dead mid-epoch";
      if crashed then ignore (Engine.recover eng) else Fault.reset ();
      (* After: N+1 (or its recovery) is committed. *)
      if read () <> before then
        QCheck2.Test.fail_report
          "pinned reader moved after the next epoch committed";
      Engine.unpin_snapshot eng pinned;
      true)

(* ------------------------------------------------------------------ *)
(* Pool: scheduling semantics. *)

let test_pool_sequential () =
  let pool = Pool.create ~domains:1 () in
  Alcotest.(check bool) "one domain is sequential" true
    (Pool.sequential pool);
  let order = ref [] in
  let out =
    Pool.parallel pool
      (List.init 5 (fun i ->
           fun () ->
             order := i :: !order;
             i * i))
  in
  Alcotest.(check (list int)) "results in submission order"
    [ 0; 1; 4; 9; 16 ] out;
  Alcotest.(check (list int)) "sequential mode runs in order"
    [ 0; 1; 2; 3; 4 ] (List.rev !order);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_pool_parallel () =
  let pool = Pool.create ~domains:4 () in
  Alcotest.(check int) "four domains" 4 (Pool.size pool);
  let out = Pool.parallel pool (List.init 32 (fun i -> fun () -> i + 1)) in
  Alcotest.(check (list int)) "indexed results despite racing workers"
    (List.init 32 (fun i -> i + 1))
    out;
  (* A pool survives a failing batch and reports the exception. *)
  (match
     Pool.parallel pool
       [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]
   with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "first exn" "boom" m);
  let again = Pool.parallel pool [ (fun () -> 7) ] in
  Alcotest.(check (list int)) "pool reusable after a failure" [ 7 ] again;
  Pool.shutdown pool;
  (match Pool.parallel pool [ (fun () -> 0) ] with
  | _ -> Alcotest.fail "parallel after shutdown did not raise"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Session lifecycle. *)

let test_session_lifecycle () =
  Fault.reset ();
  let serve = S.create (annotated_engine ()) in
  let eng = S.engine serve in
  (match Session.open_ ~subject:"nobody" serve with
  | _ -> Alcotest.fail "unknown role accepted"
  | exception Invalid_argument _ -> ());
  let sess = Session.open_ serve in
  let e0 = Session.epoch sess in
  let r0 =
    match Session.request sess "//patient/name" with
    | Ok r -> r
    | Error e -> Alcotest.failf "session read failed: %s" e.S.message
  in
  Alcotest.(check bool) "served pinned" true (r0.S.served = S.Pinned);
  (* The writer commits; the session's epoch and answers hold. *)
  ignore (S.update serve probe_update);
  Alcotest.(check int) "epoch constant across the commit" e0
    (Session.epoch sess);
  (* refresh is the explicit opt-in to the new version. *)
  Session.refresh sess;
  Alcotest.(check int) "refresh re-pins the current epoch"
    (Engine.sign_epoch eng) (Session.epoch sess);
  let live_before_close = Snapshot.live (Engine.snapshots eng) in
  Session.close sess;
  Session.close sess (* idempotent *);
  Alcotest.(check bool) "closed" true (Session.closed sess);
  Alcotest.(check bool) "close releases the pin" true
    (Snapshot.live (Engine.snapshots eng) <= live_before_close);
  (match Session.request sess "//nurse" with
  | _ -> Alcotest.fail "read through a closed session"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Multi-domain smoke: real domains, pinned readers, a churning
   writer; every reply must match the pinned-epoch oracle. *)

let test_multidomain_smoke () =
  Fault.reset ();
  let serve = S.create (annotated_engine ()) in
  let pool = Pool.create ~domains:4 () in
  let readers = 6 in
  let sessions = List.init readers (fun _ -> Session.open_ serve) in
  let oracle =
    List.map
      (fun q ->
        Format.asprintf "%a" Requester.pp
          (Snapshot.request (Session.snapshot (List.hd sessions)) q))
      probe_queries
  in
  let reader sess () =
    let bad = ref 0 in
    for _ = 1 to 8 do
      List.iteri
        (fun i q ->
          match Session.request sess q with
          | Ok r ->
              if
                Format.asprintf "%a" Requester.pp r.S.decision
                <> List.nth oracle i
                || r.S.served <> S.Pinned
              then incr bad
          | Error _ -> incr bad)
        probe_queries
    done;
    !bad
  in
  let writer () =
    ignore (S.update serve probe_update);
    ignore (S.update serve "//patient/psn");
    0
  in
  let bad = Pool.parallel pool (List.map reader sessions @ [ writer ]) in
  Alcotest.(check int) "no stale, unpinned or failed replies" 0
    (List.fold_left ( + ) 0 bad);
  List.iter Session.close sessions;
  Pool.shutdown pool;
  let h = S.health serve in
  Alcotest.(check bool) "layer healthy after the run" true (S.healthy h);
  Fault.reset ()

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "mvcc"
    [
      ( "registry",
        [
          tc "pin/publish/reclaim lifecycle" test_registry_lifecycle;
          tc "engine publishes every commit" test_engine_publishes_on_commit;
        ] );
      ( "isolation",
        [
          tc "pinned reader vs one commit" test_pinned_reader_isolation;
          tc "writer dies mid-epoch, readers unaffected"
            test_crash_sweep_pinned_readers;
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest isolation_prop ] );
      ( "frontend",
        [
          tc "pool sequential mode" test_pool_sequential;
          tc "pool parallel barrier" test_pool_parallel;
          tc "session lifecycle" test_session_lifecycle;
          tc "multi-domain smoke" test_multidomain_smoke;
        ] );
    ]
