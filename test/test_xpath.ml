(* Tests for the XPath fragment: parsing, printing, evaluation,
   containment, schema-level matching, expansion and generation. *)

module Ast = Xmlac_xpath.Ast
module Parser = Xmlac_xpath.Parser
module Pp = Xmlac_xpath.Pp
module Eval = Xmlac_xpath.Eval
module Containment = Xmlac_xpath.Containment
module Pattern = Xmlac_xpath.Pattern
module Schema_match = Xmlac_xpath.Schema_match
module Expand = Xmlac_xpath.Expand
module Qgen = Xmlac_xpath.Qgen
module Tree = Xmlac_xml.Tree
module Sg = Xmlac_xml.Schema_graph
module Prng = Xmlac_util.Prng

let parse = Helpers.parse
let hospital_sg = Lazy.force Helpers.hospital_sg

(* ------------------------------------------------------------------ *)
(* Parser & printer *)

let test_parse_shapes () =
  let e = parse "//patient[treatment]/name" in
  (match e.Ast.steps with
  | [ s1; s2 ] ->
      Alcotest.(check bool) "descendant first" true (s1.Ast.axis = Ast.Descendant);
      Alcotest.(check bool) "child second" true (s2.Ast.axis = Ast.Child);
      Alcotest.(check int) "one qual" 1 (List.length s1.Ast.quals)
  | _ -> Alcotest.fail "expected two steps");
  let e = parse "/hospital" in
  match e.Ast.steps with
  | [ s ] -> Alcotest.(check bool) "child-anchored" true (s.Ast.axis = Ast.Child)
  | _ -> Alcotest.fail "expected one step"

let test_parse_value_preds () =
  match (parse "//regular[bill > 1000]").Ast.steps with
  | [ { Ast.quals = [ Ast.Value ([ b ], Ast.Gt, "1000") ]; _ } ] ->
      Alcotest.(check bool) "bill step" true (b.Ast.test = Ast.Name "bill")
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_self_value () =
  match (parse "//med[. = \"x\"]").Ast.steps with
  | [ { Ast.quals = [ Ast.Value ([], Ast.Eq, "x") ]; _ } ] -> ()
  | _ -> Alcotest.fail "self value predicate"

let test_parse_conjunction () =
  match (parse "//a[b and c = \"d\"]").Ast.steps with
  | [ { Ast.quals = [ Ast.And (Ast.Exists _, Ast.Value _) ]; _ } ] -> ()
  | _ -> Alcotest.fail "conjunction"

let test_parse_descendant_in_pred () =
  match (parse "//patient[.//experimental]").Ast.steps with
  | [ { Ast.quals = [ Ast.Exists [ s ] ]; _ } ] ->
      Alcotest.(check bool) "descendant" true (s.Ast.axis = Ast.Descendant)
  | _ -> Alcotest.fail "descendant in predicate"

let test_parse_rejects () =
  let bad s =
    match Parser.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "patient";
  bad "//";
  bad "//a[";
  bad "//a[]";
  bad "//a[b = ]";
  bad "//a]";
  bad "//a[.]";
  bad "//a trailing"

let test_pp_roundtrip_cases () =
  List.iter
    (fun s ->
      let e = parse s in
      let printed = Pp.expr_to_string e in
      let e' = parse printed in
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s" s printed)
        true (Ast.equal_expr e e'))
    [
      "//patient"; "/hospital/dept"; "//patient[treatment]/name";
      "//patient[.//experimental]"; "//regular[med = \"celecoxib\"]";
      "//regular[bill > 1000]"; "//a[b and c = \"d\"]"; "//a[b/c][d]";
      "//*[*]"; "//med[. = \"x\"]"; "//a[b != \"q\"]"; "//a[b <= 3]";
      "/a//b/c//d";
    ]

let test_ast_size () =
  Alcotest.(check int) "size counts qual steps" 3
    (Ast.size (parse "//patient[treatment]/name"));
  Alcotest.(check int) "self preds add nothing" 1
    (Ast.size (parse "//med[. = \"x\"]"))

let test_strip_quals () =
  Alcotest.(check string) "stripped" "//patient/name"
    (Pp.expr_to_string (Ast.strip_quals (parse "//patient[treatment]/name")))

let test_has_descendant_in_qual () =
  Alcotest.(check bool) "yes" true
    (Ast.has_descendant_in_qual (parse "//patient[.//experimental]"));
  Alcotest.(check bool) "no" false
    (Ast.has_descendant_in_qual (parse "//patient[treatment]//name"))

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let doc = Helpers.hospital_doc ()

let test_eval_counts () =
  List.iter
    (fun (q, n) ->
      Alcotest.(check int) q n (Eval.count doc (parse q)))
    [
      ("//patient", 3);
      ("//patient[treatment]", 2);
      ("//patient[.//experimental]", 1);
      ("//patient/name", 3);
      ("//regular", 1);
      ("//regular[med = \"celecoxib\"]", 0);
      ("//regular[med = \"enoxaparin\"]", 1);
      ("//regular[bill > 1000]", 0);
      ("//experimental[bill > 1000]", 1);
      ("//experimental[bill >= 1600]", 1);
      ("//experimental[bill > 1600]", 0);
      ("//bill[. < 1000]", 1);
      ("//bill[. != 700]", 1);
      ("/hospital", 1);
      ("/hospital/dept/patients/patient", 3);
      ("/patient", 0);
      ("//*", 21);
      ("//patient[psn and name]", 3);
      ("//patient[psn][name]", 3);
      ("//patient[psn = \"042\"]", 1);
      ("//hospital", 1);
      ("/hospital//bill", 2);
      ("//dept/*", 2);
    ]

let test_eval_order_dedup () =
  (* //hospital//name and //name select the same nodes, once each, in
     document order. *)
  let a = Eval.eval doc (parse "//name") in
  let ids = List.map (fun (n : Tree.node) -> n.Tree.id) a in
  Alcotest.(check bool) "sorted doc order" true
    (ids = List.sort compare ids);
  Alcotest.(check int) "dedup" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_eval_rel () =
  let patients = Eval.eval doc (parse "//patient") in
  match patients with
  | p :: _ ->
      let names =
        Eval.eval_rel doc p [ Ast.step Ast.Child (Ast.Name "name") ]
      in
      Alcotest.(check int) "one name" 1 (List.length names);
      Alcotest.(check int) "self on empty path" 1
        (List.length (Eval.eval_rel doc p []))
  | [] -> Alcotest.fail "no patients"

let test_eval_matches () =
  let e = parse "//patient[treatment]" in
  let yes = Eval.eval doc e in
  List.iter
    (fun n -> Alcotest.(check bool) "matches" true (Eval.matches doc e n))
    yes

(* ------------------------------------------------------------------ *)
(* Containment *)

let contained p q = Containment.contained_in (parse p) (parse q)

let test_containment_table () =
  let cases =
    [
      (* (p, q, p ⊑ q) — the paper's Table 3 decisions first. *)
      ("//patient[treatment]/name", "//patient/name", true);
      ("//regular[med = \"celecoxib\"]", "//regular", true);
      ("//regular[bill > 1000]", "//regular", true);
      ("//patient[treatment]", "//patient", true);
      ("//patient", "//patient[treatment]", false);
      (* Axis structure. *)
      ("/hospital/dept", "//dept", true);
      ("//dept", "/hospital/dept", false);
      ("//a/b", "//b", true);
      ("//b", "//a/b", false);
      ("//a/b", "//a//b", true);
      ("//a//b", "//a/b", false);
      ("/a/b/c", "//a//c", true);
      ("//a//c", "/a/b/c", false);
      (* Wildcards. *)
      ("//a", "//*", true);
      ("//*", "//a", false);
      ("//a/b", "//*/b", true);
      ("//*/b", "//a/b", false);
      (* Predicates. *)
      ("//a[b][c]", "//a[b]", true);
      ("//a[b]", "//a[b][c]", false);
      ("//a[b/c]", "//a[b]", true);
      ("//a[b]", "//a[b/c]", false);
      ("//a[b = \"x\"]", "//a[b]", true);
      ("//a[b]", "//a[b = \"x\"]", false);
      ("//a[.//b]", "//a[.//b]", true);
      ("//a[b/c]", "//a[.//c]", true);
      ("//a[.//c]", "//a[b/c]", false);
      (* Value implication. *)
      ("//a[b > 1000]", "//a[b > 500]", true);
      ("//a[b > 500]", "//a[b > 1000]", false);
      ("//a[b = 700]", "//a[b < 1000]", true);
      ("//a[b = 700]", "//a[b > 1000]", false);
      ("//a[b >= 10]", "//a[b > 5]", true);
      ("//a[b > 5]", "//a[b >= 5]", true);
      ("//a[b >= 5]", "//a[b > 5]", false);
      ("//a[b = \"x\"]", "//a[b != \"y\"]", true);
      ("//a[b = \"x\"]", "//a[b != \"x\"]", false);
      ("//a[b < 5]", "//a[b <= 5]", true);
      ("//a[b <= 5]", "//a[b < 5]", false);
      (* Identical. *)
      ("//patient[treatment]", "//patient[treatment]", true);
      (* Unrelated. *)
      ("//regular", "//patient", false);
      ("//a/b", "//a/c", false);
    ]
  in
  List.iter
    (fun (p, q, want) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s in %s" p q)
        want (contained p q))
    cases

let test_equivalent () =
  Alcotest.(check bool) "refl" true
    (Containment.equivalent (parse "//a[b][c]") (parse "//a[c][b]"));
  Alcotest.(check bool) "not equiv" false
    (Containment.equivalent (parse "//a[b]") (parse "//a"))

let test_comparable () =
  Alcotest.(check bool) "comparable" true
    (Containment.comparable (parse "//patient[treatment]") (parse "//patient"));
  Alcotest.(check bool) "incomparable" false
    (Containment.comparable (parse "//regular") (parse "//experimental"))

let test_implies () =
  let i a b = Containment.implies a b in
  Alcotest.(check bool) "eq->lt" true (i (Ast.Eq, "3") (Ast.Lt, "5"));
  Alcotest.(check bool) "eq->eq numeric" true (i (Ast.Eq, "3.0") (Ast.Eq, "3"));
  Alcotest.(check bool) "gt chain" true (i (Ast.Gt, "10") (Ast.Gt, "9"));
  Alcotest.(check bool) "not weaker" false (i (Ast.Gt, "9") (Ast.Gt, "10"));
  Alcotest.(check bool) "neq same" true (i (Ast.Neq, "a") (Ast.Neq, "a"));
  Alcotest.(check bool) "le->neq" true (i (Ast.Lt, "5") (Ast.Neq, "7"))

let test_pattern_structure () =
  let p = Pattern.of_expr (parse "//patient[treatment]/name") in
  Alcotest.(check int) "spine length (root + 2 steps)" 3
    (List.length p.Pattern.spine);
  Alcotest.(check int) "node count" 4 p.Pattern.count;
  let out = Pattern.output p in
  Alcotest.(check bool) "output label" true
    (out.Pattern.label = Pattern.Label "name")

(* Soundness: if the homomorphism test says p ⊑ q then evaluation
   agrees on random documents. *)
let containment_sound_prop =
  QCheck2.Test.make ~name:"containment is sound on random docs/exprs"
    ~count:200 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let p = Helpers.random_hospital_expr rng in
      let q = Helpers.random_hospital_expr rng in
      if Containment.contained_in p q then begin
        let set_q = Eval.node_set doc q in
        List.for_all
          (fun (n : Tree.node) -> Hashtbl.mem set_q n.Tree.id)
          (Eval.eval doc p)
      end
      else true)

let containment_reflexive_prop =
  QCheck2.Test.make ~name:"containment is reflexive" ~count:100
    QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let p = Helpers.random_hospital_expr rng in
      Containment.contained_in p p)

(* ------------------------------------------------------------------ *)
(* Schema matching *)

let test_spine_matches_path () =
  let m e path = Schema_match.spine_matches_path (parse e) path in
  Alcotest.(check bool) "exact" true
    (m "/hospital/dept" [ "hospital"; "dept" ]);
  Alcotest.(check bool) "descendant gap" true
    (m "//med" [ "hospital"; "dept"; "patients"; "patient"; "treatment";
                 "regular"; "med" ]);
  Alcotest.(check bool) "must consume all" false
    (m "/hospital" [ "hospital"; "dept" ]);
  Alcotest.(check bool) "wildcard" true (m "/hospital/*" [ "hospital"; "dept" ])

let test_matched_root_paths () =
  let paths = Schema_match.matched_root_paths hospital_sg (parse "//name") in
  Alcotest.(check int) "three name paths" 3 (List.length paths);
  let paths =
    Schema_match.matched_root_paths hospital_sg
      (parse "//patient[.//experimental]")
  in
  Alcotest.(check int) "patient path" 1 (List.length paths)

let test_selected_types () =
  Alcotest.(check (list string)) "bill" [ "bill" ]
    (Schema_match.selected_types hospital_sg (parse "//regular/bill"));
  Alcotest.(check (list string)) "dept kids" [ "patients"; "staffinfo" ]
    (Schema_match.selected_types hospital_sg (parse "//dept/*"))

let test_satisfiable () =
  Alcotest.(check bool) "ok" true
    (Schema_match.satisfiable hospital_sg (parse "//patient/name"));
  Alcotest.(check bool) "wrong child" false
    (Schema_match.satisfiable hospital_sg (parse "//patient/bill"));
  Alcotest.(check bool) "impossible pred" false
    (Schema_match.satisfiable hospital_sg (parse "//patient[bill]"));
  Alcotest.(check bool) "possible pred" true
    (Schema_match.satisfiable hospital_sg (parse "//patient[.//bill]"))

let test_overlap_disjoint () =
  let ov a b = Schema_match.overlap hospital_sg (parse a) (parse b) in
  Alcotest.(check bool) "same type" true (ov "//patient" "//patient[treatment]");
  Alcotest.(check bool) "disjoint types" false (ov "//regular" "//experimental");
  Alcotest.(check bool) "same type different paths" false
    (ov "//regular/bill" "//experimental/bill");
  Alcotest.(check bool) "name overlap" true (ov "//name" "//patient/name");
  Alcotest.(check bool) "staff vs patient name" false
    (ov "//nurse/name" "//patient/name")

(* Disjointness is sound: if schema says disjoint, evaluations never
   intersect on valid documents. *)
let disjoint_sound_prop =
  QCheck2.Test.make ~name:"schema disjointness is sound" ~count:200
    QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let p = Helpers.random_hospital_expr rng in
      let q = Helpers.random_hospital_expr rng in
      if Schema_match.disjoint hospital_sg p q then begin
        let set_q = Eval.node_set doc q in
        not
          (List.exists
             (fun (n : Tree.node) -> Hashtbl.mem set_q n.Tree.id)
             (Eval.eval doc p))
      end
      else true)

(* ------------------------------------------------------------------ *)
(* Expansion *)

let expand_strings ?schema e =
  List.sort String.compare
    (List.map Pp.expr_to_string (Expand.expand ?schema (parse e)))

let test_expand_r3 () =
  (* The paper's example: R3 = //patient[treatment] expands to
     {//patient, //patient/treatment}. *)
  Alcotest.(check (list string)) "R3"
    [ "//patient"; "//patient/treatment" ]
    (expand_strings "//patient[treatment]")

let test_expand_r5_schema () =
  (* R5 = //patient[.//experimental] expands through the schema to
     //patient/treatment and //patient/treatment/experimental. *)
  Alcotest.(check (list string)) "R5"
    [ "//patient"; "//patient/treatment"; "//patient/treatment/experimental" ]
    (expand_strings ~schema:hospital_sg "//patient[.//experimental]")

let test_expand_r5_no_schema () =
  (* Without a schema the descendant step stays. *)
  Alcotest.(check (list string)) "R5 raw"
    [ "//patient"; "//patient//experimental" ]
    (expand_strings "//patient[.//experimental]")

let test_expand_nested () =
  Alcotest.(check (list string)) "nested preds"
    [ "//a"; "//a/b"; "//a/b/c" ]
    (expand_strings "//a[b[c]]")

let test_expand_value_pred () =
  Alcotest.(check (list string)) "value pred path"
    [ "//regular"; "//regular/med" ]
    (expand_strings "//regular[med = \"celecoxib\"]")

let test_expand_conjunction () =
  Alcotest.(check (list string)) "conjunction"
    [ "//a"; "//a/b"; "//a/c" ]
    (expand_strings "//a[b and c]")

let test_expand_spine_only () =
  Alcotest.(check (list string)) "no predicates"
    [ "//patient/name" ]
    (expand_strings "//patient/name")

let test_expand_mid_spine_pred () =
  Alcotest.(check (list string)) "mid-spine"
    [ "//patient/name"; "//patient/treatment" ]
    (expand_strings "//patient[treatment]/name")

(* ------------------------------------------------------------------ *)
(* Generation *)

let test_qgen_satisfiable () =
  let rng = Prng.create ~seed:99L in
  for _ = 1 to 200 do
    let e = Qgen.gen_expr ~config:Helpers.hospital_qgen_config rng hospital_sg in
    Alcotest.(check bool)
      (Pp.expr_to_string e)
      true
      (Schema_match.satisfiable hospital_sg e)
  done

let test_qgen_targeting () =
  let rng = Prng.create ~seed:100L in
  for _ = 1 to 50 do
    let e = Qgen.gen_targeting rng hospital_sg ~target:"bill" in
    let types = Schema_match.selected_types hospital_sg e in
    Alcotest.(check bool) "ends at bill or wildcard-including-bill" true
      (List.mem "bill" types)
  done

let test_qgen_deterministic () =
  let gen seed =
    let rng = Prng.create ~seed in
    List.init 10 (fun _ ->
        Pp.expr_to_string (Qgen.gen_expr rng hospital_sg))
  in
  Alcotest.(check (list string)) "same seed same exprs" (gen 7L) (gen 7L)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run ~and_exit:false "xpath"
    [
      ( "parser",
        [
          tc "shapes" test_parse_shapes;
          tc "value predicates" test_parse_value_preds;
          tc "self value" test_parse_self_value;
          tc "conjunction" test_parse_conjunction;
          tc "descendant in predicate" test_parse_descendant_in_pred;
          tc "rejects malformed" test_parse_rejects;
          tc "pp round trip" test_pp_roundtrip_cases;
          tc "ast size" test_ast_size;
          tc "strip_quals" test_strip_quals;
          tc "has_descendant_in_qual" test_has_descendant_in_qual;
        ] );
      ( "eval",
        [
          tc "counts on the hospital document" test_eval_counts;
          tc "order and dedup" test_eval_order_dedup;
          tc "relative paths" test_eval_rel;
          tc "matches" test_eval_matches;
        ] );
      ( "containment",
        [
          tc "decision table" test_containment_table;
          tc "equivalence" test_equivalent;
          tc "comparable" test_comparable;
          tc "value implication" test_implies;
          tc "pattern structure" test_pattern_structure;
          QCheck_alcotest.to_alcotest containment_sound_prop;
          QCheck_alcotest.to_alcotest containment_reflexive_prop;
        ] );
      ( "schema match",
        [
          tc "spine vs label path" test_spine_matches_path;
          tc "matched root paths" test_matched_root_paths;
          tc "selected types" test_selected_types;
          tc "satisfiability" test_satisfiable;
          tc "overlap/disjoint" test_overlap_disjoint;
          QCheck_alcotest.to_alcotest disjoint_sound_prop;
        ] );
      ( "expand",
        [
          tc "paper example R3" test_expand_r3;
          tc "paper example R5 (schema)" test_expand_r5_schema;
          tc "R5 without schema" test_expand_r5_no_schema;
          tc "nested predicates" test_expand_nested;
          tc "value predicate path" test_expand_value_pred;
          tc "conjunction" test_expand_conjunction;
          tc "spine only" test_expand_spine_only;
          tc "mid-spine predicate" test_expand_mid_spine_pred;
        ] );
      ( "qgen",
        [
          tc "satisfiable by construction" test_qgen_satisfiable;
          tc "targeting" test_qgen_targeting;
          tc "deterministic" test_qgen_deterministic;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Reference evaluator cross-check — appended suite.

   The production evaluator streams and short-circuits; this naive
   reference materializes every intermediate node set with the textbook
   semantics.  Any divergence on random documents and expressions is a
   bug in one of them. *)

module Reference = struct
  open Ast

  let test_ok test (n : Tree.node) =
    match test with Wildcard -> true | Name l -> String.equal l n.Tree.name

  let dedup nodes =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (n : Tree.node) ->
        if Hashtbl.mem seen n.Tree.id then false
        else begin
          Hashtbl.replace seen n.Tree.id ();
          true
        end)
      nodes

  let rec select_path context p = List.fold_left select_step context p

  and select_step context s =
    let candidates =
      match s.axis with
      | Child -> List.concat_map Tree.children context
      | Descendant -> List.concat_map Tree.descendants context
    in
    dedup candidates
    |> List.filter (test_ok s.test)
    |> List.filter (fun n -> List.for_all (qual_ok n) s.quals)

  and qual_ok n = function
    | Exists p -> select_path [ n ] p <> []
    | Value (p, op, d) ->
        List.exists
          (fun (m : Tree.node) ->
            match m.Tree.value with
            | Some v -> cmp_holds op v d
            | None -> false)
          (select_path [ n ] p)
    | And (a, b) -> qual_ok n a && qual_ok n b

  let eval t (e : expr) =
    match e.steps with
    | [] -> [ Tree.root t ]
    | first :: rest ->
        let initial =
          let candidates =
            match first.axis with
            | Child -> [ Tree.root t ]
            | Descendant -> Tree.descendant_or_self (Tree.root t)
          in
          List.filter
            (fun n ->
              test_ok first.test n && List.for_all (qual_ok n) first.quals)
            candidates
        in
        select_path initial rest
end

let ids_of nodes = List.map (fun (n : Tree.node) -> n.Tree.id) nodes

let eval_matches_reference_prop =
  QCheck2.Test.make ~name:"streaming evaluator = reference evaluator"
    ~count:300 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let ok = ref true in
      for _ = 1 to 5 do
        let e = Helpers.random_hospital_expr rng in
        if ids_of (Eval.eval doc e) <> ids_of (Reference.eval doc e) then
          ok := false
      done;
      !ok)

let test_eval_matches_reference_fixed () =
  let doc = Helpers.hospital_doc () in
  List.iter
    (fun q ->
      let e = parse q in
      Alcotest.(check (list int)) q
        (ids_of (Reference.eval doc e))
        (ids_of (Eval.eval doc e)))
    [
      "//patient"; "//patient[treatment]/name"; "//patient[.//experimental]";
      "//*"; "//dept/*"; "/hospital//bill"; "//bill[. > 1000]";
      "//patient[psn and name]"; "//name"; "/hospital/dept/patients/patient";
    ]

let () =
  Alcotest.run ~and_exit:false "xpath-extra"
    [
      ( "reference evaluator",
        [
          Alcotest.test_case "fixed cases" `Quick test_eval_matches_reference_fixed;
          QCheck_alcotest.to_alcotest eval_matches_reference_prop;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Schema-aware containment — appended suite. *)

let sc p q = Containment.contained_in_schema hospital_sg (parse p) (parse q)

let test_schema_containment_gains () =
  (* Judgements the pure homomorphism test cannot make but the DTD
     proves. *)
  Alcotest.(check bool) "//dept in /hospital/dept" true
    (sc "//dept" "/hospital/dept");
  Alcotest.(check bool) "not the pure test" false
    (Containment.contained_in (parse "//dept") (parse "/hospital/dept"));
  Alcotest.(check bool) "//med anchored" true
    (sc "//med" "/hospital/dept/patients/patient/treatment/regular/med");
  Alcotest.(check bool) "//experimental under patient" true
    (sc "//experimental" "//patient//experimental");
  Alcotest.(check bool) "unsatisfiable contained in anything" true
    (sc "//patient/bill" "//psn")

let test_schema_containment_preserves_pure () =
  (* At least as strong as the pure test. *)
  List.iter
    (fun (p, q) ->
      Alcotest.(check bool) (p ^ " in " ^ q) true (sc p q))
    [
      ("//patient[treatment]", "//patient");
      ("//patient[treatment]/name", "//patient/name");
      ("//regular[bill > 1000]", "//regular");
      ("/hospital/dept", "//dept");
    ]

let test_schema_containment_still_rejects () =
  Alcotest.(check bool) "patient not in name" false (sc "//patient" "//name");
  Alcotest.(check bool) "broad not in narrow pred" false
    (sc "//patient" "//patient[treatment]");
  (* name occurs under patient, nurse and doctor: //name is NOT
     contained in //patient/name under this DTD. *)
  Alcotest.(check bool) "name has other parents" false
    (sc "//name" "//patient/name")

(* Soundness on valid documents: if the schema-aware test says yes,
   evaluation agrees on every generated (hence valid) document. *)
let schema_containment_sound_prop =
  QCheck2.Test.make ~name:"schema containment sound on valid docs" ~count:200
    QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let p = Helpers.random_hospital_expr rng in
      let q = Helpers.random_hospital_expr rng in
      if Containment.contained_in_schema hospital_sg p q then begin
        let set_q = Eval.node_set doc q in
        List.for_all
          (fun (n : Tree.node) -> Hashtbl.mem set_q n.Tree.id)
          (Eval.eval doc p)
      end
      else true)

(* The schema-aware optimizer removes at least as much as the pure one
   and preserves semantics on valid documents. *)
let schema_optimizer_prop =
  QCheck2.Test.make ~name:"schema-aware optimization preserves semantics"
    ~count:80 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let rules =
        List.init
          (1 + Prng.int rng 6)
          (fun i ->
            Xmlac_core.Rule.make
              ~name:(Printf.sprintf "S%d" i)
              ~resource:(Helpers.random_hospital_expr rng)
              (if Prng.bool rng then Xmlac_core.Rule.Plus
               else Xmlac_core.Rule.Minus))
      in
      let p =
        Xmlac_core.Policy.make ~ds:Xmlac_core.Rule.Minus
          ~cr:Xmlac_core.Rule.Minus rules
      in
      let pure = Xmlac_core.Optimizer.optimize_policy p in
      let aware =
        Xmlac_core.Optimizer.optimize_policy ~schema:hospital_sg p
      in
      Xmlac_core.Policy.size aware <= Xmlac_core.Policy.size pure
      && Xmlac_core.Policy.accessible_ids p doc
         = Xmlac_core.Policy.accessible_ids aware doc)

let test_schema_optimizer_example () =
  (* //dept is redundant next to /hospital/dept only with the schema. *)
  let p =
    Xmlac_core.Policy.make ~ds:Xmlac_core.Rule.Minus ~cr:Xmlac_core.Rule.Minus
      [
        Xmlac_core.Rule.parse ~name:"K1" "/hospital/dept" Xmlac_core.Rule.Plus;
        Xmlac_core.Rule.parse ~name:"K2" "//dept" Xmlac_core.Rule.Plus;
      ]
  in
  Alcotest.(check int) "pure keeps both... "
    1
    (* /hospital/dept ⊑ //dept holds purely, so even the pure optimizer
       folds them — but into //dept. *)
    (Xmlac_core.Policy.size (Xmlac_core.Optimizer.optimize_policy p));
  let aware = Xmlac_core.Optimizer.optimize_policy ~schema:hospital_sg p in
  Alcotest.(check int) "aware folds too" 1 (Xmlac_core.Policy.size aware)

let test_schema_optimizer_strictly_better () =
  (* //patients[patient]/patient vs //patient: pure containment cannot
     anchor the former's [patients] prefix... both directions hold only
     with the schema for the reverse. *)
  let p =
    Xmlac_core.Policy.make ~ds:Xmlac_core.Rule.Minus ~cr:Xmlac_core.Rule.Minus
      [
        Xmlac_core.Rule.parse ~name:"K1" "//patients/patient" Xmlac_core.Rule.Plus;
        Xmlac_core.Rule.parse ~name:"K2" "//patient" Xmlac_core.Rule.Plus;
        Xmlac_core.Rule.parse ~name:"K3" "//dept" Xmlac_core.Rule.Minus;
        Xmlac_core.Rule.parse ~name:"K4" "/hospital/dept" Xmlac_core.Rule.Minus;
      ]
  in
  let pure = Xmlac_core.Optimizer.optimize_policy p in
  let aware = Xmlac_core.Optimizer.optimize_policy ~schema:hospital_sg p in
  (* Purely: K1 ⊑ K2 folds; K4 ⊑ K3 folds; nothing else. *)
  Alcotest.(check int) "pure size" 2 (Xmlac_core.Policy.size pure);
  Alcotest.(check bool) "aware no bigger" true
    (Xmlac_core.Policy.size aware <= Xmlac_core.Policy.size pure)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "xpath-schema"
    [
      ( "schema containment",
        [
          tc "gains over pure test" test_schema_containment_gains;
          tc "preserves pure results" test_schema_containment_preserves_pure;
          tc "still rejects" test_schema_containment_still_rejects;
          QCheck_alcotest.to_alcotest schema_containment_sound_prop;
        ] );
      ( "schema-aware optimizer",
        [
          tc "example" test_schema_optimizer_example;
          tc "not worse than pure" test_schema_optimizer_strictly_better;
          QCheck_alcotest.to_alcotest schema_optimizer_prop;
        ] );
    ]
