(* Tests for the workload generators: hospital, docgen, XMark, the
   coverage dataset and the 55-query workload. *)

module Tree = Xmlac_xml.Tree
module Dtd = Xmlac_xml.Dtd
module Prng = Xmlac_util.Prng
module W = Xmlac_workload
module Policy = Xmlac_core.Policy
module Pp = Xmlac_xpath.Pp

(* ------------------------------------------------------------------ *)
(* Hospital *)

let test_hospital_sample_valid () =
  Alcotest.(check bool) "valid" true
    (Dtd.is_valid W.Hospital.dtd (W.Hospital.sample_document ()))

let test_hospital_sample_shape () =
  let doc = W.Hospital.sample_document () in
  Alcotest.(check int) "patients" 3 (List.length (Helpers.ids doc "//patient"));
  Alcotest.(check int) "treatments" 2 (List.length (Helpers.ids doc "//treatment"));
  Alcotest.(check int) "size" 21 (Tree.size doc)

let test_hospital_generate_valid () =
  let doc = W.Hospital.generate ~departments:3 ~patients_per_dept:10 () in
  Alcotest.(check bool) "valid" true (Dtd.is_valid W.Hospital.dtd doc);
  Alcotest.(check int) "depts" 3 (List.length (Helpers.ids doc "//dept"));
  Alcotest.(check int) "patients" 30 (List.length (Helpers.ids doc "//patient"))

let test_hospital_generate_deterministic () =
  let a = W.Hospital.generate ~seed:5L ~departments:2 ~patients_per_dept:5 () in
  let b = W.Hospital.generate ~seed:5L ~departments:2 ~patients_per_dept:5 () in
  Alcotest.(check bool) "same" true (Tree.equal_structure a b);
  let c = W.Hospital.generate ~seed:6L ~departments:2 ~patients_per_dept:5 () in
  Alcotest.(check bool) "different seed differs" false (Tree.equal_structure a c)

let test_hospital_golden_accessible () =
  (* The golden accessible set of the motivating example stays put. *)
  let doc = W.Hospital.sample_document () in
  Alcotest.(check Helpers.int_list) "golden"
    (W.Hospital.accessible_sample_ids ())
    (Policy.accessible_ids W.Hospital.policy doc)

(* ------------------------------------------------------------------ *)
(* Docgen *)

let test_docgen_valid () =
  let rng = Prng.create ~seed:1L in
  for _ = 1 to 20 do
    let doc = W.Docgen.generate ~rng W.Hospital.dtd in
    Alcotest.(check bool) "valid" true (Dtd.is_valid W.Hospital.dtd doc)
  done

let test_docgen_rejects_recursive () =
  let dtd =
    Dtd.make ~root:"a" [ ("a", Dtd.Seq [ { elem = "a"; occ = Dtd.Star } ]) ]
  in
  let rng = Prng.create ~seed:2L in
  try
    ignore (W.Docgen.generate ~rng dtd);
    Alcotest.fail "accepted recursive DTD"
  with Invalid_argument _ -> ()

let test_docgen_fanout_clamped () =
  (* A config asking for wild fan-outs still yields valid docs because
     occurrences are clamped. *)
  let config =
    {
      W.Docgen.default_config with
      W.Docgen.fanout = (fun ~rng:_ ~parent:_ ~child:_ _ -> 7);
    }
  in
  let rng = Prng.create ~seed:3L in
  let doc = W.Docgen.generate ~config ~rng W.Hospital.dtd in
  Alcotest.(check bool) "valid" true (Dtd.is_valid W.Hospital.dtd doc)

(* ------------------------------------------------------------------ *)
(* XMark *)

let test_xmark_valid_small () =
  let doc = W.Xmark.generate ~factor:0.001 () in
  Alcotest.(check bool) "valid" true (Dtd.is_valid W.Xmark.dtd doc)

let test_xmark_deterministic () =
  let a = W.Xmark.generate ~factor:0.001 () in
  let b = W.Xmark.generate ~factor:0.001 () in
  Alcotest.(check bool) "same" true (Tree.equal_structure a b)

let test_xmark_scales () =
  let small = Tree.size (W.Xmark.generate ~factor:0.001 ()) in
  let big = Tree.size (W.Xmark.generate ~factor:0.05 ()) in
  Alcotest.(check bool) "monotone" true (big > 2 * small)

let test_xmark_estimate_rough () =
  let actual = Tree.size (W.Xmark.generate ~factor:0.1 ()) in
  let est = W.Xmark.node_count_estimate ~factor:0.1 in
  let ratio = float_of_int actual /. float_of_int est in
  Alcotest.(check bool)
    (Printf.sprintf "estimate within 2x (actual %d, est %d)" actual est)
    true
    (ratio > 0.5 && ratio < 2.0)

let test_xmark_value_pool_hits () =
  (* Generated documents contain values from the pools (so value
     predicates built from the pools can select nodes). *)
  let doc = W.Xmark.generate ~factor:0.02 () in
  let type_values =
    List.filter_map
      (fun (n : Tree.node) ->
        if n.Tree.name = "type" then n.Tree.value else None)
      (Tree.nodes doc)
  in
  Alcotest.(check bool) "types from pool" true
    (type_values <> []
    && List.for_all (fun v -> List.mem v (W.Xmark.value_pool "type")) type_values)

let test_xmark_non_recursive () =
  Alcotest.(check bool) "non-recursive" false
    (Xmlac_xml.Schema_graph.is_recursive (Lazy.force Helpers.xmark_sg))

(* ------------------------------------------------------------------ *)
(* Coverage dataset *)

let small_xmark = lazy (W.Xmark.generate ~factor:0.01 ())

let test_coverage_reaches_targets () =
  let doc = Lazy.force small_xmark in
  List.iter
    (fun target ->
      let p = W.Coverage.policy_for_target ~doc ~target in
      let c = W.Coverage.coverage_of p doc in
      Alcotest.(check bool)
        (Printf.sprintf "target %.2f -> %.2f" target c)
        true (c >= target))
    [ 0.25; 0.4; 0.6 ]

let test_coverage_dataset_monotone_policies () =
  let doc = Lazy.force small_xmark in
  let ds = W.Coverage.dataset ~doc ~targets:[ 0.3; 0.5; 0.7 ] in
  let sizes = List.map (fun (_, p) -> Policy.size p) ds in
  Alcotest.(check bool) "more coverage, more rules" true
    (List.sort compare sizes = sizes)

let test_coverage_has_negative_rules () =
  let doc = Lazy.force small_xmark in
  let _, p = List.hd (W.Coverage.dataset ~doc ~targets:[ 0.3 ]) in
  Alcotest.(check bool) "negatives present" true (Policy.negative p <> [])

(* ------------------------------------------------------------------ *)
(* Queries *)

let test_queries_count_and_determinism () =
  let a = W.Queries.response_queries () in
  let b = W.Queries.response_queries () in
  Alcotest.(check int) "55" 55 (List.length a);
  Alcotest.(check (list string)) "deterministic"
    (List.map Pp.expr_to_string a)
    (List.map Pp.expr_to_string b)

let test_queries_satisfiable () =
  let sg = Lazy.force Helpers.xmark_sg in
  List.iter
    (fun e ->
      Alcotest.(check bool) (Pp.expr_to_string e) true
        (Xmlac_xpath.Schema_match.satisfiable sg e))
    (W.Queries.response_queries ())

let test_delete_updates_never_root () =
  List.iter
    (fun (e : Xmlac_xpath.Ast.expr) ->
      match e.Xmlac_xpath.Ast.steps with
      | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Name "site"; _ } ] ->
          Alcotest.fail "root-selecting update"
      | _ -> ())
    (W.Queries.delete_updates ())

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run ~and_exit:false "workload"
    [
      ( "hospital",
        [
          tc "sample valid" test_hospital_sample_valid;
          tc "sample shape" test_hospital_sample_shape;
          tc "generate valid" test_hospital_generate_valid;
          tc "generate deterministic" test_hospital_generate_deterministic;
          tc "golden accessible set" test_hospital_golden_accessible;
        ] );
      ( "docgen",
        [
          tc "valid docs" test_docgen_valid;
          tc "rejects recursive" test_docgen_rejects_recursive;
          tc "fanout clamped" test_docgen_fanout_clamped;
        ] );
      ( "xmark",
        [
          tc "valid" test_xmark_valid_small;
          tc "deterministic" test_xmark_deterministic;
          tc "scales with factor" test_xmark_scales;
          tc "estimate rough" test_xmark_estimate_rough;
          tc "value pools hit" test_xmark_value_pool_hits;
          tc "non-recursive" test_xmark_non_recursive;
        ] );
      ( "coverage",
        [
          tc "reaches targets" test_coverage_reaches_targets;
          tc "monotone policies" test_coverage_dataset_monotone_policies;
          tc "has negative rules" test_coverage_has_negative_rules;
        ] );
      ( "queries",
        [
          tc "count and determinism" test_queries_count_and_determinism;
          tc "satisfiable" test_queries_satisfiable;
          tc "updates never root" test_delete_updates_never_root;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Cross-substrate properties on the XMark schema — appended suite.
   The hospital-schema properties live next to each subsystem; these
   repeat the two load-bearing ones on the (much wider) XMark schema. *)

module Xp = Xmlac_xpath
open Xmlac_core

let xmark_sg = Lazy.force Helpers.xmark_sg
let xmark_mapping = Xmlac_shrex.Mapping.of_dtd W.Xmark.dtd

let xmark_qgen_config =
  {
    Xp.Qgen.default_config with
    Xp.Qgen.value_pool = W.Xmark.value_pool;
    pred_prob = 0.35;
  }

let xmark_translation_prop =
  QCheck2.Test.make ~name:"XPath->SQL equivalence on the XMark schema"
    ~count:25 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = W.Xmark.generate ~seed:(Prng.next_int64 rng) ~factor:0.003 () in
      let db = Xmlac_reldb.Database.create Xmlac_reldb.Table.Row in
      ignore (Xmlac_shrex.Shred.load xmark_mapping ~default_sign:"-" db doc);
      let ok = ref true in
      for _ = 1 to 4 do
        let e = Xp.Qgen.gen_expr ~config:xmark_qgen_config rng xmark_sg in
        let native =
          List.sort compare
            (List.map (fun (n : Tree.node) -> n.Tree.id) (Xp.Eval.eval doc e))
        in
        if native <> Xmlac_shrex.Translate.eval_ids xmark_mapping db e then
          ok := false
      done;
      !ok)

let xmark_reannotation_prop =
  QCheck2.Test.make
    ~name:"partial reannotation = reference on the XMark schema (Overlap)"
    ~count:15 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = W.Xmark.generate ~seed:(Prng.next_int64 rng) ~factor:0.003 () in
      let rules =
        List.init
          (2 + Prng.int rng 5)
          (fun i ->
            Rule.make
              ~name:(Printf.sprintf "M%d" i)
              ~resource:(Xp.Qgen.gen_expr ~config:xmark_qgen_config rng xmark_sg)
              (if Prng.bool rng then Rule.Plus else Rule.Minus))
      in
      let policy = Policy.make ~ds:Rule.Minus ~cr:Rule.Minus rules in
      let depend = Depend.build ~mode:(Depend.Overlap xmark_sg) policy in
      let update =
        let rec pick () =
          let e = Xp.Qgen.gen_expr ~config:xmark_qgen_config rng xmark_sg in
          match e.Xp.Ast.steps with
          | [ _ ] -> pick () (* avoid root-level deletes *)
          | _ -> e
        in
        pick ()
      in
      let working = Tree.copy doc in
      let backend = Xml_backend.make working in
      let _ = Annotator.annotate backend policy in
      let _ = Reannotator.reannotate ~schema:xmark_sg backend depend ~update in
      let reference = Tree.copy doc in
      ignore (Xmlac_xmldb.Update.delete reference update);
      Policy.accessible_ids policy reference
      = Backend.accessible_ids backend ~default:Rule.Minus)

let () =
  Alcotest.run "workload-xmark-properties"
    [
      ( "xmark properties",
        [
          QCheck_alcotest.to_alcotest xmark_translation_prop;
          QCheck_alcotest.to_alcotest xmark_reannotation_prop;
        ] );
    ]
