(* Unit and property tests for the utility library. *)

module Prng = Xmlac_util.Prng
module Vec = Xmlac_util.Vec
module Tabular = Xmlac_util.Tabular
module Timing = Xmlac_util.Timing

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  let xs = List.init 10 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_prng_int_range () =
  let rng = Prng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let x = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_prng_int_in_inclusive () =
  let rng = Prng.create ~seed:4L in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 10_000 do
    let x = Prng.int_in rng 2 5 in
    Alcotest.(check bool) "in range" true (x >= 2 && x <= 5);
    if x = 2 then seen_lo := true;
    if x = 5 then seen_hi := true
  done;
  Alcotest.(check bool) "both bounds hit" true (!seen_lo && !seen_hi)

let test_prng_float_range () =
  let rng = Prng.create ~seed:5L in
  for _ = 1 to 1_000 do
    let x = Prng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_prng_bernoulli_extremes () =
  let rng = Prng.create ~seed:6L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1" true (Prng.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0" false (Prng.bernoulli rng 0.0)
  done

let test_prng_choose () =
  let rng = Prng.create ~seed:8L in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Prng.choose rng arr) arr)
  done

let test_prng_choose_list_empty () =
  let rng = Prng.create ~seed:9L in
  Alcotest.check_raises "empty" (Invalid_argument "Prng.choose_list: empty list")
    (fun () -> ignore (Prng.choose_list rng []))

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:10L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_sample_distinct () =
  let rng = Prng.create ~seed:11L in
  let xs = List.init 20 Fun.id in
  let s = Prng.sample rng 7 xs in
  Alcotest.(check int) "size" 7 (List.length s);
  Alcotest.(check int) "distinct" 7 (List.length (List.sort_uniq compare s))

let test_prng_sample_clamps () =
  let rng = Prng.create ~seed:12L in
  Alcotest.(check int) "clamped" 3
    (List.length (Prng.sample rng 10 [ 1; 2; 3 ]))

let test_prng_geometric_positive () =
  let rng = Prng.create ~seed:13L in
  for _ = 1 to 1_000 do
    Alcotest.(check bool) "non-negative" true (Prng.geometric rng 0.5 >= 0)
  done

let test_prng_word () =
  let rng = Prng.create ~seed:14L in
  let w = Prng.word rng 12 in
  Alcotest.(check int) "length" 12 (String.length w);
  Alcotest.(check bool) "lowercase" true
    (String.for_all (fun c -> c >= 'a' && c <= 'z') w)

let test_prng_split_decorrelated () =
  let a = Prng.create ~seed:15L in
  let b = Prng.split a in
  let xs = List.init 5 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 5 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "substream differs" true (xs <> ys)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_push_get () =
  let v = Vec.create ~dummy:0 () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" i (Vec.get v i)
  done

let test_vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3))

let test_vec_set () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Vec.set v 1 42;
  Alcotest.(check (list int)) "set" [ 1; 42; 3 ] (Vec.to_list v)

let test_vec_pop () =
  let v = Vec.of_list ~dummy:0 [ 1; 2 ] in
  Alcotest.(check (option int)) "pop" (Some 2) (Vec.pop v);
  Alcotest.(check (option int)) "pop" (Some 1) (Vec.pop v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_vec_clear () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Vec.clear v;
  Alcotest.(check bool) "empty" true (Vec.is_empty v)

let test_vec_fold_iter () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold" 10 (Vec.fold ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check int) "iteri count" 4 (List.length !acc)

let test_vec_filter_in_place () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "evens" [ 2; 4; 6 ] (Vec.to_list v)

let test_vec_exists () =
  let v = Vec.of_list ~dummy:0 [ 1; 3; 5 ] in
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 4) v)

let vec_qcheck =
  QCheck2.Test.make ~name:"vec round-trips lists" ~count:200
    QCheck2.Gen.(list int)
    (fun xs -> Vec.to_list (Vec.of_list ~dummy:0 xs) = xs)

let vec_filter_qcheck =
  QCheck2.Test.make ~name:"vec filter_in_place agrees with List.filter"
    ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let v = Vec.of_list ~dummy:0 xs in
      Vec.filter_in_place (fun x -> x > 0) v;
      Vec.to_list v = List.filter (fun x -> x > 0) xs)

(* ------------------------------------------------------------------ *)
(* Tabular *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_tabular_render () =
  let t = Tabular.create ~headers:[ "a"; "bb" ] in
  Tabular.add_row t [ "1"; "2" ];
  Tabular.add_row t [ "333" ];
  let s = Tabular.render t in
  Alcotest.(check bool) "contains header" true (contains ~needle:"bb" s);
  Alcotest.(check bool) "contains padded row" true (contains ~needle:"333" s);
  (* 3 rules + header + 2 rows = 6 non-empty lines. *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  Alcotest.(check int) "line count" 6 (List.length lines)

let test_tabular_arity () =
  let t = Tabular.create ~headers:[ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Tabular.add_row: too many cells")
    (fun () -> Tabular.add_row t [ "1"; "2" ])

(* ------------------------------------------------------------------ *)
(* Bitset *)

module Bitset = Xmlac_util.Bitset
module ISet = Set.Make (Int)

let test_bitset_basics () =
  let l = [ 0; 1; 2; 3; 5; 65535; 65536; 70000; 70001; 131072 ] in
  let b = Bitset.of_list (l @ l) in
  Alcotest.(check (list int)) "to_list ascending" l (Bitset.to_list b);
  Alcotest.(check int) "cardinal" (List.length l) (Bitset.cardinal b);
  Alcotest.(check bool) "mem cross-chunk" true (Bitset.mem 70000 b);
  Alcotest.(check bool) "not mem" false (Bitset.mem 4 b);
  Alcotest.(check (option int)) "choose smallest" (Some 0) (Bitset.choose b);
  Alcotest.(check bool) "empty" true Bitset.(is_empty empty);
  Alcotest.(check bool) "add/remove" true
    (Bitset.mem 42 (Bitset.add 42 b) && not (Bitset.mem 5 (Bitset.remove 5 b)))

let test_bitset_shapes () =
  (* Dense contiguous -> run; scattered dense -> bitmap; both must
     round-trip through the wire form and compare equal to their
     member sets. *)
  let run = Bitset.of_list (List.init 60000 (fun i -> i + 7)) in
  let bmp = Bitset.of_list (List.init 20000 (fun i -> i * 3)) in
  let arr = Bitset.of_list [ 9; 90; 900; 9000 ] in
  List.iter
    (fun b ->
      let b' = Bitset.of_string (Bitset.to_string b) in
      Alcotest.(check bool) "serialize round-trip" true (Bitset.equal b b');
      Alcotest.(check int) "round-trip cardinal" (Bitset.cardinal b)
        (Bitset.cardinal b'))
    [ run; bmp; arr; Bitset.union run bmp; Bitset.empty ];
  Alcotest.(check bool) "memory compresses runs" true
    (Bitset.memory_bytes run < Bitset.memory_bytes bmp)

let test_bitset_corrupt () =
  List.iter
    (fun s ->
      match Bitset.of_string s with
      | exception Failure m ->
          Alcotest.(check bool) "names corruption" true
            (contains ~needle:"corrupt" m)
      | _ -> Alcotest.failf "accepted corrupt input %S" s)
    [
      "RB2|0:A0001";       (* bad magic *)
      "RB1|0:A0003.0001";  (* unsorted members *)
      "RB1|0:Z00";         (* unknown shape *)
      "RB1|1:A0001|0:A0001";  (* keys out of order *)
      "RB1|0:R0005+0000";  (* zero-length run *)
      "RB1|0:Rfff0+0020";  (* run overflows chunk *)
      "RB1|0:A";           (* empty payload *)
    ]

let bitset_algebra_qcheck =
  (* Union / inter / diff / subset agree with Set.Make(Int) on random
     member lists spanning several chunks. *)
  let gen = QCheck2.Gen.(list_size (0 -- 200) (0 -- 200_000)) in
  QCheck2.Test.make ~name:"bitset algebra agrees with Set" ~count:200
    QCheck2.Gen.(pair gen gen)
    (fun (xs, ys) ->
      let bx = Bitset.of_list xs and by = Bitset.of_list ys in
      let sx = ISet.of_list xs and sy = ISet.of_list ys in
      let eq b s = Bitset.to_list b = ISet.elements s in
      eq (Bitset.union bx by) (ISet.union sx sy)
      && eq (Bitset.inter bx by) (ISet.inter sx sy)
      && eq (Bitset.diff bx by) (ISet.diff sx sy)
      && Bitset.subset bx by = ISet.subset sx sy
      && Bitset.equal bx by = ISet.equal sx sy)

let bitset_serialize_qcheck =
  QCheck2.Test.make ~name:"bitset wire form round-trips" ~count:100
    QCheck2.Gen.(list_size (0 -- 300) (0 -- 300_000))
    (fun xs ->
      let b = Bitset.of_list xs in
      Bitset.equal b (Bitset.of_string (Bitset.to_string b)))

(* ------------------------------------------------------------------ *)
(* Timing *)

let test_timing_time () =
  let x, t = Timing.time (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 x;
  Alcotest.(check bool) "non-negative" true (t >= 0.0)

let test_timing_pp () =
  let s = Format.asprintf "%a" Timing.pp_seconds 0.00125 in
  Alcotest.(check bool) "uses ms" true
    (String.length s >= 2 && String.sub s (String.length s - 2) 2 = "ms")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "util"
    [
      ( "prng",
        [
          tc "deterministic" test_prng_deterministic;
          tc "seed sensitivity" test_prng_seed_sensitivity;
          tc "int range" test_prng_int_range;
          tc "int_in inclusive" test_prng_int_in_inclusive;
          tc "float range" test_prng_float_range;
          tc "bernoulli extremes" test_prng_bernoulli_extremes;
          tc "choose membership" test_prng_choose;
          tc "choose_list empty" test_prng_choose_list_empty;
          tc "shuffle is a permutation" test_prng_shuffle_permutation;
          tc "sample distinct" test_prng_sample_distinct;
          tc "sample clamps" test_prng_sample_clamps;
          tc "geometric non-negative" test_prng_geometric_positive;
          tc "word shape" test_prng_word;
          tc "split decorrelated" test_prng_split_decorrelated;
        ] );
      ( "vec",
        [
          tc "push/get" test_vec_push_get;
          tc "bounds" test_vec_bounds;
          tc "set" test_vec_set;
          tc "pop" test_vec_pop;
          tc "clear" test_vec_clear;
          tc "fold/iteri" test_vec_fold_iter;
          tc "filter_in_place" test_vec_filter_in_place;
          tc "exists" test_vec_exists;
          QCheck_alcotest.to_alcotest vec_qcheck;
          QCheck_alcotest.to_alcotest vec_filter_qcheck;
        ] );
      ( "tabular",
        [ tc "render" test_tabular_render; tc "arity" test_tabular_arity ] );
      ( "bitset",
        [
          tc "basics" test_bitset_basics;
          tc "container shapes round-trip" test_bitset_shapes;
          tc "corrupt wire forms rejected" test_bitset_corrupt;
          QCheck_alcotest.to_alcotest bitset_algebra_qcheck;
          QCheck_alcotest.to_alcotest bitset_serialize_qcheck;
        ] );
      ( "timing",
        [ tc "time" test_timing_time; tc "pp_seconds" test_timing_pp ] );
    ]
