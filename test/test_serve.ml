(* The resilient serving layer: deadline budgets, the recoverable
   (transient) half of the fault registry, the circuit-breaker state
   machine, retry/timeout/degradation behavior of Serve, the
   fail-closed property under seeded recoverable-fault schedules, and
   the deterministic chaos soak the CI job replays. *)

open Xmlac_core
module S = Xmlac_serve.Serve
module B = Xmlac_serve.Breaker
module Tree = Xmlac_xml.Tree
module Fault = Xmlac_util.Fault
module Deadline = Xmlac_util.Deadline
module Prng = Xmlac_util.Prng
module Metrics = Xmlac_util.Metrics
module W = Xmlac_workload

(* ------------------------------------------------------------------ *)
(* Deadline budgets. *)

let test_deadline_budget () =
  Alcotest.(check bool) "no ambient budget" false (Deadline.active ());
  Deadline.checkpoint ();
  (* no budget: checkpoints are no-ops *)
  let r = Deadline.with_budget (fun () -> Deadline.active ()) in
  Alcotest.(check bool) "no ticks, no seconds: no budget installed" false r;
  let ran = ref 0 in
  (match
     Deadline.with_budget ~label:"unit" ~ticks:3 (fun () ->
         for _ = 1 to 10 do
           Deadline.checkpoint ();
           incr ran
         done)
   with
  | () -> Alcotest.fail "budget of 3 ticks survived 10 checkpoints"
  | exception Deadline.Expired label ->
      Alcotest.(check string) "label carried" "unit" label);
  Alcotest.(check int) "expired on the fourth crossing" 3 !ran;
  Alcotest.(check bool) "budget uninstalled after escape" false
    (Deadline.active ());
  (* nesting: the inner budget shadows, the outer is restored *)
  Deadline.with_budget ~ticks:100 (fun () ->
      Deadline.with_budget ~ticks:5 (fun () ->
          Alcotest.(check (option int)) "inner budget" (Some 5)
            (Deadline.remaining_ticks ()));
      Alcotest.(check (option int)) "outer restored" (Some 100)
        (Deadline.remaining_ticks ()))

(* ------------------------------------------------------------------ *)
(* The recoverable half of the fault registry. *)

let test_transient_registry () =
  Fault.reset ();
  Fault.arm_transient "s.t" (Fault.After 2);
  Fault.point "s.t";
  (match Fault.point "s.t" with
  | () -> Alcotest.fail "armed transient did not fire"
  | exception Fault.Transient site ->
      Alcotest.(check string) "site carried" "s.t" site);
  Alcotest.(check bool) "transient does not kill" false (Fault.killed ());
  (* counted transients are one-shot: the retry goes through *)
  Fault.point "s.t";
  Alcotest.(check int) "fires counted" 1 (Fault.transient_fires ());
  Fault.arm_all_transient ~prob:1.0;
  (match Fault.point "s.any" with
  | () -> Alcotest.fail "arm_all_transient 1.0 did not fire"
  | exception Fault.Transient _ -> ());
  Fault.disarm_all ();
  Fault.point "s.any";
  Fault.reset ();
  Alcotest.(check int) "reset zeroes the fire count" 0
    (Fault.transient_fires ())

(* ------------------------------------------------------------------ *)
(* The breaker state machine, in isolation. *)

let test_breaker_machine () =
  let m = Metrics.create () in
  let br =
    B.create ~metrics:m ~name:"unit"
      { B.window = 4; min_calls = 2; threshold = 0.5; cooldown = 2;
        probes = 2 }
  in
  Alcotest.(check bool) "starts closed" true (B.state br = B.Closed);
  B.record br ~ok:false;
  Alcotest.(check bool) "one failure under min_calls: still closed" true
    (B.state br = B.Closed);
  B.record br ~ok:false;
  Alcotest.(check bool) "error rate over threshold: open" true
    (B.state br = B.Open);
  Alcotest.(check int) "trip counted" 1 (B.trips br);
  (* open: [cooldown] rejections, then the next call probes *)
  Alcotest.(check bool) "rejected 1" true (B.admit br = `Reject);
  Alcotest.(check bool) "rejected 2" true (B.admit br = `Reject);
  Alcotest.(check bool) "cooldown over: probe admitted" true
    (B.admit br = `Admit);
  Alcotest.(check bool) "half-open" true (B.state br = B.Half_open);
  B.record br ~ok:true;
  Alcotest.(check bool) "one probe success: not closed yet" true
    (B.state br = B.Half_open);
  Alcotest.(check bool) "second probe admitted" true (B.admit br = `Admit);
  B.record br ~ok:true;
  Alcotest.(check bool) "probes done: closed" true (B.state br = B.Closed);
  (* a fresh window: the old failures are forgotten *)
  B.record br ~ok:false;
  B.record br ~ok:false;
  Alcotest.(check bool) "re-trips" true (B.state br = B.Open);
  ignore (B.admit br);
  ignore (B.admit br);
  ignore (B.admit br);
  B.record br ~ok:false;
  Alcotest.(check bool) "probe failure re-opens" true (B.state br = B.Open);
  Alcotest.(check int) "three trips" 3 (B.trips br);
  Alcotest.(check int) "metrics mirror trips" 3
    (Metrics.counter m "breaker.unit.trips");
  Alcotest.(check int) "metrics mirror closes" 1
    (Metrics.counter m "breaker.unit.closes");
  Alcotest.(check int) "metrics mirror rejections" 4
    (Metrics.counter m "breaker.unit.rejected")

(* ------------------------------------------------------------------ *)
(* Serve fixtures. *)

let make_engine =
  let doc = lazy (W.Hospital.sample_document ()) in
  fun () ->
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (Lazy.force doc)

let annotated_engine () =
  let eng = make_engine () in
  ignore (Engine.annotate_all eng);
  eng

let treatment_fragment () =
  let frag = Tree.create ~root_name:"treatment" in
  let reg = Tree.add_child frag (Tree.root frag) "regular" in
  ignore (Tree.add_child frag reg ~value:"aspirin" "med");
  ignore (Tree.add_child frag reg ~value:"120" "bill");
  frag

let tight_breaker =
  { B.window = 4; min_calls = 2; threshold = 0.5; cooldown = 3; probes = 1 }

let granted = function
  | Ok { S.decision = Requester.Granted _; _ } -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The live request path: retries, timeouts, parse errors. *)

let test_request_retry () =
  Fault.reset ();
  let serve = S.create (annotated_engine ()) in
  let m = Engine.metrics (S.engine serve) in
  Fault.arm_transient "native.eval" (Fault.After 1);
  (match S.request serve Engine.Native "//patient/name" with
  | Ok r ->
      Alcotest.(check bool) "served live" true (r.S.served = S.Live);
      Alcotest.(check int) "one retry behind the reply" 2 r.S.attempts;
      Alcotest.(check bool) "granted" true
        (Requester.is_granted r.S.decision)
  | Error e -> Alcotest.failf "retry did not recover: %s" e.S.message);
  Alcotest.(check int) "retry counted" 1 (Metrics.counter m "serve.retries");
  Alcotest.(check bool) "breaker unharmed" true
    (B.state (S.breaker serve Engine.Native) = B.Closed);
  Fault.reset ()

let test_request_retry_exhaustion () =
  Fault.reset ();
  let config = { S.default_config with S.max_retries = 0 } in
  let serve = S.create ~config (annotated_engine ()) in
  Fault.arm_transient "native.eval" (Fault.After 1);
  (match S.request serve Engine.Native "//nurse" with
  | Ok _ -> Alcotest.fail "no retries budgeted, yet the fault was absorbed"
  | Error e ->
      Alcotest.(check bool) "typed transient" true (e.S.class_ = S.Transient);
      Alcotest.(check string) "site names the fault point" "native.eval"
        e.S.site;
      Alcotest.(check int) "single attempt" 1 e.S.attempts);
  Fault.reset ()

let test_request_timeout () =
  Fault.reset ();
  let config = { S.default_config with S.deadline_ticks = Some 1 } in
  let serve = S.create ~config (annotated_engine ()) in
  (match S.request serve Engine.Native "//patient/name" with
  | Ok _ -> Alcotest.fail "a one-tick budget granted a multi-node query"
  | Error e ->
      Alcotest.(check bool) "classified as timeout" true
        (e.S.class_ = S.Timeout);
      Alcotest.(check string) "site names the budget" "request.native"
        e.S.site);
  Alcotest.(check int) "timeout errors counted" 1
    (Metrics.counter (Engine.metrics (S.engine serve)) "serve.errors.timeout");
  (* budgets are per-call: an unbudgeted engine call afterwards works *)
  Alcotest.(check bool) "budget uninstalled" false (Deadline.active ());
  Fault.reset ()

let test_parse_error_skips_breaker () =
  Fault.reset ();
  let serve = S.create (annotated_engine ()) in
  (match S.request serve Engine.Native "//patient[" with
  | Ok _ -> Alcotest.fail "malformed query granted"
  | Error e ->
      Alcotest.(check bool) "fatal" true (e.S.class_ = S.Fatal);
      Alcotest.(check string) "site" "parse" e.S.site;
      Alcotest.(check int) "never reached the engine" 0 e.S.attempts);
  (* a parse error says nothing about backend health *)
  Alcotest.(check int) "breaker untouched" 0
    (B.trips (S.breaker serve Engine.Native));
  Alcotest.(check int) "counted apart" 1
    (Metrics.counter (Engine.metrics (S.engine serve)) "serve.parse_errors")

(* ------------------------------------------------------------------ *)
(* Degradation: trip the native breaker, serve from the snapshot. *)

(* Errors enough requests to trip [kind]'s breaker under
   [tight_breaker] (min_calls failures), using distinct queries so the
   decision cache cannot short-circuit the armed eval point. *)
let trip serve kind queries =
  List.iter
    (fun q ->
      Fault.arm_transient
        (Engine.backend_kind_to_string kind ^ ".eval")
        (Fault.After 1);
      match S.request serve kind q with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "request %s survived its armed fault" q)
    queries;
  Alcotest.(check bool) "breaker tripped" true
    (B.state (S.breaker serve kind) = B.Open)

let test_degraded_fail_closed () =
  Fault.reset ();
  let config =
    { S.default_config with S.max_retries = 0; breaker = tight_breaker }
  in
  let eng = annotated_engine () in
  let serve = S.create ~config eng in
  let q_granted = "//patient/name" and q_denied = "//patient/treatment" in
  let live_granted = Engine.request eng Engine.Native q_granted in
  Alcotest.(check bool) "fixture grants the control query" true
    (Requester.is_granted live_granted);
  Alcotest.(check bool) "fixture denies the other control query" false
    (Requester.is_granted (Engine.request eng Engine.Native q_denied));
  trip serve Engine.Native [ "//nurse"; "//doctor" ];
  (* degraded answers come from the snapshot and agree with the
     committed materialization *)
  (match S.request serve Engine.Native q_granted with
  | Ok r ->
      Alcotest.(check bool) "served degraded" true (r.S.served = S.Degraded);
      Alcotest.(check bool) "snapshot agrees with the live decision" true
        (r.S.decision = live_granted)
  | Error e -> Alcotest.failf "degraded request errored: %s" e.S.message);
  (match S.request serve Engine.Native q_denied with
  | Ok r ->
      Alcotest.(check bool) "denied stays denied degraded" false
        (Requester.is_granted r.S.decision)
  | Error e -> Alcotest.failf "degraded request errored: %s" e.S.message);
  (* other backends are unaffected: their breakers are closed *)
  (match S.request serve Engine.Row_sql q_granted with
  | Ok r -> Alcotest.(check bool) "row still live" true (r.S.served = S.Live)
  | Error e -> Alcotest.failf "row request errored: %s" e.S.message);
  (* mutate the engine behind the layer's back: the snapshot is now
     stale and degradation denies everything — fail closed *)
  ignore (Engine.update eng "//patient/treatment");
  (match S.request serve Engine.Native q_granted with
  | Ok r ->
      Alcotest.(check bool) "stale snapshot: blanket denial" false
        (Requester.is_granted r.S.decision)
  | Error e -> Alcotest.failf "stale degraded request errored: %s" e.S.message);
  Alcotest.(check bool) "stale denials counted" true
    (Metrics.counter (Engine.metrics eng) "serve.degraded_stale" >= 1);
  Fault.reset ()

let test_degraded_recovers_liveness () =
  Fault.reset ();
  let config =
    { S.default_config with S.max_retries = 0; breaker = tight_breaker }
  in
  let serve = S.create ~config (annotated_engine ()) in
  trip serve Engine.Native [ "//nurse"; "//doctor" ];
  (* faults stop; within cooldown + probes calls the breaker re-closes *)
  let budget = tight_breaker.B.cooldown + tight_breaker.B.probes in
  let closed = ref false in
  for _ = 1 to budget do
    if not !closed then begin
      ignore (S.request serve Engine.Native "//patient/name");
      closed := B.state (S.breaker serve Engine.Native) = B.Closed
    end
  done;
  Alcotest.(check bool) "re-closed within cooldown + probes" true !closed;
  Alcotest.(check bool) "live again" true
    (granted (S.request serve Engine.Native "//patient/name"))

(* ------------------------------------------------------------------ *)
(* Mutations: queueing while degraded, drain, mid-epoch recovery. *)

let test_queue_and_drain () =
  Fault.reset ();
  let config =
    {
      S.default_config with
      S.max_retries = 0;
      breaker = tight_breaker;
      queue_capacity = 2;
    }
  in
  let serve = S.create ~config (annotated_engine ()) in
  trip serve Engine.Native [ "//nurse"; "//doctor" ];
  (match S.update serve "//patient/treatment" with
  | Ok (S.Queued 1) -> ()
  | _ -> Alcotest.fail "first degraded mutation did not queue");
  (match
     S.insert serve ~at:"//patient[psn = \"099\"]"
       ~fragment:(treatment_fragment ())
   with
  | Ok (S.Queued 2) -> ()
  | _ -> Alcotest.fail "second degraded mutation did not queue");
  (match S.update serve "//nurse" with
  | Error e ->
      Alcotest.(check bool) "queue overflow is transient" true
        (e.S.class_ = S.Transient);
      Alcotest.(check string) "names the queue" "serve.queue" e.S.site
  | Ok _ -> Alcotest.fail "overflow mutation accepted");
  Alcotest.(check int) "two held" 2 (S.queued serve);
  Alcotest.(check (list (pair string string))) "drain refuses while degraded"
    []
    (List.map (fun _ -> ("", "")) (S.drain serve));
  (* close the breaker, then drain *)
  for _ = 1 to tight_breaker.B.cooldown + tight_breaker.B.probes do
    ignore (S.request serve Engine.Native "//patient/name")
  done;
  Alcotest.(check bool) "closed again" true
    (B.state (S.breaker serve Engine.Native) = B.Closed);
  let drained = S.drain serve in
  Alcotest.(check int) "both replayed" 2 (List.length drained);
  List.iter
    (fun (_, r) ->
      match r with
      | Ok (S.Applied _) -> ()
      | Ok (S.Recovered) -> Alcotest.fail "drain should run fault-free here"
      | Ok (S.Queued _) -> Alcotest.fail "drain re-queued"
      | Error e -> Alcotest.failf "drained mutation failed: %s" e.S.message)
    drained;
  Alcotest.(check int) "queue empty" 0 (S.queued serve);
  Alcotest.(check bool) "stores in lockstep after replay" true
    (Engine.consistent (S.engine serve));
  Alcotest.(check bool) "healthy again" true (S.healthy (S.health serve))

let test_mutation_recovered_forward () =
  Fault.reset ();
  let eng = annotated_engine () in
  let serve = S.create eng in
  (* the twin receives the same mutation fault-free *)
  let twin = annotated_engine () in
  ignore (Engine.update twin "//patient/treatment");
  Fault.arm_transient "wal.commit" (Fault.After 1);
  (match S.update serve "//patient/treatment" with
  | Ok S.Recovered -> ()
  | Ok _ -> Alcotest.fail "mid-epoch fault should surface as Recovered"
  | Error e -> Alcotest.failf "mutation not recovered: %s" e.S.message);
  Alcotest.(check bool) "no epoch left open" true
    (Engine.open_epoch eng = None);
  Alcotest.(check bool) "lockstep" true (Engine.consistent eng);
  List.iter
    (fun kind ->
      Alcotest.(check (list int))
        ("rolled forward to the post state: "
        ^ Engine.backend_kind_to_string kind)
        (Engine.accessible twin kind)
        (Engine.accessible eng kind))
    Engine.all_backend_kinds;
  (* the snapshot followed the commit: a degraded answer would agree *)
  Alcotest.(check int) "snapshot refreshed" (Engine.sign_epoch eng)
    (S.health serve).S.snapshot_epoch;
  Fault.reset ()

let test_mutation_retry_before_epoch () =
  Fault.reset ();
  let serve = S.create (annotated_engine ()) in
  (* fire inside the second WAL's begin: the engine has not opened its
     epoch yet, one WAL has — the retry must first heal the dangling
     epoch, then apply cleanly *)
  Fault.arm_transient "wal.begin" (Fault.After 2);
  (match S.update serve "//patient/treatment" with
  | Ok (S.Applied _) -> ()
  | Ok _ -> Alcotest.fail "pre-epoch fault should be retried to Applied"
  | Error e -> Alcotest.failf "retry did not recover: %s" e.S.message);
  Alcotest.(check bool) "lockstep" true
    (Engine.consistent (S.engine serve));
  Alcotest.(check bool) "healthy" true (S.healthy (S.health serve));
  Fault.reset ()

(* ------------------------------------------------------------------ *)
(* The fail-closed property (qcheck): under any seeded schedule of
   recoverable faults, every grant the serving layer hands out is the
   fault-free decision — spurious denials and typed errors are
   allowed, wrong grants never. *)

let queries_pool =
  [|
    "//patient/name"; "//nurse"; "//doctor"; "//patient/treatment";
    "//treatment//bill"; "//patient[.//experimental]"; "//ward"; "//med";
  |]

let mutations_pool () =
  [|
    S.Update "//patient/treatment";
    S.Update "//treatment/regular";
    S.Insert { at = "//patient"; fragment = treatment_fragment () };
    S.Update "//nurse";
    S.Insert
      { at = "//patient[psn = \"099\"]"; fragment = treatment_fragment () };
  |]

(* One interleaved run against a fault-free twin.  Returns the number
   of wrong grants (must be 0).  The twin receives exactly the
   mutations the layer reported committed, in commit order, with the
   registry disarmed around every twin call. *)
let run_against_twin ~serve ~twin ~rng ~rate ~steps =
  let mutations = mutations_pool () in
  let wrong = ref 0 in
  let sync mu =
    Fault.disarm_all ();
    match mu with
    | S.Update q -> ignore (Engine.update twin q)
    | S.Insert { at; fragment } -> ignore (Engine.insert twin ~at ~fragment)
  in
  let committed = function
    | Ok (S.Applied _) | Ok S.Recovered -> true
    | Ok (S.Queued _) | Error _ -> false
  in
  for step = 1 to steps do
    Fault.set_seed (Int64.of_int (1789 * step));
    Fault.arm_all_transient ~prob:rate;
    if step mod 5 = 0 then begin
      let mu = Prng.choose rng mutations in
      if committed (S.mutate serve mu) then sync mu
    end
    else begin
      let kind = Prng.choose rng [| Engine.Native; Engine.Row_sql;
                                    Engine.Column_sql |] in
      let q = Prng.choose rng queries_pool in
      match S.request serve kind q with
      | Ok { S.decision = Requester.Granted ids; _ } ->
          Fault.disarm_all ();
          (match Engine.request twin kind q with
          | Requester.Granted ids' when ids' = ids -> ()
          | _ -> incr wrong)
      | Ok { S.decision = Requester.Denied _; _ } | Error _ -> ()
    end
  done;
  Fault.disarm_all ();
  List.iter (fun (mu, r) -> if committed r then sync mu) (S.drain serve);
  !wrong

let fail_closed_prop =
  QCheck2.Test.make
    ~name:
      "recoverable faults anywhere: grants match the fault-free twin, \
       denials and errors are the only degradation"
    ~count:15 Helpers.seed_gen
    (fun seed ->
      Fault.reset ();
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let policy = W.Hospital.policy in
      let make () = Engine.create ~dtd:W.Hospital.dtd ~policy doc in
      let eng = make () in
      ignore (Engine.annotate_all eng);
      let twin = make () in
      ignore (Engine.annotate_all twin);
      let config =
        { S.default_config with S.max_retries = 1; breaker = tight_breaker }
      in
      let serve = S.create ~config eng in
      let wrong = run_against_twin ~serve ~twin ~rng ~rate:0.08 ~steps:40 in
      Fault.reset ();
      if wrong > 0 then
        QCheck2.Test.fail_reportf "%d wrong grants under faults" wrong;
      if not (Engine.consistent eng) then
        QCheck2.Test.fail_report "stores out of lockstep after the run";
      List.for_all
        (fun kind ->
          Engine.accessible eng kind = Engine.accessible twin kind)
        Engine.all_backend_kinds)

(* ------------------------------------------------------------------ *)
(* The deterministic chaos soak the CI job replays: interleaved
   requests, mutations and recoveries at fault rate 0.05 across all
   three backends, then a quiet phase asserting liveness — every
   breaker re-closes within cooldown + probes calls once the faults
   stop — and final lockstep with the fault-free twin. *)

let soak_breaker =
  { B.window = 8; min_calls = 4; threshold = 0.5; cooldown = 4; probes = 2 }

let test_soak () =
  Fault.reset ();
  let seed =
    Option.value (Fault.env_seed ()) ~default:20090101L
  in
  let rng = Prng.create ~seed in
  let doc = W.Hospital.sample_document () in
  let make () =
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy doc
  in
  let eng = make () in
  ignore (Engine.annotate_all eng);
  let twin = make () in
  ignore (Engine.annotate_all twin);
  let config =
    { S.default_config with S.max_retries = 1; breaker = soak_breaker }
  in
  let serve = S.create ~config eng in
  let wrong = run_against_twin ~serve ~twin ~rng ~rate:0.05 ~steps:200 in
  Alcotest.(check int) "no wrong grants" 0 wrong;
  Alcotest.(check bool) "the schedule exercised faults" true
    (Fault.transient_fires () > 0);
  (* quiet phase: liveness *)
  Fault.disarm_all ();
  let budget = soak_breaker.B.cooldown + soak_breaker.B.probes in
  List.iter
    (fun kind ->
      let br = S.breaker serve kind in
      let i = ref 0 in
      while B.state br <> B.Closed && !i < budget do
        ignore (S.request serve kind (Prng.choose rng queries_pool));
        incr i
      done;
      Alcotest.(check bool)
        ("breaker re-closes: " ^ Engine.backend_kind_to_string kind)
        true
        (B.state br = B.Closed))
    Engine.all_backend_kinds;
  (* drain whatever the quiet phase can replay, then compare *)
  Fault.disarm_all ();
  List.iter
    (fun (mu, r) ->
      match (mu, r) with
      | mu, (Ok (S.Applied _) | Ok S.Recovered) -> (
          Fault.disarm_all ();
          match mu with
          | S.Update q -> ignore (Engine.update twin q)
          | S.Insert { at; fragment } ->
              ignore (Engine.insert twin ~at ~fragment))
      | _ -> ())
    (S.drain serve);
  Alcotest.(check bool) "lockstep after the storm" true
    (Engine.consistent eng);
  List.iter
    (fun kind ->
      Alcotest.(check (list int))
        ("accessible set matches the fault-free twin: "
        ^ Engine.backend_kind_to_string kind)
        (Engine.accessible twin kind)
        (Engine.accessible eng kind))
    Engine.all_backend_kinds;
  Alcotest.(check bool) "healthy at the end" true
    (S.healthy (S.health serve));
  Fault.reset ()

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "serve"
    [
      ( "deadline",
        [ tc "cooperative tick budgets nest and expire" test_deadline_budget ] );
      ( "transient faults",
        [ tc "one-shot and probabilistic transients" test_transient_registry ] );
      ( "breaker",
        [ tc "closed -> open -> half-open -> closed" test_breaker_machine ] );
      ( "requests",
        [
          tc "transient retried behind one reply" test_request_retry;
          tc "retry budget exhausts to a typed error"
            test_request_retry_exhaustion;
          tc "deadline expiry is a typed timeout" test_request_timeout;
          tc "parse errors bypass the breaker" test_parse_error_skips_breaker;
        ] );
      ( "degradation",
        [
          tc "fail-closed snapshot answers" test_degraded_fail_closed;
          tc "breaker re-closes after faults stop"
            test_degraded_recovers_liveness;
        ] );
      ( "mutations",
        [
          tc "queue while degraded, drain when healthy" test_queue_and_drain;
          tc "mid-epoch fault recovers forward" test_mutation_recovered_forward;
          tc "pre-epoch fault heals and retries" test_mutation_retry_before_epoch;
        ] );
      ( "properties", [ QCheck_alcotest.to_alcotest fail_closed_prop ] );
      ( "soak", [ tc "deterministic chaos soak" test_soak ] );
    ]
