(* End-to-end integration scenarios across the whole stack, on both the
   hospital and XMark workloads. *)

open Xmlac_core
module Tree = Xmlac_xml.Tree
module Prng = Xmlac_util.Prng
module W = Xmlac_workload

(* ------------------------------------------------------------------ *)
(* Scenario 1: the paper's motivating walk-through, verbatim. *)

let test_paper_walkthrough () =
  let eng =
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (W.Hospital.sample_document ())
  in
  (* Optimization reproduces Table 3. *)
  Alcotest.(check (list string)) "Table 3"
    W.Hospital.optimized_rule_names
    (List.map (fun r -> r.Rule.name) (Policy.rules (Engine.policy eng)));
  let _ = Engine.annotate_all eng in
  Alcotest.(check bool) "stores agree" true (Engine.consistent eng);
  (* Patients one and two are inaccessible (R3 overrides R1), the third
     accessible; names are accessible (R2). *)
  List.iter
    (fun kind ->
      Alcotest.(check bool) "patients denied" false
        (Requester.is_granted (Engine.request eng kind "//patient"));
      Alcotest.(check bool) "third patient" true
        (Requester.is_granted
           (Engine.request eng kind "//patient[psn = \"099\"]"));
      Alcotest.(check bool) "names granted" true
        (Requester.is_granted (Engine.request eng kind "//patient/name"));
      Alcotest.(check bool) "experimental denied" false
        (Requester.is_granted
           (Engine.request eng kind "//patient[.//experimental]")))
    Engine.all_backend_kinds;
  (* Delete treatments: R3/R5 no longer apply, R1 resurfaces. *)
  let stats = Engine.update eng "//patient/treatment" in
  List.iter
    (fun (_, s) ->
      Alcotest.(check bool) "some rules triggered" true
        (s.Reannotator.triggered <> []))
    stats;
  Alcotest.(check bool) "still consistent" true (Engine.consistent eng);
  List.iter
    (fun kind ->
      Alcotest.(check bool) "patients now granted" true
        (Requester.is_granted (Engine.request eng kind "//patient")))
    Engine.all_backend_kinds

(* ------------------------------------------------------------------ *)
(* Scenario 2: XMark with a coverage policy; queries and updates keep
   all stores in lockstep. *)

let test_xmark_lockstep () =
  let doc = W.Xmark.generate ~factor:0.005 () in
  let policy = W.Coverage.policy_for_target ~doc ~target:0.5 in
  let eng = Engine.create ~dtd:W.Xmark.dtd ~policy doc in
  let _ = Engine.annotate_all eng in
  Alcotest.(check bool) "annotated consistently" true (Engine.consistent eng);
  (* A few queries decided identically everywhere. *)
  List.iter
    (fun q ->
      let answers =
        List.map
          (fun kind -> Requester.is_granted (Engine.request eng kind q))
          Engine.all_backend_kinds
      in
      match answers with
      | [ a; b; c ] ->
          Alcotest.(check bool) ("agree on " ^ q) true (a = b && b = c)
      | _ -> assert false)
    [ "//person"; "//person/name"; "//creditcard"; "//open_auction/initial";
      "//bidder"; "//annotation" ];
  (* Three delete updates, staying consistent throughout. *)
  List.iter
    (fun u ->
      let _ = Engine.update eng u in
      Alcotest.(check bool) ("consistent after " ^ u) true
        (Engine.consistent eng))
    [ "//watches"; "//bidder"; "//person[creditcard]" ]

(* ------------------------------------------------------------------ *)
(* Scenario 3: partial re-annotation equals reference semantics after a
   sequence of updates (Overlap mode), on every backend. *)

let test_update_sequence_reference () =
  let doc = W.Hospital.generate ~departments:3 ~patients_per_dept:8 () in
  let policy = Optimizer.optimize_policy W.Hospital.policy in
  let eng =
    Engine.create ~mode:Engine.Overlap_mode ~dtd:W.Hospital.dtd
      ~policy:W.Hospital.policy (Tree.copy doc)
  in
  let _ = Engine.annotate_all eng in
  let reference = Tree.copy doc in
  List.iter
    (fun u ->
      let _ = Engine.update eng u in
      ignore (Xmlac_xmldb.Update.delete reference (Helpers.parse u));
      let expected = Policy.accessible_ids policy reference in
      List.iter
        (fun kind ->
          Alcotest.(check Helpers.int_list)
            (Engine.backend_kind_to_string kind ^ " after " ^ u)
            expected
            (Engine.accessible eng kind))
        Engine.all_backend_kinds)
    [ "//regular"; "//patient[.//experimental]"; "//staffinfo/staff" ]

(* ------------------------------------------------------------------ *)
(* Scenario 4: annotation survives the XML round trip — serialize the
   annotated native document, re-parse it, and the signs still encode
   the same accessible set. *)

let test_annotation_round_trip () =
  let eng =
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (W.Hospital.sample_document ())
  in
  let _ = Engine.annotate eng Engine.Native in
  let xml = Xmlac_xml.Serializer.to_string (Engine.document eng) in
  let reparsed = Xmlac_xml.Xml_parser.parse_exn xml in
  (* Universal ids are not serialized, so compare the annotated shape
     (names, values, signs), which is id-independent. *)
  Alcotest.(check bool) "annotated structure preserved" true
    (Tree.equal_annotated (Engine.document eng) reparsed);
  let backend = Xml_backend.make reparsed in
  Alcotest.(check int) "accessible count preserved"
    (List.length (Engine.accessible eng Engine.Native))
    (List.length (Backend.accessible_ids backend ~default:Rule.Minus))

(* ------------------------------------------------------------------ *)
(* Scenario 5: all four (ds, cr) configurations stay cross-backend
   consistent on a random document. *)

let test_all_configurations_consistent () =
  let doc = W.Hospital.generate ~departments:2 ~patients_per_dept:6 () in
  List.iter
    (fun (ds, cr) ->
      let policy =
        Policy.make ~ds ~cr
          [
            Rule.parse "//patient" Rule.Plus;
            Rule.parse "//patient[.//experimental]" Rule.Minus;
            Rule.parse "//name" Rule.Plus;
            Rule.parse "//staff" Rule.Minus;
          ]
      in
      let eng =
        Engine.create ~optimize:false ~dtd:W.Hospital.dtd ~policy
          (Tree.copy doc)
      in
      let _ = Engine.annotate_all eng in
      Alcotest.(check bool)
        (Printf.sprintf "ds=%s cr=%s consistent"
           (Rule.effect_to_string ds) (Rule.effect_to_string cr))
        true (Engine.consistent eng);
      (* And equal to the reference semantics. *)
      Alcotest.(check Helpers.int_list) "matches reference"
        (Policy.accessible_ids policy (Engine.document eng))
        (Engine.accessible eng Engine.Native))
    [ (Rule.Minus, Rule.Minus); (Rule.Minus, Rule.Plus);
      (Rule.Plus, Rule.Minus); (Rule.Plus, Rule.Plus) ]

(* ------------------------------------------------------------------ *)
(* Scenario 6: randomized end-to-end fuzz in Overlap mode. *)

let fuzz_prop =
  QCheck2.Test.make ~name:"engine fuzz: annotate/update/query stay consistent"
    ~count:20 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let rules =
        List.init
          (1 + Prng.int rng 5)
          (fun i ->
            Rule.make
              ~name:(Printf.sprintf "F%d" i)
              ~resource:(Helpers.random_hospital_expr rng)
              (if Prng.bool rng then Rule.Plus else Rule.Minus))
      in
      let policy = Policy.make ~ds:Rule.Minus ~cr:Rule.Minus rules in
      let eng =
        Engine.create ~mode:Engine.Overlap_mode ~dtd:W.Hospital.dtd ~policy doc
      in
      let _ = Engine.annotate_all eng in
      let ok = ref (Engine.consistent eng) in
      for _ = 1 to 3 do
        let e = Helpers.random_hospital_expr rng in
        (match e.Xmlac_xpath.Ast.steps with
        | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Name "hospital"; _ } ]
        | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Wildcard; _ } ] ->
            ()
        | _ ->
            let _ = Engine.update eng (Xmlac_xpath.Pp.expr_to_string e) in
            if not (Engine.consistent eng) then ok := false)
      done;
      !ok)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run ~and_exit:false "integration"
    [
      ( "scenarios",
        [
          tc "paper walkthrough" test_paper_walkthrough;
          tc "xmark lockstep" test_xmark_lockstep;
          tc "update sequence vs reference" test_update_sequence_reference;
          tc "annotation round trip" test_annotation_round_trip;
          tc "all ds/cr configurations" test_all_configurations_consistent;
          QCheck_alcotest.to_alcotest fuzz_prop;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Insert updates through the engine — appended suite. *)

let treatment_fragment ~med ~bill =
  let frag = Tree.create ~root_name:"treatment" in
  let reg = Tree.add_child frag (Tree.root frag) "regular" in
  ignore (Tree.add_child frag reg ~value:med "med");
  ignore (Tree.add_child frag reg ~value:bill "bill");
  frag

let test_insert_keeps_stores_lockstep () =
  let eng =
    Engine.create ~mode:Engine.Overlap_mode ~dtd:W.Hospital.dtd
      ~policy:W.Hospital.policy (W.Hospital.sample_document ())
  in
  let _ = Engine.annotate_all eng in
  (* Give the treatment-less patient a regular treatment: rule R3
     (//patient[treatment], deny) must kick in and flip that patient to
     inaccessible. *)
  let before = Engine.request eng Engine.Native "//patient[psn = \"099\"]" in
  Alcotest.(check bool) "accessible before" true (Requester.is_granted before);
  let stats =
    Engine.insert eng ~at:"//patient[psn = \"099\"]"
      ~fragment:(treatment_fragment ~med:"aspirin" ~bill:"120")
  in
  List.iter
    (fun (kind, s) ->
      Alcotest.(check int)
        (Engine.backend_kind_to_string kind ^ " grafts")
        1 s.Reannotator.deleted_roots)
    stats;
  Alcotest.(check bool) "stores agree after insert" true (Engine.consistent eng);
  (* The annotations match the reference semantics of the updated
     document. *)
  Alcotest.(check Helpers.int_list) "matches reference"
    (Policy.accessible_ids (Engine.policy eng) (Engine.document eng))
    (Engine.accessible eng Engine.Native);
  let after = Engine.request eng Engine.Native "//patient[psn = \"099\"]" in
  Alcotest.(check bool) "inaccessible after (R3)" false
    (Requester.is_granted after);
  (* And the document is still schema-valid everywhere. *)
  Alcotest.(check bool) "valid" true
    (Xmlac_xml.Dtd.is_valid W.Hospital.dtd (Engine.document eng))

let test_insert_multiple_targets_relational_mirror () =
  let doc = W.Hospital.generate ~seed:3L ~departments:2 ~patients_per_dept:4 () in
  let eng =
    Engine.create ~mode:Engine.Overlap_mode ~dtd:W.Hospital.dtd
      ~policy:W.Hospital.policy doc
  in
  let _ = Engine.annotate_all eng in
  let frag = Tree.create ~root_name:"staff" in
  let d = Tree.add_child frag (Tree.root frag) "nurse" in
  ignore (Tree.add_child frag d ~value:"S9" "sid");
  ignore (Tree.add_child frag d ~value:"new nurse" "name");
  ignore (Tree.add_child frag d ~value:"555-0000" "phone");
  let stats = Engine.insert eng ~at:"//staffinfo" ~fragment:frag in
  List.iter
    (fun (kind, s) ->
      Alcotest.(check int)
        (Engine.backend_kind_to_string kind ^ " grafts")
        2 s.Reannotator.deleted_roots)
    stats;
  Alcotest.(check bool) "consistent" true (Engine.consistent eng);
  (* The relational stores really contain the new tuples, with the
     native store's ids. *)
  let native = Engine.backend eng Engine.Native in
  let row = Engine.backend eng Engine.Row_sql in
  Alcotest.(check Helpers.int_list) "nurse ids mirrored"
    (native.Backend.eval_ids (Helpers.parse "//nurse"))
    (row.Backend.eval_ids (Helpers.parse "//nurse"))

let test_insert_then_delete_round () =
  let eng =
    Engine.create ~mode:Engine.Overlap_mode ~dtd:W.Hospital.dtd
      ~policy:W.Hospital.policy (W.Hospital.sample_document ())
  in
  let _ = Engine.annotate_all eng in
  let _ =
    Engine.insert eng ~at:"//patient[psn = \"099\"]"
      ~fragment:(treatment_fragment ~med:"celecoxib" ~bill:"90")
  in
  let _ = Engine.update eng "//treatment" in
  Alcotest.(check bool) "consistent after round trip" true
    (Engine.consistent eng);
  Alcotest.(check Helpers.int_list) "matches reference"
    (Policy.accessible_ids (Engine.policy eng) (Engine.document eng))
    (Engine.accessible eng Engine.Native)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "integration-insert"
    [
      ( "insert updates",
        [
          tc "lockstep and R3 flip" test_insert_keeps_stores_lockstep;
          tc "multiple targets mirrored" test_insert_multiple_targets_relational_mirror;
          tc "insert then delete" test_insert_then_delete_round;
        ] );
    ]
