(* Tests for the relational engine: values, schemas, tables under both
   storage engines, SQL rendering/parsing, and the executor. *)

module Value = Xmlac_reldb.Value
module Schema = Xmlac_reldb.Schema
module Table = Xmlac_reldb.Table
module Db = Xmlac_reldb.Database
module Sql = Xmlac_reldb.Sql
module Sql_text = Xmlac_reldb.Sql_text
module Executor = Xmlac_reldb.Executor

let both_engines f () =
  f Table.Row;
  f Table.Column

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_compare_order () =
  Alcotest.(check bool) "null smallest" true
    (Value.compare Value.Null (Value.Int (-5)) < 0);
  Alcotest.(check bool) "int before str" true
    (Value.compare (Value.Int 3) (Value.Str "a") < 0);
  Alcotest.(check int) "int eq" 0 (Value.compare (Value.Int 3) (Value.Int 3))

let test_value_cmp_null () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "null incomparable" false
        (Value.cmp_holds op Value.Null (Value.Int 1));
      Alcotest.(check bool) "null incomparable" false
        (Value.cmp_holds op (Value.Str "x") Value.Null))
    [ Value.Eq; Value.Neq; Value.Lt; Value.Le; Value.Gt; Value.Ge ]

let test_value_cmp_numeric_strings () =
  Alcotest.(check bool) "numeric compare" true
    (Value.cmp_holds Value.Gt (Value.Str "1600") (Value.Str "700"));
  Alcotest.(check bool) "lex compare" true
    (Value.cmp_holds Value.Lt (Value.Str "abc") (Value.Str "abd"));
  Alcotest.(check bool) "int vs numeric str" true
    (Value.cmp_holds Value.Eq (Value.Int 7) (Value.Str "7"))

let test_value_literal () =
  Alcotest.(check string) "null" "NULL" (Value.to_literal Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_literal (Value.Int 42));
  Alcotest.(check string) "quoting" "'it''s'" (Value.to_literal (Value.Str "it's"))

(* ------------------------------------------------------------------ *)
(* Schema *)

let patient_schema =
  Schema.table "patient"
    [ ("id", Schema.TInt); ("pid", Schema.TInt); ("s", Schema.TStr) ]

let med_schema =
  Schema.table "med"
    [ ("id", Schema.TInt); ("pid", Schema.TInt); ("v", Schema.TStr);
      ("s", Schema.TStr) ]

let test_schema_requires_id () =
  Alcotest.check_raises "no id"
    (Invalid_argument "Schema.table t: missing id column") (fun () ->
      ignore (Schema.table "t" [ ("pid", Schema.TInt) ]))

let test_schema_rejects_duplicates () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema.table t: duplicate column") (fun () ->
      ignore (Schema.table "t" [ ("id", Schema.TInt); ("id", Schema.TInt) ]))

let test_schema_column_index () =
  Alcotest.(check int) "v at 2" 2 (Schema.column_index med_schema "v");
  Alcotest.(check bool) "has v" true (Schema.has_column med_schema "v");
  Alcotest.(check bool) "no v" false (Schema.has_column patient_schema "v")

let test_schema_ddl () =
  Alcotest.(check string) "ddl"
    "CREATE TABLE patient (id INTEGER PRIMARY KEY, pid INTEGER, s TEXT);"
    (Schema.create_table_sql patient_schema)

(* ------------------------------------------------------------------ *)
(* Table (parameterized over both engines) *)

let mk_table engine =
  let t = Table.create engine med_schema in
  List.iter
    (fun (id, pid, v) ->
      Table.insert t
        [| Value.Int id; Value.Int pid; Value.Str v; Value.Str "-" |])
    [ (1, 10, "a"); (2, 10, "b"); (3, 11, "c") ];
  t

let test_table_insert_get engine =
  let t = mk_table engine in
  Alcotest.(check int) "count" 3 (Table.live_count t);
  match Table.find_by_id t 2 with
  | None -> Alcotest.fail "id 2 missing"
  | Some row ->
      Alcotest.(check bool) "value" true
        (Table.get t ~row ~column:2 = Value.Str "b")

let test_table_pid_index engine =
  let t = mk_table engine in
  Alcotest.(check int) "pid 10" 2 (List.length (Table.rows_by_pid t 10));
  Alcotest.(check int) "pid 11" 1 (List.length (Table.rows_by_pid t 11));
  Alcotest.(check int) "pid 12" 0 (List.length (Table.rows_by_pid t 12))

let test_table_update engine =
  let t = mk_table engine in
  (match Table.find_by_id t 1 with
  | Some row -> Table.update t ~row ~column:3 (Value.Str "+")
  | None -> Alcotest.fail "missing");
  match Table.find_by_id t 1 with
  | Some row ->
      Alcotest.(check bool) "updated" true
        (Table.get t ~row ~column:3 = Value.Str "+")
  | None -> Alcotest.fail "missing after update"

let test_table_update_id_rejected engine =
  let t = mk_table engine in
  match Table.find_by_id t 1 with
  | Some row ->
      Alcotest.check_raises "immutable id"
        (Invalid_argument "Table.update: id/pid columns are immutable")
        (fun () -> Table.update t ~row ~column:0 (Value.Int 99))
  | None -> Alcotest.fail "missing"

let test_table_delete engine =
  let t = mk_table engine in
  Alcotest.(check bool) "deleted" true (Table.delete_by_id t 2);
  Alcotest.(check bool) "gone" true (Table.find_by_id t 2 = None);
  Alcotest.(check int) "count" 2 (Table.live_count t);
  Alcotest.(check bool) "idempotent" false (Table.delete_by_id t 2);
  Alcotest.(check (list int)) "ids" [ 1; 3 ] (Table.ids t);
  (* pid index must not resurrect the tombstoned row. *)
  Alcotest.(check int) "pid 10 after delete" 1
    (List.length (Table.rows_by_pid t 10))

let test_table_duplicate_id engine =
  let t = mk_table engine in
  try
    Table.insert t [| Value.Int 1; Value.Int 9; Value.Str "x"; Value.Str "-" |];
    Alcotest.fail "duplicate id accepted"
  with Invalid_argument _ -> ()

let test_table_arity engine =
  let t = mk_table engine in
  try
    Table.insert t [| Value.Int 9 |];
    Alcotest.fail "arity mismatch accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* SQL rendering and script parsing *)

let test_sql_select_render () =
  let q =
    Sql.Select
      {
        proj = [ Sql.col "pat1" "id" ];
        from =
          [ { Sql.table = "patients"; as_alias = "pats1" };
            { Sql.table = "patient"; as_alias = "pat1" } ];
        where =
          [ Sql.eq (Sql.Col (Sql.col "pats1" "id")) (Sql.Col (Sql.col "pat1" "pid")) ];
      }
  in
  Alcotest.(check string) "paper's Q1"
    "SELECT pat1.id FROM patients pats1, patient pat1 WHERE pats1.id = pat1.pid"
    (Sql.query_to_string q)

let test_sql_set_ops_render () =
  let s name =
    Sql.Select
      { proj = [ Sql.col name "id" ]; from = [ { Sql.table = name; as_alias = name } ]; where = [] }
  in
  Alcotest.(check string) "union except"
    "((SELECT a.id FROM a a UNION SELECT b.id FROM b b) EXCEPT SELECT c.id FROM c c)"
    (Sql.query_to_string (Sql.Except (Sql.Union (s "a", s "b"), s "c")))

let test_sql_stmt_render () =
  Alcotest.(check string) "insert"
    "INSERT INTO med VALUES (6, 5, 'enoxaparin', '-');"
    (Sql.stmt_to_string
       (Sql.Insert
          { table = "med";
            values = [ Value.Int 6; Value.Int 5; Value.Str "enoxaparin"; Value.Str "-" ] }));
  Alcotest.(check string) "update"
    "UPDATE med SET s = '+' WHERE med.id = 6;"
    (Sql.stmt_to_string
       (Sql.Update
          { table = "med";
            set = [ ("s", Value.Str "+") ];
            where = [ Sql.eq (Sql.Col (Sql.col "med" "id")) (Sql.Const (Value.Int 6)) ] }))

let test_sql_is_null_render () =
  Alcotest.(check string) "is null"
    "SELECT h.id FROM hospital h WHERE h.pid IS NULL"
    (Sql.query_to_string
       (Sql.Select
          { proj = [ Sql.col "h" "id" ];
            from = [ { Sql.table = "hospital"; as_alias = "h" } ];
            where = [ Sql.Is_null (Sql.col "h" "pid") ] }))

let test_script_round_trip () =
  let stmts =
    [
      Sql.Insert { table = "a"; values = [ Value.Int 1; Value.Null; Value.Str "x'y" ] };
      Sql.Insert { table = "b"; values = [ Value.Int 2; Value.Int 1; Value.Str "z" ] };
    ]
  in
  let text = Sql_text.render_script stmts in
  Alcotest.(check int) "size agrees" (String.length text)
    (Sql_text.script_size stmts);
  match Sql_text.parse_script text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok stmts' ->
      Alcotest.(check string) "round trip" text (Sql_text.render_script stmts')

let test_script_rejects () =
  (match Sql_text.parse_script "DELETE FROM a;" with
  | Ok _ -> Alcotest.fail "accepted non-insert"
  | Error _ -> ());
  match Sql_text.parse_script "INSERT INTO a VALUES (1" with
  | Ok _ -> Alcotest.fail "accepted unterminated"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Executor *)

(* Two-level parent/child fixture mirroring the shredded layout. *)
let mk_db engine =
  let db = Db.create engine in
  let parent =
    Db.create_table db
      (Schema.table "parent" [ ("id", Schema.TInt); ("pid", Schema.TInt); ("s", Schema.TStr) ])
  in
  let child =
    Db.create_table db
      (Schema.table "child"
         [ ("id", Schema.TInt); ("pid", Schema.TInt); ("v", Schema.TStr); ("s", Schema.TStr) ])
  in
  Table.insert parent [| Value.Int 1; Value.Null; Value.Str "-" |];
  Table.insert parent [| Value.Int 2; Value.Null; Value.Str "-" |];
  List.iter
    (fun (id, pid, v) ->
      Table.insert child [| Value.Int id; Value.Int pid; Value.Str v; Value.Str "-" |])
    [ (10, 1, "x"); (11, 1, "y"); (12, 2, "x") ];
  db

let select_child_ids ?(where = []) () =
  Sql.Select
    {
      proj = [ Sql.col "c" "id" ];
      from = [ { Sql.table = "child"; as_alias = "c" } ];
      where;
    }

let join_query =
  Sql.Select
    {
      proj = [ Sql.col "c" "id" ];
      from =
        [ { Sql.table = "parent"; as_alias = "p" };
          { Sql.table = "child"; as_alias = "c" } ];
      where =
        [ Sql.eq (Sql.Col (Sql.col "c" "pid")) (Sql.Col (Sql.col "p" "id"));
          Sql.eq (Sql.Col (Sql.col "p" "id")) (Sql.Const (Value.Int 1)) ];
    }

let test_exec_scan engine =
  let db = mk_db engine in
  Alcotest.(check (list int)) "all children" [ 10; 11; 12 ]
    (Executor.query_ids db (select_child_ids ()))

let test_exec_filter engine =
  let db = mk_db engine in
  let where =
    [ Sql.Cmp
        { lhs = Sql.Col (Sql.col "c" "v"); op = Value.Eq;
          rhs = Sql.Const (Value.Str "x") } ]
  in
  Alcotest.(check (list int)) "v = x" [ 10; 12 ]
    (Executor.query_ids db (select_child_ids ~where ()))

let test_exec_join engine =
  let db = mk_db engine in
  Alcotest.(check (list int)) "children of parent 1" [ 10; 11 ]
    (Executor.query_ids db join_query)

let test_exec_set_ops engine =
  let db = mk_db engine in
  let a = select_child_ids () in
  let b = join_query in
  Alcotest.(check (list int)) "union" [ 10; 11; 12 ]
    (Executor.query_ids db (Sql.Union (a, b)));
  Alcotest.(check (list int)) "except" [ 12 ]
    (Executor.query_ids db (Sql.Except (a, b)));
  Alcotest.(check (list int)) "intersect" [ 10; 11 ]
    (Executor.query_ids db (Sql.Intersect (a, b)))

let test_exec_is_null engine =
  let db = mk_db engine in
  let q =
    Sql.Select
      {
        proj = [ Sql.col "p" "id" ];
        from = [ { Sql.table = "parent"; as_alias = "p" } ];
        where = [ Sql.Is_null (Sql.col "p" "pid") ];
      }
  in
  Alcotest.(check (list int)) "roots" [ 1; 2 ] (Executor.query_ids db q);
  let q' =
    Sql.Select
      {
        proj = [ Sql.col "c" "id" ];
        from = [ { Sql.table = "child"; as_alias = "c" } ];
        where = [ Sql.Not_null (Sql.col "c" "pid") ];
      }
  in
  Alcotest.(check int) "not null" 3 (List.length (Executor.query_ids db q'))

let test_exec_update_stmt engine =
  let db = mk_db engine in
  let n =
    Executor.run_stmt db
      (Sql.Update
         {
           table = "child";
           set = [ ("s", Value.Str "+") ];
           where =
             [ Sql.eq (Sql.Col (Sql.col "child" "id")) (Sql.Const (Value.Int 11)) ];
         })
  in
  Alcotest.(check int) "one row" 1 n;
  let q =
    select_child_ids
      ~where:
        [ Sql.Cmp
            { lhs = Sql.Col (Sql.col "c" "s"); op = Value.Eq;
              rhs = Sql.Const (Value.Str "+") } ]
      ()
  in
  Alcotest.(check (list int)) "annotated" [ 11 ] (Executor.query_ids db q)

let test_exec_delete_stmt engine =
  let db = mk_db engine in
  let n =
    Executor.run_stmt db
      (Sql.Delete
         {
           table = "child";
           where =
             [ Sql.Cmp
                 { lhs = Sql.Col (Sql.col "child" "v"); op = Value.Eq;
                   rhs = Sql.Const (Value.Str "x") } ];
         })
  in
  Alcotest.(check int) "two rows" 2 n;
  Alcotest.(check (list int)) "left" [ 11 ]
    (Executor.query_ids db (select_child_ids ()))

let test_exec_cross_engine_agreement () =
  (* Same statements, same answers, regardless of storage engine. *)
  let run engine =
    let db = mk_db engine in
    ( Executor.query_ids db join_query,
      Executor.query_ids db (Sql.Except (select_child_ids (), join_query)) )
  in
  Alcotest.(check bool) "row = column" true (run Table.Row = run Table.Column)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let tce name f = Alcotest.test_case name `Quick (both_engines f) in
  Alcotest.run ~and_exit:false "reldb"
    [
      ( "value",
        [
          tc "compare order" test_value_compare_order;
          tc "null comparisons" test_value_cmp_null;
          tc "numeric strings" test_value_cmp_numeric_strings;
          tc "literals" test_value_literal;
        ] );
      ( "schema",
        [
          tc "requires id" test_schema_requires_id;
          tc "rejects duplicates" test_schema_rejects_duplicates;
          tc "column index" test_schema_column_index;
          tc "ddl" test_schema_ddl;
        ] );
      ( "table",
        [
          tce "insert/get" test_table_insert_get;
          tce "pid index" test_table_pid_index;
          tce "update" test_table_update;
          tce "id immutable" test_table_update_id_rejected;
          tce "delete/tombstones" test_table_delete;
          tce "duplicate id" test_table_duplicate_id;
          tce "arity" test_table_arity;
        ] );
      ( "sql",
        [
          tc "select rendering (paper Q1)" test_sql_select_render;
          tc "set ops rendering" test_sql_set_ops_render;
          tc "stmt rendering" test_sql_stmt_render;
          tc "is null rendering" test_sql_is_null_render;
          tc "script round trip" test_script_round_trip;
          tc "script rejects" test_script_rejects;
        ] );
      ( "executor",
        [
          tce "scan" test_exec_scan;
          tce "filter" test_exec_filter;
          tce "index join" test_exec_join;
          tce "set operations" test_exec_set_ops;
          tce "is null" test_exec_is_null;
          tce "update statement" test_exec_update_stmt;
          tce "delete statement" test_exec_delete_stmt;
          tc "cross-engine agreement" test_exec_cross_engine_agreement;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Existential blocks and WAL — appended suites. *)

module Wal = Xmlac_reldb.Wal

(* A qualifier-join next to a spine-join: the classic duplication
   shape. FROM parent p, child c1 (qualifier), child c2 (spine):
   result ids must be each child of a parent that has some "x" child,
   once each. *)
let exists_block_query =
  Sql.Select
    {
      proj = [ Sql.col "c2" "id" ];
      from =
        [ { Sql.table = "parent"; as_alias = "p" };
          { Sql.table = "child"; as_alias = "c1" };
          { Sql.table = "child"; as_alias = "c2" } ];
      where =
        [ Sql.eq (Sql.Col (Sql.col "c1" "pid")) (Sql.Col (Sql.col "p" "id"));
          Sql.Cmp
            { lhs = Sql.Col (Sql.col "c1" "v"); op = Value.Eq;
              rhs = Sql.Const (Value.Str "x") };
          Sql.eq (Sql.Col (Sql.col "c2" "pid")) (Sql.Col (Sql.col "p" "id")) ];
    }

let test_exists_block engine =
  let db = mk_db engine in
  (* Both parents have an "x" child, so every child qualifies. *)
  Alcotest.(check (list int)) "all children, no duplicates" [ 10; 11; 12 ]
    (Executor.query_ids db exists_block_query)

let test_exists_block_selective engine =
  let db = mk_db engine in
  (* Remove parent 2's only "x" child: its children must disappear. *)
  let _ =
    Executor.run_stmt db
      (Sql.Delete
         {
           table = "child";
           where =
             [ Sql.eq (Sql.Col (Sql.col "child" "id")) (Sql.Const (Value.Int 12)) ];
         })
  in
  Alcotest.(check (list int)) "only parent 1's children" [ 10; 11 ]
    (Executor.query_ids db exists_block_query)

(* Chained qualifier joins (c1 referenced by a deeper qualifier join)
   form one block and must not multiply results. *)
let test_exists_block_chained engine =
  let db = Db.create engine in
  let a = Db.create_table db (Schema.table "a" [ ("id", Schema.TInt); ("pid", Schema.TInt) ]) in
  let b = Db.create_table db (Schema.table "b" [ ("id", Schema.TInt); ("pid", Schema.TInt) ]) in
  let c = Db.create_table db (Schema.table "c" [ ("id", Schema.TInt); ("pid", Schema.TInt) ]) in
  Table.insert a [| Value.Int 1; Value.Null |];
  for i = 10 to 19 do
    Table.insert b [| Value.Int i; Value.Int 1 |];
    Table.insert c [| Value.Int (i + 100); Value.Int i |]
  done;
  (* SELECT a.id FROM a, b, c WHERE b.pid = a.id AND c.pid = b.id:
     b and c form a qualifier block; a appears once. *)
  let q =
    Sql.Select
      {
        proj = [ Sql.col "a" "id" ];
        from =
          [ { Sql.table = "a"; as_alias = "a" };
            { Sql.table = "b"; as_alias = "b" };
            { Sql.table = "c"; as_alias = "c" } ];
        where =
          [ Sql.eq (Sql.Col (Sql.col "b" "pid")) (Sql.Col (Sql.col "a" "id"));
            Sql.eq (Sql.Col (Sql.col "c" "pid")) (Sql.Col (Sql.col "b" "id")) ];
      }
  in
  let rows = Executor.run_query db q in
  Alcotest.(check int) "one witness row" 1 (List.length rows)

let test_wal_counters () =
  let wal = Wal.create () in
  Wal.log wal "hello";
  Wal.log wal "world!";
  Alcotest.(check int) "records" 2 (Wal.records wal);
  Alcotest.(check int) "bytes" 11 (Wal.bytes_logged wal);
  let sum = Wal.checksum wal in
  Wal.log wal "more";
  Alcotest.(check bool) "checksum evolves" true (Wal.checksum wal <> sum);
  Wal.reset wal;
  Alcotest.(check int) "reset records" 0 (Wal.records wal);
  Alcotest.(check int) "reset bytes" 0 (Wal.bytes_logged wal)

let test_wal_order_sensitive () =
  let a = Wal.create () and b = Wal.create () in
  Wal.log a "x"; Wal.log a "y";
  Wal.log b "y"; Wal.log b "x";
  Alcotest.(check bool) "order matters" true (Wal.checksum a <> Wal.checksum b)

let test_wal_journaling_row_vs_column () =
  (* A row-engine database journals one record per INSERT; a
     column-engine database journals one per column value. *)
  let journaled engine =
    let db = mk_db engine in
    let wal = Wal.create () in
    Db.set_wal db (Some wal);
    let _ =
      Executor.run_stmt db
        (Sql.Insert
           { table = "child";
             values = [ Value.Int 99; Value.Int 1; Value.Str "z"; Value.Str "-" ] })
    in
    Wal.records wal
  in
  Alcotest.(check int) "row: 1 record" 1 (journaled Table.Row);
  Alcotest.(check int) "column: 4 records" 4 (journaled Table.Column)

let test_wal_update_journaled () =
  let db = mk_db Table.Row in
  let wal = Wal.create () in
  Db.set_wal db (Some wal);
  let _ =
    Executor.run_stmt db
      (Sql.Update { table = "child"; set = [ ("s", Value.Str "+") ]; where = [] })
  in
  Alcotest.(check int) "update journaled" 1 (Wal.records wal)

(* --- epoch framing, replay and recovery --------------------------- *)

module Fault = Xmlac_util.Fault

let test_wal_replay_round_trip () =
  Fault.reset ();
  let wal = Wal.create () in
  Wal.log wal "outside";
  Wal.begin_epoch wal 1;
  Wal.log wal "a";
  Wal.log wal "b";
  Wal.commit_epoch wal 1;
  Alcotest.(check (option int)) "committed" (Some 1) (Wal.last_committed wal);
  let seen = ref [] in
  let n = Wal.replay wal (fun r -> seen := r :: !seen) in
  Alcotest.(check int) "replayed count" 3 n;
  Alcotest.(check (list string)) "replayed oldest first"
    [ "outside"; "a"; "b" ] (List.rev !seen);
  (* Replay is read-only. *)
  Alcotest.(check int) "records untouched" 3 (Wal.records wal);
  (* Records of an open epoch are not replayed... *)
  Wal.begin_epoch wal 2;
  Wal.log wal "uncommitted";
  Alcotest.(check int) "open epoch skipped" 3
    (Wal.replay wal (fun _ -> ()));
  (* ...and recovery drops them (Begin + record). *)
  Alcotest.(check int) "dropped" 2 (Wal.recover wal);
  Alcotest.(check (option int)) "epoch closed" None (Wal.open_epoch wal);
  Alcotest.(check int) "surviving records" 3 (Wal.records wal)

let test_wal_torn_final_record_dropped () =
  Fault.reset ();
  let wal = Wal.create () in
  Wal.log wal "good";
  let sum = Wal.checksum wal in
  let bytes = Wal.bytes_logged wal in
  Fault.arm "wal.append.torn" (Fault.After 1);
  (match Wal.log wal "torn" with
  | () -> Alcotest.fail "torn point did not fire"
  | exception Fault.Crash _ -> ());
  (* The torn entry is in the log but its frame never completed. *)
  Alcotest.(check int) "torn entry retained pre-recovery" 2
    (List.length (Wal.entries wal));
  Fault.recover ();
  Alcotest.(check int) "recovery drops the torn record" 1 (Wal.recover wal);
  Alcotest.(check int) "records" 1 (Wal.records wal);
  Alcotest.(check int) "bytes rewound" bytes (Wal.bytes_logged wal);
  Alcotest.(check int32) "checksum rewound" sum (Wal.checksum wal);
  Fault.reset ()

let test_wal_checksum_catches_loss_and_reorder () =
  (* Two logs that saw the same multiset of records but in different
     orders, or one missing a record, disagree on the checksum — the
     cross-check the engine uses to detect lost/reordered journaling. *)
  let play records =
    let w = Wal.create () in
    List.iter (Wal.log w) records;
    (Wal.checksum w, Wal.records w)
  in
  let full, nfull = play [ "alpha"; "beta"; "gamma" ] in
  let reordered, nre = play [ "beta"; "alpha"; "gamma" ] in
  let lost, _ = play [ "alpha"; "gamma" ] in
  Alcotest.(check int) "same count" nfull nre;
  Alcotest.(check bool) "reorder detected" true (full <> reordered);
  Alcotest.(check bool) "loss detected" true (full <> lost)

let test_wal_reset_clears_everything_together () =
  let wal = Wal.create () in
  Wal.begin_epoch wal 5;
  Wal.log wal "payload";
  Wal.reset wal;
  Alcotest.(check int) "records" 0 (Wal.records wal);
  Alcotest.(check int) "bytes" 0 (Wal.bytes_logged wal);
  Alcotest.(check int) "entries" 0 (List.length (Wal.entries wal));
  Alcotest.(check (option int)) "open epoch" None (Wal.open_epoch wal);
  Alcotest.(check (option int)) "last committed" None (Wal.last_committed wal);
  let fresh = Wal.create () in
  Alcotest.(check int32) "checksum back to initial" (Wal.checksum fresh)
    (Wal.checksum wal);
  (* A reset log accumulates identically to a fresh one. *)
  Wal.log wal "again";
  Wal.log fresh "again";
  Alcotest.(check int32) "same trajectory after reset" (Wal.checksum fresh)
    (Wal.checksum wal)

let test_wal_epoch_nesting_rejected () =
  let wal = Wal.create () in
  Wal.begin_epoch wal 1;
  (match Wal.begin_epoch wal 2 with
  | () -> Alcotest.fail "nested begin accepted"
  | exception Invalid_argument _ -> ());
  (match Wal.commit_epoch wal 9 with
  | () -> Alcotest.fail "mismatched commit accepted"
  | exception Invalid_argument _ -> ());
  Wal.commit_epoch wal 1;
  Alcotest.(check (option int)) "committed" (Some 1) (Wal.last_committed wal)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let tce name f = Alcotest.test_case name `Quick (both_engines f) in
  Alcotest.run "reldb-extra"
    [
      ( "existential blocks",
        [
          tce "semijoin dedup" test_exists_block;
          tce "selective" test_exists_block_selective;
          tce "chained qualifier block" test_exists_block_chained;
        ] );
      ( "wal",
        [
          tc "counters" test_wal_counters;
          tc "order sensitive" test_wal_order_sensitive;
          tc "row vs column journaling" test_wal_journaling_row_vs_column;
          tc "updates journaled" test_wal_update_journaled;
          tc "replay round trip" test_wal_replay_round_trip;
          tc "torn final record dropped" test_wal_torn_final_record_dropped;
          tc "checksum catches loss and reorder"
            test_wal_checksum_catches_loss_and_reorder;
          tc "reset clears everything together"
            test_wal_reset_clears_everything_together;
          tc "epoch nesting rejected" test_wal_epoch_nesting_rejected;
        ] );
    ]
