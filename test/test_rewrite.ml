(* The rewrite enforcement lane (PR 8).

   The acceptance property: on random documents, random multi-role
   policies, random roles and random queries, over all three backends,
   the query-rewrite lane (zero sign/bitmap reads), the materialized
   lane (the paper's signs and role bitmaps) and the direct
   security-view visibility oracle produce identical decisions —
   granted id-lists and denied blocked-counts alike.  Plus the
   engine-level auto-lane routing and the security-view edge cases the
   oracle itself leans on. *)

open Xmlac_core
module Tree = Xmlac_xml.Tree
module Xp = Xmlac_xpath
module Prng = Xmlac_util.Prng
module Bitset = Xmlac_util.Bitset
module Db = Xmlac_reldb.Database
module Table = Xmlac_reldb.Table
module W = Xmlac_workload

let hospital_sg = Lazy.force Helpers.hospital_sg
let mapping = Xmlac_shrex.Mapping.of_dtd W.Hospital.dtd

(* All three backends over (copies of) one document. *)
let backends_for doc ~default_sign =
  let native_doc = Tree.copy doc in
  let row_db = Db.create Table.Row in
  let col_db = Db.create Table.Column in
  ignore (Xmlac_shrex.Shred.load mapping ~default_sign row_db doc);
  ignore (Xmlac_shrex.Shred.load mapping ~default_sign col_db doc);
  [
    Xml_backend.make native_doc;
    Rel_backend.make mapping row_db;
    Rel_backend.make mapping col_db;
  ]

(* The visibility oracle: the all-or-nothing rule applied directly to
   the security view's visible set — no plans, no signs, no bitmaps,
   just XPath evaluation and Security_view.visible_ids. *)
let oracle ?subject policy doc expr =
  let selected =
    List.sort compare
      (List.map (fun (n : Tree.node) -> n.Tree.id) (Xp.Eval.eval doc expr))
  in
  let visible = Security_view.visible_ids ?subject policy doc in
  let blocked = List.filter (fun id -> not (List.mem id visible)) selected in
  if blocked = [] then Requester.Granted selected
  else Requester.Denied { blocked = List.length blocked }

(* Random role DAG, as in test_core: edges only point at earlier
   declarations, so the graph is acyclic by construction. *)
let random_subjects rng =
  let n = 1 + Prng.int rng 3 in
  Subject.make_exn
    (List.init n (fun i ->
         let name = Printf.sprintf "r%d" i in
         let inherits =
           List.filter_map
             (fun j ->
               if Prng.int rng 3 = 0 then Some (Printf.sprintf "r%d" j)
               else None)
             (List.init i Fun.id)
         in
         let eff () = if Prng.bool rng then Rule.Plus else Rule.Minus in
         let ds = if Prng.int rng 4 = 0 then Some (eff ()) else None in
         let cr = if Prng.int rng 4 = 0 then Some (eff ()) else None in
         Subject.role ~inherits ?ds ?cr name))

let random_policy rng subjects =
  let names = Subject.names subjects in
  let rules =
    List.init
      (1 + Prng.int rng 5)
      (fun i ->
        let quals = List.filter (fun _ -> Prng.int rng 3 = 0) names in
        Rule.make
          ~name:(Printf.sprintf "Q%d" i)
          ~subjects:quals
          ~resource:(Helpers.random_hospital_expr rng)
          (if Prng.bool rng then Rule.Plus else Rule.Minus))
  in
  let ds = if Prng.bool rng then Rule.Plus else Rule.Minus in
  let cr = if Prng.bool rng then Rule.Plus else Rule.Minus in
  Policy.make ~subjects ~ds ~cr rules

(* ------------------------------------------------------------------ *)
(* The cross-lane property, backend level: answer each query through
   the rewrite lane while the store is still cold, then materialize
   signs and bitmaps and answer the paper's way, and compare both with
   the oracle. *)

let cross_lane_prop =
  QCheck2.Test.make
    ~name:"rewrite lane = materialized lane = security view (3 backends)"
    ~count:30 Helpers.seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let subjects = random_subjects rng in
      let names = Subject.names subjects in
      let policy = random_policy rng subjects in
      let queries = List.init 3 (fun _ -> Helpers.random_hospital_expr rng) in
      let ok = ref true in
      let expect what a b = if a <> b then (ignore what; ok := false) in
      List.iter
        (fun backend ->
          (* 1. Cold store: rewrite-lane answers, no annotation ran. *)
          let rewritten =
            List.map
              (fun e ->
                ( Requester.request_rewritten ~schema:hospital_sg backend
                    policy e,
                  List.map
                    (fun role ->
                      Requester.request_rewritten ~schema:hospital_sg
                        ~subject:role backend policy e)
                    names ))
              queries
          in
          (* 2. Materialize, then answer through signs and bitmaps. *)
          let _ = Annotator.annotate ~schema:hospital_sg backend policy in
          let _ =
            Annotator.annotate_subjects ~schema:hospital_sg backend policy
          in
          let default_bits = Policy.default_bits policy in
          let role_sign idx id =
            if Bitset.mem idx (Backend.effective_bits backend ~default:default_bits id)
            then Tree.Plus
            else Tree.Minus
          in
          List.iter2
            (fun e (rw_anon, rw_roles) ->
              let mat_anon =
                Requester.request backend ~default:(Policy.ds policy) e
              in
              let want_anon = oracle policy doc e in
              expect "anonymous rewrite" rw_anon want_anon;
              expect "anonymous materialized" mat_anon want_anon;
              List.iteri
                (fun i role ->
                  let mat =
                    Requester.request_via ~sign:(role_sign i) backend e
                  in
                  let want = oracle ~subject:role policy doc e in
                  expect "role rewrite" (List.nth rw_roles i) want;
                  expect "role materialized" mat want)
                names)
            queries rewritten)
        (backends_for doc ~default_sign:"-");
      !ok)

(* ------------------------------------------------------------------ *)
(* The engine level: auto routes a cold store through the rewrite
   lane, an annotated store through the materialized lane, and the
   answers agree with the oracle (and with each other when both lanes
   are forced) at every stage. *)

let engine_auto_lane_prop =
  QCheck2.Test.make
    ~name:"engine auto lane: cold rewrite = annotated materialized = oracle"
    ~count:20 Helpers.seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let subjects = random_subjects rng in
      let names = Subject.names subjects in
      let policy = random_policy rng subjects in
      let role = List.nth names (Prng.int rng (List.length names)) in
      let queries =
        List.init 3 (fun _ ->
            Xp.Pp.expr_to_string (Helpers.random_hospital_expr rng))
      in
      let eng =
        Engine.create ~mode:Engine.Overlap_mode ~dtd:W.Hospital.dtd ~policy doc
      in
      let doc = Engine.document eng in
      let ok = ref true in
      let expect a b = if a <> b then ok := false in
      let check_all want_lane =
        List.iter
          (fun kind ->
            expect (fst (Engine.resolve_lane eng kind)) want_lane;
            List.iter
              (fun q ->
                let e = Requester.parse_or_fail q in
                expect (Engine.request eng kind q) (oracle policy doc e);
                expect
                  (Engine.request ~subject:role eng kind q)
                  (oracle ~subject:role policy doc e);
                (* Soundness: the forced rewrite lane never disagrees
                   with whatever lane auto picked. *)
                expect
                  (Engine.request ~lane:Rewrite.Rewrite eng kind q)
                  (Engine.request eng kind q))
              queries)
          Engine.all_backend_kinds
      in
      (* Cold: every layer routes to the rewrite lane. *)
      check_all Rewrite.Rewrite;
      (* Signs committed: anonymous requests flip to materialized, but
         role requests still rewrite — bitmaps were never built. *)
      let _ = Engine.annotate_all eng in
      expect (fst (Engine.resolve_lane eng Engine.Native)) Rewrite.Materialized;
      expect
        (fst (Engine.resolve_lane ~subject:role eng Engine.Native))
        Rewrite.Rewrite;
      check_all Rewrite.Materialized |> ignore;
      (* Bitmaps committed too: role requests follow. *)
      let _ = Engine.annotate_subjects_all eng in
      expect
        (fst (Engine.resolve_lane ~subject:role eng Engine.Native))
        Rewrite.Materialized;
      check_all Rewrite.Materialized;
      !ok)

(* ------------------------------------------------------------------ *)
(* Serve-layer threading: a cold engine behind the resilient layer
   still answers — live and from a pinned snapshot — through the
   rewrite lane, matching the oracle. *)

module Serve = Xmlac_serve.Serve

let test_serve_cold_rewrite () =
  let doc = W.Hospital.sample_document () in
  let policy = W.Hospital.policy in
  let eng = Engine.create ~dtd:W.Hospital.dtd ~policy doc in
  let layer = Serve.create eng in
  let policy = Engine.policy eng in
  let doc = Engine.document eng in
  let q = "//patient/name" in
  let want = oracle policy doc (Requester.parse_or_fail q) in
  (match Serve.request layer Engine.Native q with
  | Ok r ->
      Alcotest.(check bool) "live = oracle" true (r.Serve.decision = want);
      Alcotest.(check bool) "served live" true (r.Serve.served = Serve.Live)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Serve.pp_error e));
  match Serve.snapshot_request layer (Serve.snapshot layer) q with
  | Ok r ->
      Alcotest.(check bool) "pinned = oracle" true (r.Serve.decision = want)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Serve.pp_error e)

(* ------------------------------------------------------------------ *)
(* Security-view edge cases: the oracle itself.  Hand fixture:

     r
     ├── a          (denied below)
     │   ├── b = "x"
     │   └── c
     └── d

   ids: r=0, a=1, b=2, c=3, d=4. *)

let edge_doc () =
  let doc = Tree.create ~root_name:"r" in
  let r = Tree.root doc in
  let a = Tree.add_child doc r "a" in
  ignore (Tree.add_child doc a ~value:"x" "b");
  ignore (Tree.add_child doc a "c");
  ignore (Tree.add_child doc r "d");
  doc

let allow_all_but name =
  Policy.make ~ds:Rule.Plus ~cr:Rule.Minus [ Rule.parse ("//" ^ name) Rule.Minus ]

let child_names (n : Tree.node) =
  List.map (fun (c : Tree.node) -> c.Tree.name) n.Tree.children

let test_view_promote_hoists_in_order () =
  let doc = edge_doc () in
  let policy = allow_all_but "a" in
  let view = Security_view.materialize ~mode:Security_view.Promote policy doc in
  (* a's accessible children are promoted to r, before d and in
     document order. *)
  Alcotest.(check (list string)) "promoted order" [ "b"; "c"; "d" ]
    (child_names (Tree.root view));
  Helpers.check_ids "visible ids" [ 0; 2; 3; 4 ]
    (Security_view.visible_ids policy doc)

let test_view_prune_drops_subtree () =
  let doc = edge_doc () in
  let policy = allow_all_but "a" in
  let view = Security_view.materialize ~mode:Security_view.Prune policy doc in
  Alcotest.(check (list string)) "subtree gone" [ "d" ]
    (child_names (Tree.root view));
  Helpers.check_ids "visible ids" [ 0; 4 ]
    (Security_view.visible_ids ~mode:Security_view.Prune policy doc)

let test_view_inaccessible_root_placeholder () =
  let doc = edge_doc () in
  let policy = allow_all_but "r" in
  (* Promote: hollow root placeholder — carrying no value — with the
     accessible children promoted into it. *)
  let promote = Security_view.materialize ~mode:Security_view.Promote policy doc in
  Alcotest.(check (option string)) "placeholder carries no value" None
    (Tree.root promote).Tree.value;
  Alcotest.(check (list string)) "children promoted" [ "a"; "d" ]
    (child_names (Tree.root promote));
  (* Prune: the placeholder is all there is. *)
  let prune = Security_view.materialize ~mode:Security_view.Prune policy doc in
  Alcotest.(check (list string)) "placeholder is empty" []
    (child_names (Tree.root prune));
  Helpers.check_ids "prune sees nothing" []
    (Security_view.visible_ids ~mode:Security_view.Prune policy doc)

let test_view_visible_count_hand_counted () =
  let doc = edge_doc () in
  let policy = allow_all_but "a" in
  (* Promote keeps r, b, c, d; Prune keeps r, d. *)
  Alcotest.(check int) "promote count" 4
    (Security_view.visible_count policy doc);
  Alcotest.(check int) "prune count" 2
    (Security_view.visible_count ~mode:Security_view.Prune policy doc);
  (* Root denied: promote still shows the four descendants, prune
     nothing at all. *)
  let rootless = allow_all_but "r" in
  Alcotest.(check int) "promote, root denied" 4
    (Security_view.visible_count rootless doc);
  Alcotest.(check int) "prune, root denied" 0
    (Security_view.visible_count ~mode:Security_view.Prune rootless doc)

(* ------------------------------------------------------------------ *)
(* Deterministic lane-resolution units. *)

let test_lane_strings () =
  List.iter
    (fun l ->
      Alcotest.(check bool) "round trip" true
        (Rewrite.lane_of_string (Rewrite.lane_to_string l) = Some l))
    [ Rewrite.Auto; Rewrite.Materialized; Rewrite.Rewrite ];
  Alcotest.(check bool) "rejects junk" true
    (Rewrite.lane_of_string "bogus" = None)

let test_forced_lanes_cached_separately () =
  (* A forced-rewrite answer must never be served from the
     materialized lane's memo (or vice versa): the two lanes use
     distinct cache keys. *)
  let eng =
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (W.Hospital.sample_document ())
  in
  let _ = Engine.annotate_all eng in
  let q = "//patient" in
  let mat = Engine.request ~lane:Rewrite.Materialized eng Engine.Native q in
  let rw = Engine.request ~lane:Rewrite.Rewrite eng Engine.Native q in
  Alcotest.(check bool) "lanes agree" true (mat = rw);
  let m = Engine.metrics eng in
  Alcotest.(check bool) "both lanes actually evaluated" true
    (Xmlac_util.Metrics.counter m "lane.rewrite" > 0
    && Xmlac_util.Metrics.counter m "lane.materialized" > 0)

let () =
  Alcotest.run ~and_exit:false "rewrite lane"
    [
      ( "cross-lane equivalence",
        [
          QCheck_alcotest.to_alcotest cross_lane_prop;
          QCheck_alcotest.to_alcotest engine_auto_lane_prop;
        ] );
      ( "serve threading",
        [ Alcotest.test_case "cold engine serves rewritten" `Quick
            test_serve_cold_rewrite ] );
      ( "security view",
        [
          Alcotest.test_case "promote hoists in order" `Quick
            test_view_promote_hoists_in_order;
          Alcotest.test_case "prune drops subtree" `Quick
            test_view_prune_drops_subtree;
          Alcotest.test_case "inaccessible root placeholder" `Quick
            test_view_inaccessible_root_placeholder;
          Alcotest.test_case "visible_count hand-counted" `Quick
            test_view_visible_count_hand_counted;
        ] );
      ( "lanes",
        [
          Alcotest.test_case "lane string round trip" `Quick test_lane_strings;
          Alcotest.test_case "forced lanes cached separately" `Quick
            test_forced_lanes_cached_separately;
        ] );
    ]
