(* Shared fixtures and generators for the test suites. *)

module Tree = Xmlac_xml.Tree
module Dtd = Xmlac_xml.Dtd
module Sg = Xmlac_xml.Schema_graph
module Xp = Xmlac_xpath
module Prng = Xmlac_util.Prng

let parse = Xp.Parser.parse_exn

let hospital_doc = Xmlac_workload.Hospital.sample_document
let hospital_dtd = Xmlac_workload.Hospital.dtd
let hospital_sg = lazy (Sg.build hospital_dtd)

let xmark_sg = lazy (Sg.build Xmlac_workload.Xmark.dtd)

(* Ids selected by an expression on a document. *)
let ids doc expr_str =
  List.sort Stdlib.compare
    (List.map
       (fun (n : Tree.node) -> n.Tree.id)
       (Xp.Eval.eval doc (parse expr_str)))

let names_of nodes = List.map (fun (n : Tree.node) -> n.Tree.name) nodes

(* Substring test for error-message assertions. *)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* A small random hospital-schema document for property tests. *)
let random_hospital_doc rng =
  let departments = 1 + Prng.int rng 3 in
  let patients_per_dept = 1 + Prng.int rng 6 in
  Xmlac_workload.Hospital.generate
    ~seed:(Prng.next_int64 rng)
    ~departments ~patients_per_dept ()

(* QCheck generator wrapping our deterministic PRNG: draws a seed from
   QCheck's own state, then produces the derived artifact. *)
let seed_gen = QCheck2.Gen.int64

(* Random XPath expression over the hospital schema, with value
   constants that occur in generated documents. *)
let hospital_value_pool = function
  | "med" -> [ "enoxaparin"; "celecoxib"; "aspirin" ]
  | "bill" -> [ "700"; "1000"; "1600" ]
  | "psn" -> [ "033"; "042" ]
  | _ -> []

let hospital_qgen_config =
  {
    Xp.Qgen.default_config with
    Xp.Qgen.value_pool = hospital_value_pool;
    pred_prob = 0.4;
  }

let random_hospital_expr rng =
  Xp.Qgen.gen_expr ~config:hospital_qgen_config rng (Lazy.force hospital_sg)

(* Alcotest checkers. *)
let int_list = Alcotest.(list int)
let string_list = Alcotest.(list string)

let check_ids = Alcotest.(check int_list)
