(* Tests for the XML substrate: trees, serializer, parser, DTDs and the
   schema graph. *)

module Tree = Xmlac_xml.Tree
module Serializer = Xmlac_xml.Serializer
module Xml_parser = Xmlac_xml.Xml_parser
module Dtd = Xmlac_xml.Dtd
module Sg = Xmlac_xml.Schema_graph
module Prng = Xmlac_util.Prng

(* ------------------------------------------------------------------ *)
(* Tree *)

let small_doc () =
  let doc = Tree.create ~root_name:"a" in
  let root = Tree.root doc in
  let b = Tree.add_child doc root "b" in
  let c = Tree.add_child doc root "c" in
  let d = Tree.add_child doc b ~value:"x" "d" in
  (doc, root, b, c, d)

let test_tree_ids_unique () =
  let doc, _, _, _, _ = small_doc () in
  let ids = List.map (fun (n : Tree.node) -> n.Tree.id) (Tree.nodes doc) in
  Alcotest.(check int) "distinct ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_tree_size () =
  let doc, _, _, _, _ = small_doc () in
  Alcotest.(check int) "size" 4 (Tree.size doc)

let test_tree_parent_children () =
  let doc, root, b, _, d = small_doc () in
  (* Physical identity: node values are cyclic (parent pointers). *)
  Alcotest.(check bool) "parent" true
    (match Tree.parent d with Some p -> p == b | None -> false);
  Alcotest.(check int) "root fanout" 2 (List.length (Tree.children root));
  Alcotest.(check bool) "root has no parent" true (Tree.parent root = None);
  ignore doc

let test_tree_descendants_order () =
  let doc, root, _, _, _ = small_doc () in
  let names = List.map (fun (n : Tree.node) -> n.Tree.name) (Tree.descendants root) in
  Alcotest.(check (list string)) "preorder" [ "b"; "d"; "c" ] names;
  ignore doc

let test_tree_ancestors_depth () =
  let _, _, b, _, d = small_doc () in
  Alcotest.(check int) "depth" 2 (Tree.depth d);
  Alcotest.(check (list string)) "ancestors nearest-first"
    [ "b"; "a" ]
    (List.map (fun (n : Tree.node) -> n.Tree.name) (Tree.ancestors d));
  ignore b

let test_tree_label_path () =
  let _, _, _, _, d = small_doc () in
  Alcotest.(check (list string)) "label path" [ "a"; "b"; "d" ]
    (Tree.label_path d)

let test_tree_delete () =
  let doc, _, b, _, _ = small_doc () in
  Tree.delete doc b;
  Alcotest.(check int) "size after delete" 2 (Tree.size doc);
  Alcotest.(check bool) "b gone" false (Tree.mem doc b)

let test_tree_delete_root_rejected () =
  let doc, root, _, _, _ = small_doc () in
  Alcotest.check_raises "root" (Invalid_argument "Tree.delete: cannot delete the root")
    (fun () -> Tree.delete doc root)

let test_tree_value_vs_children () =
  let doc, _, _, _, d = small_doc () in
  Alcotest.check_raises "child under value"
    (Invalid_argument "Tree.add_child: parent holds a text value") (fun () ->
      ignore (Tree.add_child doc d "e"))

let test_tree_find () =
  let doc, _, b, _, _ = small_doc () in
  (match Tree.find doc b.Tree.id with
  | Some n -> Alcotest.(check string) "found" "b" n.Tree.name
  | None -> Alcotest.fail "not found");
  Tree.delete doc b;
  Alcotest.(check bool) "gone from index" true (Tree.find doc b.Tree.id = None)

let test_tree_signs () =
  let doc, _, b, c, _ = small_doc () in
  Tree.set_sign doc b (Some Tree.Plus);
  Tree.set_sign doc c (Some Tree.Minus);
  Alcotest.(check int) "plus" 1 (List.length (Tree.signed doc Tree.Plus));
  Tree.clear_signs doc;
  Alcotest.(check int) "cleared" 0 (List.length (Tree.signed doc Tree.Plus))

let test_tree_copy_independent () =
  let doc, _, b, _, _ = small_doc () in
  Tree.set_sign doc b (Some Tree.Plus);
  let copy = Tree.copy doc in
  Alcotest.(check bool) "annotated equal" true (Tree.equal_annotated doc copy);
  Tree.delete doc b;
  Alcotest.(check int) "copy unaffected" 4 (Tree.size copy);
  Alcotest.(check bool) "ids preserved" true (Tree.find copy b.Tree.id <> None)

let test_tree_graft () =
  let doc, _, _, c, _ = small_doc () in
  let frag = Tree.create ~root_name:"f" in
  ignore (Tree.add_child frag (Tree.root frag) ~value:"v" "g");
  let grafted = Tree.graft doc c frag in
  Alcotest.(check string) "grafted name" "f" grafted.Tree.name;
  Alcotest.(check int) "size" 6 (Tree.size doc);
  let ids = List.map (fun (n : Tree.node) -> n.Tree.id) (Tree.nodes doc) in
  Alcotest.(check int) "distinct" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_tree_equal_structure () =
  let a, _, _, _, _ = small_doc () in
  let b, _, _, _, _ = small_doc () in
  Alcotest.(check bool) "equal" true (Tree.equal_structure a b);
  let c, _, cb, _, _ = small_doc () in
  Tree.delete c cb;
  Alcotest.(check bool) "unequal" false (Tree.equal_structure a c)

(* ------------------------------------------------------------------ *)
(* Serializer / parser *)

let test_escape () =
  Alcotest.(check string) "escape" "&lt;a&gt; &amp; &quot;b&quot;"
    (Serializer.escape "<a> & \"b\"")

let test_serialize_shape () =
  let doc, _, b, _, _ = small_doc () in
  Tree.set_sign doc b (Some Tree.Plus);
  let s = Serializer.to_string doc in
  Alcotest.(check string) "xml" "<a><b sign=\"+\"><d>x</d></b><c/></a>" s

let test_serialize_no_signs () =
  let doc, _, b, _, _ = small_doc () in
  Tree.set_sign doc b (Some Tree.Plus);
  let s = Serializer.to_string ~signs:false doc in
  Alcotest.(check string) "xml" "<a><b><d>x</d></b><c/></a>" s

let test_byte_size_consistent () =
  let doc, _, _, _, _ = small_doc () in
  Alcotest.(check int) "byte_size"
    (String.length (Serializer.to_string doc))
    (Serializer.byte_size doc)

let test_parse_round_trip () =
  let doc, _, b, _, _ = small_doc () in
  Tree.set_sign doc b (Some Tree.Minus);
  let s = Serializer.to_string doc in
  let doc' = Xml_parser.parse_exn s in
  Alcotest.(check bool) "round trip (structure+signs)" true
    (Tree.equal_annotated doc doc')

let test_parse_indent_round_trip () =
  let doc, _, _, _, _ = small_doc () in
  let s = Serializer.to_string ~indent:true doc in
  let doc' = Xml_parser.parse_exn s in
  Alcotest.(check bool) "indented round trip" true (Tree.equal_structure doc doc')

let test_parse_escapes () =
  let doc = Xml_parser.parse_exn "<a><b>1 &lt; 2 &amp; 3 &gt; 2</b></a>" in
  match Tree.children (Tree.root doc) with
  | [ b ] ->
      Alcotest.(check (option string)) "unescaped" (Some "1 < 2 & 3 > 2")
        b.Tree.value
  | _ -> Alcotest.fail "expected one child"

let test_parse_comments_prolog () =
  let doc =
    Xml_parser.parse_exn
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>"
  in
  Alcotest.(check int) "size" 2 (Tree.size doc)

let test_parse_errors () =
  let bad input =
    match Xml_parser.parse input with
    | Ok _ -> Alcotest.failf "accepted %S" input
    | Error _ -> ()
  in
  bad "<a><b></a>";
  bad "<a>";
  bad "<a></a><b/>";
  bad "<a>text<b/></a>";
  bad "<a foo=\"1\"/>";
  bad "<a sign=\"?\"/>"

let test_parse_error_position () =
  match Xml_parser.parse "<a>\n<b></c>\n</a>" with
  | Ok _ -> Alcotest.fail "accepted mismatched tags"
  | Error e -> Alcotest.(check int) "line" 2 e.Xml_parser.line

(* ------------------------------------------------------------------ *)
(* DTD *)

let hospital = Xmlac_workload.Hospital.dtd

let test_dtd_roundtrip_text () =
  let text = Dtd.to_string hospital in
  let dtd' = Dtd.parse_exn text in
  Alcotest.(check (list string)) "types preserved"
    (Dtd.element_types hospital) (Dtd.element_types dtd');
  Alcotest.(check string) "same rendering" text (Dtd.to_string dtd')

let test_dtd_parse_forms () =
  let dtd =
    Dtd.parse_exn
      "<!ELEMENT a (b+, c?)> <!ELEMENT b (#PCDATA)> <!ELEMENT c EMPTY>"
  in
  Alcotest.(check string) "root" "a" (Dtd.root dtd);
  Alcotest.(check bool) "pcdata" true (Dtd.content dtd "b" = Dtd.Pcdata);
  Alcotest.(check bool) "empty" true (Dtd.content dtd "c" = Dtd.Empty)

let test_dtd_parse_rejects () =
  let bad s =
    match Dtd.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad
    "<!ELEMENT a (b | c, d)> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY> <!ELEMENT d EMPTY>";
  bad "<!ELEMENT a (undeclared)>";
  bad "";
  bad "<!ELEMENT a (b)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY>"

let test_dtd_child_types () =
  Alcotest.(check (list string)) "patient kids" [ "psn"; "name"; "treatment" ]
    (Dtd.child_types hospital "patient")

let test_validate_sample () =
  let doc = Xmlac_workload.Hospital.sample_document () in
  Alcotest.(check (list string)) "no violations" []
    (List.map (fun v -> v.Dtd.reason) (Dtd.validate hospital doc))

let test_validate_catches_missing_child () =
  let doc = Tree.create ~root_name:"hospital" in
  let dept = Tree.add_child doc (Tree.root doc) "dept" in
  ignore (Tree.add_child doc dept "patients");
  let vs = Dtd.validate hospital doc in
  Alcotest.(check bool) "violation found" true (vs <> [])

let test_validate_catches_bad_root () =
  let doc = Tree.create ~root_name:"dept" in
  let vs = Dtd.validate hospital doc in
  Alcotest.(check bool) "bad root" true (vs <> [])

let test_validate_catches_choice_mix () =
  let dtd' =
    Dtd.make ~root:"treatment"
      [
        ( "treatment",
          Dtd.Choice
            [ { elem = "regular"; occ = Dtd.Optional };
              { elem = "experimental"; occ = Dtd.Optional } ] );
        ("regular", Dtd.Empty);
        ("experimental", Dtd.Empty);
      ]
  in
  let doc = Tree.create ~root_name:"treatment" in
  ignore (Tree.add_child doc (Tree.root doc) "regular");
  ignore (Tree.add_child doc (Tree.root doc) "experimental");
  let vs = Dtd.validate dtd' doc in
  Alcotest.(check bool) "mixed branches" true
    (List.exists
       (fun v -> v.Dtd.reason = "children from more than one choice branch")
       vs)

let test_validate_undeclared () =
  let doc = Tree.create ~root_name:"hospital" in
  ignore (Tree.add_child doc (Tree.root doc) "alien");
  let vs = Dtd.validate hospital doc in
  Alcotest.(check bool) "undeclared" true
    (List.exists (fun v -> v.Dtd.reason = "undeclared element type") vs)

(* ------------------------------------------------------------------ *)
(* Schema graph *)

let sg = Sg.build hospital

let test_sg_non_recursive () =
  Alcotest.(check bool) "hospital non-recursive" false (Sg.is_recursive sg)

let test_sg_recursive_detection () =
  let dtd =
    Dtd.make ~root:"a"
      [
        ("a", Dtd.Seq [ { elem = "b"; occ = Dtd.Star } ]);
        ("b", Dtd.Seq [ { elem = "a"; occ = Dtd.Star } ]);
      ]
  in
  Alcotest.(check bool) "recursive" true (Sg.is_recursive (Sg.build dtd))

let test_sg_parents () =
  Alcotest.(check (list string)) "bill parents" [ "regular"; "experimental" ]
    (Sg.parents sg "bill");
  Alcotest.(check (list string)) "name parents"
    [ "patient"; "nurse"; "doctor" ]
    (Sg.parents sg "name")

let test_sg_reachable () =
  Alcotest.(check bool) "hospital->bill" true
    (Sg.reachable sg ~src:"hospital" ~dst:"bill");
  Alcotest.(check bool) "patient->experimental" true
    (Sg.reachable sg ~src:"patient" ~dst:"experimental");
  Alcotest.(check bool) "regular->experimental" false
    (Sg.reachable sg ~src:"regular" ~dst:"experimental");
  Alcotest.(check bool) "not self" false (Sg.reachable sg ~src:"bill" ~dst:"bill")

let test_sg_paths_between () =
  Alcotest.(check (list (list string))) "patient=>experimental"
    [ [ "patient"; "treatment"; "experimental" ] ]
    (Sg.paths_between sg ~src:"patient" ~dst:"experimental");
  Alcotest.(check int) "dept=>name paths" 3
    (List.length (Sg.paths_between sg ~src:"dept" ~dst:"name"))

let test_sg_paths_to () =
  Alcotest.(check (list (list string))) "paths to med"
    [ [ "hospital"; "dept"; "patients"; "patient"; "treatment"; "regular"; "med" ] ]
    (Sg.paths_to sg "med")

let test_sg_root_paths_cover_types () =
  let paths = Sg.root_paths sg in
  let endpoints =
    List.sort_uniq String.compare
      (List.filter_map (fun p -> List.nth_opt p (List.length p - 1)) paths)
  in
  Alcotest.(check (list string)) "every type reachable"
    (List.sort String.compare (Dtd.element_types hospital))
    endpoints

let test_sg_max_depth () =
  Alcotest.(check int) "max depth" 7 (Sg.max_depth sg)

let test_sg_rejects_recursive_enumeration () =
  let dtd =
    Dtd.make ~root:"a" [ ("a", Dtd.Seq [ { elem = "a"; occ = Dtd.Star } ]) ]
  in
  let rsg = Sg.build dtd in
  Alcotest.(check bool) "recursive" true (Sg.is_recursive rsg);
  try
    ignore (Sg.root_paths rsg);
    Alcotest.fail "root_paths should raise"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Properties *)

let roundtrip_prop =
  QCheck2.Test.make ~name:"serialize/parse round trip (random hospital docs)"
    ~count:50 QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      Tree.iter
        (fun n ->
          match Prng.int rng 3 with
          | 0 -> Tree.set_sign doc n (Some Tree.Plus)
          | 1 -> Tree.set_sign doc n (Some Tree.Minus)
          | _ -> ())
        doc;
      let doc' = Xml_parser.parse_exn (Serializer.to_string doc) in
      Tree.equal_annotated doc doc')

let validate_prop =
  QCheck2.Test.make ~name:"generated hospital docs validate" ~count:50
    QCheck2.Gen.int64 (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      Dtd.is_valid hospital doc)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "xml"
    [
      ( "tree",
        [
          tc "unique ids" test_tree_ids_unique;
          tc "size" test_tree_size;
          tc "parent/children" test_tree_parent_children;
          tc "descendants preorder" test_tree_descendants_order;
          tc "ancestors/depth" test_tree_ancestors_depth;
          tc "label path" test_tree_label_path;
          tc "delete" test_tree_delete;
          tc "delete root rejected" test_tree_delete_root_rejected;
          tc "value vs children" test_tree_value_vs_children;
          tc "find/index" test_tree_find;
          tc "signs" test_tree_signs;
          tc "copy independence" test_tree_copy_independent;
          tc "graft" test_tree_graft;
          tc "structural equality" test_tree_equal_structure;
        ] );
      ( "serializer",
        [
          tc "escape" test_escape;
          tc "shape" test_serialize_shape;
          tc "signs off" test_serialize_no_signs;
          tc "byte_size" test_byte_size_consistent;
        ] );
      ( "parser",
        [
          tc "round trip" test_parse_round_trip;
          tc "indented round trip" test_parse_indent_round_trip;
          tc "escapes" test_parse_escapes;
          tc "comments and prolog" test_parse_comments_prolog;
          tc "rejects malformed" test_parse_errors;
          tc "error position" test_parse_error_position;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "dtd",
        [
          tc "text round trip" test_dtd_roundtrip_text;
          tc "parse forms" test_dtd_parse_forms;
          tc "parse rejects" test_dtd_parse_rejects;
          tc "child types" test_dtd_child_types;
          tc "sample validates" test_validate_sample;
          tc "missing child" test_validate_catches_missing_child;
          tc "bad root" test_validate_catches_bad_root;
          tc "choice mix" test_validate_catches_choice_mix;
          tc "undeclared type" test_validate_undeclared;
          QCheck_alcotest.to_alcotest validate_prop;
        ] );
      ( "schema graph",
        [
          tc "non-recursive" test_sg_non_recursive;
          tc "recursion detection" test_sg_recursive_detection;
          tc "parents" test_sg_parents;
          tc "reachability" test_sg_reachable;
          tc "paths between" test_sg_paths_between;
          tc "paths to" test_sg_paths_to;
          tc "root paths cover types" test_sg_root_paths_cover_types;
          tc "max depth" test_sg_max_depth;
          tc "recursive enumeration rejected"
            test_sg_rejects_recursive_enumeration;
        ] );
    ]
