(* The request fast lane (PR 2): requester edge cases, the metrics
   registry, the bounded decision cache, incremental CAM maintenance,
   and the engine-level equivalence of CAM/cache-served decisions with
   direct sign reads — including the qcheck property across random
   documents, policies and update sequences on all three backends. *)

open Xmlac_core
module Tree = Xmlac_xml.Tree
module Prng = Xmlac_util.Prng
module Metrics = Xmlac_util.Metrics
module W = Xmlac_workload

let parse = Helpers.parse

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  Metrics.incr m "y";
  Alcotest.(check int) "accumulated" 5 (Metrics.counter m "x");
  Alcotest.(check (list (pair string int)))
    "sorted dump"
    [ ("x", 5); ("y", 1) ]
    (Metrics.counters m);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.counter m "x")

let test_metrics_timers () =
  let m = Metrics.create () in
  let v = Metrics.time m "stage" (fun () -> 41 + 1) in
  Alcotest.(check int) "passes result through" 42 v;
  let v' =
    Metrics.time m "stage" (fun () -> Metrics.time m "stage" (fun () -> 7))
  in
  Alcotest.(check int) "nested result" 7 v';
  (match Metrics.timings m with
  | [ ("stage", total, calls) ] ->
      Alcotest.(check int) "three calls" 3 calls;
      Alcotest.(check bool) "non-negative total" true (total >= 0.0)
  | other ->
      Alcotest.failf "unexpected timings (%d entries)" (List.length other));
  (* An exception must not leave the stage marked re-entered. *)
  (try Metrics.time m "stage" (fun () -> failwith "boom") with _ -> ());
  (match Metrics.timings m with
  | [ ("stage", _, calls) ] -> Alcotest.(check int) "still counted" 4 calls
  | _ -> Alcotest.fail "stage lost")

let test_metrics_hit_rate () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.0001)) "no samples" 0.0
    (Metrics.hit_rate m ~hits:"h" ~misses:"mi");
  Metrics.add m "h" 3;
  Metrics.incr m "mi";
  Alcotest.(check (float 0.0001)) "3/4" 0.75
    (Metrics.hit_rate m ~hits:"h" ~misses:"mi")

(* ------------------------------------------------------------------ *)
(* Decision cache *)

let test_cache_hit_and_epoch () =
  let c = Decision_cache.create ~capacity:8 () in
  Decision_cache.add c ~epoch:0 "q" 1;
  Alcotest.(check (option int)) "same epoch hits" (Some 1)
    (Decision_cache.find c ~epoch:0 "q");
  Alcotest.(check (option int)) "bumped epoch misses" None
    (Decision_cache.find c ~epoch:1 "q");
  Alcotest.(check int) "stale entry dropped on sight" 0
    (Decision_cache.length c);
  Decision_cache.add c ~epoch:1 "q" 2;
  Alcotest.(check (option int)) "new epoch value" (Some 2)
    (Decision_cache.find c ~epoch:1 "q")

let test_cache_bounded () =
  let c = Decision_cache.create ~capacity:2 () in
  Decision_cache.add c ~epoch:0 "a" 1;
  Decision_cache.add c ~epoch:0 "b" 2;
  Decision_cache.add c ~epoch:0 "c" 3;
  Alcotest.(check int) "capacity respected" 2 (Decision_cache.length c);
  Alcotest.(check (option int)) "oldest evicted" None
    (Decision_cache.find c ~epoch:0 "a");
  Alcotest.(check (option int)) "newest kept" (Some 3)
    (Decision_cache.find c ~epoch:0 "c");
  (* Overwriting an existing key must not grow the table. *)
  Decision_cache.add c ~epoch:0 "c" 4;
  Alcotest.(check int) "overwrite in place" 2 (Decision_cache.length c);
  Alcotest.(check (option int)) "overwritten" (Some 4)
    (Decision_cache.find c ~epoch:0 "c")

let test_cache_rejects_zero_capacity () =
  try
    ignore (Decision_cache.create ~capacity:0 ());
    Alcotest.fail "accepted capacity 0"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Requester edge cases *)

let annotated_hospital_backend () =
  let doc = W.Hospital.sample_document () in
  let b = Xml_backend.make doc in
  let p = Optimizer.optimize_policy W.Hospital.policy in
  let _ = Annotator.annotate b p in
  (doc, b, p)

let test_decide_empty_granted () =
  (match Requester.decide ~ids:[] ~accessible:(fun _ -> false) with
  | Requester.Granted [] -> ()
  | _ -> Alcotest.fail "empty answer must be granted vacuously");
  let _, b, _ = annotated_hospital_backend () in
  List.iter
    (fun default ->
      Alcotest.(check bool)
        "no matches granted under either default" true
        (Requester.is_granted
           (Requester.request_string b ~default "//nosuchelement")))
    [ Rule.Plus; Rule.Minus ]

let test_denied_blocked_count () =
  let doc, b, _ = annotated_hospital_backend () in
  (* Patients 033 and 042 are denied (R3/R5), 099 accessible. *)
  (match Requester.request_string b ~default:Rule.Minus "//patient" with
  | Requester.Denied { blocked } ->
      Alcotest.(check int) "two of three patients blocked" 2 blocked
  | Requester.Granted _ -> Alcotest.fail "should be denied");
  (* The count follows the answer set, not the document. *)
  match
    Requester.request b ~default:Rule.Minus (parse "//patient[psn = \"033\"]")
  with
  | Requester.Denied { blocked } ->
      Alcotest.(check int) "single selected node" 1 blocked;
      ignore doc
  | Requester.Granted _ -> Alcotest.fail "033 should be denied"

let test_unannotated_defaults () =
  (* A document that was never annotated: every decision rides on the
     default alone. *)
  let doc = W.Hospital.sample_document () in
  let b = Xml_backend.make doc in
  (match Requester.request_string b ~default:Rule.Plus "//patient" with
  | Requester.Granted ids ->
      Alcotest.(check int) "all patients" 3 (List.length ids)
  | Requester.Denied _ -> Alcotest.fail "grant default must grant");
  match Requester.request_string b ~default:Rule.Minus "//patient" with
  | Requester.Denied { blocked } ->
      Alcotest.(check int) "all blocked" 3 blocked
  | Requester.Granted _ -> Alcotest.fail "deny default must deny"

let test_parse_error_reporting () =
  let _, b, _ = annotated_hospital_backend () in
  let check_message q =
    try
      ignore (Requester.request_string b ~default:Rule.Minus q);
      Alcotest.failf "accepted malformed %S" q
    with Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the expression" msg)
        true
        (Helpers.contains msg q);
      Alcotest.(check bool)
        (Printf.sprintf "message %S names the position" msg)
        true
        (Helpers.contains msg "position")
  in
  List.iter check_message [ "patient"; "//patient["; "//a//"; "" ]

(* ------------------------------------------------------------------ *)
(* Incremental CAM maintenance *)

let annotated_sample () =
  let doc, _, _ = annotated_hospital_backend () in
  doc

let check_cam_equals_fresh name cam doc =
  Alcotest.(check bool) name true
    (Cam.equal cam (Cam.build doc ~default:(Cam.default cam)))

let test_cam_apply_changes () =
  let doc = annotated_sample () in
  let cam = Cam.build doc ~default:Tree.Minus in
  (* Flip a handful of signs in place, then repair incrementally. *)
  let victims =
    List.filteri (fun i _ -> i mod 3 = 0) (Tree.nodes doc)
  in
  List.iter
    (fun (n : Tree.node) ->
      Tree.set_sign doc n
        (match n.Tree.sign with
        | Some Tree.Plus -> Some Tree.Minus
        | Some Tree.Minus -> None
        | None -> Some Tree.Plus))
    victims;
  let changed = List.map (fun (n : Tree.node) -> n.Tree.id) victims in
  let touched = Cam.apply_changes cam doc ~changed in
  Alcotest.(check bool) "touched at least the changed nodes" true
    (touched >= List.length changed);
  check_cam_equals_fresh "apply_changes = fresh build" cam doc

let test_cam_apply_changes_root () =
  let doc = annotated_sample () in
  let cam = Cam.build doc ~default:Tree.Minus in
  let root = Tree.root doc in
  Tree.set_sign doc root (Some Tree.Plus);
  let _ = Cam.apply_changes cam doc ~changed:[ root.Tree.id ] in
  check_cam_equals_fresh "root change" cam doc;
  Alcotest.(check bool) "root lookup" true
    (Cam.lookup cam root = Tree.Plus)

let test_cam_rebuild_subtree () =
  let doc = annotated_sample () in
  let cam = Cam.build doc ~default:Tree.Minus in
  (* Graft a fragment (fresh unannotated nodes) under a signed parent
     and integrate only that subtree. *)
  let frag = Tree.create ~root_name:"treatment" in
  ignore (Tree.add_child frag (Tree.root frag) ~value:"aspirin" "med");
  let parent =
    List.find
      (fun (n : Tree.node) -> n.Tree.name = "patient")
      (Tree.nodes doc)
  in
  let grafted = Tree.graft doc parent frag in
  let touched = Cam.rebuild_subtree cam doc ~root:grafted.Tree.id in
  Alcotest.(check int) "touched the two grafted nodes" 2 touched;
  check_cam_equals_fresh "rebuild_subtree = fresh build" cam doc;
  Alcotest.(check int) "missing root is a no-op" 0
    (Cam.rebuild_subtree cam doc ~root:999999)

let test_cam_purge () =
  let doc = annotated_sample () in
  let cam = Cam.build doc ~default:Tree.Minus in
  let doomed =
    List.filter
      (fun (n : Tree.node) -> n.Tree.name = "treatment")
      (Tree.nodes doc)
  in
  List.iter (Tree.delete doc) doomed;
  let dropped = Cam.purge cam doc in
  Alcotest.(check bool) "dropped something" true (dropped > 0);
  check_cam_equals_fresh "purge = fresh build" cam doc;
  Alcotest.(check int) "node count refreshed" (Tree.size doc)
    (Cam.node_count cam)

(* ------------------------------------------------------------------ *)
(* Engine fast lane *)

let sample_queries =
  [
    "//patient"; "//patient/name"; "//patient[psn = \"099\"]";
    "//patient[.//experimental]"; "//regular/med"; "//staff"; "//nosuch";
  ]

let hospital_engine () =
  let eng =
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (W.Hospital.sample_document ())
  in
  let _ = Engine.annotate_all eng in
  eng

let check_fast_lane_matches eng label =
  List.iter
    (fun kind ->
      List.iter
        (fun q ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s on %s" label q
               (Engine.backend_kind_to_string kind))
            true
            (Engine.request eng kind q = Engine.request_direct eng kind q))
        sample_queries)
    Engine.all_backend_kinds

let test_engine_fast_lane_matches_direct () =
  let eng = hospital_engine () in
  check_fast_lane_matches eng "after annotate";
  let _ = Engine.update eng "//patient/treatment" in
  check_fast_lane_matches eng "after update";
  Alcotest.(check bool) "cam consistent" true (Engine.cam_check eng)

let test_engine_cache_hits_and_epoch () =
  let eng = hospital_engine () in
  let m = Engine.metrics eng in
  Metrics.reset m;
  let d1 = Engine.request eng Engine.Native "//patient/name" in
  let d2 = Engine.request eng Engine.Native "//patient/name" in
  Alcotest.(check bool) "same decision" true (d1 = d2);
  Alcotest.(check int) "one miss" 1 (Metrics.counter m "cache.misses");
  Alcotest.(check int) "one hit" 1 (Metrics.counter m "cache.hits");
  let e0 = Engine.epoch eng in
  let _ = Engine.update eng "//patient/treatment" in
  Alcotest.(check bool) "epoch bumped" true (Engine.epoch eng > e0);
  let d3 = Engine.request eng Engine.Native "//patient/name" in
  Alcotest.(check int) "update forces recompute" 2
    (Metrics.counter m "cache.misses");
  Alcotest.(check bool) "fresh decision matches direct" true
    (d3 = Engine.request_direct eng Engine.Native "//patient/name")

let test_engine_insert_maintains_cam () =
  let eng = hospital_engine () in
  let frag = Tree.create ~root_name:"treatment" in
  let reg = Tree.add_child frag (Tree.root frag) "regular" in
  ignore (Tree.add_child frag reg ~value:"aspirin" "med");
  ignore (Tree.add_child frag reg ~value:"120" "bill");
  let _ = Engine.insert eng ~at:"//patient[psn = \"099\"]" ~fragment:frag in
  Alcotest.(check bool) "cam consistent after insert" true
    (Engine.cam_check eng);
  check_fast_lane_matches eng "after insert"

let test_engine_divergent_backend_bypasses () =
  (* Annotate only the native store: relational signs still carry the
     load-time default, so the fast lane must not borrow the native
     CAM for them.  The materialized lane is forced — the auto lane
     would (correctly) route the never-annotated relational stores to
     the rewrite lane, but this test pins the CAM-borrowing guard. *)
  let eng =
    Engine.create ~dtd:W.Hospital.dtd ~policy:W.Hospital.policy
      (W.Hospital.sample_document ())
  in
  let _ = Engine.annotate eng Engine.Native in
  let m = Engine.metrics eng in
  Metrics.reset m;
  List.iter
    (fun q ->
      Alcotest.(check bool) ("row matches direct: " ^ q) true
        (Engine.request ~lane:Rewrite.Materialized eng Engine.Row_sql q
        = Engine.request_direct eng Engine.Row_sql q))
    sample_queries;
  Alcotest.(check bool) "bypass counted" true
    (Metrics.counter m "fastlane.bypass" > 0)

let test_engine_request_parse_error () =
  let eng = hospital_engine () in
  try
    ignore (Engine.request eng Engine.Native "//patient[");
    Alcotest.fail "accepted malformed query"
  with Invalid_argument msg ->
    Alcotest.(check bool) "names the query" true
      (Helpers.contains msg "//patient[")

let test_engine_refresh_after_external_mutation () =
  let eng = hospital_engine () in
  (* Mutate behind the engine's back, then refresh the fast lane. *)
  let warm = Engine.request eng Engine.Native "//patient" in
  ignore warm;
  (Engine.backend eng Engine.Native).Backend.reset_signs
    ~default:(Policy.ds (Engine.policy eng));
  Engine.refresh eng;
  check_fast_lane_matches eng "after refresh"

(* ------------------------------------------------------------------ *)
(* The acceptance property: CAM/cache-served decisions are identical
   to direct sign-read decisions on all three backends, across random
   documents, policies and update sequences. *)

let fast_lane_equivalence_prop =
  QCheck2.Test.make
    ~name:"fast lane = direct sign reads across backends and updates"
    ~count:30 Helpers.seed_gen (fun seed ->
      let rng = Prng.create ~seed in
      let doc = Helpers.random_hospital_doc rng in
      let rules =
        List.init
          (1 + Prng.int rng 5)
          (fun i ->
            Rule.make
              ~name:(Printf.sprintf "Q%d" i)
              ~resource:(Helpers.random_hospital_expr rng)
              (if Prng.bool rng then Rule.Plus else Rule.Minus))
      in
      let ds = if Prng.bool rng then Rule.Plus else Rule.Minus in
      let policy = Policy.make ~ds ~cr:Rule.Minus rules in
      let eng =
        Engine.create ~mode:Engine.Overlap_mode ~dtd:W.Hospital.dtd ~policy doc
      in
      let _ = Engine.annotate_all eng in
      let ok = ref true in
      let check_round () =
        for _ = 1 to 2 do
          let q =
            Xmlac_xpath.Pp.expr_to_string (Helpers.random_hospital_expr rng)
          in
          List.iter
            (fun kind ->
              (* Twice: the second answer is served from the cache. *)
              let direct = Engine.request_direct eng kind q in
              if Engine.request eng kind q <> direct then ok := false;
              if Engine.request eng kind q <> direct then ok := false)
            Engine.all_backend_kinds
        done
      in
      check_round ();
      for _ = 1 to 2 do
        let e = Helpers.random_hospital_expr rng in
        (match e.Xmlac_xpath.Ast.steps with
        | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Name "hospital"; _ } ]
        | [ { Xmlac_xpath.Ast.test = Xmlac_xpath.Ast.Wildcard; _ } ] ->
            ()
        | _ -> ignore (Engine.update eng (Xmlac_xpath.Pp.expr_to_string e)));
        check_round ()
      done;
      if not (Engine.cam_check eng) then ok := false;
      !ok)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run ~and_exit:false "requester fast lane"
    [
      ( "metrics",
        [
          tc "counters" test_metrics_counters;
          tc "timers" test_metrics_timers;
          tc "hit rate" test_metrics_hit_rate;
        ] );
      ( "decision cache",
        [
          tc "hit and epoch invalidation" test_cache_hit_and_epoch;
          tc "bounded" test_cache_bounded;
          tc "rejects zero capacity" test_cache_rejects_zero_capacity;
        ] );
      ( "requester edge cases",
        [
          tc "empty answers granted" test_decide_empty_granted;
          tc "blocked counts" test_denied_blocked_count;
          tc "unannotated under both defaults" test_unannotated_defaults;
          tc "parse error reporting" test_parse_error_reporting;
        ] );
      ( "incremental cam",
        [
          tc "apply_changes" test_cam_apply_changes;
          tc "apply_changes at root" test_cam_apply_changes_root;
          tc "rebuild_subtree" test_cam_rebuild_subtree;
          tc "purge" test_cam_purge;
        ] );
      ( "engine fast lane",
        [
          tc "matches direct" test_engine_fast_lane_matches_direct;
          tc "cache hits and epoch" test_engine_cache_hits_and_epoch;
          tc "insert maintains cam" test_engine_insert_maintains_cam;
          tc "divergent backend bypasses" test_engine_divergent_backend_bypasses;
          tc "parse error via engine" test_engine_request_parse_error;
          tc "refresh after external mutation"
            test_engine_refresh_after_external_mutation;
          QCheck_alcotest.to_alcotest fast_lane_equivalence_prop;
        ] );
    ]
