(* Tests for the native XML store: document registry, the
   xmlac:annotate function and XPath-located updates. *)

module Store = Xmlac_xmldb.Store
module Update = Xmlac_xmldb.Update
module Tree = Xmlac_xml.Tree
module Serializer = Xmlac_xml.Serializer

let parse = Helpers.parse

let fresh_store () =
  let store = Store.create () in
  let doc = Xmlac_workload.Hospital.sample_document () in
  Store.add store ~name:"hospital" doc;
  (store, doc)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_store_add_get () =
  let store, doc = fresh_store () in
  Alcotest.(check bool) "same doc" true (Store.doc store "hospital" == doc);
  Alcotest.(check (list string)) "names" [ "hospital" ] (Store.names store)

let test_store_duplicate () =
  let store, _ = fresh_store () in
  let another = Xmlac_workload.Hospital.sample_document () in
  Alcotest.check_raises "dup" (Invalid_argument "Store.add: duplicate document hospital")
    (fun () -> Store.add store ~name:"hospital" another)

let test_store_remove () =
  let store, _ = fresh_store () in
  Store.remove store "hospital";
  Alcotest.(check bool) "gone" true (Store.doc_opt store "hospital" = None);
  Alcotest.(check (list string)) "names" [] (Store.names store)

let test_store_load_xml () =
  let store = Store.create () in
  (match Store.load_xml store ~name:"d" "<a><b sign=\"+\"/></a>" with
  | Ok doc -> Alcotest.(check int) "size" 2 (Tree.size doc)
  | Error e -> Alcotest.failf "load failed: %s" e);
  match Store.load_xml store ~name:"bad" "<a><b></a>" with
  | Ok _ -> Alcotest.fail "accepted malformed"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Annotation *)

let test_annotate_insert_then_replace () =
  let _, doc = fresh_store () in
  let patient = List.hd (Xmlac_xpath.Eval.eval doc (parse "//patient")) in
  (* xmlac:annotate inserts the sign attribute when absent... *)
  Store.annotate doc patient Tree.Plus;
  Alcotest.(check bool) "inserted" true (patient.Tree.sign = Some Tree.Plus);
  (* ...and replaces its value when present. *)
  Store.annotate doc patient Tree.Minus;
  Alcotest.(check bool) "replaced" true (patient.Tree.sign = Some Tree.Minus)

let test_annotate_all () =
  let store, doc = fresh_store () in
  let n = Store.annotate_all doc (parse "//patient") Tree.Plus in
  Alcotest.(check int) "three patients" 3 n;
  Alcotest.(check int) "signed" 3 (List.length (Tree.signed doc Tree.Plus));
  Store.clear_annotations doc;
  Alcotest.(check int) "cleared" 0 (List.length (Tree.signed doc Tree.Plus));
  ignore store

let test_annotation_serializes () =
  let _, doc = fresh_store () in
  ignore (Store.annotate_all doc (parse "//regular") Tree.Plus);
  let xml = Serializer.to_string doc in
  let needle = "<regular sign=\"+\">" in
  let rec go i =
    i + String.length needle <= String.length xml
    && (String.sub xml i (String.length needle) = needle || go (i + 1))
  in
  Alcotest.(check bool) "sign attribute in output" true (go 0)

let test_eval_ids () =
  let store, doc = fresh_store () in
  Alcotest.(check (list int)) "agrees with direct eval"
    (Helpers.ids doc "//patient")
    (Store.eval_ids store ~doc:"hospital" (parse "//patient"))

(* ------------------------------------------------------------------ *)
(* Updates *)

let test_delete_subtree () =
  let _, doc = fresh_store () in
  let before = Tree.size doc in
  let n = Update.delete doc (parse "//treatment") in
  Alcotest.(check int) "two roots" 2 n;
  Alcotest.(check int) "eight nodes gone" (before - 8) (Tree.size doc);
  Alcotest.(check int) "no experimentals" 0
    (Xmlac_xpath.Eval.count doc (parse "//experimental"))

let test_delete_nested_targets () =
  (* //\* selects ancestors before descendants; deleting an ancestor
     must not double-count its children. *)
  let _, doc = fresh_store () in
  let n = Update.delete doc (parse "//patient[treatment]") in
  Alcotest.(check int) "two patients" 2 n;
  let n2 = Update.delete doc (parse "//patients/*") in
  Alcotest.(check int) "remaining patient" 1 n2

let test_delete_root_rejected () =
  let _, doc = fresh_store () in
  Alcotest.check_raises "root"
    (Invalid_argument "Update.delete: cannot delete the document root")
    (fun () -> ignore (Update.delete doc (parse "/hospital")))

let test_delete_no_match () =
  let _, doc = fresh_store () in
  let before = Tree.size doc in
  Alcotest.(check int) "nothing" 0 (Update.delete doc (parse "//nosuch"));
  Alcotest.(check int) "unchanged" before (Tree.size doc)

let test_insert_fragment () =
  let _, doc = fresh_store () in
  let frag = Tree.create ~root_name:"treatment" in
  let reg = Tree.add_child frag (Tree.root frag) "regular" in
  ignore (Tree.add_child frag reg ~value:"celecoxib" "med");
  ignore (Tree.add_child frag reg ~value:"250" "bill");
  (* Graft under the patient without a treatment. *)
  let n =
    Update.insert doc ~at:(parse "//patient[psn = \"099\"]") ~fragment:frag
  in
  Alcotest.(check int) "one insertion" 1 n;
  Alcotest.(check int) "celecoxib present" 1
    (Xmlac_xpath.Eval.count doc (parse "//regular[med = \"celecoxib\"]"));
  Alcotest.(check int) "all patients treated" 3
    (Xmlac_xpath.Eval.count doc (parse "//patient[treatment]"));
  (* The document is still schema-valid. *)
  Alcotest.(check bool) "valid" true
    (Xmlac_xml.Dtd.is_valid Xmlac_workload.Hospital.dtd doc)

let test_insert_multiple_targets () =
  let _, doc = fresh_store () in
  let frag = Tree.create ~root_name:"staff" in
  let d = Tree.add_child frag (Tree.root frag) "doctor" in
  ignore (Tree.add_child frag d ~value:"S1" "sid");
  ignore (Tree.add_child frag d ~value:"doc" "name");
  ignore (Tree.add_child frag d ~value:"555" "phone");
  let n = Update.insert doc ~at:(parse "//staffinfo") ~fragment:frag in
  Alcotest.(check int) "one staffinfo" 1 n;
  Alcotest.(check int) "doctor added" 1
    (Xmlac_xpath.Eval.count doc (parse "//doctor"))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run ~and_exit:false "xmldb"
    [
      ( "store",
        [
          tc "add/get" test_store_add_get;
          tc "duplicate rejected" test_store_duplicate;
          tc "remove" test_store_remove;
          tc "load_xml" test_store_load_xml;
        ] );
      ( "annotate",
        [
          tc "insert then replace" test_annotate_insert_then_replace;
          tc "annotate_all" test_annotate_all;
          tc "serializes as sign attribute" test_annotation_serializes;
          tc "eval_ids" test_eval_ids;
        ] );
      ( "update",
        [
          tc "delete subtree" test_delete_subtree;
          tc "nested targets" test_delete_nested_targets;
          tc "delete root rejected" test_delete_root_rejected;
          tc "delete no match" test_delete_no_match;
          tc "insert fragment" test_insert_fragment;
          tc "insert multiple targets" test_insert_multiple_targets;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* XQuery engine — appended suite. *)

module Xquery = Xmlac_xmldb.Xquery

let xq_store () =
  let store = Store.create () in
  Store.add store ~name:"hospital" (Xmlac_workload.Hospital.sample_document ());
  store

let test_xq_plain_query () =
  let store = xq_store () in
  match Xquery.run_exn store "doc(\"hospital\")(//patient)" with
  | Xquery.Nodes ns -> Alcotest.(check int) "patients" 3 (List.length ns)
  | Xquery.Annotated _ -> Alcotest.fail "expected nodes"

let test_xq_set_ops () =
  let store = xq_store () in
  let count q =
    match Xquery.run_exn store q with
    | Xquery.Nodes ns -> List.length ns
    | Xquery.Annotated _ -> Alcotest.fail "expected nodes"
  in
  Alcotest.(check int) "union" 4
    (count "doc(\"hospital\")(//patient union //regular)");
  Alcotest.(check int) "except" 1
    (count "doc(\"hospital\")(//patient except //patient[treatment])");
  Alcotest.(check int) "intersect" 2
    (count "doc(\"hospital\")(//patient intersect //patient[treatment])");
  Alcotest.(check int) "nested parens" 2
    (count
       "doc(\"hospital\")((//patient union //regular) except (//patient[psn = \"099\"] union //regular))")

let test_xq_for_return () =
  let store = xq_store () in
  match
    Xquery.run_exn store "for $n in doc(\"hospital\")(//name) return $n"
  with
  | Xquery.Nodes ns -> Alcotest.(check int) "names" 3 (List.length ns)
  | Xquery.Annotated _ -> Alcotest.fail "expected nodes"

let test_xq_annotate () =
  let store = xq_store () in
  (match
     Xquery.run_exn store
       "for $n in doc(\"hospital\")(//patient[treatment]) return xmlac:annotate($n, \"-\")"
   with
  | Xquery.Annotated n -> Alcotest.(check int) "two annotated" 2 n
  | Xquery.Nodes _ -> Alcotest.fail "expected annotation");
  let doc = Store.doc store "hospital" in
  Alcotest.(check int) "signs set" 2
    (List.length (Tree.signed doc Tree.Minus))

let test_xq_paper_annotation_query_executes () =
  (* The exact text Annotation_query generates for the optimized
     Table 1 policy must parse, run, and reproduce the reference
     annotation. *)
  let store = xq_store () in
  let doc = Store.doc store "hospital" in
  let policy =
    Xmlac_core.Optimizer.optimize_policy Xmlac_workload.Hospital.policy
  in
  let q = Xmlac_core.Annotation_query.build policy in
  let text = Xmlac_core.Annotation_query.to_xquery_string ~doc_name:"hospital" q in
  (match Xquery.run store text with
  | Ok (Xquery.Annotated n) ->
      Alcotest.(check int) "five accessible" 5 n
  | Ok (Xquery.Nodes _) -> Alcotest.fail "expected annotation"
  | Error m -> Alcotest.failf "did not run: %s" m);
  let plus =
    List.sort compare
      (List.map (fun (n : Tree.node) -> n.Tree.id) (Tree.signed doc Tree.Plus))
  in
  Alcotest.(check (list int)) "matches reference semantics"
    (Xmlac_core.Policy.accessible_ids policy doc)
    plus

let test_xq_empty_sequence () =
  (* [()] is the empty sequence, alone and as a set operand. *)
  let store = xq_store () in
  let count q =
    match Xquery.run_exn store q with
    | Xquery.Nodes ns -> List.length ns
    | Xquery.Annotated _ -> Alcotest.fail "expected nodes"
  in
  Alcotest.(check int) "bare" 0 (count "doc(\"hospital\")(())");
  Alcotest.(check int) "union with empty" 3
    (count "doc(\"hospital\")(//patient union ())");
  Alcotest.(check int) "except empty" 3
    (count "doc(\"hospital\")(//patient except ())");
  Alcotest.(check int) "empty except" 0
    (count "doc(\"hospital\")(() except //patient)");
  Alcotest.(check int) "intersect empty" 0
    (count "doc(\"hospital\")(//patient intersect ())")

let test_xq_degenerate_query_roundtrips () =
  (* A policy with no grants compiles to an annotation query whose
     primary union is empty; its generated text — doc("...")(()) in
     application form — must still parse and run (the regression this
     pins down: the printer used to emit doc("hospital")() which the
     parser rejected). *)
  let store = xq_store () in
  let no_grants =
    Xmlac_core.Policy_io.parse_exn "default deny\nconflict deny\ndeny //patient\n"
  in
  let q = Xmlac_core.Annotation_query.build no_grants in
  let text =
    Xmlac_core.Annotation_query.to_xquery_string ~doc_name:"hospital" q
  in
  (match Xquery.run store text with
  | Ok (Xquery.Annotated n) -> Alcotest.(check int) "nothing marked" 0 n
  | Ok (Xquery.Nodes _) -> Alcotest.fail "expected annotation"
  | Error m -> Alcotest.failf "generated text did not run: %s" m);
  (* Same via the plan printer for a rule-less policy. *)
  let rule_less = Xmlac_core.Policy_io.parse_exn "default deny\nconflict deny\n" in
  let plan = Xmlac_core.Plan.of_policy rule_less in
  let text = Xmlac_core.Plan.to_xquery ~doc_name:"hospital" plan in
  match Xquery.run store text with
  | Ok (Xquery.Annotated 0) -> ()
  | Ok _ -> Alcotest.fail "expected an empty annotation"
  | Error m -> Alcotest.failf "rule-less plan text did not run: %s" m

let test_xq_errors () =
  let store = xq_store () in
  let bad q =
    match Xquery.run store q with
    | Ok _ -> Alcotest.failf "accepted %S" q
    | Error _ -> ()
  in
  bad "doc(\"nosuch\")(//a)";
  bad "doc(\"hospital\")(//a";
  bad "for $n in doc(\"hospital\")(//a) return $m";
  bad "for $n in doc(\"hospital\")(//a) return xmlac:annotate($n, \"?\")";
  bad "doc(\"hospital\")(//a) trailing";
  bad "doc(\"hospital\")(not an xpath)"

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "xmldb-xquery"
    [
      ( "xquery",
        [
          tc "plain query" test_xq_plain_query;
          tc "set operators" test_xq_set_ops;
          tc "for/return" test_xq_for_return;
          tc "xmlac:annotate" test_xq_annotate;
          tc "generated annotation query executes"
            test_xq_paper_annotation_query_executes;
          tc "empty sequence" test_xq_empty_sequence;
          tc "degenerate query round-trips" test_xq_degenerate_query_roundtrips;
          tc "errors" test_xq_errors;
        ] );
    ]
